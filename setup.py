"""Setup shim.

The offline environment has no `wheel` package, so PEP-517 editable installs
(`pip install -e .` with a [build-system] table) cannot build. This classic
setup.py lets pip fall back to the legacy `setup.py develop` path.
Configuration lives in pyproject.toml; this file only mirrors what the
legacy path needs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Colossal-AI (ICPP 2023): unified large-scale "
        "parallel training on a simulated multi-GPU substrate"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
)
