"""The auto-parallel strategy compiler: cost-driven two-stage search.

``compile_strategy(cluster, workload)`` turns a model description into a
ready-to-run parallelization:

1. **Enumerate** every structurally valid point of DP degree x TP mode
   (1D/2D/2.5D/3D/sequence) x PP stages/schedule x microbatch count x
   ZeRO stage x overlap x collective algorithm
   (:func:`repro.autopar.search.enumerate_candidates`).
2. **Prune analytically**: closed-form memory feasibility and step-time
   scoring (:func:`repro.autopar.scoring.score_candidate`) — thousands of
   candidates per second, every rejection recorded with its reason.
3. **Refine by projection**: the ``top_k`` survivors each run as a
   *skeleton probe* (:mod:`repro.autopar.probe`) on the threaded
   simulator, captured (:func:`repro.project.capture_run`) and priced by
   :func:`repro.project.price_plan` — in recorded mode (bit-for-bit equal
   to the threaded run) when the target world fits under
   ``max_probe_world``, else captured at a reduced data-parallel degree
   and projected model-mode to the full scale.
4. **Emit** the winner as a validated :class:`repro.config.Config` dict
   consumable by :func:`repro.launch` / ``initialize``.

The two stages exist because they fail differently: the analytic stage is
fast but approximates contention and overlap; the simulator executes the
real collective schedules on the real topology.  Refinement re-ranks the
shortlist with simulator-grade fidelity while the analytic stage keeps the
search space tractable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.analytic.memory_model import zero_partitioned_bytes
from repro.autopar.advisor import Workload
from repro.autopar.probe import build_probe
from repro.autopar.scoring import (
    CandidateScore,
    _CostCache,
    local_params,
    score_candidate,
)
from repro.autopar.search import (
    SearchSpace,
    StrategyCandidate,
    enumerate_candidates,
)
from repro.cluster.machine import ClusterSpec
from repro.config import Config


@dataclass
class RefinedEstimate:
    """Projector-refined step time for one shortlisted candidate."""

    step_seconds: float
    mode: str  # "recorded" | "model"
    probe_world: int
    dp_factor: int
    report: Any  # ProjectionReport


@dataclass
class StrategyReport:
    """Full per-candidate account of one compile: every enumerated
    candidate's analytic score (with the rejection reason for infeasible
    ones) and the refined shortlist."""

    world: int
    global_batch: int
    scored: List[CandidateScore]
    shortlist: List[Tuple[CandidateScore, Optional[RefinedEstimate]]]
    chosen: StrategyCandidate

    def rejection_counts(self) -> Dict[str, int]:
        """Infeasible candidates bucketed by the leading words of their
        rejection reason."""
        counts: Dict[str, int] = {}
        for s in self.scored:
            if not s.feasible:
                key = s.reason.split(":")[0]
                counts[key] = counts.get(key, 0) + 1
        return counts

    def format(self, limit: int = 12) -> str:
        n_feasible = sum(1 for s in self.scored if s.feasible)
        lines = [
            f"strategy compile @ world={self.world} "
            f"global_batch={self.global_batch}: "
            f"{len(self.scored)} candidates, {n_feasible} feasible",
        ]
        for reason, n in sorted(self.rejection_counts().items()):
            lines.append(f"  rejected {n}: {reason}")
        lines.append("  shortlist (analytic -> refined):")
        for s, r in self.shortlist:
            mark = " <==" if s.candidate == self.chosen else ""
            ref = (
                f"{r.step_seconds * 1e3:9.3f} ms [{r.mode}"
                + (f" x{r.dp_factor} dp" if r.dp_factor > 1 else "")
                + "]"
                if r is not None else "   (analytic only)"
            )
            lines.append(
                f"    {s.step_seconds * 1e3:9.3f} ms -> {ref}  "
                f"{s.candidate.describe()}{mark}"
            )
        ranked = sorted(
            (s for s in self.scored if s.feasible),
            key=lambda s: (s.step_seconds, s.candidate.sort_key()),
        )
        shown = {s.candidate for s, _ in self.shortlist}
        rest = [s for s in ranked if s.candidate not in shown][: limit]
        if rest:
            lines.append("  next best (analytic):")
            for s in rest:
                lines.append(
                    f"    {s.step_seconds * 1e3:9.3f} ms  "
                    f"{s.candidate.describe()}"
                )
        return "\n".join(lines)


@dataclass
class CompiledStrategy:
    """Result of :func:`compile_strategy`: the winning candidate, its
    emitted launch config, and the full scoring report."""

    candidate: StrategyCandidate
    config: Dict[str, Any]
    score: CandidateScore
    refined: Optional[RefinedEstimate]
    report: StrategyReport

    @property
    def predicted_step_seconds(self) -> float:
        """The compiler's best estimate of the chosen plan's step time:
        the projector-refined value when refinement ran, else analytic."""
        if self.refined is not None:
            return self.refined.step_seconds
        return self.score.step_seconds

    def build_config(self) -> Config:
        return Config.from_dict(dict(self.config))

    def apply_to(self, cfg: Config) -> Config:
        """A copy of ``cfg`` with this strategy's decisions merged in
        (parallel layout, microbatches, schedule, ZeRO stage, comm knobs);
        everything the compiler does not decide — seed, sanitize, fp16
        scaling knobs, gradient clipping — carries over.  The ``autopar``
        section is consumed (disabled) so the result launches directly."""
        import copy

        from repro.config import AutoParConfig, TensorParallelConfig

        c = self.candidate
        new = copy.deepcopy(cfg)
        new.tensor = TensorParallelConfig(
            size=c.tensor,
            mode=c.mode if c.tensor > 1 else "none",
            depth=c.depth,
        )
        new.pipeline = c.pipeline
        new.data = c.data
        new.num_microbatches = c.microbatches
        new.pipeline_schedule = c.schedule
        new.zero.stage = c.zero_stage
        new.comm.algorithm = c.algorithm
        new.comm.overlap = c.overlap
        new.autopar = AutoParConfig()
        new.validate()
        return new


def probe_scale(
    cand: StrategyCandidate, max_probe_world: int
) -> Optional[Tuple[int, int]]:
    """``(probe_data, dp_factor)`` for capturing this candidate under the
    probe budget: the largest divisor of its DP degree that keeps the
    probe world within ``max_probe_world`` (TP x PP are never reduced —
    their topology is the point of the probe).  ``None`` when even one
    data-parallel replica exceeds the budget."""
    mp = cand.tensor * cand.pipeline
    if mp > max_probe_world:
        return None
    best = 1
    for d in range(1, cand.data + 1):
        if cand.data % d == 0 and d * mp <= max_probe_world:
            best = d
    return best, cand.data // best


def refine_candidate(
    cluster: ClusterSpec,
    work: Workload,
    cand: StrategyCandidate,
    global_batch: int,
    score: CandidateScore,
    max_probe_world: int = 16,
) -> Optional[RefinedEstimate]:
    """Run the candidate's skeleton probe on the simulator and price it at
    the candidate's full scale.

    At ``dp_factor == 1`` the probe runs at the real world size and the
    recorded replay reproduces the threaded run's step time bit-for-bit;
    otherwise the capture runs at a reduced DP degree (same per-replica
    batch) and model-mode projection widens the data-parallel axis."""
    from repro.project import capture_run, price_plan

    scale = probe_scale(cand, max_probe_world)
    if scale is None:
        return None
    probe_data, dp_factor = scale
    probe_cand = replace(cand, data=probe_data)
    probe_batch = global_batch * probe_data // cand.data
    cfg, fn = build_probe(work, probe_cand, probe_batch,
                          score.compute_seconds)
    _results, trace = capture_run(
        cluster,
        fn,
        world_size=probe_cand.world,
        materialize=False,
        comm_algorithm=cand.algorithm,
        comm_overlap=cand.overlap,
    )
    # spec-mode probes never touch the memory pools: give the projection
    # the analytic per-rank peak, declaring the ZeRO-partitionable slice
    # so dp widening shrinks it
    trace.peak_memory = [score.memory_bytes] * probe_cand.world
    sharded = None
    if cand.zero_stage and dp_factor > 1:
        part = zero_partitioned_bytes(
            local_params(work, cand), stage=cand.zero_stage
        )
        sharded = {"dp": part // probe_data}
    report = price_plan(
        trace,
        axes={"dp": dp_factor} if dp_factor > 1 else None,
        tensor=cand.tensor,
        pipeline=cand.pipeline,
        sharded_bytes=sharded,
    )
    return RefinedEstimate(
        step_seconds=report.step_time,
        mode="recorded" if dp_factor == 1 else "model",
        probe_world=probe_cand.world,
        dp_factor=dp_factor,
        report=report,
    )


def simulate_candidate(
    cluster: ClusterSpec,
    work: Workload,
    cand: StrategyCandidate,
    global_batch: int,
    compute_seconds: Optional[float] = None,
) -> float:
    """Step time of the candidate's skeleton probe on the *threaded*
    simulator at the full world size — the independent ground truth the
    parity tests compare :func:`refine_candidate` against."""
    from repro.runtime.spmd import SpmdRuntime

    if compute_seconds is None:
        compute_seconds = score_candidate(
            cluster, work, cand, global_batch
        ).compute_seconds
    _cfg, fn = build_probe(work, cand, global_batch, compute_seconds)
    cluster.reset()
    rt = SpmdRuntime(
        cluster,
        cand.world,
        comm_algorithm=cand.algorithm,
        comm_overlap=cand.overlap,
    )
    rt.run(fn, materialize=False)
    return rt.max_time()


def compile_strategy(
    cluster: ClusterSpec,
    workload: Union[Workload, Dict[str, Any]],
    global_batch: Optional[int] = None,
    *,
    world_size: Optional[int] = None,
    space: Optional[SearchSpace] = None,
    top_k: int = 4,
    refine: bool = True,
    max_probe_world: int = 16,
) -> CompiledStrategy:
    """Compile the best parallel strategy for ``workload`` on ``cluster``.

    Deterministic: candidate enumeration order is fixed, all scoring is
    closed-form or simulated on deterministic clocks, and every tie breaks
    on :meth:`StrategyCandidate.sort_key`.  Raises ``ValueError`` when no
    candidate fits device memory (the report text is in the message)."""
    work = workload if isinstance(workload, Workload) else Workload(**workload)
    world = world_size or cluster.world_size
    batch = global_batch if global_batch is not None else 8 * world
    space = space or SearchSpace()
    cache = _CostCache(cluster)

    scored = [
        score_candidate(cluster, work, cand, batch, cache)
        for cand in enumerate_candidates(work, batch, world, space)
    ]
    if not scored:
        raise ValueError(
            f"no structurally valid candidates for world={world}, "
            f"global_batch={batch} (check divisibility of batch and heads)"
        )
    feasible = sorted(
        (s for s in scored if s.feasible),
        key=lambda s: (s.step_seconds, s.candidate.sort_key()),
    )
    if not feasible:
        reasons: Dict[str, int] = {}
        for s in scored:
            key = s.reason.split(":")[0]
            reasons[key] = reasons.get(key, 0) + 1
        raise ValueError(
            f"no feasible candidate fits device memory: "
            f"{len(scored)} candidates rejected ({reasons})"
        )

    shortlist: List[Tuple[CandidateScore, Optional[RefinedEstimate]]] = []
    for s in feasible[:top_k]:
        r = None
        if refine:
            r = refine_candidate(
                cluster, work, s.candidate, batch, s,
                max_probe_world=max_probe_world,
            )
        shortlist.append((s, r))

    def final_key(entry):
        s, r = entry
        t = r.step_seconds if r is not None else s.step_seconds
        return (t, s.candidate.sort_key())

    best_score, best_refined = min(shortlist, key=final_key)
    chosen = best_score.candidate
    report = StrategyReport(
        world=world,
        global_batch=batch,
        scored=scored,
        shortlist=shortlist,
        chosen=chosen,
    )
    config = chosen.to_config_dict(work)
    Config.from_dict(dict(config))  # emitted configs always validate
    return CompiledStrategy(
        candidate=chosen,
        config=config,
        score=best_score,
        refined=best_refined,
        report=report,
    )
