"""Analytic scoring stage of the strategy compiler (fast pruning).

Every enumerated :class:`~repro.autopar.search.StrategyCandidate` is priced
with the closed-form models (``repro.analytic`` + ``repro.comm.cost``)
before anything touches the simulator: memory feasibility (ZeRO-aware, via
:func:`~repro.analytic.memory_model.model_data_bytes_per_rank`), compute,
tensor-parallel traffic on the *actual* subgroup topologies (rows on
NVLink pairs vs columns over PCIe is what flips Fig 11), ZeRO-staged
gradient synchronization, overlap hiding and the pipeline bubble.

The communication *pattern* a candidate implies is materialized once as a
list of :class:`TpOp` / :class:`DpOp` records.  The analytic stage prices
those records with :class:`~repro.comm.cost.CostModel`; the probe stage
(:mod:`repro.autopar.probe`) *issues the very same records* as real
collectives on the simulator — one source of truth, two evaluators, which
is what makes the two-stage search comparable end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analytic.memory_model import (
    model_data_bytes_per_rank,
    transformer_activation_bytes,
    transformer_param_count,
    zero_partitioned_bytes,
)
from repro.analytic.perf_model import (
    overlap_exposed_seconds,
    transformer_layer_flops,
)
from repro.autopar.advisor import Workload, _tp_volume_per_layer
from repro.autopar.search import StrategyCandidate
from repro.cluster.machine import ClusterSpec
from repro.comm.cost import CostModel

#: fraction of a step's compute that is backward work (the window overlap
#: schedulers can hide gradient traffic behind): bwd = 2x fwd flops
BACKWARD_FRACTION = 2.0 / 3.0


@dataclass(frozen=True)
class TpOp:
    """Aggregate tensor-parallel traffic one candidate issues per layer,
    per microbatch, per phase.

    ``group`` names a subgroup family of the tensor group (see
    :func:`tp_subgroups`); ``nbytes`` is the *per-rank wire volume* on that
    family's links, derived from the Table-1 forms
    (:func:`repro.autopar.advisor._tp_volume_per_layer`).  Both evaluators
    realize a record as one broadcast of ``nbytes`` over each subgroup —
    the wire bytes per bottleneck link are what the Fig-11 hardware
    argument turns on, not the op taxonomy, so a single collective kind
    keeps the analytic price and the simulated probe exactly comparable."""

    phase: str
    group: str  # "tp" | "row" | "col"
    op: str  # "broadcast"
    nbytes: int


@dataclass(frozen=True)
class DpOp:
    """One data-parallel/ZeRO synchronization collective per step."""

    op: str  # "all_reduce" | "reduce_scatter" | "all_gather"
    elements: int


@dataclass
class CandidateScore:
    """Analytic estimate for one candidate, with the rejection reason when
    the candidate is infeasible (the compiler's observability contract:
    every enumerated candidate appears in the report with *why* it was
    dropped, never silently)."""

    candidate: StrategyCandidate
    feasible: bool
    reason: str = ""
    step_seconds: float = math.inf
    compute_seconds: float = 0.0
    tp_comm_seconds: float = 0.0
    dp_comm_seconds: float = 0.0  # exposed (after overlap hiding)
    dp_comm_raw_seconds: float = 0.0  # before overlap hiding
    bubble_fraction: float = 0.0
    memory_bytes: int = 0
    notes: str = ""


def micro_batch_size(cand: StrategyCandidate, global_batch: int) -> int:
    return max(global_batch // (cand.data * cand.microbatches), 1)


def local_layers(work: Workload, cand: StrategyCandidate) -> int:
    return math.ceil(work.n_layers / cand.pipeline)


def local_params(work: Workload, cand: StrategyCandidate) -> int:
    params = transformer_param_count(
        work.n_layers, work.hidden, mlp_ratio=work.mlp_ratio
    )
    return max(params // (cand.tensor * cand.pipeline), 1)


def tp_subgroups(cand: StrategyCandidate) -> Dict[str, List[List[int]]]:
    """Subgroup families (local tensor-rank lists) of a candidate's tensor
    group, matching the advisor's row/column construction so SUMMA row
    traffic lands on the adjacent pairs and column traffic on the
    cross-pair links — the placement Fig 11 turns on."""
    t, mode, depth = cand.tensor, cand.mode, cand.depth
    ranks = list(range(t))
    if t == 1:
        return {}
    if mode in ("1d", "sequence"):
        return {"tp": [ranks]}
    if mode == "2d":
        q = math.isqrt(t)
        rows = [ranks[i * q:(i + 1) * q] for i in range(q)]
        cols = [[i * q + j for i in range(q)] for j in range(q)]
        return {"row": rows, "col": cols}
    if mode == "2.5d":
        q = math.isqrt(t // depth)
        rows, cols = [], []
        for dd in range(depth):
            base = dd * q * q
            for i in range(q):
                rows.append([base + i * q + j for j in range(q)])
                cols.append([base + j * q + i for j in range(q)])
        return {"row": rows, "col": cols}
    # 3d: activation broadcasts along one cube axis, weight traffic along
    # another (advisor's x/w group construction)
    l = round(t ** (1 / 3))
    rows, cols = [], []
    for i in range(l):
        for j in range(l):
            rows.append([i * l * l + j * l + k for k in range(l)])
            cols.append([jj * l * l + i * l + j for jj in range(l)])
    return {"row": rows, "col": cols}


def tp_layer_ops(
    work: Workload, cand: StrategyCandidate, micro_batch: int
) -> List[TpOp]:
    """The tensor-parallel traffic one Transformer layer moves for one
    microbatch under this candidate, as per-rank wire-byte records.

    Volumes come straight from the advisor's Table-1 forms
    (:func:`~repro.autopar.advisor._tp_volume_per_layer`), split between
    the activation family (rows / the full 1D group) and the weight family
    (columns) and halved across fwd/bwd — so the probe and the analytic
    stage move byte-identical traffic on identical subgroups."""
    t, mode = cand.tensor, cand.mode
    if t == 1:
        return []
    ops: List[TpOp] = []
    if mode == "sequence":
        # ring self-attention: each rank circulates its k/v blocks around
        # the sequence group, (t-1) rounds of 2 blocks fwd and twice that
        # bwd; the replicated weights add one gradient all-reduce per step,
        # amortized here per layer/microbatch
        bsh = micro_batch * work.seq_len * work.hidden
        kv_rank = 6 * (t - 1) * bsh // t
        layer_params = transformer_param_count(
            1, work.hidden, mlp_ratio=work.mlp_ratio
        )
        wgt_rank = (
            2 * (t - 1) * layer_params // t // max(cand.microbatches, 1)
        )
        for phase, frac in (("fwd", 1), ("bwd", 2)):
            nb = max(kv_rank * frac // 3 * work.bytes_per_elem, 1)
            ops.append(TpOp(phase, "tp", "broadcast", nb))
        ops.append(
            TpOp("bwd", "tp", "broadcast",
                 max(wgt_rank * work.bytes_per_elem, 1))
        )
        return ops
    act_v, wgt_v = _tp_volume_per_layer(
        mode, t, cand.depth, micro_batch, work.seq_len, work.hidden,
        work.mlp_ratio,
    )
    act_rank = int(act_v * work.bytes_per_elem / t)
    wgt_rank = int(wgt_v * work.bytes_per_elem / t)
    act_group = "tp" if mode == "1d" else "row"
    for phase in ("fwd", "bwd"):
        if act_rank:
            ops.append(TpOp(phase, act_group, "broadcast",
                            max(act_rank // 2, 1)))
        if wgt_rank:
            ops.append(TpOp(phase, "col", "broadcast",
                            max(wgt_rank // 2, 1)))
    return ops


def dp_step_ops(work: Workload, cand: StrategyCandidate) -> List[DpOp]:
    """The data-parallel/ZeRO synchronization collectives one training step
    issues over the DP group (gradient elements of this rank's model
    shard)."""
    if cand.data <= 1:
        return []
    grad_elems = local_params(work, cand)
    if cand.zero_stage == 0:
        return [DpOp("all_reduce", grad_elems)]
    shard = max(grad_elems // cand.data, 1)
    ops = [DpOp("reduce_scatter", grad_elems), DpOp("all_gather", shard)]
    if cand.zero_stage >= 3:
        # partitioned parameters are re-gathered before fwd and bwd
        ops.append(DpOp("all_gather", shard))
        ops.append(DpOp("all_gather", shard))
    return ops


def axis_rank_lists(cand: StrategyCandidate) -> Dict[str, List[int]]:
    """Representative global rank lists under the ParallelContext layout
    ``rank = dp*(pp*tp) + pp*tp + tp`` — the first group of each family,
    which is what the analytic stage prices."""
    t, p = cand.tensor, cand.pipeline
    return {
        "tp": list(range(t)),
        "pp": [s * t for s in range(p)],
        "dp": [d * t * p for d in range(cand.data)],
    }


class _CostCache:
    """Memoized CostModel queries keyed on (algorithm, op, ranks, bytes):
    thousands of candidates share a handful of distinct groups."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self._models: Dict[str, CostModel] = {}
        self._cache: Dict[Tuple, float] = {}

    def model(self, algorithm: str) -> CostModel:
        m = self._models.get(algorithm)
        if m is None:
            m = self._models[algorithm] = CostModel(
                self.cluster, algorithm=algorithm
            )
        return m

    def seconds(
        self, algorithm: str, op: str, ranks: Sequence[int], nbytes: int
    ) -> float:
        key = (algorithm, op, tuple(ranks), nbytes)
        val = self._cache.get(key)
        if val is None:
            model = self.model(algorithm)
            fn = {
                "all_reduce": model.allreduce,
                "broadcast": model.broadcast,
                "all_gather": model.allgather,
                "reduce_scatter": model.reduce_scatter,
            }[op]
            val = self._cache[key] = fn(list(ranks), nbytes).seconds
        return val

    def p2p_seconds(self, src: int, dst: int, nbytes: int) -> float:
        key = ("p2p", src, dst, nbytes)
        val = self._cache.get(key)
        if val is None:
            val = self._cache[key] = self.model("ring").p2p(
                src, dst, nbytes
            ).seconds
        return val


def score_candidate(
    cluster: ClusterSpec,
    work: Workload,
    cand: StrategyCandidate,
    global_batch: int,
    cache: Optional[_CostCache] = None,
) -> CandidateScore:
    """Price one candidate analytically; infeasible candidates come back
    with ``feasible=False`` and a human-readable ``reason``."""
    cache = cache or _CostCache(cluster)
    dev = cluster.gpus[0]
    mb = micro_batch_size(cand, global_batch)
    layers = local_layers(work, cand)
    params_local = local_params(work, cand)

    # ---- memory: ZeRO-partitioned model data + live-microbatch activations
    model_bytes = model_data_bytes_per_rank(
        params_local, data=cand.data, zero_stage=cand.zero_stage
    )
    seq_share = cand.tensor if cand.mode == "sequence" else 1
    act_micro = transformer_activation_bytes(
        mb, work.seq_len // seq_share, work.hidden, work.n_heads,
        layers, work.mlp_ratio, work.bytes_per_elem,
    ) // (cand.tensor if cand.mode != "sequence" else 1)
    # in-flight microbatches: GPipe holds all m, 1F1B at most the stage count
    live = 1
    if cand.pipeline > 1:
        live = (
            cand.microbatches if cand.schedule == "gpipe"
            else min(cand.pipeline, cand.microbatches)
        )
    act_plain = act_micro * live
    ckpt_micro = transformer_activation_bytes(
        mb, work.seq_len // seq_share, work.hidden, work.n_heads,
        layers, work.mlp_ratio, work.bytes_per_elem, checkpoint=True,
    ) // (cand.tensor if cand.mode != "sequence" else 1)
    act_ckpt = ckpt_micro * live + act_micro // max(layers, 1)
    use_ckpt = model_bytes + act_plain > dev.memory_capacity
    act_bytes = act_ckpt if use_ckpt else act_plain
    mem = model_bytes + act_bytes
    if mem > dev.memory_capacity:
        return CandidateScore(
            candidate=cand, feasible=False,
            reason=(
                f"out of memory: needs {mem / 2**30:.2f} GiB "
                f"({model_bytes / 2**30:.2f} model + "
                f"{act_bytes / 2**30:.2f} activations) > "
                f"{dev.memory_capacity / 2**30:.2f} GiB device"
            ),
            memory_bytes=int(mem),
        )

    # ---- compute: 6*params*tokens over the ranks (+ checkpoint re-forward)
    params = transformer_param_count(
        work.n_layers, work.hidden, mlp_ratio=work.mlp_ratio
    )
    tokens = global_batch * work.seq_len
    flops_per_rank = 6.0 * params * tokens / cand.world
    if use_ckpt:
        flops_per_rank *= 4.0 / 3.0
    compute_s = dev.compute_seconds(flops_per_rank, "float16")

    # ---- tensor-parallel comm: price the exact op records the probe issues
    groups = tp_subgroups(cand)
    tp_s = 0.0
    if cand.tensor > 1:
        for op in tp_layer_ops(work, cand, mb):
            fam = groups[op.group]
            # slowest subgroup of the family bounds the phase
            worst = max(
                cache.seconds(cand.algorithm, op.op, sub, op.nbytes)
                for sub in fam
            )
            tp_s += worst
        tp_s *= work.n_layers * cand.microbatches / cand.pipeline

    # ---- pipeline: bubble + boundary p2p traffic
    bubble = (
        (cand.pipeline - 1) / (cand.microbatches + cand.pipeline - 1)
        if cand.pipeline > 1 else 0.0
    )
    pp_s = 0.0
    if cand.pipeline > 1:
        boundary = mb * work.seq_len * work.hidden * work.bytes_per_elem
        hop = cache.p2p_seconds(0, cand.tensor, boundary)
        pp_s = 2.0 * cand.microbatches * hop  # activations fwd + grads bwd

    # ---- data-parallel / ZeRO sync, with overlap hiding
    ranks = axis_rank_lists(cand)
    dp_raw = 0.0
    for op in dp_step_ops(work, cand):
        dp_raw += cache.seconds(
            cand.algorithm, op.op, ranks["dp"], op.elements * work.bytes_per_elem
        )
    dp_s = (
        overlap_exposed_seconds(dp_raw, BACKWARD_FRACTION * compute_s)
        if cand.overlap else dp_raw
    )

    step = (compute_s + tp_s + pp_s) / (1.0 - bubble) + dp_s
    notes = []
    if use_ckpt:
        notes.append("checkpointing")
    if cand.zero_stage:
        notes.append(f"zero{cand.zero_stage}")
    return CandidateScore(
        candidate=cand,
        feasible=True,
        step_seconds=step,
        compute_seconds=compute_s,
        tp_comm_seconds=tp_s,
        dp_comm_seconds=dp_s,
        dp_comm_raw_seconds=dp_raw,
        bubble_fraction=bubble,
        memory_bytes=int(mem),
        notes="+".join(notes),
    )
