"""Hardware-aware parallelization strategy search (§6 future work).

``suggest_plans(cluster, workload, global_batch)`` enumerates every valid
decomposition ``world = data x tensor x pipeline`` (with each tensor mode's
topology constraint: 1D any, 2D square, 2.5D d*k^2, 3D cubic, sequence
any), then for each plan predicts:

* **compute** — ``6 * params * tokens`` split over the ranks, at the
  device's effective FLOP rate, plus the activation-checkpointing reforward
  when memory requires it;
* **tensor-parallel communication** — the per-layer Table 1 volumes over
  the *actual* bottleneck bandwidth of the tensor group placed on
  consecutive GPUs (so a 1D group spanning a PCIe hop on System II is
  penalized exactly as in Fig 11);
* **data-parallel communication** — one bucketed gradient all-reduce;
* **pipeline bubble** — the GPipe factor ``(p-1)/(m+p-1)``;
* **memory feasibility** — model data (16 B/param under mixed-precision
  Adam, ZeRO-free) + activations must fit the device pool, else the plan
  is rejected.

The ranking reproduces the paper's hardware-dependent conclusions: on
System I small-scale 1D wins; on System II the advisor switches to 2D/2.5D
(Fig 11); at System IV scale the advanced modes take over (Table 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analytic.commvolume import (
    comm_volume_1d,
    comm_volume_25d,
    comm_volume_2d,
    comm_volume_3d,
)
from repro.analytic.memory_model import (
    model_data_bytes_per_rank,
    transformer_activation_bytes,
    transformer_param_count,
)
from repro.cluster.machine import ClusterSpec
from repro.comm.cost import CostModel


@dataclass(frozen=True)
class Workload:
    """A Transformer training workload."""

    n_layers: int
    hidden: int
    n_heads: int
    seq_len: int
    mlp_ratio: int = 4
    bytes_per_elem: int = 2  # fp16
    microbatches: int = 8


@dataclass(frozen=True)
class ParallelPlan:
    data: int
    tensor: int
    mode: str  # "1d" | "2d" | "2.5d" | "3d" (depth via depth field)
    pipeline: int
    depth: int = 1

    def describe(self) -> str:
        t = f"{self.mode}x{self.tensor}"
        if self.mode == "2.5d":
            t += f"(d={self.depth})"
        return f"dp{self.data} * {t} * pp{self.pipeline}"


@dataclass
class PlanEstimate:
    plan: ParallelPlan
    step_seconds: float
    compute_seconds: float
    tp_comm_seconds: float
    dp_comm_seconds: float
    bubble_fraction: float
    memory_bytes: int
    fits: bool
    notes: str = ""


def _tensor_modes(size: int) -> List[Tuple[str, int]]:
    """Valid (mode, depth) choices for a tensor group of ``size``."""
    if size == 1:
        return [("1d", 1)]
    modes: List[Tuple[str, int]] = [("1d", 1)]
    j = math.isqrt(size)
    if j * j == size:
        modes.append(("2d", 1))
    for d in range(1, size + 1):
        if size % d:
            continue
        k = math.isqrt(size // d)
        if k * k * d == size and d > 1 and k >= 2:
            modes.append(("2.5d", d))
    l = round(size ** (1 / 3))
    if l**3 == size and l >= 2:
        modes.append(("3d", 1))
    return modes


def _tp_bandwidths(
    cluster: ClusterSpec, tensor: int, mode: str, depth: int
) -> Tuple[float, float]:
    """(activation-traffic bandwidth, weight-traffic bandwidth) for a
    tensor group placed on consecutive GPUs 0..tensor-1.

    In SUMMA-style modes the activation blocks are broadcast within *row*
    groups and the weight blocks within *column* groups; on asymmetric
    machines (System II) the rows sit on NVLink pairs while the columns
    cross PCIe, which is why 2D beats 1D there (Fig 11b) even though its
    raw Table 1 volume at p=4 is larger."""
    topo = cluster.topology
    names = cluster.gpu_names(list(range(tensor)))
    if mode == "1d":
        bw = topo.ring_bandwidth(names)
        return bw, bw
    if mode == "2d":
        q = math.isqrt(tensor)
        rows = [names[i * q : (i + 1) * q] for i in range(q)]
        cols = [[names[i * q + j] for i in range(q)] for j in range(q)]
        return (
            min(topo.ring_bandwidth(g) for g in rows),
            min(topo.ring_bandwidth(g) for g in cols),
        )
    if mode == "2.5d":
        q = math.isqrt(tensor // depth)
        rows, cols = [], []
        for dd in range(depth):
            base = dd * q * q
            for i in range(q):
                rows.append(names[base + i * q : base + (i + 1) * q])
                cols.append([names[base + ii * q + i] for ii in range(q)])
        return (
            min(topo.ring_bandwidth(g) for g in rows),
            min(topo.ring_bandwidth(g) for g in cols),
        )
    l = round(tensor ** (1 / 3))
    x_groups, w_groups = [], []
    for i in range(l):
        for j in range(l):
            x_groups.append([names[i * l * l + j * l + k] for k in range(l)])
            w_groups.append([names[jj * l * l + i * l + j] for jj in range(l)])
    return (
        min(topo.ring_bandwidth(g) for g in x_groups),
        min(topo.ring_bandwidth(g) for g in w_groups),
    )


def _tp_volume_per_layer(
    mode: str, tensor: int, depth: int, batch: int, seq: int, hidden: int, mlp: int
) -> Tuple[float, float]:
    """(activation wire elements, weight wire elements) per Transformer
    layer fwd+bwd, from the Table 1 forms applied to the layer's 4 linears
    (QKV, out, MLP up/down)."""
    if tensor == 1:
        return 0.0, 0.0
    matmuls = [
        (hidden, 3 * hidden),
        (hidden, hidden),
        (hidden, mlp * hidden),
        (mlp * hidden, hidden),
    ]
    act = wgt = 0.0
    for k, n in matmuls:
        sx = batch * seq * k
        sw = k * n
        if mode == "1d":
            continue  # handled once per layer below
        if mode == "2d":
            j = math.isqrt(tensor)
            act += 3 * (j - 1) * sx
            wgt += 3 * (j - 1) * sw
        elif mode == "2.5d":
            kk = math.isqrt(tensor // depth)
            act += 3 * (kk - 1) * sx
            wgt += 3 * (kk - 1) * depth * sw
        else:  # 3d
            l = round(tensor ** (1 / 3))
            sy = batch * seq * n
            act += 2 * (l - 1) * (sx + sy)
            wgt += 2 * (l - 1) * sw
    if mode == "1d":
        sx = batch * seq * hidden
        act = 2 * (2 * (tensor - 1) * sx)  # 2 allreduce pairs (attn + MLP)
    return act, wgt


def estimate_plan(
    cluster: ClusterSpec,
    work: Workload,
    plan: ParallelPlan,
    global_batch: int,
    zero_stage: int = 0,
) -> PlanEstimate:
    dev = cluster.gpus[0]
    p_total = plan.data * plan.tensor * plan.pipeline
    params = transformer_param_count(work.n_layers, work.hidden, mlp_ratio=work.mlp_ratio)
    tokens = global_batch * work.seq_len

    # ---- memory (per rank): sharded model data + one microbatch's
    # activations.  A ZeRO stage additionally partitions the partitionable
    # slice of the local model data across the data-parallel group — without
    # this the advisor priced every plan ZeRO-free and rejected
    # configurations the paper runs (e.g. ZeRO-3 10B-param fine-tuning).
    params_local = params // (plan.tensor * plan.pipeline)
    model_bytes = model_data_bytes_per_rank(
        params_local, data=plan.data, zero_stage=zero_stage
    )
    micro_batch = max(global_batch // (plan.data * work.microbatches), 1)
    layers_local = math.ceil(work.n_layers / plan.pipeline)
    act_plain = transformer_activation_bytes(
        micro_batch, work.seq_len, work.hidden, work.n_heads,
        layers_local, work.mlp_ratio, work.bytes_per_elem,
    ) // plan.tensor
    act_ckpt = transformer_activation_bytes(
        micro_batch, work.seq_len, work.hidden, work.n_heads,
        layers_local, work.mlp_ratio, work.bytes_per_elem, checkpoint=True,
    ) // plan.tensor + act_plain // max(layers_local, 1)
    use_ckpt = model_bytes + act_plain > dev.memory_capacity
    act_bytes = act_ckpt if use_ckpt else act_plain
    mem = model_bytes + act_bytes
    fits = mem <= dev.memory_capacity

    # ---- compute
    flops_per_rank = 6.0 * params * tokens / p_total
    if use_ckpt:
        flops_per_rank *= 4.0 / 3.0  # re-forward
    compute_s = dev.compute_seconds(flops_per_rank, "float16")

    # ---- tensor-parallel comm
    batch_per_replica = global_batch // plan.data
    act_v, wgt_v = _tp_volume_per_layer(
        plan.mode, plan.tensor, plan.depth,
        batch_per_replica, work.seq_len, work.hidden, work.mlp_ratio,
    )
    act_v *= work.n_layers
    wgt_v *= work.n_layers
    cm = CostModel(cluster)
    if plan.tensor > 1:
        bw_act, bw_wgt = _tp_bandwidths(cluster, plan.tensor, plan.mode, plan.depth)
        tp_s = 0.0
        for vol, bw in ((act_v, bw_act), (wgt_v, bw_wgt)):
            if vol <= 0:
                continue
            per_rank_bytes = vol * work.bytes_per_elem / plan.tensor
            # representative message: one layer's share on one rank
            msg = max(per_rank_bytes / max(work.n_layers * 4, 1), 1)
            tp_s += per_rank_bytes / cm._eff(bw, int(msg))
    else:
        tp_s = 0.0

    # ---- data-parallel comm: one gradient allreduce of the local shard
    if plan.data > 1:
        grad_bytes = int(params * work.bytes_per_elem / (plan.tensor * plan.pipeline))
        ranks = [i * plan.tensor * plan.pipeline for i in range(plan.data)]
        dp_s = cm.allreduce(ranks, grad_bytes).seconds
    else:
        dp_s = 0.0

    # ---- pipeline bubble
    bubble = (
        (plan.pipeline - 1) / (work.microbatches + plan.pipeline - 1)
        if plan.pipeline > 1
        else 0.0
    )
    step = (compute_s + tp_s) / (1 - bubble) + dp_s
    notes = []
    if use_ckpt:
        notes.append("checkpointing")
    if zero_stage and plan.data > 1:
        notes.append(f"zero{zero_stage}")
    return PlanEstimate(
        plan=plan,
        step_seconds=step,
        compute_seconds=compute_s,
        tp_comm_seconds=tp_s,
        dp_comm_seconds=dp_s,
        bubble_fraction=bubble,
        memory_bytes=int(mem),
        fits=fits,
        notes="+".join(notes),
    )


def suggest_plans(
    cluster: ClusterSpec,
    work: Workload,
    global_batch: int,
    world_size: Optional[int] = None,
    top_k: int = 5,
    zero_stage: int = 0,
) -> List[PlanEstimate]:
    """Enumerate, estimate and rank parallel plans; infeasible (OOM) plans
    are dropped.  Returns the ``top_k`` fastest.  ``zero_stage`` prices the
    memory feasibility check with the ZeRO partitioning applied."""
    world = world_size or cluster.world_size
    results: List[PlanEstimate] = []
    for tensor in [d for d in range(1, world + 1) if world % d == 0]:
        rem = world // tensor
        for pipeline in [d for d in range(1, rem + 1) if rem % d == 0]:
            data = rem // pipeline
            if pipeline > work.n_layers:
                continue
            if global_batch % (data * work.microbatches or 1):
                continue
            for mode, depth in _tensor_modes(tensor):
                if mode in ("1d",) and work.n_heads % tensor:
                    continue
                plan = ParallelPlan(data, tensor, mode, pipeline, depth)
                est = estimate_plan(
                    cluster, work, plan, global_batch, zero_stage=zero_stage
                )
                if est.fits:
                    results.append(est)
    results.sort(key=lambda e: e.step_seconds)
    return results[:top_k]
