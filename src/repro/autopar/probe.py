"""Skeleton probes: runnable SPMD stand-ins for a strategy candidate.

The refinement stage of the compiler does not simulate the full model —
it runs a *skeleton* of the candidate: per-rank clock advances for the
compute and the candidate's exact communication pattern as real
collectives on the real subgroups (tensor rows/columns, pipeline chains,
data-parallel/ZeRO sync), built from the same :class:`TpOp`/:class:`DpOp`
records the analytic stage prices (:mod:`repro.autopar.scoring`).

Because the probe runs on the ordinary threaded runtime, it can be
captured (:func:`repro.project.capture_run`) and replayed in recorded mode
bit-for-bit — so the compiler's refined step time *is* the simulator's
step time for the skeleton, exactly.  GPipe and 1F1B produce the same
skeleton op stream (same per-microbatch work, same boundary traffic, same
bubble); they differ in *live activation memory*, which the compiler
accounts analytically.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

from repro.autopar.advisor import Workload
from repro.autopar.scoring import (
    dp_step_ops,
    local_layers,
    micro_batch_size,
    tp_layer_ops,
)
from repro.autopar.search import StrategyCandidate
from repro.comm.payload import SpecArray
from repro.config import Config
from repro.context.parallel_context import ParallelContext, ParallelMode

#: TpOp ``group`` family -> the ParallelContext mode realizing it, per
#: tensor mode (the context's row/col groups match the advisor's — rows on
#: consecutive ranks, columns strided)
_FAMILY_MODES: Dict[Tuple[str, str], ParallelMode] = {
    ("1d", "tp"): ParallelMode.TENSOR,
    ("sequence", "tp"): ParallelMode.TENSOR,
    ("2d", "row"): ParallelMode.PARALLEL_2D_ROW,
    ("2d", "col"): ParallelMode.PARALLEL_2D_COL,
    ("2.5d", "row"): ParallelMode.PARALLEL_2P5D_ROW,
    ("2.5d", "col"): ParallelMode.PARALLEL_2P5D_COL,
    ("3d", "row"): ParallelMode.PARALLEL_3D_INPUT,
    ("3d", "col"): ParallelMode.PARALLEL_3D_WEIGHT,
}


def _payload(nbytes: int, parts: int = 1) -> SpecArray:
    """A spec-mode float32 payload of ~``nbytes``, padded so axis 0 splits
    evenly over ``parts`` ranks (reduce-scatter/all-gather contract)."""
    elems = max(-(-int(nbytes) // 4), 1)
    elems = -(-elems // parts) * parts
    return SpecArray((elems,), "float32")


def build_probe(
    work: Workload,
    cand: StrategyCandidate,
    global_batch: int,
    compute_seconds: float,
) -> Tuple[Config, Callable]:
    """Build ``(config, fn)`` for one candidate: ``fn(ctx)`` executes one
    training-step skeleton when run SPMD at ``cand.world`` ranks.

    ``compute_seconds`` is the per-rank step compute the clock advances
    (split 1/3 forward, 2/3 backward, evenly over microbatches — the same
    total the analytic stage uses, so the two stages differ only in how
    they price communication)."""
    cfg = Config.from_dict(cand.to_config_dict(work))
    m = cand.microbatches
    fwd_micro = compute_seconds / 3.0 / m
    bwd_micro = 2.0 * compute_seconds / 3.0 / m
    layers = local_layers(work, cand)
    mb = micro_batch_size(cand, global_batch)
    boundary = mb * work.seq_len * work.hidden * work.bytes_per_elem
    ops = tp_layer_ops(work, cand, mb)
    fwd_ops = [op for op in ops if op.phase == "fwd"]
    bwd_ops = [op for op in ops if op.phase == "bwd"]
    dp_ops = dp_step_ops(work, cand)
    itemsize = work.bytes_per_elem

    def fn(ctx):
        pc = ParallelContext(ctx, cfg)
        fams = {
            group: pc.comm(pmode)
            for (mode, group), pmode in _FAMILY_MODES.items()
            if mode == cand.mode and cand.tensor > 1
        }
        pipe = pc.comm(ParallelMode.PIPELINE) if cand.pipeline > 1 else None
        dp = pc.comm(ParallelMode.DATA) if cand.data > 1 else None
        d = cand.data

        def run_tp(phase_ops):
            for _ in range(layers):
                for op in phase_ops:
                    fams[op.group].broadcast(_payload(op.nbytes))

        def dp_blocking(op):
            if op.op == "all_reduce":
                dp.all_reduce(_payload(op.elements * itemsize, d))
            elif op.op == "reduce_scatter":
                dp.reduce_scatter(_payload(op.elements * itemsize, d))
            else:
                dp.all_gather(_payload(op.elements * itemsize))

        # ZeRO-3 re-gathers the partitioned parameters before each pass;
        # dp_step_ops lists those as the trailing all_gathers
        pre_fwd = dp_ops[3:4]
        pre_bwd = dp_ops[2:3] if len(dp_ops) > 3 else []
        sync_ops = dp_ops[: 2 if cand.zero_stage else 1] if dp_ops else []

        for op in pre_fwd:
            dp_blocking(op)
        # forward pass over microbatches
        for mi in range(m):
            if pipe is not None and not pc.is_first_pipeline_stage():
                pipe.recv(pc.pp_rank - 1, tag=("act", mi))
            ctx.clock.advance(fwd_micro, "compute")
            run_tp(fwd_ops)
            if pipe is not None and not pc.is_last_pipeline_stage():
                pipe.send(_payload(boundary), pc.pp_rank + 1, tag=("act", mi))
        for op in pre_bwd:
            dp_blocking(op)
        # backward pass; with overlap, gradient sync is bucketed per
        # microbatch and issued nonblocking as each bucket's grads are
        # ready (the PR-5 hook-driven DDP idiom), hiding behind the
        # remaining backward compute
        handles = []
        for mi in range(m):
            if pipe is not None and not pc.is_last_pipeline_stage():
                pipe.recv(pc.pp_rank + 1, tag=("grad", mi))
            ctx.clock.advance(bwd_micro, "compute")
            run_tp(bwd_ops)
            if pipe is not None and not pc.is_first_pipeline_stage():
                pipe.send(_payload(boundary), pc.pp_rank - 1,
                          tag=("grad", mi))
            if dp is not None and cand.overlap and sync_ops:
                bucket = _payload(sync_ops[0].elements * itemsize // m, d)
                if sync_ops[0].op == "all_reduce":
                    handles.append(dp.iallreduce(bucket))
                else:
                    handles.append(dp.ireduce_scatter(bucket))
        if dp is not None:
            if cand.overlap and sync_ops:
                for h in handles:
                    h.wait()
                for op in sync_ops[1:]:
                    dp_blocking(op)
            else:
                for op in sync_ops:
                    dp_blocking(op)

    return cfg, fn
