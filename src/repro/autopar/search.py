"""Candidate space of the auto-parallel strategy compiler.

A :class:`StrategyCandidate` is one fully-specified point in the
configuration space the paper's follow-up work targets:

    DP degree x TP mode (1D/2D/2.5D/3D/sequence) x PP stages/schedule
    (GPipe/1F1B) x microbatch count x ZeRO stage x comm/compute overlap
    x collective algorithm (ring/tree/hierarchical/auto)

:func:`enumerate_candidates` walks every structurally valid decomposition
``world = data x tensor x pipeline`` (each tensor mode's topology
constraint enforced: 2D square, 2.5D ``d*q^2``, 3D cubic), crossed with
the :class:`SearchSpace` knobs.  Structural validity is cheap and checked
here; *feasibility* (memory) and *quality* (step time) are the scoring
stage's job (:mod:`repro.autopar.scoring`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from repro.autopar.advisor import Workload, _tensor_modes

PIPELINE_SCHEDULES = ("gpipe", "1f1b")


@dataclass(frozen=True)
class StrategyCandidate:
    """One point of the compiler's search space.

    ``data * tensor * pipeline`` must equal the target world size; the
    remaining fields pick the execution strategy on that decomposition.
    """

    data: int
    tensor: int
    mode: str  # "1d" | "2d" | "2.5d" | "3d" | "sequence" ("none" iff tensor == 1)
    pipeline: int
    depth: int = 1  # 2.5d only
    schedule: str = "gpipe"  # "gpipe" | "1f1b"
    microbatches: int = 1
    zero_stage: int = 0
    overlap: bool = False
    algorithm: str = "ring"  # "ring" | "tree" | "hierarchical" | "auto"

    @property
    def world(self) -> int:
        return self.data * self.tensor * self.pipeline

    def describe(self) -> str:
        t = f"{self.mode}x{self.tensor}" if self.tensor > 1 else "tp1"
        if self.mode == "2.5d":
            t += f"(d={self.depth})"
        parts = [f"dp{self.data}", t, f"pp{self.pipeline}"]
        if self.pipeline > 1:
            parts.append(f"{self.schedule}/m{self.microbatches}")
        elif self.microbatches > 1:
            parts.append(f"m{self.microbatches}")
        if self.zero_stage:
            parts.append(f"zero{self.zero_stage}")
        if self.overlap:
            parts.append("overlap")
        parts.append(self.algorithm)
        return " * ".join(parts[:3]) + " [" + ", ".join(parts[3:]) + "]"

    def sort_key(self) -> Tuple:
        """Total deterministic order over candidates (ties in scores are
        broken by this key, so search results never depend on enumeration
        or hash order)."""
        return (
            self.data, self.tensor, self.mode, self.depth, self.pipeline,
            self.schedule, self.microbatches, self.zero_stage,
            self.overlap, self.algorithm,
        )

    def to_config_dict(self, work: Workload) -> Dict[str, Any]:
        """The ready-to-run ``repro.launch`` config this candidate denotes
        (the ``colossalai.initialize`` idiom: declarative ``parallel`` /
        ``zero`` / ``fp16`` / ``comm`` sections)."""
        d: Dict[str, Any] = {
            "parallel": {
                "tensor": {
                    "size": self.tensor,
                    "mode": self.mode if self.tensor > 1 else "none",
                    **({"depth": self.depth} if self.mode == "2.5d" else {}),
                },
                "pipeline": self.pipeline,
                "data": self.data,
            },
            "num_microbatches": self.microbatches,
            "comm": {"algorithm": self.algorithm, "overlap": self.overlap},
        }
        if self.pipeline > 1:
            d["pipeline_schedule"] = self.schedule
        if self.zero_stage:
            d["zero"] = {"stage": self.zero_stage}
        if work.bytes_per_elem == 2:
            d["fp16"] = {"enabled": True}
        return d


@dataclass(frozen=True)
class SearchSpace:
    """Which strategy dimensions the compiler sweeps.

    Defaults cover the full paper grid; shrink them to speed up a compile
    (e.g. ``algorithms=("auto",)`` — the PR-3 selector is never worse than
    ring, so "auto" dominates the per-family picks)."""

    tensor_modes: Tuple[str, ...] = ("1d", "2d", "2.5d", "3d", "sequence")
    schedules: Tuple[str, ...] = PIPELINE_SCHEDULES
    microbatch_options: Tuple[int, ...] = (1, 2, 4, 8)
    zero_stages: Tuple[int, ...] = (0, 1, 2, 3)
    overlap_options: Tuple[bool, ...] = (False, True)
    algorithms: Tuple[str, ...] = ("ring", "auto")

    def validate(self) -> None:
        bad = set(self.schedules) - set(PIPELINE_SCHEDULES)
        if bad:
            raise ValueError(
                f"unknown pipeline schedule(s) {sorted(bad)}; "
                f"valid: {PIPELINE_SCHEDULES}"
            )
        bad = set(self.zero_stages) - {0, 1, 2, 3}
        if bad:
            raise ValueError(f"invalid ZeRO stage(s) {sorted(bad)}")
        from repro.config import COMM_ALGORITHMS

        bad = set(self.algorithms) - set(COMM_ALGORITHMS)
        if bad:
            raise ValueError(
                f"unknown comm algorithm(s) {sorted(bad)}; "
                f"valid: {COMM_ALGORITHMS}"
            )


def _divisors(n: int) -> List[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def enumerate_candidates(
    work: Workload,
    global_batch: int,
    world: int,
    space: SearchSpace = SearchSpace(),
) -> Iterator[StrategyCandidate]:
    """Every structurally valid candidate for ``world`` ranks, in a fixed
    deterministic order.

    Structural constraints applied here (cheap, no cost model):

    * ``data * tensor * pipeline == world`` with each tensor mode's rank
      count constraint (:func:`repro.autopar.advisor._tensor_modes`);
    * 1D/sequence modes need ``n_heads % tensor == 0``;
    * ``pipeline <= n_layers`` (a stage must own at least one layer);
    * ``global_batch`` divisible by ``data * microbatches`` (equal
      microbatches on every replica);
    * microbatching/1F1B only meaningful with ``pipeline > 1``; ZeRO and
      overlap only with ``data > 1``.
    """
    space.validate()
    for tensor in _divisors(world):
        modes = [
            (m, d) for m, d in _tensor_modes(tensor) if m in space.tensor_modes
        ]
        if tensor > 1 and "sequence" in space.tensor_modes:
            modes.append(("sequence", 1))
        if not modes:
            continue
        for pipeline in _divisors(world // tensor):
            data = world // (tensor * pipeline)
            if pipeline > work.n_layers:
                continue
            schedules = space.schedules if pipeline > 1 else ("gpipe",)
            micro_opts = (
                [m for m in space.microbatch_options if m >= 1]
                if pipeline > 1 else [1]
            )
            zero_opts = space.zero_stages if data > 1 else (0,)
            overlap_opts = space.overlap_options if data > 1 else (False,)
            for mode, depth in modes:
                if mode in ("1d", "sequence") and work.n_heads % tensor:
                    continue
                if mode == "sequence" and work.seq_len % tensor:
                    continue
                for schedule in schedules:
                    for micro in micro_opts:
                        if global_batch % (data * micro):
                            continue
                        for zero in zero_opts:
                            for overlap in overlap_opts:
                                for algo in space.algorithms:
                                    yield StrategyCandidate(
                                        data=data,
                                        tensor=tensor,
                                        mode=mode if tensor > 1 else "1d",
                                        pipeline=pipeline,
                                        depth=depth,
                                        schedule=schedule,
                                        microbatches=micro,
                                        zero_stage=zero,
                                        overlap=overlap,
                                        algorithm=algo,
                                    )
