"""Automatic parallelization (§3.3 + §6 future work of the paper).

Three pieces:

* :mod:`repro.autopar.conversion` — sharded-layout conversion search.  The
  paper improves on Alpa's hardcoded conversion table with "a greedy
  algorithm to search to speed up sharding conversion and increase the
  number of sharding dimensions"; we implement the conversion planner as a
  best-first (Dijkstra) search over layout states whose edges are the
  collective conversion primitives (all-gather a mesh axis off a dim,
  slice a dim onto an axis, all-to-all an axis between dims), costed by
  the cluster's communication model.

* :mod:`repro.autopar.advisor` — the hardware-aware strategy search the
  paper lists as future work: enumerate valid (data, tensor-mode/size,
  pipeline) decompositions for a Transformer workload, predict the step
  time from the analytic compute/communication models over the *actual*
  topology, reject plans that do not fit device memory, and rank the rest.

* :mod:`repro.autopar.compiler` — the full strategy compiler built on the
  advisor's models: cost-driven search over DP x TP mode x PP
  schedule x ZeRO stage x overlap x collective algorithm
  (:mod:`~repro.autopar.search`), analytic pruning with per-candidate
  rejection reasons (:mod:`~repro.autopar.scoring`), projector-based
  refinement of the shortlist via simulated skeleton probes
  (:mod:`~repro.autopar.probe`), emitting a ready-to-run
  :class:`repro.config.Config`.
"""

from repro.autopar.conversion import (
    ConversionPlan,
    ConversionStep,
    Layout,
    convert_payload,
    plan_conversion,
)
from repro.autopar.advisor import (
    ParallelPlan,
    PlanEstimate,
    Workload,
    suggest_plans,
)
from repro.autopar.compiler import (
    CompiledStrategy,
    RefinedEstimate,
    StrategyReport,
    compile_strategy,
    refine_candidate,
    simulate_candidate,
)
from repro.autopar.scoring import CandidateScore, score_candidate
from repro.autopar.search import (
    SearchSpace,
    StrategyCandidate,
    enumerate_candidates,
)

__all__ = [
    "Layout",
    "ConversionStep",
    "ConversionPlan",
    "plan_conversion",
    "convert_payload",
    "ParallelPlan",
    "PlanEstimate",
    "Workload",
    "suggest_plans",
    "StrategyCandidate",
    "SearchSpace",
    "enumerate_candidates",
    "CandidateScore",
    "score_candidate",
    "CompiledStrategy",
    "RefinedEstimate",
    "StrategyReport",
    "compile_strategy",
    "refine_candidate",
    "simulate_candidate",
]
