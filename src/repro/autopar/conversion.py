"""Sharded-layout conversion planning (§3.3).

A :class:`Layout` records, for each tensor dimension, the ordered list of
mesh axes sharding it (empty list = replicated along every axis not used
elsewhere).  Converting between layouts — e.g. "sharded on dim 0 by mesh
axis a" -> "sharded on the last dim by a" — is a sequence of collective
primitives:

=============  ===========================================  ==============
primitive      effect                                        cost model
=============  ===========================================  ==============
all_gather     remove mesh axis m from dim d                 ring allgather
slice          add unused mesh axis m to dim d               free (local)
all_to_all     move mesh axis m from dim d1 to dim d2        all-to-all
=============  ===========================================  ==============

Alpa hardcodes a conversion table, which caps the number of sharded
dimensions; here the planner runs a best-first (uniform-cost) search over
layout states, so any-to-any conversions are found with minimal modeled
communication, for arbitrarily many sharded dimensions.

``convert_payload`` executes a plan on a real local payload inside an SPMD
program, so plans are not just costed but runnable (and tested for
correctness against direct resharding).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.communicator import Communicator
from repro.comm.payload import Payload


@dataclass(frozen=True)
class Layout:
    """Sharding of an ``ndim``-dimensional tensor over named mesh axes.

    ``placement[d]`` is the tuple of mesh-axis names sharding dim ``d``
    (applied in order: the first axis is the outermost split).
    """

    ndim: int
    placement: Tuple[Tuple[str, ...], ...]

    @staticmethod
    def make(ndim: int, assignment: Optional[Dict[int, Sequence[str]]] = None) -> "Layout":
        assignment = assignment or {}
        placement: List[Tuple[str, ...]] = []
        for d in range(ndim):
            placement.append(tuple(assignment.get(d, ())))
        seen: List[str] = [a for axes in placement for a in axes]
        if len(seen) != len(set(seen)):
            raise ValueError(f"mesh axis used twice in {assignment}")
        return Layout(ndim, tuple(placement))

    def axes_used(self) -> Tuple[str, ...]:
        return tuple(a for axes in self.placement for a in axes)

    def shard_factor(self, mesh: Dict[str, int]) -> int:
        f = 1
        for axes in self.placement:
            for a in axes:
                f *= mesh[a]
        return f

    def local_shape(self, global_shape: Sequence[int], mesh: Dict[str, int]) -> Tuple[int, ...]:
        shape = list(global_shape)
        for d, axes in enumerate(self.placement):
            for a in axes:
                if shape[d] % mesh[a]:
                    raise ValueError(
                        f"dim {d} of {tuple(global_shape)} not divisible by mesh axis {a}"
                    )
                shape[d] //= mesh[a]
        return tuple(shape)

    def with_removed(self, dim: int, axis: str) -> "Layout":
        placement = list(self.placement)
        if not placement[dim] or placement[dim][-1] != axis:
            raise ValueError(f"axis {axis} is not the innermost shard of dim {dim}")
        placement[dim] = placement[dim][:-1]
        return Layout(self.ndim, tuple(placement))

    def with_added(self, dim: int, axis: str) -> "Layout":
        if axis in self.axes_used():
            raise ValueError(f"axis {axis} already shards a dim")
        placement = list(self.placement)
        placement[dim] = placement[dim] + (axis,)
        return Layout(self.ndim, tuple(placement))


@dataclass(frozen=True)
class ConversionStep:
    op: str  # "all_gather" | "slice" | "all_to_all"
    axis: str
    dim: int
    dim_to: int = -1  # all_to_all target dim

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.op == "all_to_all":
            return f"all_to_all[{self.axis}: dim{self.dim}->dim{self.dim_to}]"
        return f"{self.op}[{self.axis} on dim{self.dim}]"


@dataclass
class ConversionPlan:
    steps: List[ConversionStep]
    cost: float  # modeled seconds

    def __len__(self) -> int:
        return len(self.steps)


def _step_cost(
    op: str, axis_size: int, local_elements: int, itemsize: int, bandwidth: float,
    alpha: float,
) -> float:
    """Modeled seconds for one conversion step on the current local shard."""
    nbytes = local_elements * itemsize
    p = axis_size
    if op == "slice":
        return 0.0
    if op == "all_gather":
        return (p - 1) * alpha + (p - 1) * nbytes / bandwidth
    if op == "all_to_all":
        return (p - 1) * alpha + ((p - 1) / p) * nbytes / bandwidth
    raise ValueError(op)


def _neighbors(layout: Layout, mesh: Dict[str, int]):
    """Yield (step, next_layout, local-elements multiplier of the step)."""
    used = layout.axes_used()
    for d, axes in enumerate(layout.placement):
        if axes:
            a = axes[-1]
            yield ConversionStep("all_gather", a, d), layout.with_removed(d, a), mesh[a]
            # all_to_all: move innermost axis of d to any other dim
            for d2 in range(layout.ndim):
                if d2 != d:
                    nxt = layout.with_removed(d, a).with_added(d2, a)
                    yield ConversionStep("all_to_all", a, d, d2), nxt, 1
    for a, size in mesh.items():
        if a not in used:
            for d in range(layout.ndim):
                yield ConversionStep("slice", a, d), layout.with_added(d, a), 1


def plan_conversion(
    src: Layout,
    dst: Layout,
    global_shape: Sequence[int],
    mesh: Dict[str, int],
    itemsize: int = 4,
    bandwidth: float = 100e9,
    alpha: float = 5e-6,
    max_states: int = 20000,
) -> ConversionPlan:
    """Uniform-cost search from ``src`` to ``dst``; returns the cheapest
    step sequence under the communication model."""
    if src.ndim != dst.ndim or dst.ndim != len(global_shape):
        raise ValueError("layout ranks do not match the tensor shape")
    total = int(np.prod(global_shape))

    def local_elems(layout: Layout) -> int:
        return total // layout.shard_factor(mesh)

    frontier: List[Tuple[float, int, Layout, List[ConversionStep]]] = [
        (0.0, 0, src, [])
    ]
    best: Dict[Layout, float] = {src: 0.0}
    counter = 0
    explored = 0
    while frontier:
        cost, _, layout, steps = heapq.heappop(frontier)
        if layout == dst:
            return ConversionPlan(steps, cost)
        if cost > best.get(layout, math.inf):
            continue
        explored += 1
        if explored > max_states:
            raise RuntimeError("conversion search exceeded the state budget")
        for step, nxt, gather_mult in _neighbors(layout, mesh):
            # cost uses the payload size the collective actually moves:
            # for all_gather, the input is the pre-gather (smaller) shard
            elems = local_elems(layout)
            c = cost + _step_cost(
                step.op, mesh[step.axis], elems, itemsize, bandwidth, alpha
            )
            if c < best.get(nxt, math.inf):
                best[nxt] = c
                counter += 1
                heapq.heappush(frontier, (c, counter, nxt, steps + [step]))
    raise RuntimeError(f"no conversion path from {src} to {dst}")


# ---------------------------------------------------------------------------
# plan execution (SPMD)
# ---------------------------------------------------------------------------


def convert_payload(
    local: Payload,
    plan: ConversionPlan,
    comms: Dict[str, Communicator],
    mesh_coord: Dict[str, int],
) -> Payload:
    """Execute ``plan`` on this rank's local payload.

    ``comms[axis]`` is the communicator of the mesh-axis group this rank
    belongs to; ``mesh_coord[axis]`` its coordinate on that axis.
    """
    from repro.autograd import payload_ops as P

    x = local
    for step in plan.steps:
        comm = comms[step.axis]
        if step.op == "all_gather":
            x = comm.all_gather(x, axis=step.dim)
        elif step.op == "slice":
            x = P.psplit(x, comm.size, step.dim)[mesh_coord[step.axis]]
        elif step.op == "all_to_all":
            chunks = P.psplit(x, comm.size, step.dim_to)
            received = comm.all_to_all(chunks)
            x = P.pconcat(received, step.dim)
        else:  # pragma: no cover - defensive
            raise ValueError(step.op)
    return x
