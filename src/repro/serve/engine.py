"""The tensor-parallel serving engine on the simulated SPMD substrate.

Every rank of the runtime is one member of a single TP replica.  All
ranks run the same loop in lockstep: each iteration prices one model
step (prefill chunks + one decode token per running sequence) on the
rank's device clock, then runs one fused tensor-parallel all-reduce of
the step's activations through a real :class:`ProcessGroup` — so decode
latency carries the PR-3 comm cost model (algorithm, topology, islands)
and the blocking rendezvous re-synchronizes every rank's clock, which is
what keeps the per-rank schedulers bit-identical without any side
channel: every scheduling decision is a pure function of the synced
clock, the queue and the seed.

Step cost is the max of a compute term (``2 * params / tp`` FLOPs per
token through ``Device.compute_seconds``) and a memory term (one weight
read per step plus the KV context read at ``ModelSpec.hbm_bandwidth``).
The weight read amortizes over the batch — that is the continuous
batching win the goodput curves show.

Fault tolerance: an injected :class:`RankFailure` surfaces mid-collective,
aborts the replica, and the driver loop in :meth:`ServeEngine.run`
records a typed :class:`FailureEvent`, charges ``recovery_seconds`` of
downtime to every clock, rebuilds the outstanding workload from the
completion records (``traffic.outstanding``) and re-runs — in-flight
requests lose their KV and replay from scratch, so rank loss shows up in
the report as a p99/goodput hit, not a crash.  Completion records are
written by rank 0 only (all ranks agree on them anyway) into a
driver-owned dict that survives restarts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.comm.communicator import Communicator
from repro.comm.payload import SpecArray
from repro.runtime.errors import (
    CollectiveTimeout, RankFailure, RemoteRankError,
)
from repro.serve.kvcache import BlockPool
from repro.serve.request import Request, RequestRecord
from repro.serve.scheduler import ContinuousBatchingScheduler
from repro.serve.traffic import FailureEvent, TrafficReport


@dataclass(frozen=True)
class ModelSpec:
    """The decoder model being served, as the cost model sees it."""

    n_layers: int = 4
    hidden: int = 1024
    n_heads: int = 16
    vocab: int = 50257
    bytes_per_elem: int = 2
    #: serving-side device memory bandwidth (bytes/s); the cluster's
    #: Device models FLOPs only, and decode is bandwidth-bound
    hbm_bandwidth: float = 1.5e12

    def __post_init__(self) -> None:
        if self.n_layers < 1 or self.hidden < 1 or self.n_heads < 1:
            raise ValueError("model dimensions must be >= 1")
        if self.hidden % self.n_heads != 0:
            raise ValueError(
                f"hidden {self.hidden} not divisible by n_heads {self.n_heads}")

    @property
    def params(self) -> int:
        """Transformer decoder weights, the standard 12·L·H² estimate."""
        return 12 * self.n_layers * self.hidden * self.hidden

    def kv_bytes_per_token(self, tp: int) -> int:
        """K+V across all layers, sharded over tensor-parallel ranks."""
        return 2 * self.n_layers * self.hidden * self.bytes_per_elem // tp

    def wire_elems_per_token(self) -> int:
        """Activation elements all-reduced per token per step (the two
        Megatron row-parallel reductions per layer, fused)."""
        return 2 * self.n_layers * self.hidden

    def step_seconds(self, device: Any, new_tokens: int,
                     context_tokens: int, tp: int) -> float:
        """One serving iteration: max of compute- and bandwidth-bound."""
        if new_tokens <= 0:
            return 0.0
        flops = 2.0 * self.params / tp * new_tokens
        t_compute = device.compute_seconds(flops, "float16")
        weight_bytes = self.params * self.bytes_per_elem / tp
        kv_bytes = context_tokens * self.kv_bytes_per_token(tp)
        t_memory = (weight_bytes + kv_bytes) / self.hbm_bandwidth
        return max(t_compute, t_memory)

    def describe(self) -> Dict[str, Any]:
        return {
            "n_layers": self.n_layers,
            "hidden": self.hidden,
            "n_heads": self.n_heads,
            "vocab": self.vocab,
            "bytes_per_elem": self.bytes_per_elem,
            "hbm_bandwidth": self.hbm_bandwidth,
        }


class ServeEngine:
    """Drives one TP replica of ``model`` through ``traffic``."""

    def __init__(self, runtime: Any, model: ModelSpec, traffic: Any, *,
                 block_size: int = 16,
                 kv_blocks: Optional[int] = None,
                 kv_fraction: float = 0.3,
                 max_batch_tokens: int = 256,
                 prefill_chunk: int = 64,
                 recovery_seconds: float = 0.5,
                 max_recoveries: int = 16,
                 gen_seed: Optional[int] = None) -> None:
        self.runtime = runtime
        self.model = model
        self.traffic = traffic
        self.block_size = int(block_size)
        self.kv_blocks = kv_blocks if kv_blocks is None else int(kv_blocks)
        self.kv_fraction = float(kv_fraction)
        self.max_batch_tokens = int(max_batch_tokens)
        self.prefill_chunk = int(prefill_chunk)
        self.recovery_seconds = float(recovery_seconds)
        self.max_recoveries = int(max_recoveries)
        seed = getattr(traffic, "seed", 0) if gen_seed is None else gen_seed
        self.gen_seed = int(seed)
        if not 0.0 < self.kv_fraction <= 1.0:
            raise ValueError(
                f"kv_fraction must be in (0, 1], got {self.kv_fraction}")

    # -- driver ----------------------------------------------------------

    def run(self) -> TrafficReport:
        records: Dict[int, RequestRecord] = {}
        failures: List[FailureEvent] = []
        restarts = 0
        while True:
            program = self._rank_program(dict(records), records)
            try:
                self.runtime.run(program, materialize=False,
                                 reset_clocks=(restarts == 0),
                                 seed=self.gen_seed)
                break
            except RemoteRankError as err:
                if not isinstance(err.cause, (RankFailure, CollectiveTimeout)):
                    raise
                if restarts >= self.max_recoveries:
                    raise
                restarts += 1
                t_fail = self.runtime.max_time()
                failures.append(FailureEvent(
                    t=t_fail, rank=err.rank, kind=type(err.cause).__name__))
                # replica down while the failed rank is replaced: every
                # survivor idles, and the requeued work restarts after it
                for clock in self.runtime.clocks:
                    clock.sync_to(t_fail + self.recovery_seconds, "wait")
        return TrafficReport(
            records,
            traffic=self.traffic.describe(),
            world=self.runtime.world_size,
            makespan=self.runtime.max_time(),
            restarts=restarts,
            failures=failures,
        )

    # -- per-rank program ------------------------------------------------

    def _num_blocks(self, device: Any, tp: int) -> int:
        if self.kv_blocks is not None:
            return self.kv_blocks
        bytes_per_block = (
            self.model.kv_bytes_per_token(tp) * self.block_size)
        budget = int(device.memory.free * self.kv_fraction)
        blocks = budget // max(1, bytes_per_block)
        if blocks < 1:
            raise ValueError(
                "kv_fraction leaves no room for a single KV block "
                f"(budget={budget}B, block={bytes_per_block}B)")
        return blocks

    def _rank_program(self, snapshot: Dict[int, RequestRecord],
                      records: Dict[int, RequestRecord]):
        model, traffic = self.model, self.traffic

        def program(ctx: Any) -> int:
            tp = ctx.world_size
            comm = Communicator.world(ctx) if tp > 1 else None
            bytes_per_block = model.kv_bytes_per_token(tp) * self.block_size
            pool = BlockPool(
                self.block_size, self._num_blocks(ctx.device, tp),
                memory=ctx.device.memory, bytes_per_block=bytes_per_block)
            try:
                return self._serve_loop(
                    ctx, comm, pool, snapshot, records, traffic)
            finally:
                pool.release()

        return program

    def _serve_loop(self, ctx: Any, comm: Optional[Communicator],
                    pool: BlockPool, snapshot: Dict[int, RequestRecord],
                    records: Dict[int, RequestRecord], traffic: Any) -> int:
        model = self.model
        tp = ctx.world_size
        tracer = getattr(ctx.runtime, "tracer", None)
        lead = ctx.rank == 0
        sched = ContinuousBatchingScheduler(
            pool, self.max_batch_tokens, prefill_chunk=self.prefill_chunk,
            gen_seed=self.gen_seed, vocab=model.vocab)
        for req in sorted(traffic.outstanding(snapshot),
                          key=lambda r: (r.arrival, r.req_id)):
            sched.submit(req)

        steps = 0
        while True:
            now = ctx.clock.time
            plan = sched.step(now)
            if plan.empty and not plan.preempted:
                nxt = sched.next_arrival()
                if nxt is None:
                    break  # drained
                ctx.clock.sync_to(max(nxt, now), "wait")
                continue

            new_tokens = plan.new_tokens
            if new_tokens > 0:
                dt = model.step_seconds(
                    ctx.device, new_tokens, plan.context_tokens, tp)
                ctx.clock.advance(dt, "compute")
                if comm is not None:
                    # fused TP all-reduce of the step's activations; the
                    # blocking rendezvous is also the clock barrier that
                    # keeps per-rank schedulers in lockstep
                    comm.all_reduce(SpecArray(
                        (new_tokens, model.wire_elems_per_token()),
                        "float16"))
                steps += 1

            t = ctx.clock.time
            finished, prefilled = sched.apply(plan, t)

            if lead and tracer is not None:
                self._emit_spans(tracer, plan, finished, prefilled, now, t)
            for req in plan.failed:
                if lead:
                    records[req.req_id] = req.record()
                nxt_req = traffic.next_request(req, t)
                if nxt_req is not None:
                    sched.submit(nxt_req)
            for req in finished:
                if lead:
                    records[req.req_id] = req.record()
                nxt_req = traffic.next_request(req, t)
                if nxt_req is not None:
                    sched.submit(nxt_req)
        return steps

    @staticmethod
    def _emit_spans(tracer: Any, plan: Any, finished: List[Request],
                    prefilled: List[Request], now: float, t: float) -> None:
        for req in plan.admitted:
            if req.preemptions > 0 and req.t_last_preempt is not None:
                tracer.annotate(0, "serve", f"preempted/req{req.req_id}",
                                req.t_last_preempt, now,
                                preemptions=req.preemptions)
            else:
                tracer.annotate(0, "serve", f"queued/req{req.req_id}",
                                req.arrival, now)
        for req in prefilled:
            tracer.annotate(0, "serve", f"prefill/req{req.req_id}",
                            req.t_admitted, t, tokens=req.prompt_tokens)
        for req in finished:
            t0 = req.t_prefill_done if req.t_prefill_done is not None else now
            tracer.annotate(0, "serve", f"decode/req{req.req_id}",
                            t0, t, tokens=len(req.output))


def serve_traffic(model: ModelSpec, traffic: Any, *,
                  cluster: Any = None, world_size: int = 2,
                  runtime: Any = None, fault_plan: Any = None,
                  tracer: Any = None, comm_algorithm: str = "ring",
                  **engine_kwargs: Any) -> TrafficReport:
    """Serve ``traffic`` on a TP replica and return the traffic report.

    Builds a uniform cluster/runtime when none is given; any
    ``ServeEngine`` knob (``kv_blocks``, ``max_batch_tokens``, ...)
    passes through ``engine_kwargs``.
    """
    if runtime is None:
        from repro.cluster import uniform_cluster
        from repro.runtime.spmd import SpmdRuntime

        if cluster is None:
            cluster = uniform_cluster(world_size)
        runtime = SpmdRuntime(
            cluster, world_size, fault_plan=fault_plan, tracer=tracer,
            comm_algorithm=comm_algorithm)
    engine = ServeEngine(runtime, model, traffic, **engine_kwargs)
    return engine.run()


def serve_launch(cfg: Any, cluster: Any, world_size: Optional[int] = None,
                 runtime: Any = None, tracer: Any = None) -> TrafficReport:
    """The ``launch()`` entry point for a ``serve.*`` config section."""
    from repro.serve.traffic import ClosedLoopTraffic, OpenLoopTraffic

    sv = cfg.serve
    model = ModelSpec(**sv.model)
    td = dict(sv.traffic)
    kind = td.pop("kind")
    for key in ("prompt_tokens", "max_new_tokens"):
        if key in td:
            td[key] = tuple(td[key])
    traffic = (OpenLoopTraffic(**td) if kind == "open"
               else ClosedLoopTraffic(**td))
    return serve_traffic(
        model, traffic,
        cluster=cluster,
        world_size=world_size or cluster.world_size,
        runtime=runtime,
        tracer=tracer,
        comm_algorithm=cfg.comm.algorithm or "ring",
        block_size=sv.block_size,
        kv_blocks=sv.kv_blocks,
        kv_fraction=sv.kv_fraction,
        max_batch_tokens=sv.max_batch_tokens,
        prefill_chunk=sv.prefill_chunk,
        recovery_seconds=sv.recovery_seconds,
        max_recoveries=sv.max_recoveries,
    )
