"""Continuous-batching scheduler: admission, interleaving, preemption.

One :meth:`ContinuousBatchingScheduler.step` builds the *batch plan* for
the next model iteration (vLLM-style continuous batching — the batch is
recomposed every step, requests join and leave mid-flight):

1. **Decode first.**  Every running sequence contributes one token slot,
   in admission order, until the token budget runs out.  Latency beats
   throughput: a queued prompt never starves a stream mid-generation.
2. **Prefill second.**  Admitted-but-unprefilled requests consume the
   leftover budget in chunks of ``prefill_chunk`` tokens.
3. **Admission last.**  Preempted requests re-enter first (FIFO over
   preemption time — they already waited once), then the arrival queue
   in ``(arrival, req_id)`` order, as long as budget remains.

KV pressure resolves by *preempting the youngest*: when a block
allocation fails, the most recently admitted active request is evicted
(blocks freed, progress discarded, requeued) and the allocation retried.
A request never evicts an older one, so the oldest active request always
makes progress — that is the liveness argument, together with the
admission-time :class:`~repro.serve.kvcache.RequestTooLarge` check that
keeps unservable requests out entirely.

The scheduler is single-threaded, clockless and RNG-free: every decision
is a pure function of (queue state, ``now``), which is what makes the
engine's per-seed bitwise determinism — and the hypothesis lane over
random admission/preemption schedules — possible.  :meth:`apply` applies
a plan's token transitions (also deterministically), so scheduler + pool
are fully testable without the SPMD substrate.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.serve.kvcache import BlockPool, CacheExhausted
from repro.serve.request import (
    DECODE, FAILED, FINISHED, PREFILL, Request,
)


class BatchPlan:
    """What one engine iteration will run."""

    __slots__ = ("prefill", "decode", "admitted", "preempted", "failed",
                 "context_tokens")

    def __init__(self) -> None:
        #: (request, prompt tokens processed this step)
        self.prefill: List[Tuple[Request, int]] = []
        #: requests generating exactly one token this step
        self.decode: List[Request] = []
        self.admitted: List[Request] = []
        self.preempted: List[Request] = []
        self.failed: List[Request] = []
        #: attention context (KV slots read) across the batch, for pricing
        self.context_tokens = 0

    @property
    def new_tokens(self) -> int:
        """Token slots computed this step — the budgeted quantity."""
        return len(self.decode) + sum(chunk for _, chunk in self.prefill)

    @property
    def empty(self) -> bool:
        return not (self.prefill or self.decode or self.failed)

    def _drop(self, req: Request) -> None:
        """Remove a just-preempted request from this plan's work lists."""
        if req in self.decode:
            self.decode.remove(req)
        self.prefill = [(r, c) for r, c in self.prefill if r is not req]


class ContinuousBatchingScheduler:
    def __init__(self, pool: BlockPool, max_batch_tokens: int,
                 prefill_chunk: int = 64, gen_seed: int = 0,
                 vocab: int = 50257) -> None:
        if max_batch_tokens < 1:
            raise ValueError(
                f"max_batch_tokens must be >= 1, got {max_batch_tokens}")
        if prefill_chunk < 1:
            raise ValueError(
                f"prefill_chunk must be >= 1, got {prefill_chunk}")
        self.pool = pool
        self.max_batch_tokens = int(max_batch_tokens)
        self.prefill_chunk = int(prefill_chunk)
        self.gen_seed = int(gen_seed)
        self.vocab = int(vocab)
        #: not-yet-admitted, ordered (arrival, req_id)
        self.waiting: List[Request] = []
        #: preempted awaiting re-admission, FIFO over preemption time
        self.paused: Deque[Request] = deque()
        #: admitted (PREFILL or DECODE), in admission order — the age order
        #: preemption victims are drawn from (youngest last)
        self.active: List[Request] = []
        self._now = 0.0

    # -- queue management ------------------------------------------------

    def submit(self, req: Request) -> None:
        key = (req.arrival, req.req_id)
        lo, hi = 0, len(self.waiting)
        while lo < hi:
            mid = (lo + hi) // 2
            w = self.waiting[mid]
            if (w.arrival, w.req_id) <= key:
                lo = mid + 1
            else:
                hi = mid
        self.waiting.insert(lo, req)

    def next_arrival(self) -> Optional[float]:
        """Earliest time new work becomes admissible (None = drained)."""
        if self.paused or self.active:
            return 0.0
        if self.waiting:
            return self.waiting[0].arrival
        return None

    @property
    def drained(self) -> bool:
        return not (self.waiting or self.paused or self.active)

    # -- plan construction -----------------------------------------------

    def step(self, now: float) -> BatchPlan:
        self._now = now  # preemptions inside this step happen at `now`
        plan = BatchPlan()
        budget = self.max_batch_tokens

        # 1) decode: one token per running sequence, oldest first
        for req in list(self.active):
            if budget <= 0:
                break
            if req.state != DECODE or req not in self.active:
                continue
            slots = req.prompt_tokens + req.tokens_generated + 1
            if not self._grow(req, slots, plan):
                continue  # req preempted itself
            plan.decode.append(req)
            plan.context_tokens += req.prompt_tokens + req.tokens_generated
            budget -= 1

        # 2) prefill for already-admitted prompts
        for req in list(self.active):
            if budget <= 0:
                break
            if req.state != PREFILL or req not in self.active:
                continue
            budget -= self._plan_prefill(req, budget, plan)

        # 3) admission: preempted first, then the arrival queue.  Admission
        # never evicts (an incoming request is the youngest, so eviction
        # could only hit itself): when the first prefill chunk does not fit
        # the free list, admission stops until decode drains some blocks.
        while budget > 0:
            req = self._peek_admissible(now)
            if req is None:
                break
            if not self.pool.fits_ever(req.total_tokens):
                self._pop_admissible()
                req.state = FAILED
                req.fail_reason = "RequestTooLarge"
                plan.failed.append(req)
                continue
            chunk = min(self.prefill_chunk, req.prompt_tokens, budget)
            if self.pool.blocks_for(chunk) > self.pool.free_blocks:
                break
            self._pop_admissible()
            req.state = PREFILL
            req.prefill_done = 0
            req.t_admitted = now
            req.start_generation(self.gen_seed, self.vocab)
            self.active.append(req)
            plan.admitted.append(req)
            budget -= self._plan_prefill(req, budget, plan)

        return plan

    def _peek_admissible(self, now: float) -> Optional[Request]:
        if self.paused:
            return self.paused[0]
        if self.waiting and self.waiting[0].arrival <= now:
            return self.waiting[0]
        return None

    def _pop_admissible(self) -> Request:
        if self.paused:
            return self.paused.popleft()
        return self.waiting.pop(0)

    def _plan_prefill(self, req: Request, budget: int,
                      plan: BatchPlan) -> int:
        """Schedule one prefill chunk for ``req``; tokens consumed."""
        chunk = min(self.prefill_chunk, req.prompt_tokens - req.prefill_done,
                    budget)
        if chunk <= 0:
            return 0
        if not self._grow(req, req.prefill_done + chunk, plan):
            return 0  # req preempted itself while growing
        plan.prefill.append((req, chunk))
        plan.context_tokens += req.prefill_done + chunk
        return chunk

    def _grow(self, req: Request, total_tokens: int, plan: BatchPlan) -> bool:
        """Allocate KV blocks for ``req``, evicting younger requests on
        pressure.  False when ``req`` ended up evicting itself."""
        while True:
            try:
                self.pool.appended(req.req_id, total_tokens)
                return True
            except CacheExhausted:
                victim = self.active[-1]
                self._preempt(victim, plan)
                if victim is req:
                    return False

    def _preempt(self, req: Request, plan: BatchPlan) -> None:
        self.pool.free_sequence(req.req_id)
        self.active.remove(req)
        req.reset_progress(t=self._now)
        plan._drop(req)
        plan.preempted.append(req)
        self.paused.append(req)

    # -- plan application ------------------------------------------------

    def apply(self, plan: BatchPlan, t: float
              ) -> Tuple[List[Request], List[Request]]:
        """Apply ``plan``'s transitions at completion time ``t``.

        Returns ``(finished, prefill_completed)`` — requests that produced
        their last token this step, and requests whose prompt finished
        processing this step (these also emit their first output token).
        """
        for req in plan.failed:
            req.t_finished = t  # failure time, so closed-loop chains go on

        finished: List[Request] = []
        prefill_completed: List[Request] = []

        for req, chunk in plan.prefill:
            req.prefill_done += chunk
            if req.prefill_done >= req.prompt_tokens:
                req.state = DECODE
                req.t_prefill_done = t
                prefill_completed.append(req)
                self._emit(req, t)
                if req.tokens_generated >= req.max_new_tokens:
                    self._finish(req, t, finished)

        for req in plan.decode:
            self._emit(req, t)
            if req.tokens_generated >= req.max_new_tokens:
                self._finish(req, t, finished)

        return finished, prefill_completed

    def _emit(self, req: Request, t: float) -> None:
        req.output.append(req.next_token(self.vocab))
        req.tokens_generated += 1
        if req.t_first_token is None:
            req.t_first_token = t

    def _finish(self, req: Request, t: float,
                finished: List[Request]) -> None:
        req.state = FINISHED
        req.t_finished = t
        self.pool.free_sequence(req.req_id)
        self.active.remove(req)
        finished.append(req)
