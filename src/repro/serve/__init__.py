"""Request-level inference serving on the simulated substrate.

``repro.serve`` turns the training simulator into a serving simulator:
a tensor-parallel decode replica (priced through the comm cost model on
real process groups), a paged KV-cache (:class:`BlockPool` over cluster
memory pools), a continuous-batching scheduler with preempt-and-requeue,
and seedable open/closed-loop traffic generators reporting p50/p99 TTFT,
per-token latency and goodput vs offered load::

    from repro.serve import ModelSpec, OpenLoopTraffic, serve_traffic

    report = serve_traffic(
        ModelSpec(n_layers=4, hidden=1024),
        OpenLoopTraffic(rate=2000.0, n_requests=64, seed=7),
        world_size=2,
    )
    print(report.format())

See DESIGN.md §4j for the architecture and ``tests/test_serve.py`` for
the ``serving`` property-test lane over the scheduler and allocator.
"""

from repro.serve.engine import (
    ModelSpec,
    ServeEngine,
    serve_launch,
    serve_traffic,
)
from repro.serve.kvcache import (
    BlockPool,
    CacheExhausted,
    KVCacheError,
    RequestTooLarge,
)
from repro.serve.request import Request, RequestRecord
from repro.serve.scheduler import BatchPlan, ContinuousBatchingScheduler
from repro.serve.traffic import (
    ClosedLoopTraffic,
    FailureEvent,
    OpenLoopTraffic,
    TrafficReport,
)

__all__ = [
    "BatchPlan",
    "BlockPool",
    "CacheExhausted",
    "ClosedLoopTraffic",
    "ContinuousBatchingScheduler",
    "FailureEvent",
    "KVCacheError",
    "ModelSpec",
    "OpenLoopTraffic",
    "Request",
    "RequestRecord",
    "RequestTooLarge",
    "ServeEngine",
    "TrafficReport",
    "serve_launch",
    "serve_traffic",
]
