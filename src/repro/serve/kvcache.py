"""Paged KV-cache: fixed-size token blocks over a cluster memory pool.

The serving engine never allocates per-token KV storage; it reserves one
arena of ``num_blocks * bytes_per_block`` from the rank's
:class:`~repro.cluster.device.MemoryPool` (tag ``"kv_cache"``) up front —
the vLLM discipline — and pages sequences into fixed-size *blocks* of
``block_size`` token slots each.  Every sequence owns a *block table*
(ordered block ids); appending a token only touches the pool when the
sequence crosses a block boundary, and blocks are exclusively owned, so
append is copy-on-write-free by construction.

Exhaustion is a typed signal, not an OOM crash: :meth:`BlockPool.appended`
is all-or-nothing and raises :class:`CacheExhausted` when the free list
cannot cover the growth, which the continuous-batching scheduler turns
into preempt-and-requeue.  A request whose full footprint
(``prompt + max_new`` tokens) exceeds the whole pool can never be served
and is failed up front with :class:`RequestTooLarge`.

Invariants (property-tested in ``tests/test_serve.py``): the free list
and the union of all block tables partition ``range(num_blocks)`` at all
times — no block is double-owned, none leaks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class KVCacheError(RuntimeError):
    """Base class for paged KV-cache errors."""


class CacheExhausted(KVCacheError):
    """Not enough free blocks — scheduler should preempt and retry."""

    def __init__(self, seq_id: int, need: int, free: int) -> None:
        self.seq_id = seq_id
        self.need = need
        self.free = free
        super().__init__(
            f"seq {seq_id} needs {need} KV block(s) but only {free} free"
        )


class RequestTooLarge(KVCacheError):
    """A request's full footprint exceeds the entire pool — unservable."""

    def __init__(self, seq_id: int, need: int, num_blocks: int) -> None:
        self.seq_id = seq_id
        self.need = need
        self.num_blocks = num_blocks
        super().__init__(
            f"seq {seq_id} needs {need} KV block(s) but the pool only has "
            f"{num_blocks} in total"
        )


class BlockPool:
    """Fixed-size KV block allocator with per-sequence block tables.

    ``memory`` (a :class:`~repro.cluster.device.MemoryPool`) is optional:
    when given, the arena is charged against it at construction (a
    ``DeviceOutOfMemoryError`` there means the configuration is wrong,
    not that traffic got unlucky) and returned by :meth:`release`.
    Standalone pools (``memory=None``) back the property-test lane.
    """

    def __init__(self, block_size: int, num_blocks: int,
                 memory: Optional[object] = None,
                 bytes_per_block: int = 0,
                 tag: str = "kv_cache") -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        self.block_size = int(block_size)
        self.num_blocks = int(num_blocks)
        self.bytes_per_block = int(bytes_per_block)
        self._memory = memory
        self._tag = tag
        self._arena_bytes = 0
        if memory is not None:
            if bytes_per_block < 1:
                raise ValueError(
                    "bytes_per_block must be >= 1 when memory-backed")
            self._arena_bytes = self.num_blocks * self.bytes_per_block
            memory.alloc(self._arena_bytes, tag=tag)
        # LIFO free stack: deterministic reuse order
        self._free: List[int] = list(range(self.num_blocks - 1, -1, -1))
        self._tables: Dict[int, List[int]] = {}
        self._owner: Dict[int, int] = {}
        self.peak_used = 0

    # -- capacity --------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - len(self._free)

    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` KV slots."""
        return -(-int(tokens) // self.block_size) if tokens > 0 else 0

    def fits_ever(self, tokens: int) -> bool:
        """Whether a sequence of ``tokens`` total slots can ever be held."""
        return self.blocks_for(tokens) <= self.num_blocks

    # -- allocation ------------------------------------------------------

    def appended(self, seq_id: int, total_tokens: int) -> int:
        """Grow ``seq_id``'s table to cover ``total_tokens`` slots.

        All-or-nothing: either every block needed is allocated and the
        number of new blocks is returned, or :class:`CacheExhausted` /
        :class:`RequestTooLarge` is raised with the table untouched.
        """
        need_total = self.blocks_for(total_tokens)
        if need_total > self.num_blocks:
            raise RequestTooLarge(seq_id, need_total, self.num_blocks)
        table = self._tables.get(seq_id)
        have = len(table) if table is not None else 0
        grow = need_total - have
        if grow <= 0:
            return 0
        if grow > len(self._free):
            raise CacheExhausted(seq_id, grow, len(self._free))
        if table is None:
            table = self._tables[seq_id] = []
        for _ in range(grow):
            block = self._free.pop()
            self._owner[block] = seq_id
            table.append(block)
        if self.used_blocks > self.peak_used:
            self.peak_used = self.used_blocks
        return grow

    def free_sequence(self, seq_id: int) -> int:
        """Return every block ``seq_id`` owns; number freed."""
        table = self._tables.pop(seq_id, None)
        if not table:
            return 0
        for block in table:
            del self._owner[block]
            self._free.append(block)
        return len(table)

    def release(self) -> None:
        """Hand the arena back to the cluster memory pool (idempotent)."""
        if self._memory is not None and self._arena_bytes:
            self._memory.free_bytes(self._arena_bytes, tag=self._tag)
            self._arena_bytes = 0

    # -- introspection (the property-test surface) -----------------------

    def table(self, seq_id: int) -> Tuple[int, ...]:
        return tuple(self._tables.get(seq_id, ()))

    def sequences(self) -> Tuple[int, ...]:
        return tuple(sorted(self._tables))

    def owner_of(self, block: int) -> Optional[int]:
        return self._owner.get(block)

    def check_consistent(self) -> None:
        """Free list + block tables must partition ``range(num_blocks)``."""
        owned: Dict[int, int] = {}
        for seq_id, table in self._tables.items():
            for block in table:
                if block in owned:
                    raise KVCacheError(
                        f"block {block} double-owned by seq {owned[block]} "
                        f"and seq {seq_id}")
                owned[block] = seq_id
        if owned != self._owner:
            raise KVCacheError(
                "owner index out of sync with block tables: "
                f"{sorted(set(owned.items()) ^ set(self._owner.items()))}")
        free = set(self._free)
        if len(free) != len(self._free):
            raise KVCacheError("duplicate block on the free list")
        if free & set(owned):
            raise KVCacheError(
                f"blocks both free and owned: {sorted(free & set(owned))}")
        if free | set(owned) != set(range(self.num_blocks)):
            leaked = set(range(self.num_blocks)) - free - set(owned)
            raise KVCacheError(f"leaked blocks (neither free nor owned): "
                               f"{sorted(leaked)}")
