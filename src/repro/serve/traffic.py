"""Seedable traffic generators and the serving traffic report.

Both generators are *pure*: request identity, lengths and (for open loop)
arrival times are deterministic functions of the seed, never of execution
order.  That buys two properties the serving lane tests for:

- the same seed reproduces bitwise-identical schedules and reports, and
- every TP rank can rebuild the exact same request stream locally — no
  cross-rank coordination channel besides the priced collectives.

``outstanding(records)`` is the restart protocol: given the driver's
completion records it reconstructs precisely the requests still owed —
on a fresh run (empty records) that is the whole workload; after a rank
loss it is the requeued remainder, with closed-loop arrival times
re-derived from each client's last completed turn.

**Open loop** (:class:`OpenLoopTraffic`): Poisson arrivals at ``rate``
requests/s — offered load is independent of service, so queues grow
without bound past the capacity knee; this is the load-sweep generator.
**Closed loop** (:class:`ClosedLoopTraffic`): ``clients`` callers who
each wait for their previous answer (plus ``think_time``) before asking
again — self-throttling, and its saturated goodput is the capacity probe
the benchmark uses to place the open-loop rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.request import Request, RequestRecord


def _percentile(sorted_vals: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_vals:
        return None
    k = max(1, math.ceil(q / 100.0 * len(sorted_vals)))
    return float(sorted_vals[k - 1])


class OpenLoopTraffic:
    """Poisson arrivals at a fixed offered rate (requests/second)."""

    kind = "open"

    def __init__(self, rate: float, n_requests: int,
                 prompt_tokens: Tuple[int, int] = (16, 64),
                 max_new_tokens: Tuple[int, int] = (8, 32),
                 seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError(f"offered rate must be > 0, got {rate}")
        if n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {n_requests}")
        self.rate = float(rate)
        self.n_requests = int(n_requests)
        self.prompt_tokens = (int(prompt_tokens[0]), int(prompt_tokens[1]))
        self.max_new_tokens = (int(max_new_tokens[0]), int(max_new_tokens[1]))
        self.seed = int(seed)

    def _requests(self) -> List[Request]:
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(1.0 / self.rate, self.n_requests)
        arrivals = np.cumsum(gaps)
        prompts = rng.integers(self.prompt_tokens[0],
                               self.prompt_tokens[1] + 1, self.n_requests)
        news = rng.integers(self.max_new_tokens[0],
                            self.max_new_tokens[1] + 1, self.n_requests)
        return [
            Request(i, int(prompts[i]), int(news[i]), float(arrivals[i]),
                    client=i)
            for i in range(self.n_requests)
        ]

    def outstanding(self, records: Dict[int, RequestRecord]
                    ) -> List[Request]:
        return [r for r in self._requests() if r.req_id not in records]

    def next_request(self, finished: Request, t: float) -> Optional[Request]:
        return None  # arrivals don't depend on completions

    def describe(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "rate": self.rate,
            "n_requests": self.n_requests,
            "prompt_tokens": list(self.prompt_tokens),
            "max_new_tokens": list(self.max_new_tokens),
            "seed": self.seed,
        }


class ClosedLoopTraffic:
    """``clients`` concurrent callers, each one request in flight."""

    kind = "closed"

    def __init__(self, clients: int, n_requests: int, think_time: float = 0.0,
                 prompt_tokens: Tuple[int, int] = (16, 64),
                 max_new_tokens: Tuple[int, int] = (8, 32),
                 seed: int = 0) -> None:
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        if n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {n_requests}")
        if think_time < 0:
            raise ValueError(f"think_time must be >= 0, got {think_time}")
        self.clients = int(clients)
        self.n_requests = int(n_requests)
        self.think_time = float(think_time)
        self.prompt_tokens = (int(prompt_tokens[0]), int(prompt_tokens[1]))
        self.max_new_tokens = (int(max_new_tokens[0]), int(max_new_tokens[1]))
        self.seed = int(seed)
        self.rate = None  # no offered rate: load is self-throttled

    def _make(self, req_id: int, arrival: float) -> Request:
        # lengths keyed by request identity alone, so the stream is
        # identical no matter in which order completions spawn successors
        rng = np.random.default_rng([self.seed, req_id])
        prompt = int(rng.integers(self.prompt_tokens[0],
                                  self.prompt_tokens[1] + 1))
        new = int(rng.integers(self.max_new_tokens[0],
                               self.max_new_tokens[1] + 1))
        return Request(req_id, prompt, new, arrival,
                       client=req_id % self.clients)

    def outstanding(self, records: Dict[int, RequestRecord]
                    ) -> List[Request]:
        out: List[Request] = []
        for client in range(min(self.clients, self.n_requests)):
            k = 0
            prev: Optional[RequestRecord] = None
            while True:
                rid = client + k * self.clients
                if rid >= self.n_requests or rid not in records:
                    break
                prev = records[rid]
                k += 1
            rid = client + k * self.clients
            if rid >= self.n_requests:
                continue  # this client's chain is done
            if prev is None:
                arrival = 0.0
            else:
                arrival = (prev.t_finished or prev.arrival) + self.think_time
            out.append(self._make(rid, arrival))
        return out

    def next_request(self, finished: Request, t: float) -> Optional[Request]:
        nxt = finished.req_id + self.clients
        if nxt >= self.n_requests:
            return None
        return self._make(nxt, t + self.think_time)

    def describe(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "clients": self.clients,
            "n_requests": self.n_requests,
            "think_time": self.think_time,
            "prompt_tokens": list(self.prompt_tokens),
            "max_new_tokens": list(self.max_new_tokens),
            "seed": self.seed,
        }


@dataclass(frozen=True)
class FailureEvent:
    """A replica loss the engine recovered from mid-serving."""

    t: float
    rank: int
    kind: str  # RankFailure | CollectiveTimeout

    def to_dict(self) -> Dict[str, object]:
        return {"t": self.t, "rank": self.rank, "kind": self.kind}


class TrafficReport:
    """Aggregated serving metrics over one traffic run."""

    def __init__(self, records: Dict[int, RequestRecord], *,
                 traffic: Dict[str, object], world: int, makespan: float,
                 restarts: int = 0,
                 failures: Sequence[FailureEvent] = ()) -> None:
        self.records = dict(sorted(records.items()))
        self.traffic = dict(traffic)
        self.world = int(world)
        self.makespan = float(makespan)
        self.restarts = int(restarts)
        self.failures = list(failures)

        done = [r for r in self.records.values() if r.completed]
        self.n_issued = len(self.records)
        self.n_completed = len(done)
        self.n_failed = sum(
            1 for r in self.records.values() if r.fail_reason is not None)
        self.preemptions = sum(r.preemptions for r in self.records.values())
        self.output_tokens = sum(len(r.output) for r in done)

        span = self.makespan if self.makespan > 0 else float("nan")
        self.goodput_tokens_per_sec = self.output_tokens / span
        self.completed_per_sec = self.n_completed / span

        ttfts = sorted(r.ttft for r in done if r.ttft is not None)
        self.p50_ttft = _percentile(ttfts, 50)
        self.p99_ttft = _percentile(ttfts, 99)
        lats = sorted(r.token_latency for r in done
                      if r.token_latency is not None)
        self.mean_token_latency = (
            sum(lats) / len(lats) if lats else None)
        self.p99_token_latency = _percentile(lats, 99)
        e2es = sorted(r.e2e_latency for r in done
                      if r.e2e_latency is not None)
        self.p50_e2e = _percentile(e2es, 50)
        self.p99_e2e = _percentile(e2es, 99)

    def to_dict(self) -> Dict[str, object]:
        return {
            "traffic": self.traffic,
            "world": self.world,
            "makespan": self.makespan,
            "restarts": self.restarts,
            "failures": [f.to_dict() for f in self.failures],
            "requests": {
                "issued": self.n_issued,
                "completed": self.n_completed,
                "failed": self.n_failed,
                "preemptions": self.preemptions,
                "output_tokens": self.output_tokens,
            },
            "goodput": {
                "tokens_per_sec": self.goodput_tokens_per_sec,
                "requests_per_sec": self.completed_per_sec,
            },
            "latency": {
                "p50_ttft": self.p50_ttft,
                "p99_ttft": self.p99_ttft,
                "mean_token_latency": self.mean_token_latency,
                "p99_token_latency": self.p99_token_latency,
                "p50_e2e": self.p50_e2e,
                "p99_e2e": self.p99_e2e,
            },
            "records": [r.to_dict() for r in self.records.values()],
        }

    def format(self) -> str:
        def ms(v: Optional[float]) -> str:
            return "-" if v is None else f"{v * 1e3:.3f}ms"

        lines = [
            f"serving report — world={self.world} "
            f"traffic={self.traffic.get('kind')} "
            f"makespan={self.makespan:.6f}s",
            f"  requests: issued={self.n_issued} "
            f"completed={self.n_completed} failed={self.n_failed} "
            f"preemptions={self.preemptions} restarts={self.restarts}",
            f"  goodput: {self.goodput_tokens_per_sec:.1f} tok/s "
            f"({self.completed_per_sec:.2f} req/s)",
            f"  ttft: p50={ms(self.p50_ttft)} p99={ms(self.p99_ttft)}",
            f"  per-token: mean={ms(self.mean_token_latency)} "
            f"p99={ms(self.p99_token_latency)}",
            f"  e2e: p50={ms(self.p50_e2e)} p99={ms(self.p99_e2e)}",
        ]
        if self.failures:
            lines.append("  failures: " + ", ".join(
                f"rank{f.rank}:{f.kind}@{f.t:.6f}s" for f in self.failures))
        return "\n".join(lines)
