"""Inference requests and their lifecycle state machine.

A :class:`Request` is one user call: a prompt of ``prompt_tokens`` tokens
arriving at ``arrival`` simulated seconds, asking for ``max_new_tokens``
output tokens.  The serving engine moves it through::

    QUEUED -> PREFILL -> DECODE -> FINISHED
       ^         |          |
       +---- PREEMPTED <----+          (cache pressure: recompute-style)
       |
       +---- FAILED                    (typed: request can never fit)

Preemption is *recompute-style and total*: the victim's KV blocks are
freed and all generated progress is discarded, so a re-admitted request
replays prefill and decode from scratch.  Output tokens come from a
deterministic LCG chain seeded by ``(gen_seed, req_id, prompt_tokens)``
— any bookkeeping bug across a preempt/requeue (wrong resume position,
stale progress, lost reset) diverges the replayed chain and is caught by
the ``serving`` property lane's bitwise output comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

QUEUED = "queued"
PREFILL = "prefill"
DECODE = "decode"
PREEMPTED = "preempted"
FINISHED = "finished"
FAILED = "failed"

REQUEST_STATES = (QUEUED, PREFILL, DECODE, PREEMPTED, FINISHED, FAILED)

#: 64-bit LCG (Knuth MMIX) driving the simulated token stream
_GEN_MUL = 6364136223846793005
_GEN_ADD = 1442695040888963407
_MASK64 = (1 << 64) - 1


class Request:
    """One inference request plus its runtime progress."""

    __slots__ = (
        "req_id", "client", "prompt_tokens", "max_new_tokens", "arrival",
        "state", "prefill_done", "tokens_generated", "output",
        "preemptions", "fail_reason",
        "t_admitted", "t_first_token", "t_prefill_done", "t_last_preempt",
        "t_finished", "_gen_state",
    )

    def __init__(self, req_id: int, prompt_tokens: int, max_new_tokens: int,
                 arrival: float, client: int = -1) -> None:
        if prompt_tokens < 1:
            raise ValueError(f"prompt_tokens must be >= 1, got {prompt_tokens}")
        if max_new_tokens < 1:
            raise ValueError(
                f"max_new_tokens must be >= 1, got {max_new_tokens}")
        self.req_id = int(req_id)
        self.client = int(client)
        self.prompt_tokens = int(prompt_tokens)
        self.max_new_tokens = int(max_new_tokens)
        self.arrival = float(arrival)
        self.state = QUEUED
        self.prefill_done = 0
        self.tokens_generated = 0
        self.output: List[int] = []
        self.preemptions = 0
        self.fail_reason: Optional[str] = None
        self.t_admitted: Optional[float] = None
        self.t_first_token: Optional[float] = None
        self.t_prefill_done: Optional[float] = None
        self.t_last_preempt: Optional[float] = None
        self.t_finished: Optional[float] = None
        self._gen_state = 0

    # -- token generation ------------------------------------------------

    def start_generation(self, gen_seed: int, vocab: int) -> None:
        """(Re)seed the deterministic output chain; called at admission."""
        del vocab  # tokens are drawn lazily; vocab applied per draw
        state = (gen_seed * 0x9E3779B97F4A7C15
                 + self.req_id * 0xBF58476D1CE4E5B9
                 + self.prompt_tokens) & _MASK64
        # one warm-up step decorrelates nearby (seed, id) pairs
        self._gen_state = (state * _GEN_MUL + _GEN_ADD) & _MASK64

    def next_token(self, vocab: int) -> int:
        self._gen_state = (self._gen_state * _GEN_MUL + _GEN_ADD) & _MASK64
        return int((self._gen_state >> 33) % vocab)

    # -- lifecycle -------------------------------------------------------

    @property
    def total_tokens(self) -> int:
        """KV slots a fully-decoded request occupies."""
        return self.prompt_tokens + self.max_new_tokens

    def reset_progress(self, t: float) -> None:
        """Recompute-style preemption: discard every generated token."""
        self.state = PREEMPTED
        self.prefill_done = 0
        self.tokens_generated = 0
        self.output = []
        self.preemptions += 1
        self.t_last_preempt = t

    def record(self) -> "RequestRecord":
        return RequestRecord(
            req_id=self.req_id,
            client=self.client,
            prompt_tokens=self.prompt_tokens,
            max_new_tokens=self.max_new_tokens,
            arrival=self.arrival,
            t_first_token=self.t_first_token,
            t_finished=self.t_finished,
            output=tuple(self.output),
            preemptions=self.preemptions,
            fail_reason=self.fail_reason,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Request(id={self.req_id}, state={self.state}, "
                f"prompt={self.prompt_tokens}, new={self.max_new_tokens}, "
                f"gen={self.tokens_generated})")


@dataclass(frozen=True)
class RequestRecord:
    """Immutable completion record — what the traffic report aggregates.

    Survives engine restarts (the driver owns the record dict), so a
    crash-requeued request keeps exactly one record: the pass that
    finished it.
    """

    req_id: int
    client: int
    prompt_tokens: int
    max_new_tokens: int
    arrival: float
    t_first_token: Optional[float]
    t_finished: Optional[float]
    output: Tuple[int, ...] = field(default_factory=tuple)
    preemptions: int = 0
    fail_reason: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.fail_reason is None and self.t_finished is not None

    @property
    def ttft(self) -> Optional[float]:
        if self.t_first_token is None:
            return None
        return self.t_first_token - self.arrival

    @property
    def e2e_latency(self) -> Optional[float]:
        if self.t_finished is None:
            return None
        return self.t_finished - self.arrival

    @property
    def token_latency(self) -> Optional[float]:
        """Mean seconds per output token after the first."""
        if not self.completed or self.t_first_token is None:
            return None
        n = len(self.output)
        if n <= 1:
            return 0.0
        return (self.t_finished - self.t_first_token) / (n - 1)

    def to_dict(self) -> dict:
        return {
            "req_id": self.req_id,
            "client": self.client,
            "prompt_tokens": self.prompt_tokens,
            "max_new_tokens": self.max_new_tokens,
            "arrival": self.arrival,
            "t_first_token": self.t_first_token,
            "t_finished": self.t_finished,
            "output": list(self.output),
            "preemptions": self.preemptions,
            "fail_reason": self.fail_reason,
        }
