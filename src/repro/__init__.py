"""repro — a reproduction of "Colossal-AI: A Unified Deep Learning System
For Large-Scale Parallel Training" (ICPP 2023) on a simulated multi-GPU
substrate.

Quickstart (Listing 1 of the paper)::

    import repro
    from repro.cluster import system_i
    from repro.models import ViTConfig, build_vit
    from repro.optim import AdamW
    from repro.tensor import Tensor

    config = dict(parallel=dict(tensor=dict(size=4, mode="2d")))

    def train(ctx, pc):
        bundle = build_vit(ViTConfig(), pc, mode="2d")
        engine = repro.initialize(
            bundle.model, AdamW(bundle.model.parameters()), pc=pc)
        ...

    repro.launch(config, system_i(), train, world_size=4)
"""

from repro.autopar.compiler import compile_strategy
from repro.config import Config
from repro.context import ParallelContext, ParallelMode, global_context
from repro.engine import Engine, initialize, launch
from repro.faults import FaultPlan
from repro.runtime import SpmdRuntime, spmd_launch
from repro.sanitize import CommSanitizer
from repro.serve import ModelSpec, TrafficReport, serve_traffic
from repro.trace import Tracer, TraceReport

__version__ = "1.0.0"

__all__ = [
    "compile_strategy",
    "Config",
    "ParallelContext",
    "ParallelMode",
    "global_context",
    "CommSanitizer",
    "Engine",
    "FaultPlan",
    "initialize",
    "launch",
    "ModelSpec",
    "SpmdRuntime",
    "spmd_launch",
    "Tracer",
    "TraceReport",
    "TrafficReport",
    "serve_traffic",
    "__version__",
]
