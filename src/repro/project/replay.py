"""Analytic replay of a captured op stream.

The engine re-executes an :class:`~repro.project.capture.OpTrace` on fresh
per-rank :class:`~repro.runtime.clock.SimClock`/:class:`StreamClock` pairs
without hosting a thread per rank: a single-threaded sweep scheduler drains
each rank's event stream until the rank *blocks* (a collective round whose
members have not all arrived, a nonblocking handle not yet finalized, a
receive whose message is not yet in the mailbox) and repeats until every
stream is exhausted.  The arithmetic performed per event is a line-for-line
mirror of :mod:`repro.comm.group` / :mod:`repro.comm.communicator`, so with
the *recorded* pricer the replayed clocks, stream clocks and counters
reproduce the threaded run bit-for-bit.

Costs come from a pluggable pricer:

* :class:`RecordedPricer` — return the captured costs unchanged (fidelity
  mode, used by the parity tests);
* :class:`ModelPricer` — re-price every op through a
  :class:`~repro.project.fabric.ProjectedCostModel`, *scaling* either one
  group (``factor=k``: the legacy data-parallel widening) or several named
  axes at once (``axes={"dp": 8, "tp": 2, "pp": 2}``): a captured group is
  widened by the product of the factors of every axis it lies along and
  replicated by the product of the factors of every axis it does not —
  this is what projects a 16-rank hybrid capture to the paper's 512-GPU
  DP x TP x PP grids.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.comm.counters import CommCounters
from repro.runtime.clock import SimClock, StreamClock

from repro.project.capture import OpTrace
from repro.project.fabric import Fabric, ProjectedCostModel

#: how a round's recorded per-op cost argument responds to growing the
#: group: "constant" keeps the captured payload (a DP all-reduce moves the
#: same gradient bytes at any world size), "inverse" shrinks it with the
#: group (a ZeRO all-gather's local shard is ``total / p``), "linear"
#: grows it with the group.
DEFAULT_SCALING: Dict[str, str] = {
    "all_gather": "inverse",
    "scatter": "inverse",
}

#: the valid ``payload_scaling`` rule names
PAYLOAD_RULES: Tuple[str, ...] = ("constant", "inverse", "linear")

#: every op key a ``payload_scaling`` override may name (the collective
#: ops the communicator can record plus point-to-point traffic)
SCALABLE_OPS: frozenset = frozenset({
    "all_gather", "all_gather_object", "all_reduce", "all_to_all",
    "barrier", "broadcast", "gather", "p2p", "reduce", "reduce_scatter",
    "ring_pass", "scatter", "split",
})


def _validate_payload_scaling(rules: Dict[str, str], where: str) -> None:
    """Reject unknown op keys and unknown rule names loudly: a typo'd rule
    must never silently fall back to "constant" (ISSUE-7 satellite)."""
    for op, rule in rules.items():
        if op not in SCALABLE_OPS:
            raise ValueError(
                f"{where}.payload_scaling: unknown op {op!r}; "
                f"valid ops: {sorted(SCALABLE_OPS)}"
            )
        if rule not in PAYLOAD_RULES:
            raise ValueError(
                f"{where}.payload_scaling: unknown rule {rule!r} for op "
                f"{op!r}; valid rules: {list(PAYLOAD_RULES)}"
            )


class ReplayStall(RuntimeError):
    """No rank can make progress but streams remain — a truncated or
    internally inconsistent trace."""


@dataclass
class ScaleAxis:
    """One named parallel axis of a hybrid :class:`ScalePlan`.

    ``factor`` widens every captured group that lies along this axis;
    ``groups`` is the family of captured rank tuples the axis owns (``None``
    resolves from the trace's ``axes`` metadata by name, falling back to
    the whole-world group for ``dp``/``data``/``world``).  ``sharded_bytes``
    is the captured per-rank byte count of state this axis *partitions*
    (ZeRO chunks across dp, weight shards across tp): at factor ``k`` those
    bytes shrink to ``ceil(bytes / k)`` in the projected peak-memory model.
    ``chain=True`` marks a pipeline-style axis whose groups are linear
    chains: widening deepens the chain, so p2p boundary traffic scales by
    ``(k*s - 1) / (s - 1)`` for an ``s``-stage captured chain rather than
    by the plain factor.
    """

    factor: int = 1
    groups: Optional[Tuple[Tuple[int, ...], ...]] = None
    payload_scaling: Dict[str, str] = field(default_factory=dict)
    sharded_bytes: int = 0
    chain: bool = False

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError(f"axis factor must be >= 1, got {self.factor}")
        if self.sharded_bytes < 0:
            raise ValueError(
                f"axis sharded_bytes must be >= 0, got {self.sharded_bytes}"
            )
        if self.groups is not None:
            self.groups = tuple(tuple(g) for g in self.groups)
        _validate_payload_scaling(self.payload_scaling, "ScaleAxis")


@dataclass
class ResolvedAxis:
    """A :class:`ScaleAxis` bound to a trace: groups resolved, ready for
    the pricer to match against.  The group spanning the whole captured
    world is treated as lying along *every* axis."""

    name: str
    factor: int
    groups: Tuple[Tuple[int, ...], ...]
    payload_scaling: Dict[str, str]
    sharded_bytes: int
    chain: bool
    #: synthesized from the legacy ``factor``/``scale_group`` fields —
    #: excluded from the report's per-axis breakdown
    synthetic: bool = False

    def __post_init__(self) -> None:
        self.group_set = frozenset(self.groups)
        self.rank_set = frozenset(r for g in self.groups for r in g)

    @property
    def captured_degree(self) -> int:
        return max((len(g) for g in self.groups), default=1)


@dataclass
class ScalePlan:
    """How to stretch a captured trace to a larger world.

    **Single-axis (legacy) form** — ``factor`` multiplies the world: the
    ``scale_group`` (default: the group spanning every captured rank) is
    re-priced at ``factor ×`` its captured size, while every *other* group
    is assumed replicated ``factor`` times across the projected world (its
    costs are unchanged and its traffic counts ``factor`` times in the
    totals).  This models the standard data-parallel scale-out where the
    captured world is one model replica and the world group carries the
    gradient traffic.  ``sharded_bytes`` declares per-rank state the scaled
    group partitions (ZeRO chunks): at factor ``k`` the projected peak
    memory of the scaled ranks drops by ``sharded_bytes * (1 - 1/k)``.

    **Hybrid form** — ``axes`` maps axis names to factors (or full
    :class:`ScaleAxis` specs): ``ScalePlan(axes={"dp": 8, "tp": 2,
    "pp": 2})``.  A captured group is widened by the *product* of the
    factors of the axes it lies along (the whole-world group lies along
    all of them) and replicated by the product of the factors of the axes
    it does not, so the projected world always hosts
    ``world * prod(factors)`` ranks.  ``axes`` is mutually exclusive with
    ``factor``/``scale_group``; ``ScalePlan(axes={"dp": k})`` is
    projection-for-projection identical to ``ScalePlan(factor=k)``.
    """

    factor: int = 1
    #: ranks (captured global ids) of the group to widen; ``None`` selects
    #: the group spanning the whole captured world
    scale_group: Optional[Tuple[int, ...]] = None
    #: per-op overrides of :data:`DEFAULT_SCALING` (axis-level rules win)
    payload_scaling: Dict[str, str] = field(default_factory=dict)
    #: multiplier on every non-comm clock advance (model a faster/slower
    #: accelerator without recapturing)
    compute_scale: float = 1.0
    #: hybrid form: axis name -> factor int or :class:`ScaleAxis`
    axes: Optional[Dict[str, Union[int, ScaleAxis]]] = None
    #: captured per-rank bytes the (legacy) scaled group re-shards
    sharded_bytes: int = 0

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError(f"scale factor must be >= 1, got {self.factor}")
        if self.compute_scale <= 0:
            raise ValueError("compute_scale must be positive")
        if self.sharded_bytes < 0:
            raise ValueError(
                f"sharded_bytes must be >= 0, got {self.sharded_bytes}"
            )
        _validate_payload_scaling(self.payload_scaling, "ScalePlan")
        if self.axes is not None:
            if self.factor != 1 or self.scale_group is not None:
                raise ValueError(
                    "ScalePlan.axes is mutually exclusive with the legacy "
                    "factor/scale_group fields: put each axis's factor in "
                    "the axes mapping"
                )
            norm: Dict[str, ScaleAxis] = {}
            for name, ax in self.axes.items():
                if isinstance(ax, ScaleAxis):
                    norm[name] = ax
                elif isinstance(ax, int) and not isinstance(ax, bool):
                    if ax < 1:
                        raise ValueError(
                            f"axis {name!r} factor must be >= 1, got {ax}"
                        )
                    norm[name] = ScaleAxis(factor=ax)
                else:
                    raise ValueError(
                        f"axis {name!r} must map to an int factor or a "
                        f"ScaleAxis, got {type(ax).__name__}"
                    )
            self.axes = norm

    def total_factor(self) -> int:
        """World multiplier: ``factor`` (legacy) or the product of every
        axis factor (hybrid)."""
        if self.axes is None:
            return self.factor
        total = 1
        for ax in self.axes.values():
            total *= ax.factor
        return total

    def scaling_for(self, op: str,
                    matched: Sequence[ResolvedAxis] = ()) -> str:
        """Payload rule for ``op`` on a group lying along ``matched`` axes:
        the first matched axis declaring the op wins, then the plan-level
        overrides, then :data:`DEFAULT_SCALING`."""
        for ax in matched:
            if op in ax.payload_scaling:
                return ax.payload_scaling[op]
        return self.payload_scaling.get(op, DEFAULT_SCALING.get(op, "constant"))

    def resolve_axes(self, trace: OpTrace) -> List[ResolvedAxis]:
        """Bind the plan to a trace, resolving each axis's group family.

        Resolution order: explicit :attr:`ScaleAxis.groups`, then the
        trace's ``axes`` metadata (populated by ``launch`` from the
        Config's DP x TP x PP layout), then — for ``dp``/``data``/
        ``world`` — the group spanning the whole captured world.  The
        legacy single-axis form resolves to one synthetic axis so both
        forms price through identical code."""
        world = tuple(range(trace.world_size))
        if self.axes is None:
            ranks = (
                tuple(self.scale_group) if self.scale_group is not None
                else world
            )
            return [ResolvedAxis(
                name="world", factor=self.factor, groups=(ranks,),
                payload_scaling={}, sharded_bytes=self.sharded_bytes,
                chain=False, synthetic=True,
            )]
        out: List[ResolvedAxis] = []
        trace_axes = getattr(trace, "axes", None) or {}
        for name, ax in self.axes.items():
            groups = ax.groups
            if groups is None and name in trace_axes:
                groups = tuple(tuple(g) for g in trace_axes[name])
            if groups is None and name in ("dp", "data", "world"):
                groups = (world,)
            if groups is None:
                raise ValueError(
                    f"axis {name!r} has no captured groups: pass "
                    f"ScaleAxis(groups=...), or capture through launch() so "
                    f"the trace records its axis layout "
                    f"(trace.axes knows {sorted(trace_axes) or 'no axes'})"
                )
            out.append(ResolvedAxis(
                name=name, factor=ax.factor, groups=groups,
                payload_scaling=ax.payload_scaling,
                sharded_bytes=ax.sharded_bytes, chain=ax.chain,
            ))
        return out


@dataclass
class PricedOp:
    seconds: float
    wire_bytes: int
    elements: int
    algorithm: str


class RecordedPricer:
    """Fidelity pricer: every op costs exactly what the capture recorded."""

    scaled_gids: frozenset = frozenset()

    def collective(self, gid: int, rnd: Dict[str, Any]) -> PricedOp:
        return PricedOp(
            rnd["seconds"], rnd["wire_bytes"],
            rnd["wire_bytes"] // max(rnd["itemsize"], 1), rnd["algorithm"],
        )

    def p2p(self, gid: int, src: int, dst: int, nbytes: int,
            recorded: Tuple[int, int, float]) -> PricedOp:
        wire, elements, seconds = recorded
        return PricedOp(seconds, wire, elements, "direct")

    def multiplicity(self, gid: int) -> int:
        return 1


class ModelPricer:
    """Re-price the captured ops through a fabric cost model, widening
    every captured group by the product of the factors of the plan axes it
    lies along (legacy single-``factor`` plans resolve to one synthetic
    axis, so both forms flow through identical arithmetic)."""

    def __init__(self, trace: OpTrace, fabric: Fabric,
                 plan: Optional[ScalePlan] = None) -> None:
        self.trace = trace
        self.plan = plan or ScalePlan()
        self.model = ProjectedCostModel(fabric)
        self.algorithm = trace.comm_algorithm
        self.resolved_axes: List[ResolvedAxis] = self.plan.resolve_axes(trace)
        world = tuple(range(trace.world_size))
        #: gid -> the axes the group lies along.  A named (non-synthetic)
        #: axis also claims the whole-world group: the world spans every
        #: parallel dimension, so widening any axis widens it.
        self._matched: Dict[int, Tuple[ResolvedAxis, ...]] = {}
        for gid, ranks in enumerate(trace.groups):
            key = tuple(ranks)
            self._matched[gid] = tuple(
                ax for ax in self.resolved_axes
                if key in ax.group_set or (not ax.synthetic and key == world)
            )
        self.scaled_gids = frozenset(
            gid for gid, m in self._matched.items() if m
        )
        #: gid -> (num, den) integer weight for captured p2p counters on
        #: chain-widened groups: a chain of ``s`` stages deepened to
        #: ``k*s`` has ``k*s - 1`` stage boundaries in place of ``s - 1``.
        self.p2p_scale: Dict[int, Tuple[int, int]] = {}
        for gid, m in self._matched.items():
            num = den = 1
            s = len(trace.groups[gid])
            for ax in m:
                if ax.chain and ax.factor > 1 and s >= 2:
                    num *= ax.factor * s - 1
                    den *= s - 1
            if (num, den) != (1, 1):
                self.p2p_scale[gid] = (num, den)
        self._ranks2: Dict[int, Tuple[int, ...]] = {}
        self._cache: Dict[Tuple[int, str, int], PricedOp] = {}

    def widening(self, gid: int) -> int:
        """Product of the factors of every axis the group lies along."""
        w = 1
        for ax in self._matched[gid]:
            w *= ax.factor
        return w

    def group_ranks(self, gid: int) -> Tuple[int, ...]:
        ranks2 = self._ranks2.get(gid)
        if ranks2 is None:
            ranks = self.trace.groups[gid]
            w = self.widening(gid)
            if w > 1:
                ranks2 = tuple(range(len(ranks) * w))
            else:
                ranks2 = tuple(ranks)
            self._ranks2[gid] = ranks2
        return ranks2

    def multiplicity(self, gid: int) -> int:
        """How many copies of this group the projected world hosts: the
        product of the factors of every axis the group does *not* lie
        along."""
        matched = {ax.name for ax in self._matched[gid]}
        m = 1
        for ax in self.resolved_axes:
            if ax.name not in matched:
                m *= ax.factor
        return m

    def _recorded_arg(self, op: str, rnd: Dict[str, Any]) -> int:
        """Reconstruct the byte argument the group fed the cost model from
        the recorded per-rank payload sizes."""
        ns = rnd.get("nbytes") or [0]
        n = max(ns)
        if op == "scatter":
            # the group prices scatter on the per-member chunk of the
            # root's concatenated payload
            return n // max(len(ns), 1)
        if op == "all_gather_object":
            return 64  # _OBJECT_NBYTES
        return n

    def collective(self, gid: int, rnd: Dict[str, Any]) -> PricedOp:
        op = str(rnd["op"])
        n = self._recorded_arg(op, rnd)
        key = (gid, op, n)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        ranks = self.trace.groups[gid]
        ranks2 = self.group_ranks(gid)
        p, p2 = len(ranks), len(ranks2)
        if p2 != p and n:
            rule = self.plan.scaling_for(op, self._matched[gid])
            if rule == "inverse":
                n = max(1, (n * p) // p2)
            elif rule == "linear":
                n = (n * p2) // p
        cost = self._price(op, ranks2, n)
        priced = PricedOp(
            cost.seconds, cost.wire_bytes,
            cost.wire_elements(rnd.get("itemsize", 1)), cost.algorithm,
        )
        self._cache[key] = priced
        return priced

    def _price(self, op: str, ranks2: Sequence[int], n: int):
        m = self.model
        algo = self.algorithm
        if op == "all_reduce":
            return m.allreduce(ranks2, n, algo)
        if op == "all_gather":
            return m.allgather(ranks2, n, algo)
        if op == "reduce_scatter":
            return m.reduce_scatter(ranks2, n, algo)
        if op == "broadcast":
            return m.broadcast(ranks2, n, algo)
        if op == "reduce":
            return m.reduce(ranks2, n, algo)
        if op == "scatter":
            return m.scatter(ranks2[0], ranks2, n)
        if op == "gather":
            return m.gather(ranks2[0], ranks2, n)
        if op == "all_to_all":
            return m.all_to_all(ranks2, n)
        if op == "barrier":
            return m.barrier(ranks2)
        if op == "all_gather_object":
            return m.allgather(ranks2, 64)
        if op == "split":
            from repro.comm.cost import CollectiveCost
            return CollectiveCost(m.alpha, 0)
        if op == "ring_pass":
            return m.ring_pass(ranks2, n)
        # unknown op: price as an allreduce-shaped fallback
        return m.allreduce(ranks2, n, algo)

    def p2p(self, gid: int, src: int, dst: int, nbytes: int,
            recorded: Tuple[int, int, float]) -> PricedOp:
        _wire, elements, _seconds = recorded
        cost = self.model.p2p(src, dst, nbytes)
        return PricedOp(cost.seconds, cost.wire_bytes, elements, "direct")


@dataclass
class ReplayResult:
    trace: OpTrace
    plan: ScalePlan
    clocks: List[SimClock]
    streams: List[StreamClock]
    counters: Dict[int, CommCounters]
    multiplicity: Dict[int, int]
    #: the plan's axes bound to the trace (empty for recorded replays)
    axes: Dict[str, "ResolvedAxis"] = field(default_factory=dict)
    #: gid -> (num, den) chain-deepening weight on captured p2p counters
    p2p_scale: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def step_time(self) -> float:
        times = [c.time for c in self.clocks] + [s.time for s in self.streams]
        return max(times) if times else 0.0

    @property
    def target_world(self) -> int:
        return self.trace.world_size * self.plan.total_factor()


class _RoundState:
    __slots__ = ("entries", "t_start", "t_end", "claimed", "priced")

    def __init__(self) -> None:
        self.entries: Dict[int, float] = {}
        self.t_start: Optional[float] = None
        self.t_end: Optional[float] = None
        self.claimed = 0
        self.priced: Optional[PricedOp] = None


class _ReplayHost:
    """Minimal stand-in runtime so ``Tracer.install`` can attach clock
    observers to the replay clocks."""

    def __init__(self, clocks: List[SimClock]) -> None:
        self.clocks = clocks
        self.tracer = None


class ReplayEngine:
    def __init__(self, trace: OpTrace, pricer: Any,
                 plan: Optional[ScalePlan] = None,
                 tracer: Optional[Any] = None) -> None:
        self.trace = trace
        self.pricer = pricer
        self.plan = plan or ScalePlan()
        self.tracer = tracer
        n = trace.world_size
        self.clocks = [SimClock() for _ in range(n)]
        self.streams = [StreamClock() for _ in range(n)]
        self.counters: Dict[int, CommCounters] = {
            gid: CommCounters() for gid in range(len(trace.groups))
        }
        self._tails: Dict[int, float] = {}
        self._p2p_tails: Dict[Tuple[int, int], float] = {}
        self._mailbox: Dict[Tuple[int, int, int, Any], deque] = {}
        self._rounds: Dict[Tuple[int, int], _RoundState] = {}
        self._sids: List[Dict[int, Tuple[int, float, float]]] = [
            {} for _ in range(n)
        ]
        self._pos = [0] * n
        if tracer is not None:
            tracer.install(_ReplayHost(self.clocks))

    # -- public ------------------------------------------------------------

    def run(self) -> ReplayResult:
        streams = self.trace.streams
        n = self.trace.world_size
        while True:
            progress = False
            done = True
            for rank in range(n):
                if self._pos[rank] < len(streams[rank]):
                    done = False
                    if self._drain(rank):
                        progress = True
            if done:
                break
            if not progress:
                stuck = {
                    r: streams[r][self._pos[r]][0]
                    for r in range(n) if self._pos[r] < len(streams[r])
                }
                raise ReplayStall(
                    f"replay stalled with pending events {stuck}: the trace "
                    "is truncated or internally inconsistent"
                )
        resolved = getattr(self.pricer, "resolved_axes", None) or ()
        return ReplayResult(
            trace=self.trace, plan=self.plan, clocks=self.clocks,
            streams=self.streams, counters=self.counters,
            multiplicity={
                gid: self.pricer.multiplicity(gid)
                for gid in range(len(self.trace.groups))
            },
            axes={ax.name: ax for ax in resolved},
            p2p_scale=dict(getattr(self.pricer, "p2p_scale", None) or {}),
        )

    # -- event loop --------------------------------------------------------

    def _drain(self, rank: int) -> bool:
        stream = self.trace.streams[rank]
        made_progress = False
        while self._pos[rank] < len(stream):
            if not self._step(rank, stream[self._pos[rank]]):
                break
            self._pos[rank] += 1
            made_progress = True
        return made_progress

    def _step(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        """Execute one event for ``rank``; False means blocked."""
        tag = ev[0]
        if tag == "a":
            return self._ev_advance(rank, ev)
        if tag == "c":
            return self._ev_collective(rank, ev)
        if tag == "c1":
            return self._ev_solo(rank, ev)
        if tag == "ic":
            return self._ev_issue(rank, ev)
        if tag == "cw":
            return self._ev_coll_wait(rank, ev)
        if tag == "ps":
            return self._ev_send(rank, ev, advance=True)
        if tag == "pse":
            return self._ev_send(rank, ev, advance=False)
        if tag == "pw":
            self.clocks[rank].advance(ev[1], "comm")
            return True
        if tag == "pss":
            return self._ev_stream_send(rank, ev)
        if tag == "psw":
            return self._ev_stream_wait(rank, ev)
        if tag == "pr":
            return self._ev_recv(rank, ev)
        raise ReplayStall(f"unknown capture event tag {tag!r}")

    # -- per-event mirrors of group.py / communicator.py -------------------

    def _ev_advance(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, category, dt, label = ev
        clock = self.clocks[rank]
        scale = self.plan.compute_scale
        t0 = clock.time
        clock.advance(dt if scale == 1.0 else dt * scale, category)
        if self.tracer is not None and label is not None:
            self.tracer.annotate(rank, category, label, t0, clock.time)
        return True

    def _round(self, gid: int, seq: int) -> _RoundState:
        st = self._rounds.get((gid, seq))
        if st is None:
            st = _RoundState()
            self._rounds[(gid, seq)] = st
        return st

    def _finalize(self, gid: int, seq: int, st: _RoundState,
                  blocking: bool) -> None:
        rnd = self.trace.rounds[(gid, seq)]
        priced = self.pricer.collective(gid, rnd)
        t_base = max(st.entries.values())
        tail = self._tails.get(gid, 0.0)
        if tail > t_base:
            t_base = tail
        t_end = t_base + priced.seconds
        self._tails[gid] = t_end
        st.t_start = t_base
        st.t_end = t_end
        st.priced = priced
        if priced.wire_bytes:
            self.counters[gid].record(
                str(rnd["op"]), priced.wire_bytes, priced.elements,
                algorithm=priced.algorithm,
            )
        if not blocking:
            # async finalize occupies every member's comm stream now
            for g in self.trace.groups[gid]:
                self.streams[g].occupy(t_base, t_end)
            if self.tracer is not None:
                for local, g in enumerate(self.trace.groups[gid]):
                    self.tracer.annotate(
                        g, "comm_stream", str(rnd["op"]), t_base, t_end,
                        primary=(local == 0), algorithm=priced.algorithm,
                    )

    def _ev_collective(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, gid, seq = ev
        st = self._round(gid, seq)
        clock = self.clocks[rank]
        if rank not in st.entries:
            st.entries[rank] = clock.time
        if st.t_end is None:
            if len(st.entries) < len(self.trace.groups[gid]):
                return False
            self._finalize(gid, seq, st, blocking=True)
        t_entry = st.entries[rank]
        clock.sync_to(st.t_end, "comm")
        if self.tracer is not None:
            rnd = self.trace.rounds[(gid, seq)]
            self.tracer.annotate(
                rank, "collective", str(rnd["op"]), t_entry, st.t_end,
                primary=(rank == self.trace.groups[gid][0]),
                algorithm=st.priced.algorithm if st.priced else "",
            )
        st.claimed += 1
        if st.claimed == len(self.trace.groups[gid]):
            del self._rounds[(gid, seq)]
        return True

    def _ev_solo(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, gid, info = ev
        priced = self.pricer.collective(gid, info)
        clock = self.clocks[rank]
        t0 = clock.time
        tail = self._tails.get(gid, 0.0)
        if tail > clock.time:
            clock.sync_to(tail, "comm")
        clock.advance(priced.seconds, "comm")
        self._tails[gid] = clock.time
        if priced.wire_bytes:
            self.counters[gid].record(
                str(info["op"]), priced.wire_bytes, priced.elements,
                algorithm=priced.algorithm,
            )
        if self.tracer is not None:
            self.tracer.annotate(
                rank, "collective", str(info["op"]), t0, clock.time,
                primary=True, algorithm=priced.algorithm,
            )
        return True

    def _ev_issue(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, gid, seq = ev
        st = self._round(gid, seq)
        st.entries[rank] = self.clocks[rank].time
        if len(st.entries) == len(self.trace.groups[gid]):
            self._finalize(gid, seq, st, blocking=False)
        return True

    def _ev_coll_wait(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, gid, seq = ev
        st = self._rounds.get((gid, seq))
        if st is None or st.t_end is None:
            return False
        rnd = self.trace.rounds[(gid, seq)]
        clock = self.clocks[rank]
        duration = st.t_end - st.t_start
        t_wait = clock.time
        exposed = min(duration, max(0.0, st.t_end - t_wait))
        clock.sync_to(st.t_end, "comm")
        self.streams[rank].note_exposed(exposed)
        self.counters[gid].record_overlap(
            str(rnd["op"]) or "collective", exposed,
            max(0.0, duration - exposed),
        )
        if self.tracer is not None and exposed > 0.0:
            self.tracer.annotate(
                rank, "overlap", f"wait:{rnd['op']}", t_wait, st.t_end,
                exposed=exposed,
            )
        st.claimed += 1
        if st.claimed == len(self.trace.groups[gid]):
            del self._rounds[(gid, seq)]
        return True

    def _ev_send(self, rank: int, ev: Tuple[Any, ...], advance: bool) -> bool:
        _t, gid, dst, tag, nbytes, wire, elements, seconds = ev
        priced = self.pricer.p2p(gid, rank, dst, nbytes,
                                 (wire, elements, seconds))
        clock = self.clocks[rank]
        t0 = clock.time
        t_avail = clock.time + priced.seconds
        self.counters[gid].record("p2p", priced.wire_bytes, priced.elements)
        self._mailbox.setdefault((gid, rank, dst, tag), deque()).append(t_avail)
        if advance:
            clock.advance(priced.seconds, "comm")
            if self.tracer is not None:
                self.tracer.annotate(
                    rank, "p2p", f"send->{dst}", t0, clock.time, bytes=nbytes
                )
        return True

    def _ev_stream_send(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, gid, sid, dst, tag, nbytes, wire, elements, seconds = ev
        priced = self.pricer.p2p(gid, rank, dst, nbytes,
                                 (wire, elements, seconds))
        clock = self.clocks[rank]
        tail = self._p2p_tails.get((gid, rank), 0.0)
        start = max(clock.time, tail)
        t_end = start + priced.seconds
        self.counters[gid].record("p2p", priced.wire_bytes, priced.elements)
        self._mailbox.setdefault((gid, rank, dst, tag), deque()).append(t_end)
        self._p2p_tails[(gid, rank)] = t_end
        self.streams[rank].occupy(start, t_end)
        self._sids[rank][sid] = (gid, t_end, priced.seconds)
        if self.tracer is not None:
            self.tracer.annotate(
                rank, "comm_stream", f"isend->{dst}", start, t_end,
                primary=True, bytes=nbytes,
            )
        return True

    def _ev_stream_wait(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, sid = ev
        gid, t_end, seconds = self._sids[rank].pop(sid)
        clock = self.clocks[rank]
        t_wait = clock.time
        exposed = min(seconds, max(0.0, t_end - t_wait))
        clock.sync_to(t_end, "comm")
        self.streams[rank].note_exposed(exposed)
        self.counters[gid].record_overlap(
            "p2p", exposed, max(0.0, seconds - exposed)
        )
        if self.tracer is not None and exposed > 0.0:
            self.tracer.annotate(
                rank, "overlap", "wait:p2p", t_wait, t_end, exposed=exposed
            )
        return True

    def _ev_recv(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, gid, src, tag = ev
        q = self._mailbox.get((gid, src, rank, tag))
        if not q:
            return False
        t_avail = q.popleft()
        clock = self.clocks[rank]
        t0 = clock.time
        clock.sync_to(t_avail, "comm")
        if self.tracer is not None:
            self.tracer.annotate(rank, "p2p", f"recv<-{src}", t0, clock.time)
        return True
