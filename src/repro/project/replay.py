"""Analytic replay of a captured op stream.

The engine re-executes an :class:`~repro.project.capture.OpTrace` on fresh
per-rank :class:`~repro.runtime.clock.SimClock`/:class:`StreamClock` pairs
without hosting a thread per rank: a single-threaded sweep scheduler drains
each rank's event stream until the rank *blocks* (a collective round whose
members have not all arrived, a nonblocking handle not yet finalized, a
receive whose message is not yet in the mailbox) and repeats until every
stream is exhausted.  The arithmetic performed per event is a line-for-line
mirror of :mod:`repro.comm.group` / :mod:`repro.comm.communicator`, so with
the *recorded* pricer the replayed clocks, stream clocks and counters
reproduce the threaded run bit-for-bit.

Costs come from a pluggable pricer:

* :class:`RecordedPricer` — return the captured costs unchanged (fidelity
  mode, used by the parity tests);
* :class:`ModelPricer` — re-price every op through a
  :class:`~repro.project.fabric.ProjectedCostModel`, optionally *scaling*
  one group (normally the world group) to ``factor ×`` its captured size —
  this is what projects a 8-rank capture to 1024 ranks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.comm.counters import CommCounters
from repro.runtime.clock import SimClock, StreamClock

from repro.project.capture import OpTrace
from repro.project.fabric import Fabric, ProjectedCostModel

#: how a round's recorded per-op cost argument responds to growing the
#: group: "constant" keeps the captured payload (a DP all-reduce moves the
#: same gradient bytes at any world size), "inverse" shrinks it with the
#: group (a ZeRO all-gather's local shard is ``total / p``).
DEFAULT_SCALING: Dict[str, str] = {
    "all_gather": "inverse",
    "scatter": "inverse",
    "reduce_scatter_out": "inverse",
}


class ReplayStall(RuntimeError):
    """No rank can make progress but streams remain — a truncated or
    internally inconsistent trace."""


@dataclass
class ScalePlan:
    """How to stretch a captured trace to a larger world.

    ``factor`` multiplies the world: the ``scale_group`` (default: the
    group spanning every captured rank) is re-priced at ``factor ×`` its
    captured size, while every *other* group is assumed replicated
    ``factor`` times across the projected world (its costs are unchanged
    and its traffic counts ``factor`` times in the totals).  This models
    the standard data-parallel scale-out where the captured world is one
    model replica and the world group carries the gradient traffic.
    """

    factor: int = 1
    #: ranks (captured global ids) of the group to widen; ``None`` selects
    #: the group spanning the whole captured world
    scale_group: Optional[Tuple[int, ...]] = None
    #: per-op overrides of :data:`DEFAULT_SCALING`
    payload_scaling: Dict[str, str] = field(default_factory=dict)
    #: multiplier on every non-comm clock advance (model a faster/slower
    #: accelerator without recapturing)
    compute_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError(f"scale factor must be >= 1, got {self.factor}")
        if self.compute_scale <= 0:
            raise ValueError("compute_scale must be positive")

    def scaling_for(self, op: str) -> str:
        return self.payload_scaling.get(op, DEFAULT_SCALING.get(op, "constant"))


@dataclass
class PricedOp:
    seconds: float
    wire_bytes: int
    elements: int
    algorithm: str


class RecordedPricer:
    """Fidelity pricer: every op costs exactly what the capture recorded."""

    scaled_gids: frozenset = frozenset()

    def collective(self, gid: int, rnd: Dict[str, Any]) -> PricedOp:
        return PricedOp(
            rnd["seconds"], rnd["wire_bytes"],
            rnd["wire_bytes"] // max(rnd["itemsize"], 1), rnd["algorithm"],
        )

    def p2p(self, gid: int, src: int, dst: int, nbytes: int,
            recorded: Tuple[int, int, float]) -> PricedOp:
        wire, elements, seconds = recorded
        return PricedOp(seconds, wire, elements, "direct")

    def multiplicity(self, gid: int) -> int:
        return 1


class ModelPricer:
    """Re-price the captured ops through a fabric cost model, widening the
    scale group by ``plan.factor``."""

    def __init__(self, trace: OpTrace, fabric: Fabric,
                 plan: Optional[ScalePlan] = None) -> None:
        self.trace = trace
        self.plan = plan or ScalePlan()
        self.model = ProjectedCostModel(fabric)
        self.algorithm = trace.comm_algorithm
        scale_ranks = self.plan.scale_group
        if scale_ranks is None:
            scale_ranks = tuple(range(trace.world_size))
        else:
            scale_ranks = tuple(scale_ranks)
        self.scaled_gids = frozenset(
            gid for gid, ranks in enumerate(trace.groups)
            if tuple(ranks) == scale_ranks
        )
        self._ranks2: Dict[int, Tuple[int, ...]] = {}
        self._cache: Dict[Tuple[int, str, int], PricedOp] = {}

    def group_ranks(self, gid: int) -> Tuple[int, ...]:
        ranks2 = self._ranks2.get(gid)
        if ranks2 is None:
            ranks = self.trace.groups[gid]
            if gid in self.scaled_gids and self.plan.factor > 1:
                ranks2 = tuple(range(len(ranks) * self.plan.factor))
            else:
                ranks2 = tuple(ranks)
            self._ranks2[gid] = ranks2
        return ranks2

    def multiplicity(self, gid: int) -> int:
        """How many copies of this group the projected world hosts."""
        return 1 if gid in self.scaled_gids else self.plan.factor

    def _recorded_arg(self, op: str, rnd: Dict[str, Any]) -> int:
        """Reconstruct the byte argument the group fed the cost model from
        the recorded per-rank payload sizes."""
        ns = rnd.get("nbytes") or [0]
        n = max(ns)
        if op == "scatter":
            # the group prices scatter on the per-member chunk of the
            # root's concatenated payload
            return n // max(len(ns), 1)
        if op == "all_gather_object":
            return 64  # _OBJECT_NBYTES
        return n

    def collective(self, gid: int, rnd: Dict[str, Any]) -> PricedOp:
        op = str(rnd["op"])
        n = self._recorded_arg(op, rnd)
        key = (gid, op, n)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        ranks = self.trace.groups[gid]
        ranks2 = self.group_ranks(gid)
        p, p2 = len(ranks), len(ranks2)
        if p2 != p and self.plan.scaling_for(op) == "inverse" and n:
            n = max(1, (n * p) // p2)
        cost = self._price(op, ranks2, n)
        priced = PricedOp(
            cost.seconds, cost.wire_bytes,
            cost.wire_elements(rnd.get("itemsize", 1)), cost.algorithm,
        )
        self._cache[key] = priced
        return priced

    def _price(self, op: str, ranks2: Sequence[int], n: int):
        m = self.model
        algo = self.algorithm
        if op == "all_reduce":
            return m.allreduce(ranks2, n, algo)
        if op == "all_gather":
            return m.allgather(ranks2, n, algo)
        if op == "reduce_scatter":
            return m.reduce_scatter(ranks2, n, algo)
        if op == "broadcast":
            return m.broadcast(ranks2, n, algo)
        if op == "reduce":
            return m.reduce(ranks2, n, algo)
        if op == "scatter":
            return m.scatter(ranks2[0], ranks2, n)
        if op == "gather":
            return m.gather(ranks2[0], ranks2, n)
        if op == "all_to_all":
            return m.all_to_all(ranks2, n)
        if op == "barrier":
            return m.barrier(ranks2)
        if op == "all_gather_object":
            return m.allgather(ranks2, 64)
        if op == "split":
            from repro.comm.cost import CollectiveCost
            return CollectiveCost(m.alpha, 0)
        if op == "ring_pass":
            from repro.comm.cost import CollectiveCost
            p2 = len(ranks2)
            if p2 < 2 or n == 0:
                return CollectiveCost(0.0, 0)
            seconds = 0.0
            wire = 0
            for i in range(p2):
                c = m.p2p(ranks2[i], ranks2[(i + 1) % p2], n)
                seconds = max(seconds, c.seconds)
                wire += c.wire_bytes
            return CollectiveCost(seconds, wire, "direct")
        # unknown op: price as an allreduce-shaped fallback
        return m.allreduce(ranks2, n, algo)

    def p2p(self, gid: int, src: int, dst: int, nbytes: int,
            recorded: Tuple[int, int, float]) -> PricedOp:
        _wire, elements, _seconds = recorded
        cost = self.model.p2p(src, dst, nbytes)
        return PricedOp(cost.seconds, cost.wire_bytes, elements, "direct")


@dataclass
class ReplayResult:
    trace: OpTrace
    plan: ScalePlan
    clocks: List[SimClock]
    streams: List[StreamClock]
    counters: Dict[int, CommCounters]
    multiplicity: Dict[int, int]

    @property
    def step_time(self) -> float:
        times = [c.time for c in self.clocks] + [s.time for s in self.streams]
        return max(times) if times else 0.0

    @property
    def target_world(self) -> int:
        return self.trace.world_size * self.plan.factor


class _RoundState:
    __slots__ = ("entries", "t_start", "t_end", "claimed", "priced")

    def __init__(self) -> None:
        self.entries: Dict[int, float] = {}
        self.t_start: Optional[float] = None
        self.t_end: Optional[float] = None
        self.claimed = 0
        self.priced: Optional[PricedOp] = None


class _ReplayHost:
    """Minimal stand-in runtime so ``Tracer.install`` can attach clock
    observers to the replay clocks."""

    def __init__(self, clocks: List[SimClock]) -> None:
        self.clocks = clocks
        self.tracer = None


class ReplayEngine:
    def __init__(self, trace: OpTrace, pricer: Any,
                 plan: Optional[ScalePlan] = None,
                 tracer: Optional[Any] = None) -> None:
        self.trace = trace
        self.pricer = pricer
        self.plan = plan or ScalePlan()
        self.tracer = tracer
        n = trace.world_size
        self.clocks = [SimClock() for _ in range(n)]
        self.streams = [StreamClock() for _ in range(n)]
        self.counters: Dict[int, CommCounters] = {
            gid: CommCounters() for gid in range(len(trace.groups))
        }
        self._tails: Dict[int, float] = {}
        self._p2p_tails: Dict[Tuple[int, int], float] = {}
        self._mailbox: Dict[Tuple[int, int, int, Any], deque] = {}
        self._rounds: Dict[Tuple[int, int], _RoundState] = {}
        self._sids: List[Dict[int, Tuple[int, float, float]]] = [
            {} for _ in range(n)
        ]
        self._pos = [0] * n
        if tracer is not None:
            tracer.install(_ReplayHost(self.clocks))

    # -- public ------------------------------------------------------------

    def run(self) -> ReplayResult:
        streams = self.trace.streams
        n = self.trace.world_size
        while True:
            progress = False
            done = True
            for rank in range(n):
                if self._pos[rank] < len(streams[rank]):
                    done = False
                    if self._drain(rank):
                        progress = True
            if done:
                break
            if not progress:
                stuck = {
                    r: streams[r][self._pos[r]][0]
                    for r in range(n) if self._pos[r] < len(streams[r])
                }
                raise ReplayStall(
                    f"replay stalled with pending events {stuck}: the trace "
                    "is truncated or internally inconsistent"
                )
        return ReplayResult(
            trace=self.trace, plan=self.plan, clocks=self.clocks,
            streams=self.streams, counters=self.counters,
            multiplicity={
                gid: self.pricer.multiplicity(gid)
                for gid in range(len(self.trace.groups))
            },
        )

    # -- event loop --------------------------------------------------------

    def _drain(self, rank: int) -> bool:
        stream = self.trace.streams[rank]
        made_progress = False
        while self._pos[rank] < len(stream):
            if not self._step(rank, stream[self._pos[rank]]):
                break
            self._pos[rank] += 1
            made_progress = True
        return made_progress

    def _step(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        """Execute one event for ``rank``; False means blocked."""
        tag = ev[0]
        if tag == "a":
            return self._ev_advance(rank, ev)
        if tag == "c":
            return self._ev_collective(rank, ev)
        if tag == "c1":
            return self._ev_solo(rank, ev)
        if tag == "ic":
            return self._ev_issue(rank, ev)
        if tag == "cw":
            return self._ev_coll_wait(rank, ev)
        if tag == "ps":
            return self._ev_send(rank, ev, advance=True)
        if tag == "pse":
            return self._ev_send(rank, ev, advance=False)
        if tag == "pw":
            self.clocks[rank].advance(ev[1], "comm")
            return True
        if tag == "pss":
            return self._ev_stream_send(rank, ev)
        if tag == "psw":
            return self._ev_stream_wait(rank, ev)
        if tag == "pr":
            return self._ev_recv(rank, ev)
        raise ReplayStall(f"unknown capture event tag {tag!r}")

    # -- per-event mirrors of group.py / communicator.py -------------------

    def _ev_advance(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, category, dt, label = ev
        clock = self.clocks[rank]
        scale = self.plan.compute_scale
        t0 = clock.time
        clock.advance(dt if scale == 1.0 else dt * scale, category)
        if self.tracer is not None and label is not None:
            self.tracer.annotate(rank, category, label, t0, clock.time)
        return True

    def _round(self, gid: int, seq: int) -> _RoundState:
        st = self._rounds.get((gid, seq))
        if st is None:
            st = _RoundState()
            self._rounds[(gid, seq)] = st
        return st

    def _finalize(self, gid: int, seq: int, st: _RoundState,
                  blocking: bool) -> None:
        rnd = self.trace.rounds[(gid, seq)]
        priced = self.pricer.collective(gid, rnd)
        t_base = max(st.entries.values())
        tail = self._tails.get(gid, 0.0)
        if tail > t_base:
            t_base = tail
        t_end = t_base + priced.seconds
        self._tails[gid] = t_end
        st.t_start = t_base
        st.t_end = t_end
        st.priced = priced
        if priced.wire_bytes:
            self.counters[gid].record(
                str(rnd["op"]), priced.wire_bytes, priced.elements,
                algorithm=priced.algorithm,
            )
        if not blocking:
            # async finalize occupies every member's comm stream now
            for g in self.trace.groups[gid]:
                self.streams[g].occupy(t_base, t_end)
            if self.tracer is not None:
                for local, g in enumerate(self.trace.groups[gid]):
                    self.tracer.annotate(
                        g, "comm_stream", str(rnd["op"]), t_base, t_end,
                        primary=(local == 0), algorithm=priced.algorithm,
                    )

    def _ev_collective(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, gid, seq = ev
        st = self._round(gid, seq)
        clock = self.clocks[rank]
        if rank not in st.entries:
            st.entries[rank] = clock.time
        if st.t_end is None:
            if len(st.entries) < len(self.trace.groups[gid]):
                return False
            self._finalize(gid, seq, st, blocking=True)
        t_entry = st.entries[rank]
        clock.sync_to(st.t_end, "comm")
        if self.tracer is not None:
            rnd = self.trace.rounds[(gid, seq)]
            self.tracer.annotate(
                rank, "collective", str(rnd["op"]), t_entry, st.t_end,
                primary=(rank == self.trace.groups[gid][0]),
                algorithm=st.priced.algorithm if st.priced else "",
            )
        st.claimed += 1
        if st.claimed == len(self.trace.groups[gid]):
            del self._rounds[(gid, seq)]
        return True

    def _ev_solo(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, gid, info = ev
        priced = self.pricer.collective(gid, info)
        clock = self.clocks[rank]
        t0 = clock.time
        tail = self._tails.get(gid, 0.0)
        if tail > clock.time:
            clock.sync_to(tail, "comm")
        clock.advance(priced.seconds, "comm")
        self._tails[gid] = clock.time
        if priced.wire_bytes:
            self.counters[gid].record(
                str(info["op"]), priced.wire_bytes, priced.elements,
                algorithm=priced.algorithm,
            )
        if self.tracer is not None:
            self.tracer.annotate(
                rank, "collective", str(info["op"]), t0, clock.time,
                primary=True, algorithm=priced.algorithm,
            )
        return True

    def _ev_issue(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, gid, seq = ev
        st = self._round(gid, seq)
        st.entries[rank] = self.clocks[rank].time
        if len(st.entries) == len(self.trace.groups[gid]):
            self._finalize(gid, seq, st, blocking=False)
        return True

    def _ev_coll_wait(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, gid, seq = ev
        st = self._rounds.get((gid, seq))
        if st is None or st.t_end is None:
            return False
        rnd = self.trace.rounds[(gid, seq)]
        clock = self.clocks[rank]
        duration = st.t_end - st.t_start
        t_wait = clock.time
        exposed = min(duration, max(0.0, st.t_end - t_wait))
        clock.sync_to(st.t_end, "comm")
        self.streams[rank].note_exposed(exposed)
        self.counters[gid].record_overlap(
            str(rnd["op"]) or "collective", exposed,
            max(0.0, duration - exposed),
        )
        if self.tracer is not None and exposed > 0.0:
            self.tracer.annotate(
                rank, "overlap", f"wait:{rnd['op']}", t_wait, st.t_end,
                exposed=exposed,
            )
        st.claimed += 1
        if st.claimed == len(self.trace.groups[gid]):
            del self._rounds[(gid, seq)]
        return True

    def _ev_send(self, rank: int, ev: Tuple[Any, ...], advance: bool) -> bool:
        _t, gid, dst, tag, nbytes, wire, elements, seconds = ev
        priced = self.pricer.p2p(gid, rank, dst, nbytes,
                                 (wire, elements, seconds))
        clock = self.clocks[rank]
        t0 = clock.time
        t_avail = clock.time + priced.seconds
        self.counters[gid].record("p2p", priced.wire_bytes, priced.elements)
        self._mailbox.setdefault((gid, rank, dst, tag), deque()).append(t_avail)
        if advance:
            clock.advance(priced.seconds, "comm")
            if self.tracer is not None:
                self.tracer.annotate(
                    rank, "p2p", f"send->{dst}", t0, clock.time, bytes=nbytes
                )
        return True

    def _ev_stream_send(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, gid, sid, dst, tag, nbytes, wire, elements, seconds = ev
        priced = self.pricer.p2p(gid, rank, dst, nbytes,
                                 (wire, elements, seconds))
        clock = self.clocks[rank]
        tail = self._p2p_tails.get((gid, rank), 0.0)
        start = max(clock.time, tail)
        t_end = start + priced.seconds
        self.counters[gid].record("p2p", priced.wire_bytes, priced.elements)
        self._mailbox.setdefault((gid, rank, dst, tag), deque()).append(t_end)
        self._p2p_tails[(gid, rank)] = t_end
        self.streams[rank].occupy(start, t_end)
        self._sids[rank][sid] = (gid, t_end, priced.seconds)
        if self.tracer is not None:
            self.tracer.annotate(
                rank, "comm_stream", f"isend->{dst}", start, t_end,
                primary=True, bytes=nbytes,
            )
        return True

    def _ev_stream_wait(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, sid = ev
        gid, t_end, seconds = self._sids[rank].pop(sid)
        clock = self.clocks[rank]
        t_wait = clock.time
        exposed = min(seconds, max(0.0, t_end - t_wait))
        clock.sync_to(t_end, "comm")
        self.streams[rank].note_exposed(exposed)
        self.counters[gid].record_overlap(
            "p2p", exposed, max(0.0, seconds - exposed)
        )
        if self.tracer is not None and exposed > 0.0:
            self.tracer.annotate(
                rank, "overlap", "wait:p2p", t_wait, t_end, exposed=exposed
            )
        return True

    def _ev_recv(self, rank: int, ev: Tuple[Any, ...]) -> bool:
        _t, gid, src, tag = ev
        q = self._mailbox.get((gid, src, rank, tag))
        if not q:
            return False
        t_avail = q.popleft()
        clock = self.clocks[rank]
        t0 = clock.time
        clock.sync_to(t_avail, "comm")
        if self.tracer is not None:
            self.tracer.annotate(rank, "p2p", f"recv<-{src}", t0, clock.time)
        return True
