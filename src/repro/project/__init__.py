"""Projection execution mode: capture once, replay anywhere.

``repro.project`` splits *what ops happen per rank* from *who executes
them*.  A :func:`capture_run` executes an SPMD program on real threads at a
small world size and records each rank's op stream (compute advances,
priced collectives, stream issue/wait events).  :func:`project` then
replays that stream analytically — no thread per rank — either

* in **recorded** mode, reproducing the captured run's clocks, stream
  occupancy and counters bit-for-bit (the fidelity contract the parity
  tests enforce), or
* in **model** mode, re-pricing every communication op through a
  :class:`Fabric` cost model, optionally widening the world group by a
  :class:`ScalePlan` factor — projecting an 8-rank capture to 1024+ ranks
  in milliseconds.

Typical use::

    trace = capture_run(cluster, step_fn, world_size=8)
    report = project(trace, factor=128,
                     fabric=Fabric.from_cluster(big_cluster))
    print(report.format())   # step time, comm volume, hidden-comm %
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.project.axes import derive_axis_groups, hybrid_plan
from repro.project.capture import CaptureRecorder, OpTrace
from repro.project.fabric import Fabric, ProjectedCostModel
from repro.project.replay import (
    DEFAULT_SCALING,
    PAYLOAD_RULES,
    SCALABLE_OPS,
    ModelPricer,
    RecordedPricer,
    ReplayEngine,
    ReplayResult,
    ReplayStall,
    ResolvedAxis,
    ScaleAxis,
    ScalePlan,
)
from repro.project.report import (
    AxisProjection,
    ProjectionReport,
    RankProjection,
    build_report,
)

__all__ = [
    "CaptureRecorder",
    "OpTrace",
    "Fabric",
    "ProjectedCostModel",
    "ScaleAxis",
    "ScalePlan",
    "ResolvedAxis",
    "RecordedPricer",
    "ModelPricer",
    "ReplayEngine",
    "ReplayResult",
    "ReplayStall",
    "DEFAULT_SCALING",
    "PAYLOAD_RULES",
    "SCALABLE_OPS",
    "AxisProjection",
    "ProjectionReport",
    "RankProjection",
    "build_report",
    "capture_run",
    "derive_axis_groups",
    "hybrid_plan",
    "price_plan",
    "project",
    "project_launch",
]


def capture_run(
    cluster: Any,
    fn: Callable,
    *,
    world_size: Optional[int] = None,
    materialize: bool = False,
    seed: int = 0,
    comm_algorithm: str = "ring",
    comm_overlap: bool = False,
    reset_memory: bool = True,
) -> Tuple[List[Any], OpTrace]:
    """Run ``fn`` SPMD over ``cluster`` with capture armed; returns
    ``(per-rank results, OpTrace)``.

    ``reset_memory`` clears the cluster's device memory pools first so the
    trace's peak-memory snapshot reflects this run alone (``run`` itself
    never resets pools)."""
    from repro.runtime.spmd import SpmdRuntime

    if reset_memory:
        cluster.reset()
    rec = CaptureRecorder()
    rt = SpmdRuntime(
        cluster,
        world_size,
        comm_algorithm=comm_algorithm,
        comm_overlap=comm_overlap,
        capture=rec,
    )
    try:
        results = rt.run(fn, materialize=materialize, seed=seed)
    finally:
        rec.uninstall()
    return results, rec.trace()


def project(
    trace: OpTrace,
    *,
    factor: int = 1,
    axes: Optional[Any] = None,
    plan: Optional[ScalePlan] = None,
    fabric: Optional[Fabric] = None,
    mode: str = "model",
    tracer: Optional[Any] = None,
) -> ProjectionReport:
    """Replay ``trace`` analytically and aggregate a :class:`ProjectionReport`.

    ``mode="recorded"`` replays the captured costs unchanged (requires
    ``factor == 1``); ``mode="model"`` re-prices through ``fabric``
    (default: :meth:`Fabric.from_cluster` of the captured cluster) with the
    world group widened ``factor ×``, or — when ``axes`` maps axis names to
    factors (ints or :class:`ScaleAxis`) — with every named axis widened at
    once (``ScalePlan(axes=...)``).  Pass ``plan`` for full control (which
    groups scale, payload-scaling overrides, sharded bytes, compute
    rescaling); ``factor``/``axes`` are ignored when ``plan`` is given.
    ``tracer`` records a projected per-rank timeline."""
    if plan is None:
        plan = ScalePlan(axes=axes) if axes is not None \
            else ScalePlan(factor=factor)
    if mode == "recorded":
        if plan.total_factor() != 1:
            raise ValueError(
                "recorded mode replays the captured costs and cannot scale "
                f"the world (factor={plan.total_factor()}); use mode='model'"
            )
        pricer: Any = RecordedPricer()
    elif mode == "model":
        if fabric is None:
            fabric = Fabric.from_cluster(trace.cluster)
        pricer = ModelPricer(trace, fabric, plan)
    else:
        raise ValueError(f"unknown projection mode {mode!r}; "
                         "choose 'recorded' or 'model'")
    result = ReplayEngine(trace, pricer, plan, tracer=tracer).run()
    return build_report(result, mode)


def price_plan(
    trace: OpTrace,
    *,
    axes: Optional[Any] = None,
    tensor: int = 1,
    pipeline: int = 1,
    sharded_bytes: Optional[Any] = None,
    compute_scale: float = 1.0,
    fabric: Optional[Fabric] = None,
    tracer: Optional[Any] = None,
) -> ProjectionReport:
    """Price a captured op trace at a hybrid target scale — the strategy
    compiler's refinement entry point (:mod:`repro.autopar.compiler`).

    With no ``axes`` (or all factors 1) the trace is replayed in
    **recorded** mode: the report's step time reproduces the captured
    threaded run bit-for-bit.  Otherwise a hybrid
    :class:`~repro.project.replay.ScalePlan` is built over the trace's
    DP x TP x PP layout (``tensor``/``pipeline`` describe the captured
    decomposition) and replayed in **model** mode against ``fabric``
    (default: the captured cluster's).  ``sharded_bytes`` (per-axis
    captured bytes the axis partitions) and ``compute_scale`` pass through
    to :func:`hybrid_plan`."""
    factors = dict(axes or {})
    if not trace.axes:
        trace.axes = derive_axis_groups(
            trace.world_size, tensor=tensor, pipeline=pipeline
        )
    if not factors or all(k == 1 for k in factors.values()):
        return project(trace, mode="recorded", tracer=tracer)
    plan = hybrid_plan(
        factors, world=trace.world_size, tensor=tensor, pipeline=pipeline,
        sharded_bytes=sharded_bytes, compute_scale=compute_scale,
    )
    if fabric is None:
        fabric = Fabric.from_cluster(trace.cluster)
    return project(trace, plan=plan, fabric=fabric, mode="model",
                   tracer=tracer)


def project_launch(
    config: Any,
    cluster: Any,
    fn: Callable,
    *,
    world_size: Optional[int] = None,
    materialize: bool = False,
    fabric: Optional[Fabric] = None,
    tracer: Optional[Any] = None,
) -> ProjectionReport:
    """The ``mode="project"`` backend of :func:`repro.launch`: capture
    ``fn`` at the cluster's (or ``world_size``'s) scale, then project to
    ``config.project.target_world``.

    Without ``project.axes`` the target world must be a multiple of the
    captured world — the quotient becomes the :class:`ScalePlan` factor.
    With ``project.axes`` a hybrid plan is built over the Config's
    DP x TP x PP layout (the trace's axis groups are derived from the same
    rank-layout formulas the :class:`ParallelContext` uses) and the target
    world is ``world * product of factors``; an explicit ``target_world``
    must agree."""
    from repro.config import Config
    from repro.context.parallel_context import ParallelContext
    from repro.runtime.spmd import RankContext

    cfg = config if isinstance(config, Config) else Config.from_dict(config)
    world = world_size if world_size is not None else cluster.world_size
    axes_factors = cfg.project.axes
    if axes_factors is None:
        target = cfg.project.target_world or world
        if target % world != 0:
            raise ValueError(
                f"project.target_world {target} must be a multiple of the "
                f"captured world size {world}"
            )
    else:
        total = 1
        for k in axes_factors.values():
            total *= k
        target = world * total
        if cfg.project.target_world not in (None, target):
            raise ValueError(
                f"project.target_world {cfg.project.target_world} "
                f"disagrees with project.axes {axes_factors}: a "
                f"{world}-rank capture projects to {target} ranks"
            )

    def wrapper(ctx: RankContext) -> Any:
        pc = ParallelContext(ctx, cfg)
        return fn(ctx, pc)

    _results, trace = capture_run(
        cluster,
        wrapper,
        world_size=world,
        materialize=materialize,
        seed=cfg.seed,
        comm_algorithm=cfg.comm.algorithm or "ring",
        comm_overlap=cfg.comm.overlap,
    )
    trace.axes = derive_axis_groups(
        world, tensor=cfg.tensor.size, pipeline=cfg.pipeline
    )
    if axes_factors is not None:
        plan = hybrid_plan(
            dict(axes_factors), world=world,
            tensor=cfg.tensor.size, pipeline=cfg.pipeline,
        )
        if fabric is None:
            fabric = Fabric.from_cluster(trace.cluster)
        return project(trace, plan=plan, fabric=fabric, mode="model",
                       tracer=tracer)
    factor = target // world
    mode = "recorded" if factor == 1 and fabric is None else "model"
    return project(
        trace, factor=factor, fabric=fabric, mode=mode, tracer=tracer
    )
