"""Hybrid-axis helpers: derive the DP x TP x PP group families of a
captured run and build the matching :class:`~repro.project.replay.ScalePlan`.

The rank layout mirrors :class:`~repro.context.parallel_context.ParallelContext`:

    global_rank = dp_rank * (pp * tp) + pp_rank * tp + tp_rank

so tensor groups are runs of consecutive ranks, pipeline groups are
``tp``-strided chains inside one replica, and data groups stride across
replicas by ``tp * pp``.  :func:`derive_axis_groups` reproduces exactly the
rank tuples ``ParallelContext._build_basic_groups`` communicates over,
which is what lets a :class:`ScalePlan` axis resolve a captured group by
*value* rather than by trusting labels.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.project.replay import ScaleAxis, ScalePlan

AxisGroups = Dict[str, Tuple[Tuple[int, ...], ...]]


def derive_axis_groups(
    world: int, tensor: int = 1, pipeline: int = 1
) -> AxisGroups:
    """The ``dp`` / ``tp`` / ``pp`` group families of a ``world``-rank run
    with tensor degree ``tensor`` and pipeline depth ``pipeline``.

    Degree-1 axes still appear (as singleton groups) so a plan may scale
    an axis the capture did not parallelize — e.g. project a pure-DP
    capture onto a DP x TP grid is *not* supported (a singleton tp group
    has no captured traffic to widen), but resolving it is, and the
    projection is then a no-op on that axis's groups."""
    tp, pp = tensor, pipeline
    if world % (tp * pp) != 0:
        raise ValueError(
            f"world size {world} is not divisible by tensor*pipeline "
            f"degree {tp}*{pp}"
        )
    dp = world // (tp * pp)
    dp_groups = tuple(
        tuple(d * tp * pp + p * tp + t for d in range(dp))
        for p in range(pp) for t in range(tp)
    )
    tp_groups = tuple(
        tuple(d * tp * pp + p * tp + t for t in range(tp))
        for d in range(dp) for p in range(pp)
    )
    pp_groups = tuple(
        tuple(d * tp * pp + p * tp + t for p in range(pp))
        for d in range(dp) for t in range(tp)
    )
    return {"dp": dp_groups, "tp": tp_groups, "pp": pp_groups}


def hybrid_plan(
    factors: Dict[str, int],
    *,
    world: int,
    tensor: int = 1,
    pipeline: int = 1,
    sharded_bytes: Optional[Dict[str, int]] = None,
    payload_scaling: Optional[Dict[str, Dict[str, str]]] = None,
    compute_scale: float = 1.0,
) -> ScalePlan:
    """Build a hybrid :class:`ScalePlan` for a capture with the given
    DP x TP x PP layout.

    ``factors`` maps ``dp`` / ``tp`` / ``pp`` to widening factors;
    ``sharded_bytes`` (optional, same keys) declares the captured per-rank
    bytes each axis partitions (ZeRO state for ``dp``, weight shards for
    ``tp``), and ``payload_scaling`` per-axis op rules.  The ``pp`` axis is
    marked chain-style: widening deepens the pipeline, so p2p boundary
    traffic scales by ``(k*s - 1)/(s - 1)`` instead of the plain factor."""
    groups = derive_axis_groups(world, tensor=tensor, pipeline=pipeline)
    unknown = set(factors) - set(groups)
    if unknown:
        raise ValueError(
            f"unknown axis name(s) {sorted(unknown)}; "
            f"valid axes: {sorted(groups)}"
        )
    sharded = sharded_bytes or {}
    rules = payload_scaling or {}
    bad = (set(sharded) | set(rules)) - set(groups)
    if bad:
        raise ValueError(
            f"unknown axis name(s) {sorted(bad)} in sharded_bytes/"
            f"payload_scaling; valid axes: {sorted(groups)}"
        )
    axes = {
        name: ScaleAxis(
            factor=k,
            groups=groups[name],
            payload_scaling=dict(rules.get(name, {})),
            sharded_bytes=int(sharded.get(name, 0)),
            chain=(name == "pp"),
        )
        for name, k in factors.items()
    }
    return ScalePlan(axes=axes, compute_scale=compute_scale)
