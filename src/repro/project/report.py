"""Projection results: aggregate a replay into per-role and whole-world
numbers.

The captured ranks are *roles*: under a :class:`~repro.project.replay.ScalePlan`
with ``factor > 1`` each unscaled group (and each captured rank's compute
timeline and memory footprint) stands for ``factor`` identical copies in the
projected world, while the scaled group's traffic was re-priced at the full
projected size and counts once.  Totals therefore weight each group's
counters by its multiplicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.analytic.memory_model import project_peak_memory
from repro.comm.counters import CommCounters

from repro.project.replay import ReplayResult


def _merge_counts(total: Dict[str, int], part: Dict[str, int], mult: int) -> None:
    for k, v in part.items():
        total[k] = total.get(k, 0) + v * mult


@dataclass
class RankProjection:
    """One captured role's projected timeline."""

    rank: int
    total_time: float
    breakdown: Dict[str, float]
    stream: Dict[str, float]
    peak_memory_bytes: int


@dataclass
class AxisProjection:
    """Traffic attributed to one named plan axis: the multiplicity- and
    chain-weighted counters of the captured groups the axis owns."""

    name: str
    factor: int
    captured_degree: int
    projected_degree: int
    num_groups: int
    #: replica count of each of this axis's groups in the projected world
    #: (the product of the other axes' factors)
    multiplicity: int
    chain: bool = False
    sharded_bytes: int = 0
    wire_bytes: int = 0
    wire_elements: int = 0
    comm_calls: int = 0
    by_op_bytes: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "factor": self.factor,
            "captured_degree": self.captured_degree,
            "projected_degree": self.projected_degree,
            "num_groups": self.num_groups,
            "multiplicity": self.multiplicity,
            "chain": self.chain,
            "sharded_bytes": self.sharded_bytes,
            "wire_bytes": self.wire_bytes,
            "wire_elements": self.wire_elements,
            "comm_calls": self.comm_calls,
            "by_op_bytes": dict(self.by_op_bytes),
        }


@dataclass
class ProjectionReport:
    """What a projection run reports (the BENCH/README surface)."""

    source_world: int
    target_world: int
    factor: int
    mode: str
    step_time: float
    per_rank: List[RankProjection]
    #: whole projected world, multiplicity-weighted
    wire_bytes_total: int = 0
    wire_elements_total: int = 0
    comm_calls_total: int = 0
    by_op_bytes: Dict[str, int] = field(default_factory=dict)
    by_op_elements: Dict[str, int] = field(default_factory=dict)
    by_op_calls: Dict[str, int] = field(default_factory=dict)
    by_algorithm_bytes: Dict[str, int] = field(default_factory=dict)
    exposed_comm_seconds: float = 0.0
    overlapped_comm_seconds: float = 0.0
    peak_memory_bytes: int = 0
    #: per captured group: multiplicity-1 counters for parity checks
    group_counters: Dict[int, CommCounters] = field(default_factory=dict)
    group_multiplicity: Dict[int, int] = field(default_factory=dict)
    #: per named plan axis (empty for recorded and legacy-factor plans)
    axes: List[AxisProjection] = field(default_factory=list)

    @property
    def hidden_comm_fraction(self) -> float:
        """Fraction of stream-comm seconds hidden under compute."""
        total = self.exposed_comm_seconds + self.overlapped_comm_seconds
        if total <= 0.0:
            return 0.0
        return self.overlapped_comm_seconds / total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source_world": self.source_world,
            "target_world": self.target_world,
            "factor": self.factor,
            "mode": self.mode,
            "step_time": self.step_time,
            "wire_bytes_total": self.wire_bytes_total,
            "wire_elements_total": self.wire_elements_total,
            "comm_calls_total": self.comm_calls_total,
            "by_op_bytes": dict(self.by_op_bytes),
            "by_op_elements": dict(self.by_op_elements),
            "by_algorithm_bytes": dict(self.by_algorithm_bytes),
            "exposed_comm_seconds": self.exposed_comm_seconds,
            "overlapped_comm_seconds": self.overlapped_comm_seconds,
            "hidden_comm_fraction": self.hidden_comm_fraction,
            "peak_memory_bytes": self.peak_memory_bytes,
            "axes": [a.to_dict() for a in self.axes],
            "per_rank": [
                {
                    "rank": r.rank,
                    "total_time": r.total_time,
                    "breakdown": dict(r.breakdown),
                    "stream": dict(r.stream),
                    "peak_memory_bytes": r.peak_memory_bytes,
                }
                for r in self.per_rank
            ],
        }

    def format(self) -> str:
        lines = [
            f"projection: {self.source_world} captured ranks -> "
            f"{self.target_world} projected ranks ({self.mode} pricing)",
            f"  step time           {self.step_time * 1e3:10.3f} ms",
            f"  peak memory / rank  {self.peak_memory_bytes / 2**30:10.3f} GiB",
            f"  comm volume         {self.wire_bytes_total / 2**30:10.3f} GiB "
            f"({self.comm_calls_total} calls)",
            f"  hidden comm         {self.hidden_comm_fraction * 100:9.1f} %",
        ]
        for op in sorted(self.by_op_bytes):
            lines.append(
                f"    {op:<18} {self.by_op_bytes[op] / 2**20:12.3f} MiB"
            )
        for ax in self.axes:
            lines.append(
                f"  axis {ax.name:<6} x{ax.factor:<5} "
                f"degree {ax.captured_degree} -> {ax.projected_degree}, "
                f"{ax.num_groups} group(s) x{ax.multiplicity} replicas, "
                f"{ax.wire_bytes / 2**20:10.3f} MiB"
            )
        return "\n".join(lines)


def _gid_weights(result: ReplayResult, gid: int):
    """(multiplicity, p2p (num, den)) weights for one captured group."""
    mult = result.multiplicity.get(gid, 1)
    num, den = result.p2p_scale.get(gid, (1, 1))
    return mult, num, den


def _weighted(op: str, v: int, mult: int, num: int, den: int) -> int:
    """Replica-weighted counter value; captured p2p on chain-deepened
    groups additionally scales by the stage-boundary ratio."""
    if op == "p2p" and (num, den) != (1, 1):
        return (v * mult * num) // den
    return v * mult


def build_report(result: ReplayResult, mode: str) -> ProjectionReport:
    trace = result.trace
    axes = list(result.axes.values())
    per_rank = []
    for r in range(trace.world_size):
        captured_peak = int(trace.peak_memory[r])
        shards = [
            (ax.sharded_bytes, ax.factor) for ax in axes
            if ax.sharded_bytes > 0 and ax.factor > 1 and r in ax.rank_set
        ]
        peak = (
            project_peak_memory(captured_peak, shards) if shards
            else captured_peak
        )
        per_rank.append(RankProjection(
            rank=r,
            total_time=max(result.clocks[r].time, result.streams[r].time),
            breakdown=result.clocks[r].breakdown(),
            stream=result.streams[r].breakdown(),
            peak_memory_bytes=peak,
        ))
    report = ProjectionReport(
        source_world=trace.world_size,
        target_world=result.target_world,
        factor=result.plan.total_factor(),
        mode=mode,
        step_time=result.step_time,
        per_rank=per_rank,
        peak_memory_bytes=(
            max(r.peak_memory_bytes for r in per_rank) if per_rank else 0
        ),
        group_counters=dict(result.counters),
        group_multiplicity=dict(result.multiplicity),
    )
    for gid, counters in result.counters.items():
        mult, num, den = _gid_weights(result, gid)
        if (num, den) == (1, 1):
            # exact integer path shared with the legacy single-factor plan
            report.wire_bytes_total += counters.bytes_total * mult
            report.wire_elements_total += counters.elements_total * mult
            report.comm_calls_total += counters.calls_total * mult
            _merge_counts(report.by_op_bytes, counters.by_op_bytes, mult)
            _merge_counts(report.by_op_elements, counters.by_op_elements, mult)
            _merge_counts(report.by_op_calls, counters.by_op_calls, mult)
        else:
            # chain-deepened group: totals re-derived from the per-op maps
            # so the p2p slice keeps integer bytes under the (num, den)
            # boundary ratio
            for k, v in counters.by_op_bytes.items():
                w = _weighted(k, v, mult, num, den)
                report.by_op_bytes[k] = report.by_op_bytes.get(k, 0) + w
                report.wire_bytes_total += w
            for k, v in counters.by_op_elements.items():
                w = _weighted(k, v, mult, num, den)
                report.by_op_elements[k] = report.by_op_elements.get(k, 0) + w
                report.wire_elements_total += w
            for k, v in counters.by_op_calls.items():
                w = _weighted(k, v, mult, num, den)
                report.by_op_calls[k] = report.by_op_calls.get(k, 0) + w
                report.comm_calls_total += w
        _merge_counts(
            report.by_algorithm_bytes, counters.by_algorithm_bytes, mult
        )
        report.exposed_comm_seconds += counters.exposed_seconds_total * mult
        report.overlapped_comm_seconds += (
            counters.overlapped_seconds_total * mult
        )
    # per-axis attribution: each named axis owns the groups it resolved
    world = tuple(range(trace.world_size))
    for ax in axes:
        if ax.synthetic:
            continue
        other = 1
        for other_ax in axes:
            if other_ax.name != ax.name:
                other *= other_ax.factor
        proj = AxisProjection(
            name=ax.name,
            factor=ax.factor,
            captured_degree=ax.captured_degree,
            projected_degree=ax.captured_degree * ax.factor,
            num_groups=len(ax.groups),
            multiplicity=other,
            chain=ax.chain,
            sharded_bytes=ax.sharded_bytes,
        )
        for gid, counters in result.counters.items():
            key = tuple(trace.groups[gid])
            if key not in ax.group_set and key != world:
                continue
            mult, num, den = _gid_weights(result, gid)
            for k, v in counters.by_op_bytes.items():
                w = _weighted(k, v, mult, num, den)
                proj.by_op_bytes[k] = proj.by_op_bytes.get(k, 0) + w
                proj.wire_bytes += w
            for k, v in counters.by_op_elements.items():
                proj.wire_elements += _weighted(k, v, mult, num, den)
            for k, v in counters.by_op_calls.items():
                proj.comm_calls += _weighted(k, v, mult, num, den)
        report.axes.append(proj)
    return report
