"""Projection results: aggregate a replay into per-role and whole-world
numbers.

The captured ranks are *roles*: under a :class:`~repro.project.replay.ScalePlan`
with ``factor > 1`` each unscaled group (and each captured rank's compute
timeline and memory footprint) stands for ``factor`` identical copies in the
projected world, while the scaled group's traffic was re-priced at the full
projected size and counts once.  Totals therefore weight each group's
counters by its multiplicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.comm.counters import CommCounters

from repro.project.replay import ReplayResult


def _merge_counts(total: Dict[str, int], part: Dict[str, int], mult: int) -> None:
    for k, v in part.items():
        total[k] = total.get(k, 0) + v * mult


@dataclass
class RankProjection:
    """One captured role's projected timeline."""

    rank: int
    total_time: float
    breakdown: Dict[str, float]
    stream: Dict[str, float]
    peak_memory_bytes: int


@dataclass
class ProjectionReport:
    """What a projection run reports (the BENCH/README surface)."""

    source_world: int
    target_world: int
    factor: int
    mode: str
    step_time: float
    per_rank: List[RankProjection]
    #: whole projected world, multiplicity-weighted
    wire_bytes_total: int = 0
    wire_elements_total: int = 0
    comm_calls_total: int = 0
    by_op_bytes: Dict[str, int] = field(default_factory=dict)
    by_op_elements: Dict[str, int] = field(default_factory=dict)
    by_op_calls: Dict[str, int] = field(default_factory=dict)
    by_algorithm_bytes: Dict[str, int] = field(default_factory=dict)
    exposed_comm_seconds: float = 0.0
    overlapped_comm_seconds: float = 0.0
    peak_memory_bytes: int = 0
    #: per captured group: multiplicity-1 counters for parity checks
    group_counters: Dict[int, CommCounters] = field(default_factory=dict)
    group_multiplicity: Dict[int, int] = field(default_factory=dict)

    @property
    def hidden_comm_fraction(self) -> float:
        """Fraction of stream-comm seconds hidden under compute."""
        total = self.exposed_comm_seconds + self.overlapped_comm_seconds
        if total <= 0.0:
            return 0.0
        return self.overlapped_comm_seconds / total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source_world": self.source_world,
            "target_world": self.target_world,
            "factor": self.factor,
            "mode": self.mode,
            "step_time": self.step_time,
            "wire_bytes_total": self.wire_bytes_total,
            "wire_elements_total": self.wire_elements_total,
            "comm_calls_total": self.comm_calls_total,
            "by_op_bytes": dict(self.by_op_bytes),
            "by_op_elements": dict(self.by_op_elements),
            "by_algorithm_bytes": dict(self.by_algorithm_bytes),
            "exposed_comm_seconds": self.exposed_comm_seconds,
            "overlapped_comm_seconds": self.overlapped_comm_seconds,
            "hidden_comm_fraction": self.hidden_comm_fraction,
            "peak_memory_bytes": self.peak_memory_bytes,
            "per_rank": [
                {
                    "rank": r.rank,
                    "total_time": r.total_time,
                    "breakdown": dict(r.breakdown),
                    "stream": dict(r.stream),
                    "peak_memory_bytes": r.peak_memory_bytes,
                }
                for r in self.per_rank
            ],
        }

    def format(self) -> str:
        lines = [
            f"projection: {self.source_world} captured ranks -> "
            f"{self.target_world} projected ranks ({self.mode} pricing)",
            f"  step time           {self.step_time * 1e3:10.3f} ms",
            f"  peak memory / rank  {self.peak_memory_bytes / 2**30:10.3f} GiB",
            f"  comm volume         {self.wire_bytes_total / 2**30:10.3f} GiB "
            f"({self.comm_calls_total} calls)",
            f"  hidden comm         {self.hidden_comm_fraction * 100:9.1f} %",
        ]
        for op in sorted(self.by_op_bytes):
            lines.append(
                f"    {op:<18} {self.by_op_bytes[op] / 2**20:12.3f} MiB"
            )
        return "\n".join(lines)


def build_report(result: ReplayResult, mode: str) -> ProjectionReport:
    trace = result.trace
    per_rank = [
        RankProjection(
            rank=r,
            total_time=max(result.clocks[r].time, result.streams[r].time),
            breakdown=result.clocks[r].breakdown(),
            stream=result.streams[r].breakdown(),
            peak_memory_bytes=int(trace.peak_memory[r]),
        )
        for r in range(trace.world_size)
    ]
    report = ProjectionReport(
        source_world=trace.world_size,
        target_world=result.target_world,
        factor=result.plan.factor,
        mode=mode,
        step_time=result.step_time,
        per_rank=per_rank,
        peak_memory_bytes=max(trace.peak_memory) if trace.peak_memory else 0,
        group_counters=dict(result.counters),
        group_multiplicity=dict(result.multiplicity),
    )
    for gid, counters in result.counters.items():
        mult = result.multiplicity.get(gid, 1)
        report.wire_bytes_total += counters.bytes_total * mult
        report.wire_elements_total += counters.elements_total * mult
        report.comm_calls_total += counters.calls_total * mult
        _merge_counts(report.by_op_bytes, counters.by_op_bytes, mult)
        _merge_counts(report.by_op_elements, counters.by_op_elements, mult)
        _merge_counts(report.by_op_calls, counters.by_op_calls, mult)
        _merge_counts(
            report.by_algorithm_bytes, counters.by_algorithm_bytes, mult
        )
        report.exposed_comm_seconds += counters.exposed_seconds_total * mult
        report.overlapped_comm_seconds += (
            counters.overlapped_seconds_total * mult
        )
    return report
