"""Closed-form fabric model for pricing collectives at projected scale.

The real :class:`~repro.comm.cost.CostModel` walks the cluster's networkx
topology per member pair, which is fine at 2–64 ranks but quadratic in the
group size — pricing a single 4096-rank all-reduce that way would dominate
the projection budget.  A :class:`Fabric` abstracts the cluster down to the
five numbers the cost formulas actually consume (intra/inter-node bandwidth
and latency, node size), and :class:`ProjectedCostModel` re-implements the
topology-probing helpers of ``CostModel`` as O(1)/O(k)-in-node-count
closed forms **while inheriting every cost formula unchanged** — ring,
tree and hierarchical algorithm math is byte-identical to the real model,
so a projection priced on a :meth:`Fabric.from_cluster` of the captured
cluster reproduces the captured costs exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.comm.cost import CollectiveCost, CostModel


@dataclass(frozen=True)
class Fabric:
    """Two-level cluster abstraction: nodes of ``node_size`` devices with
    ``intra``-node links, bridged by ``inter``-node links."""

    node_size: int
    intra_bw: float
    intra_lat: float
    inter_bw: float
    inter_lat: float
    alpha: float = 5e-6
    bw_ramp_time: float = 1.6e-4
    h2d_bw: float = 16e9

    @classmethod
    def uniform(cls, bandwidth: float = 200e9, latency: float = 2e-6,
                alpha: float = 5e-6, bw_ramp_time: float = 1.6e-4,
                h2d_bw: float = 16e9) -> "Fabric":
        """A flat fabric: every pair of ranks sees the same link (one
        infinitely large node)."""
        return cls(
            node_size=1 << 62, intra_bw=bandwidth, intra_lat=latency,
            inter_bw=bandwidth, inter_lat=latency,
            alpha=alpha, bw_ramp_time=bw_ramp_time, h2d_bw=h2d_bw,
        )

    @classmethod
    def from_cluster(cls, cluster) -> "Fabric":
        """Distill a :class:`~repro.cluster.machine.ClusterSpec` into a
        fabric by sampling representative intra- and inter-node paths."""
        by_node = {}
        for gpu in cluster.gpus:
            by_node.setdefault(gpu.node, []).append(gpu)
        node_size = max(len(v) for v in by_node.values())
        nodes = sorted(by_node)
        first = by_node[nodes[0]]
        if len(first) > 1:
            intra_bw, intra_lat = cluster.topology.path_stats(
                first[0].name, first[1].name
            )
        else:
            intra_bw, intra_lat = cluster.topology.path_stats(
                first[0].name, first[0].name
            )
        if len(nodes) > 1:
            inter_bw, inter_lat = cluster.topology.path_stats(
                first[0].name, by_node[nodes[1]][0].name
            )
        else:
            inter_bw, inter_lat = intra_bw, intra_lat
        return cls(
            node_size=node_size,
            intra_bw=intra_bw, intra_lat=intra_lat,
            inter_bw=inter_bw, inter_lat=inter_lat,
            alpha=cluster.alpha, bw_ramp_time=cluster.bw_ramp_time,
            h2d_bw=cluster.h2d_bandwidth(0),
        )


class _FabricTopology:
    """Minimal topology stand-in for the :class:`AlgorithmSelector` memo
    (which only reads ``.version`` to invalidate its cache)."""

    __slots__ = ("version",)

    def __init__(self) -> None:
        self.version = 0


class _FabricCluster:
    """What ``CostModel.__init__`` and the selector read off a cluster."""

    __slots__ = ("alpha", "bw_ramp_time", "topology", "fabric")

    def __init__(self, fabric: Fabric) -> None:
        self.alpha = fabric.alpha
        self.bw_ramp_time = fabric.bw_ramp_time
        self.topology = _FabricTopology()
        self.fabric = fabric


class ProjectedCostModel(CostModel):
    """A :class:`CostModel` over a :class:`Fabric` instead of a topology.

    Ranks are plain integers; rank ``r`` lives on node ``r // node_size``.
    Every override below replaces a topology walk with its closed form;
    the inherited public methods (``allreduce``, ``allgather``, …) and the
    per-algorithm formulas are untouched.
    """

    def __init__(self, fabric: Fabric) -> None:
        super().__init__(_FabricCluster(fabric))
        self.fabric = fabric

    # -- node partition helpers -------------------------------------------

    def _node_of(self, rank: int) -> int:
        return int(rank) // self.fabric.node_size

    def _pair_extremes(self, ranks: Sequence[int]) -> Tuple[float, float]:
        """(min pair bandwidth, max pair latency) over all member pairs —
        the closed form of iterating ``path_stats`` over combinations."""
        f = self.fabric
        counts: dict = {}
        for r in ranks:
            n = self._node_of(r)
            counts[n] = counts.get(n, 0) + 1
        bw = math.inf
        lat = 0.0
        if any(c > 1 for c in counts.values()):
            bw = min(bw, f.intra_bw)
            lat = max(lat, f.intra_lat)
        if len(counts) > 1:
            bw = min(bw, f.inter_bw)
            lat = max(lat, f.inter_lat)
        return bw, lat

    # -- topology-probing seams, replaced with closed forms ---------------

    def _ring(self, ranks: Sequence[int]) -> Tuple[float, float]:
        """Node-contiguous ring: ``p`` hops of which ``k`` cross a node
        boundary — the closed form of ``ring_stats(order_ring(names))`` on
        a two-level fabric (each bridge crossing uses a distinct physical
        link, so there is no self-contention to model)."""
        f = self.fabric
        p = len(ranks)
        k = len({self._node_of(r) for r in ranks})
        if k <= 1:
            return f.intra_bw, p * f.intra_lat
        return (
            min(f.intra_bw, f.inter_bw),
            (p - k) * f.intra_lat + k * f.inter_lat,
        )

    def _pairwise(self, ranks: Sequence[int]) -> Tuple[float, float]:
        return self._pair_extremes(ranks)

    def _star(self, root: int, ranks: Sequence[int]) -> Tuple[float, float]:
        f = self.fabric
        root_node = self._node_of(root)
        bw = math.inf
        lat = 0.0
        for r in ranks:
            if r == root:
                continue
            if self._node_of(r) == root_node:
                bw = min(bw, f.intra_bw)
                lat = max(lat, f.intra_lat)
            else:
                bw = min(bw, f.inter_bw)
                lat = max(lat, f.inter_lat)
        return bw, lat

    def _islands(self, ranks: Sequence[int]) -> List[List[int]]:
        groups: dict = {}
        for r in ranks:
            groups.setdefault(self._node_of(r), []).append(r)
        return [groups[n] for n in sorted(groups)]

    def _island_phases(self, islands: Sequence[Sequence[int]]):
        f = self.fabric
        intra = [
            (len(g), f.intra_bw, len(g) * f.intra_lat)
            for g in islands if len(g) > 1
        ]
        k = len(islands)
        # island leaders sit on distinct nodes, so their ring is k
        # inter-node hops (hierarchical only runs here when k >= 2)
        bridge_bw = f.inter_bw if k > 1 else f.intra_bw
        bridge_lat = k * f.inter_lat if k > 1 else f.intra_lat
        s = min(len(g) for g in islands)
        return intra, bridge_bw, bridge_lat, k, s

    # -- direct-topology methods (expression-identical to CostModel) ------

    def all_to_all(self, ranks: Sequence[int], nbytes_local: int) -> CollectiveCost:
        p = len(ranks)
        if p < 2 or nbytes_local == 0:
            return CollectiveCost(0.0, 0)
        bw, lat = self._pair_extremes(ranks)
        seconds = (
            (p - 1) * self.alpha + lat
            + ((p - 1) / p) * nbytes_local / self._eff(bw, nbytes_local)
        )
        return CollectiveCost(seconds, (p - 1) * nbytes_local, "direct")

    def p2p(self, src: int, dst: int, nbytes: int) -> CollectiveCost:
        if nbytes == 0 or src == dst:
            return CollectiveCost(0.0, 0)
        f = self.fabric
        if self._node_of(src) == self._node_of(dst):
            bw, lat = f.intra_bw, f.intra_lat
        else:
            bw, lat = f.inter_bw, f.inter_lat
        return CollectiveCost(
            self.alpha + lat + nbytes / self._eff(bw, nbytes), nbytes, "direct"
        )

    def ring_pass(self, ranks: Sequence[int], nbytes: int) -> CollectiveCost:
        """One simultaneous neighbour shift around the ring: every rank
        sends ``nbytes`` to its successor, so the round takes as long as
        the slowest hop and moves ``p * nbytes`` on the wire.  On a
        two-level fabric all intra-node hops cost the same and all
        inter-node hops cost the same, so instead of pricing ``p``
        point-to-point transfers we price one of each kind that occurs —
        bitwise what the per-hop maximum would compute."""
        p = len(ranks)
        if p < 2 or nbytes == 0:
            return CollectiveCost(0.0, 0)
        has_intra = has_inter = False
        for i in range(p):
            if self._node_of(ranks[i]) == self._node_of(ranks[(i + 1) % p]):
                has_intra = True
            else:
                has_inter = True
            if has_intra and has_inter:
                break
        f = self.fabric
        seconds = 0.0
        if has_intra:
            seconds = max(seconds, self.alpha + f.intra_lat
                          + nbytes / self._eff(f.intra_bw, nbytes))
        if has_inter:
            seconds = max(seconds, self.alpha + f.inter_lat
                          + nbytes / self._eff(f.inter_bw, nbytes))
        return CollectiveCost(seconds, p * nbytes, "direct")

    def host_transfer(self, rank: int, nbytes: int) -> CollectiveCost:
        if nbytes == 0:
            return CollectiveCost(0.0, 0)
        bw = self.fabric.h2d_bw
        return CollectiveCost(
            self.alpha + nbytes / self._eff(bw, nbytes), nbytes, "direct"
        )
