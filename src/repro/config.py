"""Training configuration schema (Listing 1 of the paper).

Users describe the parallelization declaratively::

    config = dict(parallel=dict(tensor=dict(size=4, mode="2d"),
                                pipeline=2),
                  fp16=dict(enabled=True),
                  zero=dict(stage=3, offload="adaptive"))

``Config.from_dict`` validates the schema and fills defaults;
``repro.initialize`` consumes it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

TENSOR_MODES = ("none", "1d", "2d", "2.5d", "3d", "sequence")

COMM_ALGORITHMS = ("ring", "tree", "hierarchical", "auto")

PIPELINE_SCHEDULES = ("gpipe", "1f1b")


@dataclass
class TensorParallelConfig:
    size: int = 1
    mode: str = "none"
    depth: int = 1  # 2.5d only

    def validate(self) -> None:
        if self.mode not in TENSOR_MODES:
            raise ValueError(f"unknown tensor parallel mode {self.mode!r}; choose from {TENSOR_MODES}")
        if self.size < 1:
            raise ValueError(f"tensor parallel size must be >= 1, got {self.size}")
        if self.mode == "none" and self.size != 1:
            raise ValueError("tensor mode 'none' requires size 1")
        if self.mode in ("1d", "sequence"):
            return
        if self.mode == "2d":
            q = math.isqrt(self.size)
            if q * q != self.size:
                raise ValueError(f"2d tensor parallelism needs a square GPU count, got {self.size}")
        elif self.mode == "2.5d":
            if self.depth < 1:
                raise ValueError(f"2.5d depth must be >= 1, got {self.depth}")
            if self.size % self.depth != 0:
                raise ValueError(f"2.5d size {self.size} not divisible by depth {self.depth}")
            q = math.isqrt(self.size // self.depth)
            if q * q * self.depth != self.size:
                raise ValueError(
                    f"2.5d tensor parallelism needs size = depth*q^2, got size={self.size}, depth={self.depth}"
                )
        elif self.mode == "3d":
            cube = round(self.size ** (1 / 3))
            if cube**3 != self.size:
                raise ValueError(f"3d tensor parallelism needs a cubic GPU count, got {self.size}")


@dataclass
class FP16Config:
    enabled: bool = False
    initial_scale: float = 2.0**16
    min_scale: float = 1.0
    growth_interval: int = 1000
    backoff_factor: float = 0.5
    growth_factor: float = 2.0


@dataclass
class ZeroConfig:
    stage: int = 0  # 0 = off, 1/2/3 per DeepSpeed convention
    offload: str = "none"  # none | static | adaptive
    chunk_mb: float = 32.0
    use_chunks: bool = True

    def validate(self) -> None:
        if self.stage not in (0, 1, 2, 3):
            raise ValueError(f"zero stage must be 0-3, got {self.stage}")
        if self.offload not in ("none", "static", "adaptive"):
            raise ValueError(f"unknown offload policy {self.offload!r}")


@dataclass
class CommConfig:
    """Collective-communication knobs.

    ``algorithm=None`` keeps the runtime's default (flat ring); set
    ``"auto"`` for cost-driven per-call selection or pin one family.
    ``island_ratio`` is the bandwidth-ratio threshold for fast-link island
    detection used by the hierarchical algorithms.  ``overlap`` enables
    comm/compute overlap: nonblocking collectives on per-rank comm streams,
    hook-driven DDP bucket flushing, ZeRO chunk prefetch and pipeline
    stream sends (numerics are bitwise identical either way).
    """

    algorithm: Optional[str] = None
    island_ratio: float = 0.5
    overlap: bool = False

    def validate(self) -> None:
        if self.algorithm is not None and self.algorithm not in COMM_ALGORITHMS:
            raise ValueError(
                f"unknown comm algorithm {self.algorithm!r}; "
                f"choose from {COMM_ALGORITHMS}"
            )
        if not 0.0 < self.island_ratio <= 1.0:
            raise ValueError(
                f"comm island_ratio must be in (0, 1], got {self.island_ratio}"
            )


@dataclass
class SanitizeConfig:
    """SPMD sanitizer knobs (``repro.sanitize``).

    ``enabled`` turns on cross-rank collective call-spec checking (op,
    shape/dtype signature, reduce op, membership, sequence number) —
    divergences raise :class:`~repro.sanitize.errors.CollectiveMismatch`
    or ``CollectiveDesync`` instead of hanging.  ``checksum`` adds payload
    CRCs (p2p end-to-end, collective input/result digests); ``race`` arms
    the shared-buffer race detector; ``record`` writes each rank's op
    stream to a golden file after the run; ``replay`` conformance-checks
    the run against an existing golden file.
    """

    enabled: bool = False
    checksum: bool = False
    race: bool = False
    callsites: bool = True
    record: Optional[str] = None
    replay: Optional[str] = None

    def validate(self) -> None:
        if self.record is not None and self.replay is not None:
            raise ValueError(
                "sanitize.record and sanitize.replay are mutually exclusive "
                "(one run either produces or consumes a golden file)"
            )
        if not self.enabled and (
            self.checksum or self.race or self.record or self.replay
        ):
            raise ValueError(
                "sanitize.enabled must be true to use checksum/race/"
                "record/replay"
            )

    def build(self) -> Any:
        """Instantiate the configured :class:`CommSanitizer` (raises
        ``ValueError`` when the section is disabled)."""
        if not self.enabled:
            raise ValueError("sanitize section is disabled")
        from repro.sanitize import CommSanitizer

        return CommSanitizer(
            checksum=self.checksum,
            race=self.race,
            callsites=self.callsites,
            replay=self.replay,
        )


@dataclass
class ProjectionConfig:
    """Projection execution mode (``repro.project``).

    ``mode="project"`` makes :func:`repro.launch` *capture* the program at
    the cluster's world size instead of just running it, then analytically
    replay the op stream at ``target_world`` ranks — returning a
    :class:`~repro.project.ProjectionReport` rather than per-rank results.
    ``target_world`` must be a multiple of the launch world size.

    ``axes`` selects the hybrid plan instead: per-axis widening factors
    over the captured DP x TP x PP layout, e.g. ``{"dp": 8, "tp": 2,
    "pp": 2}`` projects a 16-rank capture to 512 ranks while widening
    tensor groups 2x and deepening pipelines 2x.  When both ``axes`` and
    ``target_world`` are given they must agree (``target_world == world *
    product of factors``).
    """

    mode: str = "off"  # off | project
    target_world: Optional[int] = None
    axes: Optional[Dict[str, int]] = None

    def validate(self) -> None:
        if self.mode not in ("off", "project"):
            raise ValueError(
                f"unknown projection mode {self.mode!r}; choose 'off' or 'project'"
            )
        if self.mode == "project":
            if self.target_world is not None and self.target_world < 1:
                raise ValueError(
                    f"project.target_world must be >= 1, got {self.target_world}"
                )
        else:
            if self.target_world is not None:
                raise ValueError(
                    "project.target_world requires project.mode='project'"
                )
            if self.axes is not None:
                raise ValueError("project.axes requires project.mode='project'")
        if self.axes is not None:
            if not isinstance(self.axes, dict) or not self.axes:
                raise ValueError(
                    "project.axes must be a non-empty mapping of axis name "
                    "-> factor"
                )
            for name, k in self.axes.items():
                if name not in ("dp", "tp", "pp"):
                    raise ValueError(
                        f"project.axes: unknown axis {name!r}; "
                        "valid axes: ['dp', 'pp', 'tp']"
                    )
                if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                    raise ValueError(
                        f"project.axes[{name!r}] must be an int >= 1, got {k!r}"
                    )


@dataclass
class AutoParConfig:
    """Auto-parallel strategy compilation (``repro.autopar.compiler``).

    With ``enabled``, :func:`repro.launch` first *compiles* a parallel
    strategy for ``workload`` (a Transformer description: ``n_layers``,
    ``hidden``, ``n_heads``, ``seq_len``, optional ``mlp_ratio`` /
    ``bytes_per_elem``) and merges the winning plan's ``parallel`` /
    ``zero`` / ``comm`` / ``num_microbatches`` / ``pipeline_schedule``
    settings into the config before launching — the user declares the
    model, the system picks the parallelization.

    ``global_batch`` defaults to 8 samples per rank; ``top_k`` candidates
    survive the analytic prune into projector refinement (``refine=False``
    trusts the analytic ranking); probes are capped at
    ``max_probe_world`` simulated ranks.
    """

    enabled: bool = False
    workload: Optional[Dict[str, Any]] = None
    global_batch: Optional[int] = None
    top_k: int = 4
    refine: bool = True
    max_probe_world: int = 16

    def validate(self) -> None:
        if not self.enabled:
            return
        if not isinstance(self.workload, dict):
            raise ValueError(
                "autopar.workload must be a mapping describing the model "
                "(n_layers, hidden, n_heads, seq_len, ...)"
            )
        missing = {"n_layers", "hidden", "n_heads", "seq_len"} - set(
            self.workload
        )
        if missing:
            raise ValueError(
                f"autopar.workload missing required key(s) {sorted(missing)}"
            )
        if self.global_batch is not None and self.global_batch < 1:
            raise ValueError(
                f"autopar.global_batch must be >= 1, got {self.global_batch}"
            )
        if self.top_k < 1:
            raise ValueError(f"autopar.top_k must be >= 1, got {self.top_k}")
        if self.max_probe_world < 1:
            raise ValueError(
                f"autopar.max_probe_world must be >= 1, "
                f"got {self.max_probe_world}"
            )


TRAFFIC_KINDS = ("open", "closed")


@dataclass
class ServeConfig:
    """Inference serving mode (``repro.serve``).

    With ``enabled``, :func:`repro.launch` runs the serving engine
    instead of a training program: every rank of the world becomes one
    member of a single tensor-parallel decode replica, driven by the
    declared traffic, and the launch returns a
    :class:`~repro.serve.TrafficReport` rather than per-rank results.

    ``model`` describes the decoder (``n_layers``, ``hidden``,
    ``n_heads``, optional ``vocab`` / ``bytes_per_elem`` /
    ``hbm_bandwidth``); ``traffic`` declares the workload — ``kind:
    "open"`` (Poisson arrivals at ``rate`` req/s) or ``kind: "closed"``
    (``clients`` callers with ``think_time``), plus ``n_requests``,
    ``prompt_tokens`` / ``max_new_tokens`` ranges and ``seed``.  The
    remaining knobs shape the KV cache (``block_size`` tokens per block,
    ``kv_blocks`` fixed or ``kv_fraction`` of free device memory) and
    the continuous-batching scheduler (``max_batch_tokens``,
    ``prefill_chunk``); ``recovery_seconds`` is the replica downtime
    charged per recovered rank loss.
    """

    enabled: bool = False
    model: Optional[Dict[str, Any]] = None
    traffic: Optional[Dict[str, Any]] = None
    block_size: int = 16
    kv_blocks: Optional[int] = None
    kv_fraction: float = 0.3
    max_batch_tokens: int = 256
    prefill_chunk: int = 64
    recovery_seconds: float = 0.5
    max_recoveries: int = 16

    def validate(self) -> None:
        if not self.enabled:
            return
        if not isinstance(self.model, dict):
            raise ValueError(
                "serve.model must be a mapping describing the decoder "
                "(n_layers, hidden, n_heads, ...)")
        if not isinstance(self.traffic, dict):
            raise ValueError(
                "serve.traffic must be a mapping with kind 'open' or "
                "'closed' (rate/clients, n_requests, seed, ...)")
        kind = self.traffic.get("kind")
        if kind not in TRAFFIC_KINDS:
            raise ValueError(
                f"serve.traffic.kind must be one of {TRAFFIC_KINDS}, "
                f"got {kind!r}")
        if self.block_size < 1:
            raise ValueError(
                f"serve.block_size must be >= 1, got {self.block_size}")
        if self.kv_blocks is not None and self.kv_blocks < 1:
            raise ValueError(
                f"serve.kv_blocks must be >= 1, got {self.kv_blocks}")
        if not 0.0 < self.kv_fraction <= 1.0:
            raise ValueError(
                f"serve.kv_fraction must be in (0, 1], got {self.kv_fraction}")
        if self.max_batch_tokens < 1:
            raise ValueError(
                f"serve.max_batch_tokens must be >= 1, "
                f"got {self.max_batch_tokens}")
        if self.prefill_chunk < 1:
            raise ValueError(
                f"serve.prefill_chunk must be >= 1, got {self.prefill_chunk}")
        if self.recovery_seconds < 0:
            raise ValueError(
                f"serve.recovery_seconds must be >= 0, "
                f"got {self.recovery_seconds}")
        if self.max_recoveries < 0:
            raise ValueError(
                f"serve.max_recoveries must be >= 0, "
                f"got {self.max_recoveries}")


@dataclass
class Config:
    """Validated top-level configuration."""

    tensor: TensorParallelConfig = field(default_factory=TensorParallelConfig)
    pipeline: int = 1
    data: Optional[int] = None  # inferred from world size when None
    fp16: FP16Config = field(default_factory=FP16Config)
    zero: ZeroConfig = field(default_factory=ZeroConfig)
    comm: CommConfig = field(default_factory=CommConfig)
    sanitize: SanitizeConfig = field(default_factory=SanitizeConfig)
    project: ProjectionConfig = field(default_factory=ProjectionConfig)
    autopar: AutoParConfig = field(default_factory=AutoParConfig)
    serve: ServeConfig = field(default_factory=ServeConfig)
    gradient_clipping: float = 0.0
    num_microbatches: int = 1
    pipeline_schedule: str = "gpipe"
    seed: int = 0

    @staticmethod
    def from_dict(d: Optional[Dict[str, Any]] = None) -> "Config":
        d = dict(d or {})
        parallel = dict(d.pop("parallel", {}) or {})
        tensor_d = dict(parallel.pop("tensor", {}) or {})
        tensor_size = int(tensor_d.pop("size", 1))
        cfg = Config(
            tensor=TensorParallelConfig(
                size=tensor_size,
                mode=str(tensor_d.pop("mode", "none" if tensor_size == 1 else "1d")),
                depth=int(tensor_d.pop("depth", 1)),
            ),
            pipeline=int(parallel.pop("pipeline", 1)),
            data=parallel.pop("data", None),
            gradient_clipping=float(d.pop("gradient_clipping", 0.0)),
            num_microbatches=int(d.pop("num_microbatches", 1)),
            pipeline_schedule=str(d.pop("pipeline_schedule", "gpipe")),
            seed=int(d.pop("seed", 0)),
        )
        if tensor_d:
            raise ValueError(f"unknown keys in parallel.tensor config: {sorted(tensor_d)}")
        if parallel:
            raise ValueError(f"unknown keys in parallel config: {sorted(parallel)}")
        fp16_d = dict(d.pop("fp16", {}) or {})
        if fp16_d:
            cfg.fp16 = FP16Config(**fp16_d)
        zero_d = dict(d.pop("zero", {}) or {})
        if zero_d:
            cfg.zero = ZeroConfig(**zero_d)
        comm_d = dict(d.pop("comm", {}) or {})
        if comm_d:
            cfg.comm = CommConfig(**comm_d)
        sanitize_d = dict(d.pop("sanitize", {}) or {})
        if sanitize_d:
            # any sanitize key implies the section is wanted
            sanitize_d.setdefault("enabled", True)
            cfg.sanitize = SanitizeConfig(**sanitize_d)
        project_d = dict(d.pop("project", {}) or {})
        if project_d:
            # any project key implies the mode is wanted
            project_d.setdefault("mode", "project")
            cfg.project = ProjectionConfig(**project_d)
        autopar_d = dict(d.pop("autopar", {}) or {})
        if autopar_d:
            # any autopar key implies the section is wanted
            autopar_d.setdefault("enabled", True)
            cfg.autopar = AutoParConfig(**autopar_d)
        serve_d = dict(d.pop("serve", {}) or {})
        if serve_d:
            # any serve key implies the mode is wanted
            serve_d.setdefault("enabled", True)
            cfg.serve = ServeConfig(**serve_d)
        if d:
            raise ValueError(f"unknown top-level config keys: {sorted(d)}")
        cfg.validate()
        return cfg

    def validate(self) -> None:
        self.tensor.validate()
        self.zero.validate()
        self.comm.validate()
        self.sanitize.validate()
        self.project.validate()
        self.autopar.validate()
        self.serve.validate()
        if self.pipeline < 1:
            raise ValueError(f"pipeline size must be >= 1, got {self.pipeline}")
        if self.num_microbatches < 1:
            raise ValueError("num_microbatches must be >= 1")
        if self.pipeline_schedule not in PIPELINE_SCHEDULES:
            raise ValueError(
                f"unknown pipeline schedule {self.pipeline_schedule!r}; "
                f"choose from {PIPELINE_SCHEDULES}"
            )
        if self.data is not None and self.data < 1:
            raise ValueError("data parallel size must be >= 1")

    def model_parallel_size(self) -> int:
        return self.tensor.size * self.pipeline

    def infer_data_size(self, world_size: int) -> int:
        mp = self.model_parallel_size()
        if world_size % mp != 0:
            raise ValueError(
                f"world size {world_size} not divisible by tensor*pipeline = {mp}"
            )
        data = world_size // mp
        if self.data is not None and self.data != data:
            raise ValueError(
                f"configured data parallel size {self.data} inconsistent with "
                f"world {world_size} / (tensor*pipeline) {mp} = {data}"
            )
        return data
