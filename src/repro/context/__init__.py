"""Parallel context manager (§4 of the paper).

``ParallelContext`` decomposes the world into data / pipeline / tensor (or
sequence) dimensions, builds the process groups each parallel mode needs
(rows/columns of the 2D grid, depth layers of the 2.5D cuboid, the three
axes of the 3D cube), and hands out mode-scoped communicators and seeded
RNGs.  Layers never build groups themselves — they ask the context, which
is what lets the same model code run under any parallel configuration.
"""

from repro.context.parallel_context import ParallelContext, ParallelMode, global_context

__all__ = ["ParallelContext", "ParallelMode", "global_context"]
