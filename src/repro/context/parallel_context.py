"""ParallelContext: world decomposition and per-mode process groups."""

from __future__ import annotations

import enum
import math
from typing import Dict, List, Optional

import numpy as np

from repro.comm.communicator import Communicator
from repro.config import Config
from repro.runtime.spmd import RankContext, current_rank_context


class ParallelMode(enum.Enum):
    GLOBAL = "global"
    DATA = "data"
    PIPELINE = "pipeline"
    TENSOR = "tensor"
    SEQUENCE = "sequence"
    # 2D grid (SUMMA)
    PARALLEL_2D_ROW = "2d_row"
    PARALLEL_2D_COL = "2d_col"
    # 2.5D cuboid
    PARALLEL_2P5D_ROW = "2.5d_row"
    PARALLEL_2P5D_COL = "2.5d_col"
    PARALLEL_2P5D_DEP = "2.5d_dep"
    # 3D cube axes
    PARALLEL_3D_INPUT = "3d_input"
    PARALLEL_3D_WEIGHT = "3d_weight"
    PARALLEL_3D_OUTPUT = "3d_output"


class ParallelContext:
    """Per-rank view of the parallel decomposition.

    Rank layout (tensor fastest, then pipeline, then data)::

        global_rank = dp_rank * (pp * tp) + pp_rank * tp + tp_rank

    so a tensor-parallel group occupies consecutive global ranks — i.e.
    consecutive GPUs, which on Systems I/II means the best-connected
    devices, matching how real launchers place tensor parallelism.
    """

    def __init__(self, ctx: RankContext, config: Config) -> None:
        self.ctx = ctx
        self.config = config
        self.world_size = ctx.world_size
        self.rank = ctx.rank

        tp = config.tensor.size
        pp = config.pipeline
        dp = config.infer_data_size(self.world_size)
        self.tensor_size = tp
        self.pipeline_size = pp
        self.data_size = dp
        self.tensor_mode = config.tensor.mode

        self.tp_rank = self.rank % tp
        self.pp_rank = (self.rank // tp) % pp
        self.dp_rank = self.rank // (tp * pp)

        self._comms: Dict[ParallelMode, Communicator] = {}
        self._build_basic_groups()
        if self.tensor_mode == "2d":
            self._build_2d_groups()
        elif self.tensor_mode == "2.5d":
            self._build_2p5d_groups()
        elif self.tensor_mode == "3d":
            self._build_3d_groups()

        ctx.parallel_context = self

    # -- group construction -------------------------------------------------

    def _comm(self, mode: ParallelMode, ranks: List[int]) -> None:
        group = self.ctx.runtime.group(ranks)
        self._comms[mode] = Communicator(group, self.rank)

    def _build_basic_groups(self) -> None:
        tp, pp, dp = self.tensor_size, self.pipeline_size, self.data_size
        self._comm(ParallelMode.GLOBAL, list(range(self.world_size)))

        base = self.dp_rank * tp * pp + self.pp_rank * tp
        tensor_ranks = [base + t for t in range(tp)]
        self._comm(ParallelMode.TENSOR, tensor_ranks)
        if self.tensor_mode == "sequence":
            self._comm(ParallelMode.SEQUENCE, tensor_ranks)

        pipe_ranks = [
            self.dp_rank * tp * pp + p * tp + self.tp_rank for p in range(pp)
        ]
        self._comm(ParallelMode.PIPELINE, pipe_ranks)

        data_ranks = [
            d * tp * pp + self.pp_rank * tp + self.tp_rank for d in range(dp)
        ]
        self._comm(ParallelMode.DATA, data_ranks)

    def _tensor_base(self) -> int:
        return self.dp_rank * self.tensor_size * self.pipeline_size + self.pp_rank * self.tensor_size

    def _build_2d_groups(self) -> None:
        q = math.isqrt(self.tensor_size)
        base = self._tensor_base()
        t = self.tp_rank
        i, j = divmod(t, q)
        self.summa_dim = q
        self.row_rank, self.col_rank = i, j
        # row group: fixed i, j varies
        self._comm(ParallelMode.PARALLEL_2D_ROW, [base + i * q + jj for jj in range(q)])
        # col group: fixed j, i varies
        self._comm(ParallelMode.PARALLEL_2D_COL, [base + ii * q + j for ii in range(q)])

    def _build_2p5d_groups(self) -> None:
        d = self.config.tensor.depth
        q = math.isqrt(self.tensor_size // d)
        base = self._tensor_base()
        t = self.tp_rank
        dep, rem = divmod(t, q * q)
        i, j = divmod(rem, q)
        self.tesseract_dim = q
        self.tesseract_dep = d
        self.dep_rank, self.row_rank, self.col_rank = dep, i, j
        self._comm(
            ParallelMode.PARALLEL_2P5D_ROW,
            [base + dep * q * q + i * q + jj for jj in range(q)],
        )
        self._comm(
            ParallelMode.PARALLEL_2P5D_COL,
            [base + dep * q * q + ii * q + j for ii in range(q)],
        )
        self._comm(
            ParallelMode.PARALLEL_2P5D_DEP,
            [base + dd * q * q + i * q + j for dd in range(d)],
        )

    def _build_3d_groups(self) -> None:
        l = round(self.tensor_size ** (1 / 3))
        base = self._tensor_base()
        t = self.tp_rank
        i, rem = divmod(t, l * l)
        j, k = divmod(rem, l)
        self.cubic_dim = l
        self.cube_i, self.cube_j, self.cube_k = i, j, k
        self._comm(
            ParallelMode.PARALLEL_3D_OUTPUT,
            [base + ii * l * l + j * l + k for ii in range(l)],
        )
        self._comm(
            ParallelMode.PARALLEL_3D_WEIGHT,
            [base + i * l * l + jj * l + k for jj in range(l)],
        )
        self._comm(
            ParallelMode.PARALLEL_3D_INPUT,
            [base + i * l * l + j * l + kk for kk in range(l)],
        )

    # -- queries ---------------------------------------------------------------

    def comm(self, mode: ParallelMode) -> Communicator:
        try:
            return self._comms[mode]
        except KeyError:
            raise ValueError(
                f"parallel mode {mode} not initialized (tensor mode is "
                f"{self.tensor_mode!r})"
            ) from None

    def has_mode(self, mode: ParallelMode) -> bool:
        return mode in self._comms

    def local_rank(self, mode: ParallelMode) -> int:
        return self.comm(mode).rank

    def mode_size(self, mode: ParallelMode) -> int:
        return self.comm(mode).size

    def is_first_pipeline_stage(self) -> bool:
        return self.pp_rank == 0

    def is_last_pipeline_stage(self) -> bool:
        return self.pp_rank == self.pipeline_size - 1

    # -- seeded RNGs --------------------------------------------------------------

    def model_rng(self, salt: int = 0) -> np.random.Generator:
        """Identical on every rank: layers draw the *global* weight tensor
        from this stream, then keep their shard — the root of TP/serial
        arithmetic equivalence."""
        return np.random.default_rng((self.config.seed, 0xC0FFEE, salt))

    def data_rng(self, salt: int = 0) -> np.random.Generator:
        """Same within a model-parallel group, distinct across data-parallel
        replicas: every worker of one replica reads the same samples."""
        return np.random.default_rng((self.config.seed, 0xDA7A, self.dp_rank, salt))

    def dropout_rng(self, salt: int = 0) -> np.random.Generator:
        """Distinct per rank (local activation shards get independent
        masks)."""
        return np.random.default_rng((self.config.seed, 0xD20, self.rank, salt))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelContext(rank={self.rank}, dp={self.dp_rank}/{self.data_size}, "
            f"pp={self.pp_rank}/{self.pipeline_size}, tp={self.tp_rank}/{self.tensor_size}, "
            f"mode={self.tensor_mode})"
        )


def global_context() -> ParallelContext:
    """The ParallelContext attached to the calling rank thread."""
    pc = current_rank_context().parallel_context
    if pc is None:
        raise RuntimeError(
            "no ParallelContext initialized on this rank; call "
            "repro.launch/initialize first"
        )
    return pc
