"""Collective call specs: what each rank *said* it was doing.

A :class:`CollectiveSpec` captures, at the call site, everything about a
collective invocation that must agree across the member ranks for the call
to be well-formed: op name, payload shape/dtype signature, reduce op, root,
axis and group membership.  The per-op :func:`call_signature` encodes the
MPI matching rules — e.g. ``all_gather`` legitimately concatenates
different extents along the concat axis, so that dimension is wildcarded,
while ``all_reduce`` requires bitwise-identical shapes.

Specs are only ever constructed when a :class:`~repro.sanitize.CommSanitizer`
is installed; the disabled hot path never allocates one.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

import numpy as np

#: path fragments whose frames are skipped when locating the user call site
_INTERNAL_DIRS = (
    os.sep + os.path.join("repro", "comm") + os.sep,
    os.sep + os.path.join("repro", "sanitize") + os.sep,
)


def capture_callsite() -> str:
    """``path/file.py:line in function`` of the nearest frame outside the
    communication and sanitizer internals."""
    f = sys._getframe(1)
    while f is not None:
        filename = f.f_code.co_filename
        if not any(d in filename for d in _INTERNAL_DIRS):
            parts = filename.split(os.sep)
            short = os.sep.join(parts[-2:]) if len(parts) > 1 else filename
            return f"{short}:{f.f_lineno} in {f.f_code.co_name}"
        f = f.f_back
    return "<unknown>"


def _shape_dtype(payload: Any) -> Optional[Tuple[Tuple[int, ...], str]]:
    if payload is None:
        return None
    shape = getattr(payload, "shape", None)
    dtype = getattr(payload, "dtype", None)
    if shape is None or dtype is None:
        return None
    return tuple(int(s) for s in shape), np.dtype(dtype).name


def _fmt_shape(shape: Tuple[Any, ...]) -> str:
    return "(" + ",".join(str(s) for s in shape) + ")"


def call_signature(op: str, payload: Any, **params: Any) -> str:
    """The canonical match string for one collective invocation.

    Two member ranks may meet in the same rendezvous round iff their
    signatures are equal; the string doubles as the human-readable side
    label in :class:`~repro.sanitize.errors.CollectiveMismatch`.
    """
    sd = _shape_dtype(payload)
    if op in ("all_reduce", "reduce", "reduce_scatter"):
        shape, dtype = sd if sd is not None else ((), "none")
        bits = [f"shape={_fmt_shape(shape)}", f"dtype={dtype}",
                f"op={params.get('reduce_op')}"]
        if op == "reduce":
            bits.append(f"root={params.get('root')}")
        if op == "reduce_scatter":
            bits.append(f"axis={params.get('axis')}")
        return f"{op}({', '.join(bits)})"
    if op in ("all_gather", "gather"):
        # the concat axis may differ across ranks; every other dim must agree
        shape, dtype = sd if sd is not None else ((), "none")
        axis = int(params.get("axis", 0)) % max(len(shape), 1) if shape else 0
        wild = tuple("*" if d == axis else s for d, s in enumerate(shape))
        bits = [f"shape={_fmt_shape(wild)}", f"dtype={dtype}", f"axis={params.get('axis')}"]
        if op == "gather":
            bits.append(f"root={params.get('root')}")
        return f"{op}({', '.join(bits)})"
    if op == "broadcast":
        return f"broadcast(root={params.get('root')})"
    if op == "scatter":
        return f"scatter(root={params.get('root')}, axis={params.get('axis')})"
    if op == "all_to_all":
        return f"all_to_all(nchunks={params.get('nchunks')})"
    if op == "ring_pass":
        return f"ring_pass(shift={params.get('shift')})"
    # barrier / split / all_gather_object: arrival is the only contract
    return f"{op}()"


@dataclass
class CollectiveSpec:
    """One rank's declaration of the collective it is entering."""

    op: str
    signature: str
    global_rank: int
    group_ranks: Tuple[int, ...]
    seq: int = -1  # filled in by the rendezvous
    callsite: str = ""
    payload_sig: Any = field(default=None, repr=False)
    #: False when this rank's input buffer is a placeholder the op ignores
    #: (broadcast/scatter non-root) — its bytes are excluded from checksums
    #: so uninitialized receive buffers don't fail replay conformance.
    contributes: bool = True

    def describe(self) -> str:
        return f"{self.signature} @ {self.callsite or '<no callsite>'}"
