"""Record/replay conformance for SPMD op streams.

Recording mode logs, per global rank, the ordered stream of communication
operations the rank issued (collectives and point-to-point transfers) with
their call signatures and — under checksum mode — payload hashes.  The
stream is saved as a *golden file* (JSON); a later run replayed against the
golden raises :class:`~repro.sanitize.errors.ReplayDivergence` at the first
operation where the live stream differs, naming the rank, the step index
into its stream, and the expected vs actual op.

Golden format (version 1)::

    {"version": 1, "world_size": 4,
     "streams": {"0": [{"kind": "collective", "op": "all_reduce",
                        "sig": "all_reduce(shape=(8,), ...)",
                        "group": [0, 1, 2, 3], "seq": 0, "crc": 305419896},
                       ...],
                 ...}}

``crc`` is present only when the recording run had checksum mode on;
replay compares it only when both sides carry one, so a shape-only golden
still validates a checksummed run's structure.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.sanitize.errors import ReplayDivergence

GOLDEN_VERSION = 1

OpRecord = Dict[str, Any]


def make_record(kind: str, op: str, sig: str, *,
                group: Optional[List[int]] = None,
                seq: Optional[int] = None,
                peer: Optional[int] = None,
                crc: Optional[int] = None) -> OpRecord:
    rec: OpRecord = {"kind": kind, "op": op, "sig": sig}
    if group is not None:
        rec["group"] = list(group)
    if seq is not None:
        rec["seq"] = int(seq)
    if peer is not None:
        rec["peer"] = int(peer)
    if crc is not None:
        rec["crc"] = int(crc)
    return rec


def records_equal(a: OpRecord, b: OpRecord, check_crc: bool = True) -> bool:
    """Structural equality; checksums compared only when both sides have
    one (a shape-only golden validates a checksummed replay)."""
    for key in ("kind", "op", "sig", "group", "seq", "peer"):
        if a.get(key) != b.get(key):
            return False
    if check_crc and "crc" in a and "crc" in b and a["crc"] != b["crc"]:
        return False
    return True


def save_golden(path: str, world_size: int,
                streams: Dict[int, List[OpRecord]]) -> None:
    doc = {
        "version": GOLDEN_VERSION,
        "world_size": int(world_size),
        "streams": {str(r): list(s) for r, s in sorted(streams.items())},
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")


def load_golden(path: str) -> Dict[str, Any]:
    with open(path) as f:
        doc = json.load(f)
    version = doc.get("version")
    if version != GOLDEN_VERSION:
        raise ValueError(
            f"unsupported golden file version {version!r} in {path}; "
            f"this build reads version {GOLDEN_VERSION}"
        )
    doc["streams"] = {int(r): list(s) for r, s in doc["streams"].items()}
    return doc


def first_divergence(
    golden: Dict[str, Any], other: Dict[str, Any], check_crc: bool = True,
) -> Optional[ReplayDivergence]:
    """The earliest (step, rank) at which two recorded runs differ, or
    ``None`` when they conform.  Length mismatches count as divergences at
    the first missing/extra step."""
    ranks = sorted(set(golden["streams"]) | set(other["streams"]))
    depth = max(
        (len(s) for doc in (golden, other) for s in doc["streams"].values()),
        default=0,
    )
    for step in range(depth):
        for rank in ranks:
            a_stream = golden["streams"].get(rank, [])
            b_stream = other["streams"].get(rank, [])
            a = a_stream[step] if step < len(a_stream) else None
            b = b_stream[step] if step < len(b_stream) else None
            if a is None and b is None:
                continue
            if a is None or b is None or not records_equal(a, b, check_crc):
                return ReplayDivergence(rank, step, a, b)
    return None
