"""repro.sanitize — cross-rank collective-mismatch detection, payload
checksums, shared-buffer race detection and deterministic record/replay.

Typical use::

    from repro.sanitize import CommSanitizer

    san = CommSanitizer(checksum=True)
    rt = SpmdRuntime(cluster, sanitize=san)
    rt.run(program)            # CollectiveMismatch / CollectiveDesync name
                               # the guilty ranks instead of hanging
    san.save_golden("golden.json")

    # later: conformance-check a changed run against the recording
    rt2 = SpmdRuntime(cluster, sanitize=CommSanitizer(
        checksum=True, replay="golden.json"))
    rt2.run(changed_program)   # ReplayDivergence at the first drifted op

Or declaratively through the config schema::

    repro.launch({"sanitize": {"checksum": True}}, cluster, fn)
"""

from repro.sanitize.errors import (
    ChecksumMismatch,
    CollectiveDesync,
    CollectiveMismatch,
    ReplayDivergence,
    SanitizerError,
    SharedBufferRace,
)
from repro.sanitize.replay import (
    GOLDEN_VERSION,
    OpRecord,
    first_divergence,
    load_golden,
    make_record,
    records_equal,
    save_golden,
)
from repro.sanitize.sanitizer import (
    BufferRaceDetector,
    ChecksumEvent,
    CommSanitizer,
    payload_checksum,
)
from repro.sanitize.spec import CollectiveSpec, call_signature, capture_callsite

__all__ = [
    "BufferRaceDetector",
    "ChecksumEvent",
    "ChecksumMismatch",
    "CollectiveDesync",
    "CollectiveMismatch",
    "CollectiveSpec",
    "CommSanitizer",
    "GOLDEN_VERSION",
    "OpRecord",
    "ReplayDivergence",
    "SanitizerError",
    "SharedBufferRace",
    "call_signature",
    "capture_callsite",
    "first_divergence",
    "load_golden",
    "make_record",
    "payload_checksum",
    "records_equal",
    "save_golden",
]
