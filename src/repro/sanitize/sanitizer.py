"""The cross-rank communication sanitizer.

:class:`CommSanitizer` is the runtime correctness checker for the threaded
SPMD runtime (the analogue of ``TORCH_DISTRIBUTED_DEBUG=DETAIL`` plus parts
of compute-sanitizer).  Installed on a :class:`~repro.runtime.spmd.SpmdRuntime`
it piggybacks on every :meth:`ProcessGroup.rendezvous
<repro.comm.group.ProcessGroup.rendezvous>` and p2p transfer — never adding
a collective round of its own — and provides four facilities:

1. **Mismatch detection** — every member rank's
   :class:`~repro.sanitize.spec.CollectiveSpec` is cross-checked when a
   round fills; incompatible calls raise
   :class:`~repro.sanitize.errors.CollectiveMismatch` naming the divergent
   ranks and their Python call sites.
2. **Desync detection** — a rank blocked in a round polls the sanitizer,
   which diagnoses peers that already exited the program or are parked in
   other rounds forming a wait-for cycle, raising
   :class:`~repro.sanitize.errors.CollectiveDesync` instead of letting the
   round die of ``deadlock_timeout``.
3. **Payload checksums** (``checksum=True``) — CRC32 of every payload on
   both sides of the wire; corruption is attributed to the fault injector
   (scheduled :class:`~repro.faults.plan.MessageFault`) or flagged as a
   logic bug via :class:`~repro.sanitize.errors.ChecksumMismatch`.  Result
   digests feed the trace-span ``digest`` tag and the cross-algorithm
   bitwise-parity assertions.
4. **Shared-buffer race detection** (``race=True``) — numpy buffers handed
   to a collective are frozen (``writeable=False``) while in flight; result
   buffers that alias another rank's input (e.g. ``ring_pass``) stay frozen
   as *loans*, so a later mutation by the owner raises at the guilty line
   instead of silently corrupting the borrower.

All state is per-run (reset by :meth:`begin_run`); every hook in the hot
path gates on ``runtime.sanitizer is None`` so the disabled cost is one
attribute check.

**Nonblocking collectives.**  For ``iallreduce``-style calls the rendezvous
point is *handle completion*, not issue order: every member still joins the
same per-group sequence number (issue order per group is required to match
across ranks — that is what the spec check verifies), but ranks may
``wait()`` their handles in any order afterwards.  ``verify_round`` and the
checksum/race hooks fire when the round's last *issuer* arrives, and the
desync detector treats a rank parked in ``WorkHandle.wait()`` exactly like
one parked in a blocking rendezvous: ``enter_wait``/``exit_wait`` bracket
the park and ``check_stalled`` can convict it of a wait-for cycle.  A group
where some ranks issue a collective blocking and others nonblocking fails
the round for everyone (mixed-mode rendezvous error from the process
group) before any sanitizer check runs.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.payload import is_spec
from repro.sanitize.errors import (
    ChecksumMismatch,
    CollectiveDesync,
    CollectiveMismatch,
    ReplayDivergence,
    SharedBufferRace,
)
from repro.sanitize.replay import (
    GOLDEN_VERSION,
    OpRecord,
    load_golden,
    make_record,
    records_equal,
    save_golden,
)
from repro.sanitize.spec import (
    CollectiveSpec,
    _shape_dtype,
    call_signature,
    capture_callsite,
)


def payload_checksum(payload: Any) -> int:
    """CRC32 of a payload's identity: shape+dtype header plus raw bytes for
    ndarrays, shape+dtype only for :class:`SpecArray` stand-ins, recursive
    combination for chunk lists, ``repr`` for control-plane objects."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        head = zlib.crc32(repr((payload.shape, payload.dtype.str)).encode())
        return zlib.crc32(np.ascontiguousarray(payload).tobytes(), head)
    if is_spec(payload):
        return zlib.crc32(
            repr((payload.shape, payload.dtype.name, "spec")).encode()
        )
    if isinstance(payload, (list, tuple)):
        crc = len(payload)
        for p in payload:
            crc = zlib.crc32(
                payload_checksum(p).to_bytes(4, "little"), crc
            )
        return crc
    return zlib.crc32(repr(payload).encode())


@dataclass
class ChecksumEvent:
    """One observed payload-integrity incident."""

    kind: str  #: "p2p" | "collective"
    op: str
    src: int
    dst: int
    injected: bool  #: True when the fault injector scheduled it
    healed: bool  #: True when the retry layer retransmitted successfully
    expected: Optional[int] = None
    actual: Optional[int] = None


@dataclass(eq=False)
class _Frozen:
    """One buffer frozen for the duration of a rendezvous round."""

    arr: np.ndarray
    prior_writeable: bool
    crc: int
    owner_local: int
    owner_global: int


def _arrays_of(payload: Any) -> List[np.ndarray]:
    if isinstance(payload, np.ndarray):
        return [payload]
    if isinstance(payload, (list, tuple)):
        return [a for p in payload for a in _arrays_of(p)]
    return []


class BufferRaceDetector:
    """Ownership tracker for numpy buffers handed to collectives.

    While a round is in flight every real payload is made read-only; at
    round completion buffers are released unless a *different* rank's
    result aliases them (``np.shares_memory``), in which case the buffer
    stays frozen as a recorded loan until :meth:`final_release` — mutating
    it raises numpy's read-only ``ValueError`` at the guilty call site,
    which is exactly the "mutation while in flight" the detector exists to
    catch.  Loans whose bytes changed anyway (mutation through an aliasing
    base array that escaped the freeze) are reported as violations.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._loaned: List[Tuple[_Frozen, str, int]] = []
        self.loans: List[Dict[str, Any]] = []
        self.violations: List[SharedBufferRace] = []

    def reset(self) -> None:
        with self._lock:
            self._release([f for f, _, _ in self._loaned])
            self._loaned.clear()
            self.loans.clear()
            self.violations.clear()

    def acquire(self, payloads: Dict[int, Any],
                to_global: Sequence[int]) -> List[_Frozen]:
        """Freeze every real payload buffer of a filling round; returns the
        token to pass back to :meth:`verify_and_release`."""
        token: List[_Frozen] = []
        for local, p in payloads.items():
            for arr in _arrays_of(p):
                prior = bool(arr.flags.writeable)
                if prior:
                    arr.flags.writeable = False
                token.append(_Frozen(
                    arr, prior, payload_checksum(arr), local, to_global[local]
                ))
        return token

    def verify_and_release(self, op: str, token: List[_Frozen],
                           results: Dict[int, Any],
                           to_global: Sequence[int]) -> None:
        """Check in-flight integrity, record cross-rank aliases as loans
        (kept frozen), release everything else."""
        loaned: List[_Frozen] = []
        for entry in token:
            if payload_checksum(entry.arr) != entry.crc:
                raise SharedBufferRace(
                    op, entry.owner_global,
                    "input buffer mutated while the collective was in flight",
                )
            borrowers = [
                to_global[local]
                for local, res in results.items()
                if local != entry.owner_local and any(
                    np.shares_memory(r, entry.arr) for r in _arrays_of(res)
                )
            ]
            if borrowers:
                loaned.append(entry)
                with self._lock:
                    self._loaned.append((entry, op, entry.owner_global))
                    self.loans.append({
                        "op": op,
                        "owner": entry.owner_global,
                        "borrowers": borrowers,
                    })
        self._release([e for e in token if e not in loaned])

    def release(self, token: List[_Frozen]) -> None:
        """Error-path release: restore every buffer of an aborted round."""
        self._release(token)

    def final_release(self) -> List[SharedBufferRace]:
        """End of run: verify loaned buffers were never mutated, then
        restore their writeable flags.  Returns (and records) violations."""
        with self._lock:
            out = []
            for entry, op, owner in self._loaned:
                if payload_checksum(entry.arr) != entry.crc:
                    out.append(SharedBufferRace(
                        op, owner,
                        "loaned buffer mutated while a peer rank still "
                        "held a reference to it",
                    ))
            self._release([f for f, _, _ in self._loaned])
            self._loaned.clear()
            self.violations.extend(out)
            return list(out)

    @staticmethod
    def _release(entries: List[_Frozen]) -> None:
        for entry in entries:
            if entry.prior_writeable:
                try:
                    entry.arr.flags.writeable = True
                except ValueError:  # view of a read-only base
                    pass


@dataclass
class _WaitState:
    group: Any
    seq: int
    spec: Optional[CollectiveSpec]
    rnd: Any


class CommSanitizer:
    """Runtime cross-rank correctness checker (see module docstring).

    Parameters
    ----------
    checksum:
        Hash payloads on both sides of every transfer and attach result
        digests to collective records and trace spans.
    race:
        Enable the :class:`BufferRaceDetector`.
    callsites:
        Capture the Python call site of every collective (stack walk; turn
        off to cheapen heavily-instrumented runs).
    replay:
        A golden document (from :func:`repro.sanitize.replay.load_golden`)
        or a path to one; the live op stream is conformance-checked against
        it and diverging ops raise :class:`ReplayDivergence`.
    """

    def __init__(self, *, checksum: bool = False, race: bool = False,
                 callsites: bool = True,
                 replay: Optional[Any] = None) -> None:
        self.checksum = checksum
        self.capture_callsites = callsites
        self.race_detector = BufferRaceDetector() if race else None
        if isinstance(replay, str):
            replay = load_golden(replay)
        self._replay: Optional[Dict[str, Any]] = replay
        self._lock = threading.Lock()
        self._streams: Dict[int, List[OpRecord]] = {}
        self._send_crcs: Dict[Any, List[int]] = {}
        self._waiting: Dict[int, _WaitState] = {}
        self._done: set = set()
        self._world = 0
        self._runtime: Optional[Any] = None
        self.events: List[ChecksumEvent] = []
        self.rounds_checked = 0
        self.mismatches = 0
        self.desyncs = 0
        self.p2p_checked = 0

    # -- lifecycle ---------------------------------------------------------

    def install(self, runtime: Any) -> "CommSanitizer":
        """Attach to ``runtime``: every comm hook gates on
        ``runtime.sanitizer`` being non-None."""
        if self._runtime is not None and self._runtime is not runtime:
            self.uninstall()
        self._runtime = runtime
        self._world = runtime.world_size
        runtime.sanitizer = self
        return self

    def uninstall(self) -> None:
        rt = self._runtime
        if rt is None:
            return
        rt.sanitizer = None
        self._runtime = None

    def begin_run(self, runtime: Any) -> None:
        """Per-run reset (called from :meth:`SpmdRuntime.run`)."""
        with self._lock:
            self._streams.clear()
            self._send_crcs.clear()
            self._waiting.clear()
            self._done.clear()
            self._world = runtime.world_size
            self.events.clear()
            self.rounds_checked = 0
            self.mismatches = 0
            self.desyncs = 0
            self.p2p_checked = 0
        if self.race_detector is not None:
            self.race_detector.reset()

    def end_run(self, ok: bool) -> None:
        """Post-run: release race-detector freezes; on a clean replay run,
        a golden stream the program did not finish is itself a divergence."""
        if self.race_detector is not None:
            self.race_detector.final_release()
        if ok and self._replay is not None:
            with self._lock:
                for rank in sorted(self._replay["streams"]):
                    golden = self._replay["streams"][rank]
                    live = len(self._streams.get(rank, ()))
                    if live < len(golden):
                        raise ReplayDivergence(rank, live, golden[live], None)

    def on_rank_done(self, rank: int) -> None:
        with self._lock:
            self._done.add(rank)

    # -- spec construction (called from Communicator, sanitizer-gated) ------

    def make_spec(self, op: str, payload: Any, comm: Any,
                  **params: Any) -> CollectiveSpec:
        contributes = True
        if op in ("broadcast", "scatter"):
            root = params.get("root")
            contributes = (
                root is not None
                and comm.group.global_rank(int(root)) == comm.global_rank
            )
        return CollectiveSpec(
            op=op,
            signature=call_signature(op, payload, **params),
            global_rank=comm.global_rank,
            group_ranks=tuple(comm.group.ranks),
            callsite=capture_callsite() if self.capture_callsites else "",
            contributes=contributes,
        )

    # -- rendezvous hooks ----------------------------------------------------

    def verify_round(self, group: Any, seq: int,
                     specs: Optional[Dict[int, CollectiveSpec]]) -> None:
        """Cross-check every member's call spec once a round is full."""
        if not specs:
            return
        sides: Dict[str, List[int]] = {}
        callsites: Dict[int, str] = {}
        for local in sorted(specs):
            s = specs[local]
            g = group.ranks[local]
            sides.setdefault(s.signature, []).append(g)
            if s.callsite:
                callsites[g] = s.callsite
        if len(sides) > 1:
            with self._lock:
                self.mismatches += 1
            raise CollectiveMismatch(group.ranks, seq, sides, callsites)
        with self._lock:
            self.rounds_checked += 1

    def race_acquire(self, group: Any,
                     payloads: Dict[int, Any]) -> Optional[List[_Frozen]]:
        if self.race_detector is None:
            return None
        return self.race_detector.acquire(payloads, group.ranks)

    def race_release(self, token: Optional[List[_Frozen]]) -> None:
        if token and self.race_detector is not None:
            self.race_detector.release(token)

    def finish_round(self, group: Any, seq: int,
                     specs: Optional[Dict[int, CollectiveSpec]],
                     payloads: Dict[int, Any], results: Dict[int, Any],
                     race_token: Optional[List[_Frozen]] = None,
                     ) -> Dict[str, Any]:
        """Successful round epilogue: race verification, per-rank op-stream
        records (with checksums when enabled), replay conformance.  Returns
        the extra tags for the round's trace spans."""
        op = next(iter(specs.values())).op if specs else "collective"
        if race_token is not None and self.race_detector is not None:
            self.race_detector.verify_and_release(
                op, race_token, results, group.ranks
            )
        digest: Optional[int] = None
        with self._lock:
            for local in sorted(payloads):
                g = group.ranks[local]
                spec = specs.get(local) if specs else None
                crc = rcrc = None
                if self.checksum:
                    if spec is None or spec.contributes:
                        crc = payload_checksum(payloads[local])
                    rcrc = payload_checksum(results.get(local))
                    digest = zlib.crc32(
                        rcrc.to_bytes(4, "little"),
                        digest if digest is not None else 0,
                    )
                rec = make_record(
                    "collective", op,
                    spec.signature if spec else op,
                    group=list(group.ranks), seq=seq, crc=crc,
                )
                if rcrc is not None:
                    rec["rcrc"] = rcrc
                self._append_record_locked(g, rec)
        extra: Dict[str, Any] = {"sanitized": True}
        if digest is not None:
            extra["digest"] = digest
        return extra

    # -- desync detection ----------------------------------------------------

    def enter_wait(self, rank: int, group: Any, seq: int,
                   spec: Optional[CollectiveSpec], rnd: Any) -> None:
        with self._lock:
            self._waiting[rank] = _WaitState(group, seq, spec, rnd)

    def exit_wait(self, rank: int) -> None:
        with self._lock:
            self._waiting.pop(rank, None)

    def check_stalled(self, group: Any, seq: int, rnd: Any) -> Optional[BaseException]:
        """Called from the rendezvous wait loop (group condition held).
        Returns a :class:`CollectiveDesync` when the round provably cannot
        complete; ``None`` while completion is still possible."""
        arrived_locals = set(rnd.payloads)
        missing = [group.ranks[l] for l in range(group.size)
                   if l not in arrived_locals]
        if not missing:
            return None
        with self._lock:
            exited = sorted(g for g in missing if g in self._done)
            if exited:
                self.desyncs += 1
                return self._desync(
                    group, seq, rnd, exited,
                    "already exited the program without reaching it",
                )
            parked = self._find_wait_cycle(group, rnd, missing)
        if parked is not None:
            with self._lock:
                self.desyncs += 1
            return self._desync(group, seq, rnd, [g for g, _ in parked],
                                "are parked in other collectives forming a "
                                "wait cycle: "
                                + "; ".join(d for _, d in parked))
        return None

    def _find_wait_cycle(self, group: Any, rnd: Any, missing: List[int],
                         ) -> Optional[List[Tuple[int, str]]]:
        """BFS over the wait-for graph: does some missing rank transitively
        wait on a rank already parked in *this* round?  (Lock held.)"""
        arrived = {group.ranks[l] for l in rnd.payloads}
        seen: set = set()
        frontier = [g for g in missing if g in self._waiting]
        entry: Dict[int, _WaitState] = {}
        try:
            while frontier:
                g = frontier.pop()
                if g in seen:
                    continue
                seen.add(g)
                ws = self._waiting.get(g)
                if ws is None or ws.rnd.done:
                    continue
                entry.setdefault(g, ws)
                w_arrived = set(ws.rnd.payloads)
                w_missing = [ws.group.ranks[l] for l in range(ws.group.size)
                             if l not in w_arrived]
                if any(m in arrived for m in w_missing):
                    return [
                        (r, f"rank {r} in {e.spec.describe()}"
                            if e.spec else f"rank {r}")
                        for r, e in entry.items()
                    ]
                frontier.extend(m for m in w_missing if m in self._waiting)
        except RuntimeError:  # a foreign round's dict mutated mid-scan
            return None  # transient; the next poll tick re-checks
        return None

    def _desync(self, group: Any, seq: int, rnd: Any,
                guilty: List[int], detail: str) -> CollectiveDesync:
        specs = rnd.specs or {}
        waiting = sorted(group.ranks[l] for l in rnd.payloads)
        callsites = {
            group.ranks[l]: s.callsite for l, s in specs.items() if s.callsite
        }
        op = next(iter(specs.values())).op if specs else "collective"
        return CollectiveDesync(
            group.ranks, seq, op, waiting, guilty, detail, callsites
        )

    # -- p2p hooks -----------------------------------------------------------

    def note_send(self, src: int, dst: int, key: Any, payload: Any) -> None:
        sd = _shape_dtype(payload)
        crc = payload_checksum(payload) if self.checksum else None
        with self._lock:
            if crc is not None:
                self._send_crcs.setdefault(key, []).append(crc)
            self._append_record_locked(src, make_record(
                "send", "send", f"send{sd}", peer=dst, crc=crc,
            ))

    def verify_recv(self, src: int, dst: int, key: Any, payload: Any) -> None:
        sd = _shape_dtype(payload)
        crc = None
        if self.checksum:
            crc = payload_checksum(payload)
            with self._lock:
                fifo = self._send_crcs.get(key)
                expected = fifo.pop(0) if fifo else None
                self.p2p_checked += 1
            if expected is not None and expected != crc:
                self.events.append(ChecksumEvent(
                    "p2p", "recv", src, dst, injected=False, healed=False,
                    expected=expected, actual=crc,
                ))
                raise ChecksumMismatch(
                    "recv", src, dst, expected, crc, injected=False
                )
        with self._lock:
            self._append_record_locked(dst, make_record(
                "recv", "recv", f"recv{sd}", peer=src, crc=crc,
            ))

    def note_injected_corruption(self, src: int, dst: int) -> None:
        """The fault injector corrupted one p2p attempt; the transport's
        receiver-side checksum caught it and the retry layer retransmits —
        attribution: injected, healed."""
        with self._lock:
            self.events.append(ChecksumEvent(
                "p2p", "p2p", src, dst, injected=True, healed=True,
            ))

    def note_injected_glitch(self, op: str, ranks: Sequence[int],
                             attempts: int, permanent: bool) -> None:
        with self._lock:
            self.events.append(ChecksumEvent(
                "collective", op, min(ranks), max(ranks),
                injected=True, healed=not permanent,
            ))

    # -- streams / replay ----------------------------------------------------

    def _append_record_locked(self, rank: int, rec: OpRecord) -> None:
        stream = self._streams.setdefault(rank, [])
        idx = len(stream)
        stream.append(rec)
        if self._replay is not None:
            golden = self._replay["streams"].get(rank, [])
            expected = golden[idx] if idx < len(golden) else None
            if expected is None or not records_equal(expected, rec):
                raise ReplayDivergence(rank, idx, expected, rec)

    def streams(self) -> Dict[int, List[OpRecord]]:
        with self._lock:
            return {r: list(s) for r, s in self._streams.items()}

    def golden(self) -> Dict[str, Any]:
        """The current run's op streams as a golden document."""
        return {
            "version": GOLDEN_VERSION,
            "world_size": self._world,
            "streams": self.streams(),
        }

    def save_golden(self, path: str) -> None:
        save_golden(path, self._world, self.streams())

    def collective_digests(self, rank: int = 0) -> List[Tuple[str, int, Optional[int]]]:
        """``(op, seq, result-crc)`` stream for one rank — bitwise parity
        across collective algorithms is asserted by comparing these."""
        with self._lock:
            return [
                (r["op"], r.get("seq", -1), r.get("rcrc"))
                for r in self._streams.get(rank, [])
                if r["kind"] == "collective"
            ]

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "rounds_checked": self.rounds_checked,
                "mismatches": self.mismatches,
                "desyncs": self.desyncs,
                "p2p_checked": self.p2p_checked,
                "events": list(self.events),
                "loans": (list(self.race_detector.loans)
                          if self.race_detector else []),
                "race_violations": (list(self.race_detector.violations)
                                    if self.race_detector else []),
                "stream_lengths": {
                    r: len(s) for r, s in sorted(self._streams.items())
                },
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommSanitizer(checksum={self.checksum}, "
            f"race={self.race_detector is not None}, "
            f"rounds={self.rounds_checked})"
        )
