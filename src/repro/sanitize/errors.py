"""Typed sanitizer errors.

Every error the sanitizer raises names the guilty rank(s) and, where the
information exists, the Python call sites that issued the divergent
operations — the whole point is turning "it hung" or "the loss is wrong"
into an actionable one-line diagnosis.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple


class SanitizerError(RuntimeError):
    """Base class for every error raised by :mod:`repro.sanitize`."""


def _format_side(ranks: Sequence[int], sig: str,
                 callsites: Dict[int, str]) -> str:
    where = "; ".join(
        f"rank {r} @ {callsites[r]}" for r in ranks if r in callsites
    )
    head = f"ranks {list(ranks)}: {sig}"
    return f"{head} ({where})" if where else head


class CollectiveMismatch(SanitizerError):
    """Member ranks met in the same rendezvous round with incompatible
    calls (different op / shape / dtype / reduce op / root / axis).

    ``sides`` maps each distinct call signature to the global ranks that
    issued it; ``divergent_ranks`` is every rank outside the majority
    signature (ties broken by lowest rank set).
    """

    def __init__(self, group_ranks: Sequence[int], seq: int,
                 sides: Dict[str, List[int]],
                 callsites: Optional[Dict[int, str]] = None) -> None:
        self.group_ranks = tuple(group_ranks)
        self.seq = seq
        self.sides = {sig: list(ranks) for sig, ranks in sides.items()}
        self.callsites = dict(callsites or {})
        majority = max(
            self.sides.values(), key=lambda ranks: (len(ranks), -min(ranks))
        )
        self.divergent_ranks = tuple(sorted(
            r for ranks in self.sides.values() for r in ranks
            if ranks is not majority
        ))
        lines = [
            _format_side(ranks, sig, self.callsites)
            for sig, ranks in sorted(self.sides.items(),
                                     key=lambda kv: min(kv[1]))
        ]
        super().__init__(
            f"collective mismatch in group {list(self.group_ranks)} at "
            f"seq {seq}: " + " | ".join(lines)
        )


class CollectiveDesync(SanitizerError):
    """Some member ranks entered a collective that the others will never
    reach — they already exited the program, or are parked in a different
    round forming a wait cycle.  Raised from the rendezvous wait loop
    instead of letting the round hit ``deadlock_timeout``.
    """

    def __init__(self, group_ranks: Sequence[int], seq: int, op: str,
                 waiting: Sequence[int], missing: Sequence[int],
                 detail: str, callsites: Optional[Dict[int, str]] = None) -> None:
        self.group_ranks = tuple(group_ranks)
        self.seq = seq
        self.op = op
        self.waiting_ranks = tuple(waiting)
        self.missing_ranks = tuple(missing)
        self.callsites = dict(callsites or {})
        where = "; ".join(
            f"rank {r} @ {self.callsites[r]}"
            for r in self.waiting_ranks if r in self.callsites
        )
        msg = (
            f"collective desync: ranks {list(self.waiting_ranks)} are in "
            f"{op!r} (group {list(self.group_ranks)}, seq {seq}) but ranks "
            f"{list(self.missing_ranks)} {detail}"
        )
        if where:
            msg += f" [{where}]"
        super().__init__(msg)


class ChecksumMismatch(SanitizerError):
    """A payload's bytes changed between the producer-side and
    consumer-side hash — in-flight corruption.  ``injected`` is True when
    the fault injector owns the corruption (a scheduled
    :class:`~repro.faults.plan.MessageFault`), False for a logic bug.
    """

    def __init__(self, op: str, src: int, dst: int,
                 expected: int, actual: int, injected: bool = False) -> None:
        self.op = op
        self.src = src
        self.dst = dst
        self.expected = expected
        self.actual = actual
        self.injected = injected
        origin = "fault-injected" if injected else "NOT injected: logic bug"
        super().__init__(
            f"{op} payload checksum mismatch on link {src}->{dst}: "
            f"expected {expected:#010x}, got {actual:#010x} ({origin})"
        )


class SharedBufferRace(SanitizerError):
    """A numpy buffer handed to a communication call was mutated while in
    flight, or is aliased across ranks in a way a later mutation would
    silently corrupt."""

    def __init__(self, op: str, rank: int, detail: str) -> None:
        self.op = op
        self.rank = rank
        super().__init__(
            f"shared-buffer race in {op!r} on rank {rank}: {detail}"
        )


class ReplayDivergence(SanitizerError):
    """The live op stream diverged from the golden recording.

    ``step`` is the index into the rank's op stream (0-based); ``expected``
    / ``got`` are op-record dicts (op, signature, group, checksum).
    """

    def __init__(self, rank: int, step: int,
                 expected: Optional[Dict[str, Any]],
                 got: Optional[Dict[str, Any]]) -> None:
        self.rank = rank
        self.step = step
        self.expected = expected
        self.got = got

        def _short(rec: Optional[Dict[str, Any]]) -> str:
            if rec is None:
                return "<no op>"
            text = f"{rec.get('op')}[{rec.get('sig')}]"
            if crc_only and rec.get("crc") is not None:
                text += f" crc={rec['crc']:#010x}"
            return text

        crc_only = (
            expected is not None and got is not None
            and expected.get("sig") == got.get("sig")
            and expected.get("crc") != got.get("crc")
        )
        detail = " (same op, payload bytes differ)" if crc_only else ""
        super().__init__(
            f"replay divergence at rank {rank} step {step}: golden has "
            f"{_short(expected)}, run issued {_short(got)}{detail}"
        )
