"""Retry policy with exponential backoff.

The communication layer retransmits dropped/corrupted messages under a
:class:`RetryPolicy`: each failed attempt charges the failed transfer plus a
capped exponential backoff delay to the sender's *simulated* clock, so the
resilience behaviour (recovery time vs. fault rate) is measurable the same
way throughput is.  Once ``max_retries`` retransmissions fail, the operation
surfaces as a typed :class:`repro.runtime.errors.CollectiveTimeout`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry-with-backoff parameters for communication ops.

    ``backoff(attempt)`` is the simulated delay inserted before
    retransmission ``attempt`` (1-based): ``base * factor**(attempt-1)``,
    capped at ``cap`` seconds.
    """

    max_retries: int = 4
    backoff_base: float = 1e-4
    backoff_factor: float = 2.0
    backoff_cap: float = 1e-2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Simulated-seconds delay before retransmission ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        return min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_cap,
        )
