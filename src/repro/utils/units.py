"""Byte-size units and formatting."""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def format_bytes(n: float) -> str:
    """Render a byte count with a binary-unit suffix, e.g. ``format_bytes(3 * GB)
    == '3.00 GiB'``."""
    n = float(n)
    for unit, suffix in ((GB, "GiB"), (MB, "MiB"), (KB, "KiB")):
        if abs(n) >= unit:
            return f"{n / unit:.2f} {suffix}"
    return f"{n:.0f} B"
