"""Logging helpers.

A thin wrapper over :mod:`logging` that gives every subsystem a namespaced
logger under the ``repro`` root and keeps the default configuration quiet so
that benchmark output stays readable.
"""

from __future__ import annotations

import logging

_CONFIGURED = False


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _CONFIGURED = True


def get_logger(name: str = "repro") -> logging.Logger:
    """Return a logger in the ``repro`` namespace.

    Parameters
    ----------
    name:
        Dotted suffix, e.g. ``"comm"`` yields the ``repro.comm`` logger.
    """
    _configure_root()
    if name == "repro" or name.startswith("repro."):
        full = name
    else:
        full = f"repro.{name}"
    return logging.getLogger(full)
