"""Wall-clock timers used by the trainer hooks and benchmarks.

These measure *host* time.  Simulated device/communication time lives in
:mod:`repro.runtime.clock` — do not confuse the two.
"""

from __future__ import annotations

import time
from typing import Dict, Optional


class Timer:
    """A simple start/stop accumulator timer."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0
        self._count: int = 0

    @property
    def running(self) -> bool:
        return self._start is not None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("Timer already started")
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop and return the duration of the last interval in seconds."""
        if self._start is None:
            raise RuntimeError("Timer not started")
        interval = time.perf_counter() - self._start
        self._elapsed += interval
        self._count += 1
        self._start = None
        return interval

    def reset(self) -> None:
        self._start = None
        self._elapsed = 0.0
        self._count = 0

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds across completed intervals."""
        return self._elapsed

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._elapsed / self._count if self._count else 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        if self.running:
            self.stop()


class MultiTimer:
    """A named collection of :class:`Timer` objects."""

    def __init__(self) -> None:
        self._timers: Dict[str, Timer] = {}

    def __call__(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer()
        return self._timers[name]

    def start(self, name: str) -> None:
        self(name).start()

    def stop(self, name: str) -> float:
        return self(name).stop()

    def elapsed(self, name: str) -> float:
        return self(name).elapsed

    def reset(self, name: Optional[str] = None) -> None:
        if name is None:
            for t in self._timers.values():
                t.reset()
        else:
            self(name).reset()

    def summary(self) -> Dict[str, float]:
        return {k: t.elapsed for k, t in self._timers.items()}
