"""Shared utilities: logging, timers, seeding, formatting helpers."""

from repro.utils.backoff import RetryPolicy
from repro.utils.logging import get_logger
from repro.utils.timer import Timer, MultiTimer
from repro.utils.units import GB, MB, KB, format_bytes

__all__ = [
    "RetryPolicy",
    "get_logger",
    "Timer",
    "MultiTimer",
    "GB",
    "MB",
    "KB",
    "format_bytes",
]
