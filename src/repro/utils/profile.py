"""Simulated-time profiling reports.

Every :class:`SimClock` tracks how its time divides into categories
(``compute``, ``comm``, ``offload``, ``optimizer``, ``wait``).  These
helpers turn that into per-rank breakdown tables — the "where did the step
time go" view used when tuning parallel plans.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.runtime.spmd import SpmdRuntime

CATEGORIES = ("compute", "comm", "offload", "optimizer", "wait")


def time_breakdown(runtime: SpmdRuntime) -> List[Dict[str, float]]:
    """Per-rank seconds by category (+ ``total``)."""
    rows = []
    for clock in runtime.clocks:
        b = clock.breakdown()
        row = {c: b.get(c, 0.0) for c in CATEGORIES}
        extra = sum(v for k, v in b.items() if k not in CATEGORIES)
        row["other"] = extra
        row["total"] = clock.time
        rows.append(row)
    return rows


def format_breakdown(runtime: SpmdRuntime, unit: float = 1.0, suffix: str = "s") -> str:
    """Render the per-rank breakdown as an aligned text table.

    ``unit``: divide seconds by this (e.g. 1e-3 to print milliseconds).
    """
    rows = time_breakdown(runtime)
    cols = list(CATEGORIES) + ["other", "total"]
    header = "rank  " + "  ".join(f"{c:>10s}" for c in cols)
    lines = [header]
    for r, row in enumerate(rows):
        cells = "  ".join(f"{row[c] / unit:10.3f}" for c in cols)
        lines.append(f"{r:4d}  {cells}")
    lines.append(f"(unit: {suffix})")
    return "\n".join(lines)


def comm_fraction(runtime: SpmdRuntime) -> float:
    """Fraction of the makespan the slowest rank spent communicating."""
    rows = time_breakdown(runtime)
    worst = max(rows, key=lambda r: r["total"])
    return worst["comm"] / worst["total"] if worst["total"] else 0.0
