"""Closed-form analytical models, used to cross-check measurements.

* :mod:`repro.analytic.commvolume` — Table 1 communication-volume formulas.
* :mod:`repro.analytic.memory_model` — model-data / non-model-data byte
  estimates (§1 terminology).
* :mod:`repro.analytic.perf_model` — FLOP counts for Transformer training.
"""

from repro.analytic.commvolume import (
    comm_volume_1d,
    comm_volume_2d,
    comm_volume_25d,
    comm_volume_3d,
    comm_volume_table,
)
from repro.analytic.memory_model import (
    adam_model_data_bytes,
    model_data_bytes_per_rank,
    transformer_activation_bytes,
    transformer_param_count,
    zero_partitioned_bytes,
)
from repro.analytic.perf_model import (
    data_parallel_step_comm_time,
    overlap_exposed_seconds,
    transformer_layer_flops,
    training_flops_per_token,
    zero_step_comm_time,
)

__all__ = [
    "comm_volume_1d",
    "comm_volume_2d",
    "comm_volume_25d",
    "comm_volume_3d",
    "comm_volume_table",
    "transformer_param_count",
    "adam_model_data_bytes",
    "transformer_activation_bytes",
    "transformer_layer_flops",
    "training_flops_per_token",
    "data_parallel_step_comm_time",
    "model_data_bytes_per_rank",
    "overlap_exposed_seconds",
    "zero_partitioned_bytes",
    "zero_step_comm_time",
]
