"""Table 1: communication volume of tensor parallelism.

For ``Y = W X`` with X of shape (b, s, h) and W of shape (h, h):

====  =============================================
1D    ``2 (p-1) * S_X``
2D    ``3 (j-1) * (S_X + S_W)``           (p = j^2)
2.5D  ``3 (k-1) * (S_X / d + S_W)``       (p = d k^2)
3D    ``2 (l-1)/l * (S_X + S_W + S_Y)``   (p = l^3)
====  =============================================

All volumes are in *elements transferred* (the paper's unit).  The 1D,
2D and 2.5D rows count total wire traffic of the fwd+bwd pass as measured
by our counters; the 3D row follows the paper's published form, which is a
per-ring-member count — multiply by ``l`` for the total (the bench reports
both and verifies the factor).
"""

from __future__ import annotations

import math
from typing import Dict, List


def _sizes(b: int, s: int, h: int) -> Dict[str, int]:
    return {"S_X": b * s * h, "S_W": h * h, "S_Y": b * s * h}


def comm_volume_1d(p: int, b: int, s: int, h: int) -> float:
    sx = _sizes(b, s, h)["S_X"]
    return 2 * (p - 1) * sx


def comm_volume_2d(p: int, b: int, s: int, h: int) -> float:
    j = math.isqrt(p)
    if j * j != p:
        raise ValueError(f"2D needs a square p, got {p}")
    z = _sizes(b, s, h)
    return 3 * (j - 1) * (z["S_X"] + z["S_W"])


def comm_volume_25d(p: int, b: int, s: int, h: int, d: int) -> float:
    if p % d:
        raise ValueError(f"2.5D needs p divisible by depth, got p={p}, d={d}")
    k = math.isqrt(p // d)
    if k * k * d != p:
        raise ValueError(f"2.5D needs p = d*k^2, got p={p}, d={d}")
    z = _sizes(b, s, h)
    return 3 * (k - 1) * (z["S_X"] / d + z["S_W"])


def comm_volume_3d(p: int, b: int, s: int, h: int, total: bool = False) -> float:
    l = round(p ** (1 / 3))
    if l**3 != p:
        raise ValueError(f"3D needs a cubic p, got {p}")
    z = _sizes(b, s, h)
    per_member = 2 * (l - 1) / l * (z["S_X"] + z["S_W"] + z["S_Y"])
    return per_member * l if total else per_member


def comm_volume_table(
    ps: List[int], b: int = 32, s: int = 512, h: int = 1024, depth: int = 2
) -> List[Dict[str, float]]:
    """The Fig 5 dataset: volume per mode for each GPU count (NaN where the
    mode's topology constraint isn't met)."""
    rows = []
    for p in ps:
        row: Dict[str, float] = {"p": p, "1d": comm_volume_1d(p, b, s, h)}
        j = math.isqrt(p)
        row["2d"] = comm_volume_2d(p, b, s, h) if j * j == p else float("nan")
        try:
            row["2.5d"] = comm_volume_25d(p, b, s, h, depth)
        except ValueError:
            row["2.5d"] = float("nan")
        l = round(p ** (1 / 3))
        row["3d"] = comm_volume_3d(p, b, s, h) if l**3 == p else float("nan")
        rows.append(row)
    return rows
