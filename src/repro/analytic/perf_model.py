"""FLOP models for Transformer training and analytic comm-time estimates."""

from __future__ import annotations

from typing import Sequence, Tuple


def transformer_layer_flops(
    batch: int, seq: int, hidden: int, mlp_ratio: int = 4
) -> float:
    """Forward FLOPs of one layer: QKV/out projections (4 h^2 matmuls),
    attention score+context (2 s h matmuls), MLP (2 r h^2 matmuls)."""
    mm = 2.0 * batch * seq  # 2 flops per MAC, per token
    proj = mm * (4 * hidden * hidden)
    attn = mm * (2 * seq * hidden)
    mlp = mm * (2 * mlp_ratio * hidden * hidden)
    return proj + attn + mlp


def training_flops_per_token(n_params: int) -> float:
    """The standard ``6 * N`` rule: forward 2N, backward 4N."""
    return 6.0 * n_params


def data_parallel_step_comm_time(
    cluster, ranks: Sequence[int], grad_bytes: int, algorithm: str = "auto"
) -> Tuple[float, str]:
    """Analytic estimate of the per-step gradient-allreduce time over
    ``ranks`` (seconds), plus the collective algorithm that achieves it.

    With ``algorithm="auto"`` this answers the planning question "what does
    the gradient sync cost on this fabric once the communicator picks its
    best schedule?" — the number the paper's Fig 11 hardware-compatibility
    argument turns on.
    """
    from repro.comm.cost import CostModel  # deferred: comm builds on cluster

    cost = CostModel(cluster, algorithm=algorithm).allreduce(
        list(ranks), int(grad_bytes)
    )
    return cost.seconds, cost.algorithm
