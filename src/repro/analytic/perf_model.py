"""FLOP models for Transformer training and analytic comm-time estimates."""

from __future__ import annotations

from typing import Sequence, Tuple


def transformer_layer_flops(
    batch: int, seq: int, hidden: int, mlp_ratio: int = 4
) -> float:
    """Forward FLOPs of one layer: QKV/out projections (4 h^2 matmuls),
    attention score+context (2 s h matmuls), MLP (2 r h^2 matmuls)."""
    mm = 2.0 * batch * seq  # 2 flops per MAC, per token
    proj = mm * (4 * hidden * hidden)
    attn = mm * (2 * seq * hidden)
    mlp = mm * (2 * mlp_ratio * hidden * hidden)
    return proj + attn + mlp


def training_flops_per_token(n_params: int) -> float:
    """The standard ``6 * N`` rule: forward 2N, backward 4N."""
    return 6.0 * n_params


def zero_step_comm_time(
    cluster,
    ranks: Sequence[int],
    grad_bytes: int,
    param_bytes: int = 0,
    stage: int = 0,
    algorithm: str = "auto",
) -> Tuple[float, str]:
    """Analytic per-step gradient-synchronization time over ``ranks`` under
    a ZeRO ``stage`` (seconds), plus the algorithm label that priced the
    dominant collective.

    * stage 0 — one gradient all-reduce (``data_parallel_step_comm_time``);
    * stage 1/2 — reduce-scatter of the gradients + all-gather of the
      updated parameters (the same total volume an all-reduce moves, split
      into the two phases chunk-based ZeRO actually issues);
    * stage 3 — additionally re-gathers the partitioned parameters before
      forward *and* backward (two extra all-gathers of ``param_bytes``).
    """
    from repro.comm.cost import CostModel  # deferred: comm builds on cluster

    model = CostModel(cluster, algorithm=algorithm)
    ranks = list(ranks)
    if stage == 0 or len(ranks) <= 1:
        cost = model.allreduce(ranks, int(grad_bytes))
        return cost.seconds, cost.algorithm
    rs = model.reduce_scatter(ranks, int(grad_bytes))
    ag = model.allgather(ranks, int(param_bytes or grad_bytes) // len(ranks))
    seconds = rs.seconds + ag.seconds
    if stage >= 3 and param_bytes > 0:
        seconds += 2 * model.allgather(ranks, int(param_bytes) // len(ranks)).seconds
    return seconds, rs.algorithm


def overlap_exposed_seconds(
    comm_seconds: float,
    backward_compute_seconds: float,
    hideable_fraction: float = 1.0,
) -> float:
    """Exposed (non-hidden) communication time when gradient traffic is
    issued nonblocking from backward hooks: the part of ``comm_seconds``
    that does not fit behind ``hideable_fraction`` of the backward compute.

    This is the planning-side counterpart of the PR-5 overlap schedulers —
    the simulator proves overlap never *increases* step time, and this term
    gives the search a monotone analytic estimate of the benefit."""
    budget = max(hideable_fraction, 0.0) * max(backward_compute_seconds, 0.0)
    return max(float(comm_seconds) - budget, 0.0)


def data_parallel_step_comm_time(
    cluster, ranks: Sequence[int], grad_bytes: int, algorithm: str = "auto"
) -> Tuple[float, str]:
    """Analytic estimate of the per-step gradient-allreduce time over
    ``ranks`` (seconds), plus the collective algorithm that achieves it.

    With ``algorithm="auto"`` this answers the planning question "what does
    the gradient sync cost on this fabric once the communicator picks its
    best schedule?" — the number the paper's Fig 11 hardware-compatibility
    argument turns on.
    """
    from repro.comm.cost import CostModel  # deferred: comm builds on cluster

    cost = CostModel(cluster, algorithm=algorithm).allreduce(
        list(ranks), int(grad_bytes)
    )
    return cost.seconds, cost.algorithm
