"""FLOP models for Transformer training."""

from __future__ import annotations


def transformer_layer_flops(
    batch: int, seq: int, hidden: int, mlp_ratio: int = 4
) -> float:
    """Forward FLOPs of one layer: QKV/out projections (4 h^2 matmuls),
    attention score+context (2 s h matmuls), MLP (2 r h^2 matmuls)."""
    mm = 2.0 * batch * seq  # 2 flops per MAC, per token
    proj = mm * (4 * hidden * hidden)
    attn = mm * (2 * seq * hidden)
    mlp = mm * (2 * mlp_ratio * hidden * hidden)
    return proj + attn + mlp


def training_flops_per_token(n_params: int) -> float:
    """The standard ``6 * N`` rule: forward 2N, backward 4N."""
    return 6.0 * n_params
