"""Memory estimates in the paper's §1 terminology.

*Model data* = parameters + gradients + optimizer states; with Adam in
mixed precision this is 2 (fp16 param) + 2 (fp16 grad) + 4+4+4 (fp32
master, m, v) = **16 bytes per parameter** — the paper's "10B parameters
... more than 80 GB" arithmetic.

*Non-model data* = activations; for a Transformer layer these scale with
``b * s * h`` and, through the attention scores, with ``b * heads * s^2``
— the quadratic term sequence parallelism attacks.
"""

from __future__ import annotations


def transformer_param_count(
    n_layers: int, hidden: int, vocab: int = 0, seq_len: int = 0, mlp_ratio: int = 4
) -> int:
    """Parameters of an L-layer Transformer (+ optional embeddings/head)."""
    per_layer = (
        4 * hidden * hidden + 4 * hidden          # QKV + out proj (+biases)
        + 2 * mlp_ratio * hidden * hidden + (mlp_ratio + 1) * hidden  # MLP
        + 4 * hidden                               # 2 LayerNorms
    )
    emb = vocab * hidden + seq_len * hidden
    head = vocab * hidden
    return n_layers * per_layer + emb + head


def adam_model_data_bytes(
    n_params: int, param_bytes: int = 2, grad_bytes: int = 2, master: bool = True
) -> int:
    """Bytes of model data under (mixed-precision) Adam.

    fp16 params + fp16 grads + fp32 (master + m + v) = 16 B/param."""
    opt = (4 + 4 + 4) if master else (4 + 4)
    return n_params * (param_bytes + grad_bytes + opt)


def transformer_activation_bytes(
    batch: int,
    seq: int,
    hidden: int,
    n_heads: int,
    n_layers: int,
    mlp_ratio: int = 4,
    bytes_per_elem: int = 2,
    with_scores: bool = True,
    checkpoint: bool = False,
) -> int:
    """Rough per-step activation footprint.

    Each layer stores ~``(10 + 2*mlp_ratio) * b*s*h`` activation elements
    plus the attention probabilities ``2 * b * heads * s^2`` (scores +
    softmax output).  With activation checkpointing only the layer inputs
    (``b*s*h`` per layer) persist.
    """
    linear_terms = (10 + 2 * mlp_ratio) * batch * seq * hidden
    score_terms = 2 * batch * n_heads * seq * seq if with_scores else 0
    if checkpoint:
        return n_layers * batch * seq * hidden * bytes_per_elem
    return n_layers * (linear_terms + score_terms) * bytes_per_elem
