"""Memory estimates in the paper's §1 terminology.

*Model data* = parameters + gradients + optimizer states; with Adam in
mixed precision this is 2 (fp16 param) + 2 (fp16 grad) + 4+4+4 (fp32
master, m, v) = **16 bytes per parameter** — the paper's "10B parameters
... more than 80 GB" arithmetic.

*Non-model data* = activations; for a Transformer layer these scale with
``b * s * h`` and, through the attention scores, with ``b * heads * s^2``
— the quadratic term sequence parallelism attacks.
"""

from __future__ import annotations


def transformer_param_count(
    n_layers: int, hidden: int, vocab: int = 0, seq_len: int = 0, mlp_ratio: int = 4
) -> int:
    """Parameters of an L-layer Transformer (+ optional embeddings/head)."""
    per_layer = (
        4 * hidden * hidden + 4 * hidden          # QKV + out proj (+biases)
        + 2 * mlp_ratio * hidden * hidden + (mlp_ratio + 1) * hidden  # MLP
        + 4 * hidden                               # 2 LayerNorms
    )
    emb = vocab * hidden + seq_len * hidden
    head = vocab * hidden
    return n_layers * per_layer + emb + head


def adam_model_data_bytes(
    n_params: int, param_bytes: int = 2, grad_bytes: int = 2, master: bool = True
) -> int:
    """Bytes of model data under (mixed-precision) Adam.

    fp16 params + fp16 grads + fp32 (master + m + v) = 16 B/param."""
    opt = (4 + 4 + 4) if master else (4 + 4)
    return n_params * (param_bytes + grad_bytes + opt)


def zero_partitioned_bytes(
    n_params: int,
    stage: int = 1,
    param_bytes: int = 2,
    grad_bytes: int = 2,
    master: bool = True,
) -> int:
    """Per-rank bytes of model data a ZeRO ``stage`` *partitions* across
    the data-parallel group (the remainder is replicated on every rank).

    Stage 1 shards optimizer states, stage 2 adds gradients, stage 3 adds
    the parameters themselves — the §1 decomposition of the 16 B/param
    model-data budget."""
    if stage not in (1, 2, 3):
        raise ValueError(f"ZeRO stage must be 1, 2 or 3, got {stage}")
    opt = (4 + 4 + 4) if master else (4 + 4)
    sharded = opt
    if stage >= 2:
        sharded += grad_bytes
    if stage >= 3:
        sharded += param_bytes
    return n_params * sharded


def model_data_bytes_per_rank(
    n_params: int,
    data: int = 1,
    zero_stage: int = 0,
    param_bytes: int = 2,
    grad_bytes: int = 2,
    master: bool = True,
) -> int:
    """Per-rank model-data bytes for ``n_params`` local parameters when a
    ZeRO ``zero_stage`` partitions part of the budget across a ``data``-wide
    data-parallel group.

    The partitionable slice (:func:`zero_partitioned_bytes`) shrinks to
    ``ceil(slice / data)`` per rank; the remainder is replicated on every
    rank.  ``zero_stage=0`` (or ``data=1``) returns the plain
    :func:`adam_model_data_bytes` budget."""
    full = adam_model_data_bytes(
        n_params, param_bytes=param_bytes, grad_bytes=grad_bytes, master=master
    )
    if zero_stage == 0 or data <= 1:
        return full
    sharded = zero_partitioned_bytes(
        n_params, stage=zero_stage, param_bytes=param_bytes,
        grad_bytes=grad_bytes, master=master,
    )
    return full - sharded + -(-sharded // data)  # ceil division


def tp_partitioned_bytes(
    n_params: int,
    param_bytes: int = 2,
    grad_bytes: int = 2,
    master: bool = True,
    partitioned_fraction: float = 1.0,
) -> int:
    """Per-rank bytes of model data tensor parallelism partitions: a TP
    shard owns ``1/q`` of the partitioned weights *and* their gradients
    and optimizer states.  ``partitioned_fraction`` carves out the
    replicated remainder (LayerNorms, biases kept whole)."""
    opt = (4 + 4 + 4) if master else (4 + 4)
    full = n_params * (param_bytes + grad_bytes + opt)
    return int(full * partitioned_fraction)


def project_peak_memory(peak_bytes, shards):
    """Project a captured per-rank peak to scale under re-sharding.

    ``shards`` is a sequence of ``(sharded_bytes, factor)`` pairs — for
    each scaled axis that partitions state, the captured per-rank bytes it
    shards and the axis widening factor.  Widening the axis ``k ×``
    shrinks that slice to ``ceil(sharded / k)``; everything else in the
    captured peak is replicated unchanged.  The sharded claims are clamped
    to the captured peak so an over-declared plan can never project
    negative memory."""
    peak = int(peak_bytes)
    projected = peak
    remaining = peak
    for sharded_bytes, factor in shards:
        sharded = min(int(sharded_bytes), remaining)
        if sharded <= 0 or factor <= 1:
            continue
        kept = -(-sharded // int(factor))  # ceil division
        projected -= sharded - kept
        remaining -= sharded
    return projected


def transformer_activation_bytes(
    batch: int,
    seq: int,
    hidden: int,
    n_heads: int,
    n_layers: int,
    mlp_ratio: int = 4,
    bytes_per_elem: int = 2,
    with_scores: bool = True,
    checkpoint: bool = False,
) -> int:
    """Rough per-step activation footprint.

    Each layer stores ~``(10 + 2*mlp_ratio) * b*s*h`` activation elements
    plus the attention probabilities ``2 * b * heads * s^2`` (scores +
    softmax output).  With activation checkpointing only the layer inputs
    (``b*s*h`` per layer) persist.
    """
    linear_terms = (10 + 2 * mlp_ratio) * batch * seq * hidden
    score_terms = 2 * batch * n_heads * seq * seq if with_scores else 0
    if checkpoint:
        return n_layers * batch * seq * hidden * bytes_per_elem
    return n_layers * (linear_terms + score_terms) * bytes_per_elem
