"""Execution engine — the ``colossalai.initialize`` / ``engine.*`` API of
Listing 1."""

from repro.engine.engine import Engine
from repro.engine.initialize import initialize, launch

__all__ = ["Engine", "initialize", "launch"]
