"""Top-level entry points: ``launch`` and ``initialize``.

``launch`` is the SPMD program runner (the analogue of
``colossalai.launch_from_torch``): it takes a config dict and a per-rank
function, builds the runtime + :class:`ParallelContext` on every rank and
executes the function.

``initialize`` assembles an :class:`Engine` from user components exactly as
Listing 1 shows, wiring in the configured features (fp16 wrapping, pipeline
schedule, optimizer clipping).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from repro.cluster.machine import ClusterSpec
from repro.config import Config
from repro.context.parallel_context import ParallelContext
from repro.engine.engine import Engine
from repro.nn.module import Module
from repro.parallel.pipeline.schedule import GPipeSchedule, PipelineSchedule
from repro.runtime.spmd import RankContext, SpmdRuntime


def launch(
    config: Union[Dict[str, Any], Config, None],
    cluster: ClusterSpec,
    fn: Optional[Callable[[RankContext, ParallelContext], Any]] = None,
    world_size: Optional[int] = None,
    materialize: bool = True,
    runtime: Optional[SpmdRuntime] = None,
    tracer: Optional[Any] = None,
) -> List[Any]:
    """Run ``fn(ctx, pc)`` SPMD over the cluster with the parallel context
    built from ``config``.  Returns per-rank results.

    Pass ``tracer=`` (a :class:`repro.trace.Tracer`) to record a per-rank
    timeline of the run.  A ``sanitize`` config section arms the SPMD
    sanitizer (``repro.sanitize``) for the run; with ``sanitize.record``
    set, each rank's op stream is saved to that golden file after a clean
    run.  With ``project.mode="project"`` the run is captured and replayed
    analytically at ``project.target_world`` ranks instead, returning a
    :class:`~repro.project.ProjectionReport` (see ``repro.project``).
    With a ``serve`` section the run is an inference-serving session
    instead: ``fn`` may be omitted and the launch returns a
    :class:`~repro.serve.TrafficReport` (see ``repro.serve``)."""
    cfg = config if isinstance(config, Config) else Config.from_dict(config)

    if cfg.autopar.enabled:
        # let the compiler pick the parallelization for the declared
        # workload, then launch with its decisions merged in
        from repro.autopar.compiler import compile_strategy

        compiled = compile_strategy(
            cluster,
            cfg.autopar.workload,
            cfg.autopar.global_batch,
            world_size=world_size or cluster.world_size,
            top_k=cfg.autopar.top_k,
            refine=cfg.autopar.refine,
            max_probe_world=cfg.autopar.max_probe_world,
        )
        cfg = compiled.apply_to(cfg)

    if cfg.serve.enabled:
        # serving mode: the world is one tensor-parallel decode replica
        # driven by the declared traffic; returns a TrafficReport
        from repro.serve import serve_launch

        return serve_launch(
            cfg, cluster, world_size=world_size, runtime=runtime,
            tracer=tracer,
        )

    if fn is None:
        raise TypeError(
            "launch() needs a per-rank fn unless a serve.* section makes "
            "the run a serving session")

    if cfg.project.mode == "project":
        from repro.project import project_launch

        return project_launch(
            cfg, cluster, fn, world_size=world_size,
            materialize=materialize, tracer=tracer,
        )

    def wrapper(ctx: RankContext) -> Any:
        pc = ParallelContext(ctx, cfg)
        return fn(ctx, pc)

    if runtime is not None:
        rt = runtime
        if cfg.comm.algorithm is not None:
            rt.set_comm_algorithm(cfg.comm.algorithm)
        if cfg.comm.overlap:
            rt.comm_overlap = True
    else:
        rt = SpmdRuntime(
            cluster,
            world_size,
            comm_algorithm=cfg.comm.algorithm or "ring",
            comm_overlap=cfg.comm.overlap,
        )
    if cfg.comm.island_ratio != rt.comm_island_ratio:
        with rt._group_lock:
            rt.comm_island_ratio = cfg.comm.island_ratio
            for grp in rt._groups.values():
                grp.cost_model.island_ratio = cfg.comm.island_ratio
                grp.cost_model.selector.clear()
    if tracer is not None:
        tracer.install(rt)
    san = None
    if cfg.sanitize.enabled and rt.sanitizer is None:
        san = cfg.sanitize.build()
        san.install(rt)
    try:
        results = rt.run(wrapper, materialize=materialize, seed=cfg.seed)
        if san is not None and cfg.sanitize.record:
            san.save_golden(cfg.sanitize.record)
        return results
    finally:
        if san is not None:
            san.uninstall()


def initialize(
    model: Module,
    optimizer: Any,
    criterion: Optional[Callable] = None,
    pc: Optional[ParallelContext] = None,
    config: Optional[Config] = None,
    schedule: Optional[PipelineSchedule] = None,
) -> Engine:
    """Build an Engine with the configured acceleration features injected.

    Mirrors ``colossalai.initialize(model, optimizer, criterion, ...)``.
    """
    if pc is None:
        from repro.context.parallel_context import global_context

        pc = global_context()
    cfg = config if config is not None else pc.config
    if cfg.fp16.enabled:
        from repro.amp.fp16 import cast_model_to

        cast_model_to(model, "float16")
    if (
        cfg.comm.overlap
        and pc.data_size > 1
        and cfg.model_parallel_size() == 1
        and not cfg.fp16.enabled
    ):
        # pure data parallelism: auto-wrap so gradient buckets all-reduce
        # nonblocking from backward hooks (fp16 keeps the post-backward sweep
        # because unscale+overflow check must precede any gradient traffic)
        from repro.parallel.data import DistributedDataParallel

        if not isinstance(model, DistributedDataParallel):
            model = DistributedDataParallel(model, pc, overlap=True)
    if schedule is None and pc.pipeline_size > 1:
        if cfg.pipeline_schedule == "1f1b":
            from repro.parallel.pipeline.schedule import OneFOneBSchedule

            schedule = OneFOneBSchedule(pc, cfg.num_microbatches)
        else:
            schedule = GPipeSchedule(pc, cfg.num_microbatches)
    return Engine(model, optimizer, criterion, pc, cfg, schedule=schedule)
