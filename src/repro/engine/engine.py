"""The training Engine (Listing 1 of the paper).

Wraps (model, optimizer, criterion) and injects the configured acceleration
features::

    engine.zero_grad()
    output = engine(data)
    loss = engine.criterion(output, label)
    engine.backward(loss)
    engine.step()

``backward`` applies loss scaling (fp16) and ``step`` performs, in order:
grad unscale + overflow check, replicated-parameter grad sync
(``grad_sync_comms``), data-parallel gradient averaging, clipping, and the
optimizer update.  With a pipeline schedule, ``engine.execute_schedule``
replaces the forward/backward pair.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.amp.grad_scaler import GradScaler
from repro.config import Config
from repro.context.parallel_context import ParallelContext, ParallelMode
from repro.nn.module import Module
from repro.parallel.common import sync_parameter_gradients
from repro.parallel.data import DistributedDataParallel, sync_gradients
from repro.parallel.pipeline.schedule import PipelineSchedule
from repro.tensor.tensor import Tensor


class Engine:
    def __init__(
        self,
        model: Module,
        optimizer: Any,
        criterion: Optional[Callable],
        pc: ParallelContext,
        config: Config,
        schedule: Optional[PipelineSchedule] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.criterion = criterion
        self.pc = pc
        self.config = config
        self.schedule = schedule
        self.scaler = GradScaler(config.fp16) if config.fp16.enabled else None
        self.steps_skipped = 0
        self.global_step = 0
        self.gradient_accumulation = 1
        self._accum_count = 0

    # -- Listing-1 surface -------------------------------------------------------

    def __call__(self, *args: Any, **kwargs: Any) -> Tensor:
        return self.model(*args, **kwargs)

    def zero_grad(self) -> None:
        self.optimizer.zero_grad()

    def backward(self, loss: Tensor) -> None:
        if self.gradient_accumulation > 1:
            if (
                isinstance(self.model, DistributedDataParallel)
                and self.model.overlap
            ):
                raise RuntimeError(
                    "gradient accumulation needs overlap=False: hook-driven "
                    "bucket flushing would all-reduce after the first backward "
                    "instead of once per accumulation window"
                )
            from repro.autograd import ops

            loss = ops.mul(loss, 1.0 / self.gradient_accumulation)
        if self.scaler is not None:
            loss = self.scaler.scale_loss(loss)
        loss.backward()

    def step(self) -> bool:
        """Sync + update; returns False when fp16 overflow skipped the step
        or when still inside a gradient-accumulation window (grads kept)."""
        if self.gradient_accumulation > 1:
            self._accum_count += 1
            if self._accum_count < self.gradient_accumulation:
                return False
            self._accum_count = 0
        params = self.model.parameters()
        if self.scaler is not None:
            if not self.scaler.unscale_and_check(params):
                self.steps_skipped += 1
                self.optimizer.zero_grad()
                return False
        # replicated-parameter sums (2.5D depth, sequence parallelism)
        sync_parameter_gradients(self.model)
        # data-parallel average; a DDP-wrapped model owns its own sync (the
        # overlap path only waits handles — the all-reduces already ran on
        # the comm stream during backward)
        if isinstance(self.model, DistributedDataParallel):
            self.model.sync()
        elif self.pc.data_size > 1:
            sync_gradients(params, self.pc.comm(ParallelMode.DATA))
        if self.config.gradient_clipping > 0:
            self.optimizer.clip_grad_norm(self.config.gradient_clipping)
        self.optimizer.step()
        self.global_step += 1
        return True

    # -- pipeline ------------------------------------------------------------------

    def execute_schedule(self, data, targets=None) -> Optional[float]:
        """Run one full pipelined step (forward+backward over all
        microbatches); caller still invokes ``engine.step()``."""
        if self.schedule is None:
            raise RuntimeError("engine was initialized without a pipeline schedule")
        return self.schedule.run(self.model, data, targets, self.criterion)

    def train(self) -> None:
        self.model.train()

    def eval(self) -> None:
        self.model.eval()
