"""SPMD thread launcher.

``SpmdRuntime.run(fn)`` executes ``fn(ctx)`` once per rank, each on its own
thread, in the style of ``mpiexec -n N python script.py``.  NumPy releases
the GIL for array work, so rank threads overlap where it matters; more
importantly, *simulated* time is tracked per rank by :class:`SimClock`, so
host-thread scheduling never affects measured results.

Failure handling: if any rank raises, the runtime trips an abort flag that
every blocking communication primitive polls; all other ranks then raise
:class:`SpmdAborted`, threads are joined and the original exception is
re-raised on the launcher thread wrapped in :class:`RemoteRankError`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.machine import ClusterSpec
from repro.runtime.clock import SimClock, StreamClock
from repro.runtime.errors import CollectiveTimeout, RemoteRankError, SpmdAborted
from repro.utils.backoff import RetryPolicy

_thread_local = threading.local()

#: Default host-time limit for any single blocking communication call.
#: Generous — it exists to turn accidental deadlocks into diagnosable
#: errors.  Override per runtime via ``SpmdRuntime(deadlock_timeout=...)``.
_DEADLOCK_TIMEOUT = 120.0


class RankContext:
    """Everything one rank's thread needs: identity, device handles, clock,
    RNG, execution mode and a slot for the parallel context."""

    def __init__(
        self,
        runtime: "SpmdRuntime",
        rank: int,
        materialize: bool,
        seed: int,
    ) -> None:
        self.runtime = runtime
        self.rank = rank
        self.world_size = runtime.world_size
        self.cluster = runtime.cluster
        self.device = runtime.cluster.device(rank)
        self.cpu = runtime.cluster.cpu_of(rank)
        self.clock = runtime.clocks[rank]
        self.materialize = materialize
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.parallel_context: Optional[Any] = None  # set by repro.context

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RankContext(rank={self.rank}/{self.world_size}, device={self.device.name})"


def current_rank_context() -> RankContext:
    """The :class:`RankContext` of the calling thread.

    Raises if called outside an SPMD program — library code that needs the
    context should receive it explicitly where possible; this accessor exists
    for deep call sites (tensor allocation, autograd ops).
    """
    ctx = getattr(_thread_local, "ctx", None)
    if ctx is None:
        raise RuntimeError(
            "no SPMD rank context on this thread; call inside SpmdRuntime.run()"
        )
    return ctx


def in_spmd() -> bool:
    return getattr(_thread_local, "ctx", None) is not None


class _Mailboxes:
    """Point-to-point message store: (src, dst, tag) -> FIFO of payloads."""

    def __init__(self, timeout: float = _DEADLOCK_TIMEOUT) -> None:
        self._cond = threading.Condition()
        self._boxes: Dict[Tuple[int, int, Any], List[Any]] = {}
        self._timeout = timeout

    def put(self, key: Tuple[int, int, Any], item: Any) -> None:
        with self._cond:
            self._boxes.setdefault(key, []).append(item)
            self._cond.notify_all()

    def get(self, key: Tuple[int, int, Any], should_abort: Callable[[], bool]) -> Any:
        # event-driven: put() notifies, abort wakes via wake(); the deadline
        # is real monotonic elapsed time, not accumulated poll intervals
        deadline_ts = time.monotonic() + self._timeout
        with self._cond:
            while True:
                box = self._boxes.get(key)
                if box:
                    item = box.pop(0)
                    if not box:
                        del self._boxes[key]
                    return item
                if should_abort():
                    raise _make_abort_error()
                remaining = deadline_ts - time.monotonic()
                if remaining <= 0:
                    raise CollectiveTimeout(
                        "recv", key[:2], timeout=self._timeout
                    )
                self._cond.wait(remaining)

    def wake(self) -> None:
        """Wake blocked receivers so they re-check the abort flag."""
        with self._cond:
            self._cond.notify_all()

    def clear(self) -> None:
        """Drop all undelivered messages (stale state after an abort)."""
        with self._cond:
            self._boxes.clear()
            self._cond.notify_all()


def _make_abort_error() -> SpmdAborted:
    ctx = current_rank_context()
    failed_rank, cause = ctx.runtime.failure  # type: ignore[misc]
    return SpmdAborted(failed_rank, cause)


def _resolve_sanitizer(sanitize: Any) -> Any:
    """Accept the ``sanitize=`` runtime argument in any of its forms:
    ``True`` (all default checks), a :class:`~repro.config.SanitizeConfig`,
    or a ready :class:`~repro.sanitize.CommSanitizer`."""
    from repro.config import SanitizeConfig
    from repro.sanitize import CommSanitizer

    if isinstance(sanitize, CommSanitizer):
        return sanitize
    if sanitize is True:
        return CommSanitizer(checksum=True, race=True)
    if isinstance(sanitize, SanitizeConfig):
        san = sanitize.build()
        if san is None:
            raise ValueError(
                "sanitize config has enabled=False; pass None instead"
            )
        return san
    raise TypeError(
        f"sanitize must be True, a SanitizeConfig or a CommSanitizer, "
        f"got {type(sanitize).__name__}"
    )


class SpmdRuntime:
    """Owns the cluster, clocks, process-group registry and mailboxes for one
    SPMD program (or a sequence of them over the same cluster)."""

    def __init__(
        self,
        cluster: ClusterSpec,
        world_size: Optional[int] = None,
        deadlock_timeout: float = _DEADLOCK_TIMEOUT,
        fault_plan: Optional[Any] = None,
        retry: Optional[RetryPolicy] = None,
        tracer: Optional[Any] = None,
        comm_algorithm: str = "ring",
        sanitize: Optional[Any] = None,
        comm_overlap: bool = False,
        capture: Optional[Any] = None,
        buffer_pool: bool = True,
    ) -> None:
        if world_size is None:
            world_size = cluster.world_size
        if world_size > cluster.world_size:
            raise ValueError(
                f"world_size {world_size} exceeds cluster size {cluster.world_size}"
            )
        if deadlock_timeout <= 0:
            raise ValueError(
                f"deadlock_timeout must be positive, got {deadlock_timeout}"
            )
        from repro.comm.algorithms import ALGORITHMS  # comm builds on runtime

        if comm_algorithm not in ALGORITHMS + ("auto",):
            raise ValueError(
                f"unknown comm_algorithm {comm_algorithm!r}; "
                f"choose from {ALGORITHMS + ('auto',)}"
            )
        #: default collective algorithm for every process group's cost model
        self.comm_algorithm = comm_algorithm
        #: island-detection bandwidth-ratio threshold for hierarchical
        #: collectives (see Topology.islands)
        self.comm_island_ratio = 0.5
        #: route nonblocking p2p and scheduler comm through per-rank comm
        #: streams (comm/compute overlap) instead of legacy blocking-on-wait
        #: semantics; i-collectives always use the streams.
        self.comm_overlap = bool(comm_overlap)
        self.cluster = cluster
        self.world_size = world_size
        self.clocks = [SimClock() for _ in range(world_size)]
        #: per-rank communication streams (see StreamClock); only populated
        #: with occupancy when nonblocking primitives are used.
        self.comm_streams = [StreamClock() for _ in range(world_size)]
        self.deadlock_timeout = float(deadlock_timeout)
        self.mailboxes = _Mailboxes(self.deadlock_timeout)
        #: shared scratch-buffer pool for materialized collectives, or None
        #: (``buffer_pool=False`` — the unpooled reference for parity runs);
        #: pooled and unpooled results are bitwise identical by contract.
        from repro.runtime.buffer_pool import BufferPool

        self.buffer_pool: Optional[BufferPool] = (
            BufferPool() if buffer_pool else None
        )
        self.retry_policy = retry if retry is not None else RetryPolicy()
        if fault_plan is not None:
            from repro.faults.injector import FaultInjector

            self.fault_injector: Optional[Any] = FaultInjector(fault_plan)
        else:
            self.fault_injector = None
        self._abort = threading.Event()
        self.failure: Optional[Tuple[int, BaseException]] = None
        self._group_lock = threading.Lock()
        self._groups: Dict[Tuple[int, ...], Any] = {}
        #: event tracer (repro.trace.Tracer) or None; every instrumentation
        #: site in the stack gates on this being non-None.
        self.tracer: Optional[Any] = None
        if tracer is not None:
            tracer.install(self)
        #: communication sanitizer (repro.sanitize.CommSanitizer) or None;
        #: like the tracer, every hook site gates on this being non-None.
        self.sanitizer: Optional[Any] = None
        if sanitize is not None and sanitize is not False:
            _resolve_sanitizer(sanitize).install(self)
        #: op-stream capture recorder (repro.project.CaptureRecorder) or
        #: None; hook sites gate on this like tracer/sanitizer.
        self.capture: Optional[Any] = None
        if capture is not None:
            capture.install(self)

    # -- failure propagation -------------------------------------------------

    def signal_failure(self, rank: int, exc: BaseException) -> None:
        if self.failure is None:
            self.failure = (rank, exc)
        self._abort.set()
        # rendezvous waits are notify-driven, so blocked peers must be woken
        # explicitly or they would sleep through the abort until their
        # deadlock timeout
        self._wake_all()

    def _wake_all(self) -> None:
        """Notify every group rendezvous condition and the mailboxes.

        Group conditions are notified *after* releasing ``_group_lock``:
        ``wake()`` takes the group's own condition lock, and a rank thread
        holding that lock may be about to call ``runtime.group()`` (which
        takes ``_group_lock``) — acquiring both here would deadlock.
        """
        with self._group_lock:
            groups = list(self._groups.values())
        for grp in groups:
            grp.wake()
        self.mailboxes.wake()

    def aborting(self) -> bool:
        return self._abort.is_set()

    def check_abort(self) -> None:
        if self._abort.is_set():
            failed_rank, cause = self.failure  # type: ignore[misc]
            raise SpmdAborted(failed_rank, cause)

    # -- process groups -------------------------------------------------------

    def group(self, ranks: Sequence[int]) -> Any:
        """Idempotently create/fetch the :class:`ProcessGroup` over ``ranks``.

        Safe to call concurrently from every member rank; all receive the
        same object.  (Deferred import: comm builds on runtime.)
        """
        from repro.comm.group import ProcessGroup

        key = tuple(ranks)
        with self._group_lock:
            grp = self._groups.get(key)
            if grp is None:
                grp = ProcessGroup(self, list(key))
                self._groups[key] = grp
            return grp

    def set_comm_algorithm(self, algorithm: str) -> None:
        """Switch the default collective algorithm for this runtime and all
        already-created process groups (their selector caches are keyed by
        topology version, so no explicit invalidation is needed)."""
        from repro.comm.algorithms import ALGORITHMS

        if algorithm not in ALGORITHMS + ("auto",):
            raise ValueError(
                f"unknown comm_algorithm {algorithm!r}; "
                f"choose from {ALGORITHMS + ('auto',)}"
            )
        with self._group_lock:
            self.comm_algorithm = algorithm
            for grp in self._groups.values():
                grp.cost_model.algorithm = algorithm

    @property
    def world_group(self) -> Any:
        return self.group(range(self.world_size))

    # -- launching -------------------------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        materialize: bool = True,
        seed: int = 0,
        reset_clocks: bool = True,
        **kwargs: Any,
    ) -> List[Any]:
        """Run ``fn(ctx, *args, **kwargs)`` on every rank; return per-rank
        results in rank order.

        ``materialize=False`` runs the program in spec mode: tensors carry
        shapes/bytes but no data (used for billion-parameter experiments).
        """
        if reset_clocks:
            for c in self.clocks:
                c.reset()
            for s in self.comm_streams:
                s.reset()
        self._reset_comm_state()
        if self.fault_injector is not None:
            self.fault_injector.install(self)
        if self.sanitizer is not None:
            self.sanitizer.begin_run(self)
        if self.capture is not None:
            self.capture.begin_run(self)
        self._abort.clear()
        self.failure = None

        results: List[Any] = [None] * self.world_size
        errors: List[Optional[BaseException]] = [None] * self.world_size

        def worker(rank: int) -> None:
            ctx = RankContext(self, rank, materialize, seed=seed * 100003 + rank)
            _thread_local.ctx = ctx
            t_start = ctx.clock.time
            try:
                results[rank] = fn(ctx, *args, **kwargs)
                if self.tracer is not None:
                    self.tracer.annotate(
                        rank, "rank", f"rank{rank}", t_start, ctx.clock.time
                    )
            except SpmdAborted:
                pass  # secondary failure; the primary is re-raised below
            except BaseException as exc:  # noqa: BLE001 - must propagate anything
                errors[rank] = exc
                self.signal_failure(rank, exc)
                if self.tracer is not None:
                    self.tracer.instant(
                        rank, f"rank{rank}:failed", ctx.clock.time,
                        error=type(exc).__name__,
                    )
            finally:
                if self.sanitizer is not None:
                    self.sanitizer.on_rank_done(rank)
                    # wake parked peers so check_stalled sees the exit now,
                    # not at the next diagnosis tick
                    self._wake_all()
                _thread_local.ctx = None

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}")
            for r in range(self.world_size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if self.sanitizer is not None:
            # on a clean replayed run, a golden stream the program stopped
            # short of is itself a divergence and raises here
            self.sanitizer.end_run(ok=self.failure is None)
        if self.failure is not None:
            rank, cause = self.failure
            raise RemoteRankError(rank, cause) from cause
        if self.buffer_pool is not None:
            # clean runs must have returned or adopted every loan; an
            # unreturned scratch buffer is a runtime bug, named here
            self.buffer_pool.check_leaks()
        if self.capture is not None:
            self.capture.end_run(self)
        return results

    def _reset_comm_state(self) -> None:
        """Drop stale rendezvous rounds and undelivered messages so the
        runtime is reusable after an aborted program (recovery path)."""
        self.mailboxes.clear()
        if self.buffer_pool is not None:
            self.buffer_pool.reset()
        with self._group_lock:
            for grp in self._groups.values():
                grp.reset_rounds()

    # -- results ---------------------------------------------------------------

    def max_time(self) -> float:
        """Simulated makespan of the last program (slowest rank; includes
        comm-stream tails so fire-and-forget sends are not under-counted)."""
        return max(
            max(c.time for c in self.clocks),
            max(s.time for s in self.comm_streams),
        )


def spmd_launch(
    cluster: ClusterSpec,
    fn: Callable[..., Any],
    *args: Any,
    world_size: Optional[int] = None,
    materialize: bool = True,
    seed: int = 0,
    fault_plan: Optional[Any] = None,
    tracer: Optional[Any] = None,
    comm_algorithm: str = "ring",
    sanitize: Optional[Any] = None,
    comm_overlap: bool = False,
    **kwargs: Any,
) -> List[Any]:
    """One-shot convenience: build a runtime, run ``fn`` on every rank,
    return per-rank results."""
    rt = SpmdRuntime(
        cluster, world_size, fault_plan=fault_plan, tracer=tracer,
        comm_algorithm=comm_algorithm, sanitize=sanitize,
        comm_overlap=comm_overlap,
    )
    return rt.run(fn, *args, materialize=materialize, seed=seed, **kwargs)
