"""Runtime error types."""

from __future__ import annotations


class SpmdAborted(RuntimeError):
    """Raised inside a rank when the SPMD program is aborting because some
    other rank failed; carries the rank that caused the abort."""

    def __init__(self, failed_rank: int, cause: BaseException) -> None:
        self.failed_rank = failed_rank
        self.cause = cause
        super().__init__(
            f"SPMD program aborted: rank {failed_rank} failed with "
            f"{type(cause).__name__}: {cause}"
        )


class RemoteRankError(RuntimeError):
    """Raised by :meth:`SpmdRuntime.run` on the launcher thread when a rank
    raised; wraps the original exception."""

    def __init__(self, rank: int, cause: BaseException) -> None:
        self.rank = rank
        self.cause = cause
        super().__init__(f"rank {rank} raised {type(cause).__name__}: {cause}")
