"""Runtime error types."""

from __future__ import annotations


class SpmdAborted(RuntimeError):
    """Raised inside a rank when the SPMD program is aborting because some
    other rank failed; carries the rank that caused the abort."""

    def __init__(self, failed_rank: int, cause: BaseException) -> None:
        self.failed_rank = failed_rank
        self.cause = cause
        super().__init__(
            f"SPMD program aborted: rank {failed_rank} failed with "
            f"{type(cause).__name__}: {cause}"
        )


class RemoteRankError(RuntimeError):
    """Raised by :meth:`SpmdRuntime.run` on the launcher thread when a rank
    raised; wraps the original exception."""

    def __init__(self, rank: int, cause: BaseException) -> None:
        self.rank = rank
        self.cause = cause
        super().__init__(f"rank {rank} raised {type(cause).__name__}: {cause}")


class RankFailure(RuntimeError):
    """A permanent failure of one rank (injected crash or detected dead
    peer).  Carries where in the program the rank died so a supervisor can
    decide which checkpoint to resume from."""

    def __init__(self, rank: int, step: "int | None" = None,
                 sim_time: "float | None" = None) -> None:
        self.rank = rank
        self.step = step
        self.sim_time = sim_time
        if step is not None:
            where = f" at step {step}"
        elif sim_time is not None:
            where = f" at t={sim_time:.6f}s"
        else:
            where = ""
        super().__init__(f"rank {rank} failed{where}")


class CollectiveTimeout(RuntimeError):
    """A communication operation gave up: either its retransmission budget
    was exhausted (``attempts`` > 0, simulated network fault) or no peer
    showed up within the host-time deadlock timeout (``timeout`` set)."""

    def __init__(self, op: str, ranks, attempts: int = 0,
                 timeout: "float | None" = None) -> None:
        self.op = op
        self.ranks = tuple(ranks)
        self.attempts = attempts
        self.timeout = timeout
        if attempts:
            detail = f"after {attempts} failed attempts"
        else:
            detail = f"after {timeout}s of host time"
        super().__init__(f"{op} over ranks {list(self.ranks)} timed out {detail}")
