"""SPMD execution runtime.

Launches one Python thread per simulated rank (the program style follows
mpi4py: every rank runs the same function), owns the per-rank simulated
clocks, and provides deterministic failure propagation so that an exception
on one rank aborts collectives on all others instead of deadlocking.
"""

from repro.runtime.clock import SimClock, StreamClock
from repro.runtime.errors import (
    CollectiveTimeout,
    RankFailure,
    RemoteRankError,
    SpmdAborted,
)
from repro.runtime.spmd import RankContext, SpmdRuntime, current_rank_context, spmd_launch

__all__ = [
    "SimClock",
    "StreamClock",
    "CollectiveTimeout",
    "RankFailure",
    "RemoteRankError",
    "SpmdAborted",
    "RankContext",
    "SpmdRuntime",
    "current_rank_context",
    "spmd_launch",
]
