"""Pooled numpy scratch buffers for the simulator's comm hot loop.

Materialized collectives churn large flat ndarrays every round: DDP bucket
flats, reduction accumulators, ZeRO chunk staging buffers.  All of them are
fully overwritten before use and dead right after the round, so a
``(shape, dtype)``-keyed free list removes the allocator from the hot path
without touching simulated results — a loaned buffer's *contents* are always
written before they are read, so pooled and unpooled runs stay bitwise
identical (enforced by ``tests/test_perf_guard.py``).

Sanitizer interaction: the :class:`~repro.sanitize.sanitizer.BufferRaceDetector`
freezes in-flight payloads (``writeable=False``) and keeps cross-rank-aliased
buffers frozen as loans until ``final_release``.  :meth:`BufferPool.restock`
therefore *drops* any buffer that is still frozen instead of pooling it —
the detector's loan bookkeeping (and its end-of-run mutation check) stays
intact, and a frozen buffer can never be handed out for writing.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

import numpy as np


class BufferPoolLeak(RuntimeError):
    """A loaned buffer was neither restocked nor adopted by end of run."""

    def __init__(self, labels: List[str]) -> None:
        self.labels = list(labels)
        super().__init__(
            "buffer pool loans were never returned: " + ", ".join(self.labels)
        )


class BufferPool:
    """Thread-safe free list of flat scratch ndarrays, keyed shape x dtype.

    Protocol::

        buf = pool.loan(shape, dtype, "ddp.flat")   # uninitialized contents!
        ... fully overwrite buf, hand it to a collective ...
        pool.restock(buf)       # round done, buffer dead -> reuse it
        # or, if the buffer escapes to user code (e.g. becomes a result):
        pool.adopt(buf)         # ownership leaves the pool, no reuse

    ``restock`` also accepts buffers the pool never loaned (donations from
    call sites that know their array is dead); unsuitable arrays — frozen,
    views, non-contiguous — are silently dropped rather than pooled.
    """

    #: free-list entries kept per (shape, dtype) key; collectives need at
    #: most a handful of same-shaped scratch buffers alive at once
    MAX_PER_KEY = 8

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: Dict[Tuple[Tuple[int, ...], object], List[np.ndarray]] = {}
        #: id(arr) -> (label, arr); the arr reference keeps the id stable
        self._outstanding: Dict[int, Tuple[str, np.ndarray]] = {}
        self.loans = 0
        self.reuses = 0

    def loan(self, shape, dtype, label: str) -> np.ndarray:
        """A buffer of ``shape``/``dtype`` with UNDEFINED contents."""
        key = (tuple(shape), np.dtype(dtype))
        with self._lock:
            self.loans += 1
            bucket = self._free.get(key)
            if bucket:
                arr = bucket.pop()
                self.reuses += 1
            else:
                arr = np.empty(key[0], dtype=key[1])
            self._outstanding[id(arr)] = (label, arr)
        return arr

    def restock(self, arr) -> None:
        """Return a dead buffer to the free list (loan or donation)."""
        if not isinstance(arr, np.ndarray):
            return
        with self._lock:
            self._outstanding.pop(id(arr), None)
            if (
                not arr.flags.writeable      # race-detector loan: keep frozen
                or arr.base is not None      # view: base may outlive the pool
                or not arr.flags.c_contiguous
            ):
                return
            key = (arr.shape, arr.dtype)
            bucket = self._free.setdefault(key, [])
            if len(bucket) < self.MAX_PER_KEY:
                bucket.append(arr)

    def adopt(self, arr) -> None:
        """The loan escaped to user code: forget it (no reuse, no leak)."""
        if isinstance(arr, np.ndarray):
            with self._lock:
                self._outstanding.pop(id(arr), None)

    def reset(self) -> None:
        """Forget all state (between runs, or after an aborted program)."""
        with self._lock:
            self._free.clear()
            self._outstanding.clear()

    def check_leaks(self) -> None:
        """Raise :class:`BufferPoolLeak` naming every unreturned loan."""
        with self._lock:
            if self._outstanding:
                labels = sorted(lbl for lbl, _ in self._outstanding.values())
                self._outstanding.clear()
                raise BufferPoolLeak(labels)
