"""Per-rank simulated clocks.

The performance side of the simulation is LogP-style: each rank owns a
scalar clock in simulated seconds.  Local compute advances only the local
clock; a collective synchronizes the participating clocks to
``max(entry times) + cost``; a point-to-point receive completes at
``max(receiver entry, sender send-completion)``.

Pipeline bubbles, load imbalance and PCIe bottlenecks all emerge from these
three rules — nothing else in the system hard-codes timing behaviour.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Tuple


class SimClock:
    """Simulated time for one rank.

    Writes can come from the owning rank thread (compute) or from whichever
    thread finalizes a rendezvous (collectives), hence the lock.

    A clock may carry *slowdown windows* (straggler injection): work that
    would take ``dt`` seconds fault-free takes ``dt * factor`` while the
    clock reads a time inside ``[start, end)``.  An advance that straddles
    a window edge is integrated piecewise, so only the portion of the work
    inside the window is charged at the degraded rate.

    An optional *observer* (``set_observer``) is called with
    ``(category, t_before, t_after)`` on every nonzero advance or forward
    sync — the hook :class:`repro.trace.Tracer` uses to turn the scalar
    breakdown into a timeline.  Disabled (``None``) it costs one attribute
    check per advance.
    """

    __slots__ = ("_time", "_lock", "_busy", "_slowdowns", "_observer",
                 "_capture")

    def __init__(self) -> None:
        self._time = 0.0
        self._lock = threading.Lock()
        self._busy: Dict[str, float] = {}
        self._slowdowns: List[Tuple[float, float, float]] = []
        self._observer = None
        self._capture = None

    def set_observer(self, observer) -> None:
        """Install (or clear, with ``None``) the span observer."""
        with self._lock:
            self._observer = observer

    def set_capture(self, capture) -> None:
        """Install (or clear, with ``None``) the advance-capture callback.

        Unlike the observer it receives ``(category, dt)`` with the *exact*
        post-slowdown delta — including ``dt == 0`` advances, which still
        create a breakdown entry — so a recorder can replay the advance
        stream bit-for-bit (reconstructing ``dt`` from observed
        ``t1 - t0`` is not exact in floating point)."""
        with self._lock:
            self._capture = capture

    @property
    def time(self) -> float:
        return self._time

    def set_slowdown(self, factor: float, start: float = 0.0,
                     end: float = math.inf) -> None:
        """Scale advances by ``factor`` while the clock is within
        ``[start, end)`` (straggler injection; ``factor`` > 1 is slower)."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {factor}")
        with self._lock:
            self._slowdowns.append((start, end, factor))

    def clear_slowdowns(self) -> None:
        with self._lock:
            self._slowdowns.clear()

    def _factor_at(self, t: float) -> float:
        f = 1.0
        for start, end, factor in self._slowdowns:
            if start <= t < end:
                f *= factor
        return f

    def _next_edge_after(self, t: float) -> float:
        edge = math.inf
        for start, end, _ in self._slowdowns:
            for b in (start, end):
                if t < b < edge:
                    edge = b
        return edge

    def _scaled(self, dt: float) -> float:
        """Simulated seconds consumed by ``dt`` seconds of fault-free work
        starting at the current time, integrating across window edges."""
        elapsed, t, work = 0.0, self._time, dt
        while work > 0.0:
            f = self._factor_at(t)
            edge = self._next_edge_after(t)
            if edge == math.inf or t + work * f <= edge:
                elapsed += work * f
                break
            elapsed += edge - t
            work -= (edge - t) / f
            t = edge
        return elapsed

    def advance(self, dt: float, category: str = "compute") -> None:
        """Move simulated time forward by ``dt`` seconds of work (scaled by
        any active slowdown window)."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative time {dt}")
        with self._lock:
            if self._slowdowns:
                dt = self._scaled(dt)
            t0 = self._time
            self._time += dt
            self._busy[category] = self._busy.get(category, 0.0) + dt
            if self._capture is not None:
                self._capture(category, dt)
            if self._observer is not None and dt > 0.0:
                self._observer(category, t0, self._time)

    def sync_to(self, t: float, category: str = "wait") -> None:
        """Jump forward to absolute time ``t`` (no-op if already past it)."""
        with self._lock:
            if t > self._time:
                t0 = self._time
                self._busy[category] = self._busy.get(category, 0.0) + (t - self._time)
                self._time = t
                if self._observer is not None:
                    self._observer(category, t0, t)

    def breakdown(self) -> Dict[str, float]:
        """Seconds spent per category (compute / comm / wait / ...)."""
        with self._lock:
            return dict(self._busy)

    def reset(self) -> None:
        with self._lock:
            self._time = 0.0
            self._busy.clear()
            self._slowdowns.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(t={self._time:.6f}s)"


class StreamClock:
    """Simulated time of one rank's communication stream.

    Nonblocking operations do not advance the owning rank's
    :class:`SimClock`; they *occupy* this stream instead: an op issued at
    compute time ``t`` starts no earlier than the stream's current head,
    runs for its priced cost, and moves the head forward.  The compute
    clock reconciles lazily — ``WorkHandle.wait()`` max-joins it to the op
    completion time, charging only the *exposed* remainder as ``comm``.

    ``occupy``/``note_exposed`` may run on whichever thread finalizes or
    waits a rendezvous; every mutation is commutative (``max`` / ``+=``),
    so end-of-run readings are deterministic regardless of host-thread
    interleaving.  ``overlapped`` starts as the full op duration at issue
    and is reclassified to ``exposed`` at wait time for whatever portion
    the compute clock actually stalled on.
    """

    __slots__ = ("_time", "_lock", "_busy", "_exposed", "_overlapped")

    def __init__(self) -> None:
        self._time = 0.0
        self._lock = threading.Lock()
        self._busy: Dict[str, float] = {}
        self._exposed = 0.0
        self._overlapped = 0.0

    @property
    def time(self) -> float:
        """Stream head: simulated time the last queued op completes."""
        return self._time

    @property
    def exposed_seconds(self) -> float:
        """Comm seconds the compute clock stalled on at ``wait()``."""
        return self._exposed

    @property
    def overlapped_seconds(self) -> float:
        """Comm seconds hidden behind compute (duration minus exposed)."""
        return self._overlapped

    def occupy(self, t0: float, t1: float, category: str = "comm") -> None:
        """Record one op running on the stream over ``[t0, t1]``; the whole
        duration is provisionally counted as overlapped until a ``wait``
        reclassifies the stalled portion via :meth:`note_exposed`."""
        if t1 < t0:
            raise ValueError(f"stream occupancy ends before it starts: {t0} -> {t1}")
        with self._lock:
            dt = t1 - t0
            self._busy[category] = self._busy.get(category, 0.0) + dt
            self._overlapped += dt
            if t1 > self._time:
                self._time = t1

    def note_exposed(self, seconds: float) -> None:
        """Reclassify ``seconds`` of previously-occupied stream time from
        overlapped to exposed (called by ``WorkHandle.wait``)."""
        if seconds <= 0.0:
            return
        with self._lock:
            self._exposed += seconds
            self._overlapped -= seconds

    def busy_seconds(self) -> float:
        with self._lock:
            return sum(self._busy.values())

    def breakdown(self) -> Dict[str, float]:
        """Occupied seconds per category plus the exposed/overlapped split."""
        with self._lock:
            out = dict(self._busy)
            out["exposed"] = self._exposed
            out["overlapped"] = self._overlapped
            return out

    def reset(self) -> None:
        with self._lock:
            self._time = 0.0
            self._busy.clear()
            self._exposed = 0.0
            self._overlapped = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamClock(t={self._time:.6f}s, exposed={self._exposed:.6f}s, "
            f"overlapped={self._overlapped:.6f}s)"
        )
