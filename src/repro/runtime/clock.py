"""Per-rank simulated clocks.

The performance side of the simulation is LogP-style: each rank owns a
scalar clock in simulated seconds.  Local compute advances only the local
clock; a collective synchronizes the participating clocks to
``max(entry times) + cost``; a point-to-point receive completes at
``max(receiver entry, sender send-completion)``.

Pipeline bubbles, load imbalance and PCIe bottlenecks all emerge from these
three rules — nothing else in the system hard-codes timing behaviour.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Tuple


class SimClock:
    """Simulated time for one rank.

    Writes can come from the owning rank thread (compute) or from whichever
    thread finalizes a rendezvous (collectives), hence the lock.

    A clock may carry *slowdown windows* (straggler injection): work that
    would take ``dt`` seconds fault-free takes ``dt * factor`` while the
    clock reads a time inside ``[start, end)``.  An advance that straddles
    a window edge is integrated piecewise, so only the portion of the work
    inside the window is charged at the degraded rate.

    An optional *observer* (``set_observer``) is called with
    ``(category, t_before, t_after)`` on every nonzero advance or forward
    sync — the hook :class:`repro.trace.Tracer` uses to turn the scalar
    breakdown into a timeline.  Disabled (``None``) it costs one attribute
    check per advance.
    """

    __slots__ = ("_time", "_lock", "_busy", "_slowdowns", "_observer")

    def __init__(self) -> None:
        self._time = 0.0
        self._lock = threading.Lock()
        self._busy: Dict[str, float] = {}
        self._slowdowns: List[Tuple[float, float, float]] = []
        self._observer = None

    def set_observer(self, observer) -> None:
        """Install (or clear, with ``None``) the span observer."""
        with self._lock:
            self._observer = observer

    @property
    def time(self) -> float:
        return self._time

    def set_slowdown(self, factor: float, start: float = 0.0,
                     end: float = math.inf) -> None:
        """Scale advances by ``factor`` while the clock is within
        ``[start, end)`` (straggler injection; ``factor`` > 1 is slower)."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {factor}")
        with self._lock:
            self._slowdowns.append((start, end, factor))

    def clear_slowdowns(self) -> None:
        with self._lock:
            self._slowdowns.clear()

    def _factor_at(self, t: float) -> float:
        f = 1.0
        for start, end, factor in self._slowdowns:
            if start <= t < end:
                f *= factor
        return f

    def _next_edge_after(self, t: float) -> float:
        edge = math.inf
        for start, end, _ in self._slowdowns:
            for b in (start, end):
                if t < b < edge:
                    edge = b
        return edge

    def _scaled(self, dt: float) -> float:
        """Simulated seconds consumed by ``dt`` seconds of fault-free work
        starting at the current time, integrating across window edges."""
        elapsed, t, work = 0.0, self._time, dt
        while work > 0.0:
            f = self._factor_at(t)
            edge = self._next_edge_after(t)
            if edge == math.inf or t + work * f <= edge:
                elapsed += work * f
                break
            elapsed += edge - t
            work -= (edge - t) / f
            t = edge
        return elapsed

    def advance(self, dt: float, category: str = "compute") -> None:
        """Move simulated time forward by ``dt`` seconds of work (scaled by
        any active slowdown window)."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative time {dt}")
        with self._lock:
            if self._slowdowns:
                dt = self._scaled(dt)
            t0 = self._time
            self._time += dt
            self._busy[category] = self._busy.get(category, 0.0) + dt
            if self._observer is not None and dt > 0.0:
                self._observer(category, t0, self._time)

    def sync_to(self, t: float, category: str = "wait") -> None:
        """Jump forward to absolute time ``t`` (no-op if already past it)."""
        with self._lock:
            if t > self._time:
                t0 = self._time
                self._busy[category] = self._busy.get(category, 0.0) + (t - self._time)
                self._time = t
                if self._observer is not None:
                    self._observer(category, t0, t)

    def breakdown(self) -> Dict[str, float]:
        """Seconds spent per category (compute / comm / wait / ...)."""
        with self._lock:
            return dict(self._busy)

    def reset(self) -> None:
        with self._lock:
            self._time = 0.0
            self._busy.clear()
            self._slowdowns.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(t={self._time:.6f}s)"
