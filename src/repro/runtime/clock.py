"""Per-rank simulated clocks.

The performance side of the simulation is LogP-style: each rank owns a
scalar clock in simulated seconds.  Local compute advances only the local
clock; a collective synchronizes the participating clocks to
``max(entry times) + cost``; a point-to-point receive completes at
``max(receiver entry, sender send-completion)``.

Pipeline bubbles, load imbalance and PCIe bottlenecks all emerge from these
three rules — nothing else in the system hard-codes timing behaviour.
"""

from __future__ import annotations

import threading
from typing import Dict


class SimClock:
    """Simulated time for one rank.

    Writes can come from the owning rank thread (compute) or from whichever
    thread finalizes a rendezvous (collectives), hence the lock.
    """

    __slots__ = ("_time", "_lock", "_busy")

    def __init__(self) -> None:
        self._time = 0.0
        self._lock = threading.Lock()
        self._busy: Dict[str, float] = {}

    @property
    def time(self) -> float:
        return self._time

    def advance(self, dt: float, category: str = "compute") -> None:
        """Move simulated time forward by ``dt`` seconds."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative time {dt}")
        with self._lock:
            self._time += dt
            self._busy[category] = self._busy.get(category, 0.0) + dt

    def sync_to(self, t: float, category: str = "wait") -> None:
        """Jump forward to absolute time ``t`` (no-op if already past it)."""
        with self._lock:
            if t > self._time:
                self._busy[category] = self._busy.get(category, 0.0) + (t - self._time)
                self._time = t

    def breakdown(self) -> Dict[str, float]:
        """Seconds spent per category (compute / comm / wait / ...)."""
        with self._lock:
            return dict(self._busy)

    def reset(self) -> None:
        with self._lock:
            self._time = 0.0
            self._busy.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(t={self._time:.6f}s)"
