"""Function/Node machinery for reverse-mode autodiff.

A :class:`Function` subclass implements ``forward(ctx, *tensors, **params)``
returning a payload (or tuple of payloads) and ``backward(ctx, *out_grads)``
returning per-input payload gradients.  ``Function.apply`` wires the call
into the graph, wraps outputs in Tensors, and charges the op's FLOPs to the
calling rank's simulated clock (forward now, backward when the engine runs
the node).
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.comm.payload import Payload
from repro.runtime.spmd import current_rank_context, in_spmd
from repro.tensor.tensor import Tensor

_state = threading.local()


def grad_enabled() -> bool:
    return getattr(_state, "grad_enabled", True)


class no_grad:
    """Context manager disabling graph construction (thread-local, so each
    SPMD rank has independent state)."""

    def __enter__(self) -> None:
        self._prev = grad_enabled()
        _state.grad_enabled = False

    def __exit__(self, *exc) -> None:
        _state.grad_enabled = self._prev


# np.dtype.name builds a fresh string on every access; memoize per dtype
# (builtin dtypes are singletons, so an id-free dict keyed by dtype is safe)
_DTYPE_NAMES: dict = {}


def _dtype_name(dtype: np.dtype) -> str:
    try:
        return _DTYPE_NAMES[dtype]
    except KeyError:
        name = _DTYPE_NAMES[dtype] = dtype.name
        return name


def _charge(flops: float, dtype: np.dtype, op_name: Optional[str] = None) -> None:
    """Charge compute time for ``flops`` to the current rank's clock."""
    if flops <= 0 or not in_spmd():
        return
    ctx = current_rank_context()
    cap = getattr(ctx.runtime, "capture", None)
    if cap is not None and op_name is not None:
        cap.note_op(ctx.rank, op_name)
    name = _dtype_name(dtype)
    if name not in ctx.device.peak_flops:
        name = "float32"
    ctx.clock.advance(ctx.device.compute_seconds(flops, name), "compute")


class FnCtx:
    """Per-call context: saved tensors for backward + arbitrary attributes.

    ``release()`` drops saved tensors; the engine calls it as soon as a
    node's backward has run so activation memory is returned eagerly —
    this is what makes simulated peak memory faithful.
    """

    def __init__(self) -> None:
        self.saved: Tuple[Tensor, ...] = ()
        self.flops: float = 0.0
        self.backward_flops: Optional[float] = None  # default: same as forward

    def save_for_backward(self, *tensors: Tensor) -> None:
        self.saved = tensors

    @property
    def saved_tensors(self) -> Tuple[Tensor, ...]:
        return self.saved

    def release(self) -> None:
        self.saved = ()
        # drop any payloads stashed as attributes
        for k in list(self.__dict__):
            if k not in ("flops", "backward_flops"):
                self.__dict__[k] = None


class Node:
    """One executed op in the graph."""

    __slots__ = ("fn_cls", "ctx", "inputs", "outputs", "n_outputs", "__weakref__")

    def __init__(
        self,
        fn_cls: type,
        ctx: FnCtx,
        inputs: Tuple[Optional[Tensor], ...],
        outputs: Sequence[Tensor],
    ) -> None:
        self.fn_cls = fn_cls
        self.ctx = ctx
        self.inputs = inputs
        # weakrefs: the graph must not keep outputs alive (their consumers do)
        self.outputs = [weakref.ref(t) for t in outputs]
        self.n_outputs = len(outputs)

    @property
    def name(self) -> str:
        return self.fn_cls.__name__

    def parents(self) -> List["Node"]:
        return [
            t.grad_fn
            for t in self.inputs
            if isinstance(t, Tensor) and t.grad_fn is not None
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.name})"


class Function:
    """Base class for differentiable ops.

    Subclasses implement::

        @staticmethod
        def forward(ctx, *tensors_and_params) -> payload | tuple[payload]
        @staticmethod
        def backward(ctx, *grad_outputs) -> payload | tuple[payload | None]

    ``backward`` returns one gradient per *tensor* positional input, in
    order (None where not differentiable).
    """

    #: outputs share the input's storage (reshape/transpose/slice views)
    IS_VIEW = False
    #: memory-pool tag for outputs
    OUTPUT_TAG = "activation"

    @staticmethod
    def forward(ctx: FnCtx, *args: Any, **kwargs: Any):
        raise NotImplementedError

    @staticmethod
    def backward(ctx: FnCtx, *grad_outputs: Payload):
        raise NotImplementedError

    @classmethod
    def apply(cls, *args: Any, **kwargs: Any) -> Union[Tensor, Tuple[Tensor, ...]]:
        tensor_inputs: Tuple[Optional[Tensor], ...] = tuple(
            a if isinstance(a, Tensor) else None for a in args
        )
        needs_grad = grad_enabled() and any(
            t is not None and t.requires_grad for t in tensor_inputs
        )
        fnctx = FnCtx()
        out = cls.forward(fnctx, *args, **kwargs)
        _charge(fnctx.flops, _out_dtype(out), op_name=cls.__name__)

        multi = isinstance(out, tuple)
        payloads = out if multi else (out,)
        base = _view_base(cls, tensor_inputs)
        outputs = tuple(
            _wrap(p, needs_grad, cls.OUTPUT_TAG, base) for p in payloads
        )
        if needs_grad:
            node = Node(cls, fnctx, tensor_inputs, outputs)
            for t in outputs:
                t.grad_fn = node
        else:
            fnctx.release()
        return outputs if multi else outputs[0]


def _out_dtype(out) -> np.dtype:
    p = out[0] if isinstance(out, tuple) else out
    dt = p.dtype
    return dt if type(dt) is np.dtype else np.dtype(dt)


def _view_base(cls, tensor_inputs) -> Optional[Tensor]:
    if not cls.IS_VIEW:
        return None
    for t in tensor_inputs:
        if t is not None:
            return t
    return None


def _wrap(payload: Payload, requires_grad: bool, tag: str, base: Optional[Tensor]) -> Tensor:
    t = Tensor(payload, requires_grad=requires_grad, tag=tag, base=base)
    return t
