"""Numerical gradient checking.

Central-difference verification of analytic gradients — the test suite runs
this over every op and every parallel layer's backward, which is how the
from-scratch autograd earns trust.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    rtol: float = 1e-4,
    atol: float = 1e-5,
    seed: int = 0,
) -> bool:
    """Compare analytic grads of ``sum(fn(*inputs) * R)`` (R a fixed random
    projection, so all output elements are exercised) against central
    differences.  Raises ``AssertionError`` with details on mismatch.
    """
    for t in inputs:
        if t.dtype != np.float64:
            raise ValueError("gradcheck requires float64 inputs for stability")

    rng = np.random.default_rng(seed)
    out0 = fn(*inputs)
    proj = rng.standard_normal(out0.shape)

    def scalar_out() -> Tensor:
        out = fn(*inputs)
        weighted = out * Tensor(proj.astype(np.float64))
        return weighted.sum()

    # analytic
    for t in inputs:
        t.zero_grad()
    loss = scalar_out()
    loss.backward()
    analytic = [
        (t.grad.numpy().copy() if t.grad is not None else np.zeros(t.shape))
        for t in inputs
    ]

    # numerical
    for idx, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        flat = t.numpy().reshape(-1)
        num = np.zeros_like(flat)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = float(np.sum(fn(*inputs).numpy() * proj))
            flat[i] = orig - eps
            minus = float(np.sum(fn(*inputs).numpy() * proj))
            flat[i] = orig
            num[i] = (plus - minus) / (2 * eps)
        num = num.reshape(t.shape)
        if not np.allclose(analytic[idx], num, rtol=rtol, atol=atol):
            worst = np.max(np.abs(analytic[idx] - num))
            raise AssertionError(
                f"gradcheck failed for input {idx}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic[idx]}\nnumerical:\n{num}"
            )
    return True
