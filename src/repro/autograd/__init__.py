"""Reverse-mode automatic differentiation over numpy.

The substrate replacing PyTorch autograd in this reproduction.  Ops operate
on payloads (ndarray or :class:`SpecArray`), so the same graph runs
materialized (exact numerics, used by parity and convergence tests) or in
spec mode (shape/byte/flop accounting only, used by the billion-parameter
experiments).  Every op charges its FLOPs to the calling rank's simulated
clock.
"""

from repro.autograd.function import (
    FnCtx,
    Function,
    Node,
    grad_enabled,
    no_grad,
)
from repro.autograd.engine import backward
from repro.autograd import ops
from repro.autograd.checkpoint import checkpoint
from repro.autograd.grad_check import gradcheck

__all__ = [
    "FnCtx",
    "Function",
    "Node",
    "grad_enabled",
    "no_grad",
    "backward",
    "ops",
    "checkpoint",
    "gradcheck",
]
