"""Dual-mode primitive array operations.

Every function here accepts :class:`numpy.ndarray` or :class:`SpecArray`
payloads and returns the same kind: real arithmetic when materialized,
shape inference when spec.  The autograd Functions in :mod:`ops` are written
once against these primitives and therefore run identically in both modes.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.comm.payload import Payload, SpecArray, is_spec


def spec_like(shape: Sequence[int], ref: Payload) -> SpecArray:
    return SpecArray(tuple(shape), ref.dtype)


def result_dtype(*payloads: Payload) -> np.dtype:
    first = payloads[0].dtype
    # promotion is the identity when every operand dtype already matches —
    # skipping np.result_type here keeps spec-mode sweeps off the numpy
    # dispatch path entirely
    if all(p.dtype == first for p in payloads[1:]):
        return first
    return np.result_type(*[p.dtype for p in payloads])


# -- elementwise binary -------------------------------------------------------


def _binary(a: Payload, b: Payload, fn) -> Payload:
    if is_spec(a) or is_spec(b):
        sa, sb = a.shape, b.shape
        shape = sa if sa == sb else np.broadcast_shapes(sa, sb)
        return SpecArray(shape, result_dtype(a, b))
    return fn(a, b)


def padd(a: Payload, b: Payload) -> Payload:
    return _binary(a, b, np.add)


def psub(a: Payload, b: Payload) -> Payload:
    return _binary(a, b, np.subtract)


def pmul(a: Payload, b: Payload) -> Payload:
    return _binary(a, b, np.multiply)


def pdiv(a: Payload, b: Payload) -> Payload:
    return _binary(a, b, np.divide)


def pmaximum(a: Payload, b: Payload) -> Payload:
    return _binary(a, b, np.maximum)


# -- elementwise unary ---------------------------------------------------------


def _unary(a: Payload, fn) -> Payload:
    if is_spec(a):
        return a.copy()
    return fn(a)


def pneg(a: Payload) -> Payload:
    return _unary(a, np.negative)


def pexp(a: Payload) -> Payload:
    return _unary(a, np.exp)


def plog(a: Payload) -> Payload:
    return _unary(a, np.log)


def ptanh(a: Payload) -> Payload:
    return _unary(a, np.tanh)


def psqrt(a: Payload) -> Payload:
    return _unary(a, np.sqrt)


def ppow(a: Payload, exponent: float) -> Payload:
    return _unary(a, lambda x: np.power(x, exponent))


def psigmoid(a: Payload) -> Payload:
    return _unary(a, lambda x: 1.0 / (1.0 + np.exp(-x)))


def prelu(a: Payload) -> Payload:
    return _unary(a, lambda x: np.maximum(x, 0.0))


_GELU_C = math.sqrt(2.0 / math.pi)


def pgelu(a: Payload) -> Payload:
    return _unary(
        a, lambda x: 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * x**3)))
    )


def pgelu_grad(x: Payload, grad: Payload) -> Payload:
    """d gelu(x)/dx * grad using the tanh approximation."""
    if is_spec(x) or is_spec(grad):
        sx, sg = x.shape, grad.shape
        shape = sx if sx == sg else np.broadcast_shapes(sx, sg)
        return SpecArray(shape, result_dtype(x, grad))
    inner = _GELU_C * (x + 0.044715 * x**3)
    t = np.tanh(inner)
    dinner = _GELU_C * (1.0 + 3 * 0.044715 * x**2)
    return grad * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * dinner)


# -- matmul ---------------------------------------------------------------------


def matmul_shape(sa: Tuple[int, ...], sb: Tuple[int, ...]) -> Tuple[int, ...]:
    """Shape of ``a @ b`` under numpy batched-matmul rules (2D+ operands)."""
    if len(sa) < 2 or len(sb) < 2:
        raise ValueError(f"matmul needs >=2D operands, got {sa} @ {sb}")
    if sa[-1] != sb[-2]:
        raise ValueError(f"matmul inner-dim mismatch: {sa} @ {sb}")
    ba, bb = sa[:-2], sb[:-2]
    if ba == bb:
        batch = ba
    else:
        batch = tuple(np.broadcast_shapes(ba, bb))
    return batch + (sa[-2], sb[-1])


def matmul_flops(sa: Tuple[int, ...], sb: Tuple[int, ...]) -> float:
    out = matmul_shape(sa, sb)
    m, n = out[-2], out[-1]
    k = sa[-1]
    batch = math.prod(out[:-2]) if len(out) > 2 else 1
    return 2.0 * batch * m * n * k


def pmatmul(a: Payload, b: Payload) -> Payload:
    if is_spec(a) or is_spec(b):
        return SpecArray(matmul_shape(a.shape, b.shape), result_dtype(a, b))
    return np.matmul(a, b)


# -- shape ops --------------------------------------------------------------------


def preshape(a: Payload, shape: Sequence[int]) -> Payload:
    if is_spec(a):
        return a.reshape(tuple(shape))
    return a.reshape(tuple(shape))


def ptranspose(a: Payload, axes: Optional[Sequence[int]] = None) -> Payload:
    if axes is None:
        axes = tuple(reversed(range(len(a.shape))))
    if is_spec(a):
        return SpecArray(tuple(a.shape[i] for i in axes), a.dtype)
    return np.transpose(a, axes)


def pswapaxes(a: Payload, ax1: int, ax2: int) -> Payload:
    axes = list(range(len(a.shape)))
    axes[ax1], axes[ax2] = axes[ax2], axes[ax1]
    return ptranspose(a, axes)


def pconcat(chunks: Sequence[Payload], axis: int) -> Payload:
    first = chunks[0]
    if any(is_spec(c) for c in chunks):
        shape = list(first.shape)
        shape[axis] = sum(c.shape[axis] for c in chunks)
        return SpecArray(tuple(shape), first.dtype)
    return np.concatenate(list(chunks), axis=axis)


def psplit(a: Payload, parts: int, axis: int) -> list:
    if a.shape[axis] % parts != 0:
        raise ValueError(f"axis {axis} of {a.shape} not divisible by {parts}")
    if is_spec(a):
        shape = list(a.shape)
        shape[axis] //= parts
        return [SpecArray(tuple(shape), a.dtype) for _ in range(parts)]
    return [np.ascontiguousarray(c) for c in np.split(a, parts, axis=axis)]


def pslice(a: Payload, idx) -> Payload:
    if is_spec(a):
        # emulate numpy basic indexing on a zero-stride dummy to get the shape
        dummy = np.broadcast_to(np.zeros((), dtype=a.dtype), a.shape)
        return SpecArray(dummy[idx].shape, a.dtype)
    return a[idx]


def pastype(a: Payload, dtype) -> Payload:
    return a.astype(dtype)


# -- reductions --------------------------------------------------------------------


def _reduced_shape(shape, axis, keepdims) -> Tuple[int, ...]:
    if axis is None:
        return tuple([1] * len(shape)) if keepdims else ()
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = tuple(a % len(shape) for a in axes)
    out = []
    for i, s in enumerate(shape):
        if i in axes:
            if keepdims:
                out.append(1)
        else:
            out.append(s)
    return tuple(out)


def psum(a: Payload, axis=None, keepdims=False) -> Payload:
    if is_spec(a):
        return SpecArray(_reduced_shape(a.shape, axis, keepdims), a.dtype)
    return np.sum(a, axis=axis, keepdims=keepdims)


def pmean(a: Payload, axis=None, keepdims=False) -> Payload:
    if is_spec(a):
        return SpecArray(_reduced_shape(a.shape, axis, keepdims), a.dtype)
    return np.mean(a, axis=axis, keepdims=keepdims)


def pmax(a: Payload, axis=None, keepdims=False) -> Payload:
    if is_spec(a):
        return SpecArray(_reduced_shape(a.shape, axis, keepdims), a.dtype)
    return np.max(a, axis=axis, keepdims=keepdims)


def pargmax(a: Payload, axis=-1):
    if is_spec(a):
        return SpecArray(_reduced_shape(a.shape, axis, False), np.dtype("int64"))
    return np.argmax(a, axis=axis)


# -- softmax family ------------------------------------------------------------------


def psoftmax(a: Payload, axis: int = -1) -> Payload:
    if is_spec(a):
        return a.copy()
    shifted = a - np.max(a, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def plog_softmax(a: Payload, axis: int = -1) -> Payload:
    if is_spec(a):
        return a.copy()
    shifted = a - np.max(a, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


# -- broadcasting helper ---------------------------------------------------------------


def unbroadcast(grad: Payload, shape: Tuple[int, ...]) -> Payload:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if tuple(grad.shape) == tuple(shape):
        return grad
    if is_spec(grad):
        return SpecArray(shape, grad.dtype)
    g = grad
    while g.ndim > len(shape):
        g = g.sum(axis=0)
    for i, s in enumerate(shape):
        if s == 1 and g.shape[i] != 1:
            g = g.sum(axis=i, keepdims=True)
    return g


def pzeros(shape: Sequence[int], dtype, spec: bool) -> Payload:
    if spec:
        return SpecArray(tuple(shape), dtype)
    return np.zeros(tuple(shape), dtype=dtype)


def pones_like(a: Payload) -> Payload:
    if is_spec(a):
        return a.copy()
    return np.ones_like(a)
