"""Backward pass execution.

Iterative reverse-topological traversal.  Two properties matter for the
reproduction:

* **Determinism** — children are visited in recorded order, so gradient
  accumulation order (and therefore floating-point results) is identical
  run to run; the multi-dim TP parity tests rely on this.
* **Eager memory release** — as soon as a node's backward has run, its
  saved activations and its outputs' gradient buffers are dropped, so the
  simulated memory high-water mark matches the shape of a real framework's
  forward/backward curve (rising through forward, falling through
  backward).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd.function import Node, _charge
from repro.autograd.payload_ops import padd, pones_like, pzeros
from repro.comm.payload import Payload, is_spec
from repro.tensor.tensor import Tensor


def _topo_order(root: Node) -> List[Node]:
    """Nodes in an order where every node precedes the producers of its
    inputs (i.e. reverse topological for the forward graph)."""
    order: List[Node] = []
    seen = set()
    stack: List[Tuple[Node, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for parent in node.parents():
            if id(parent) not in seen:
                stack.append((parent, False))
    order.reverse()  # loss node first, producers toward the leaves last
    return order


def backward(root: Tensor, grad: Optional[Tensor] = None) -> None:
    """Run reverse-mode autodiff from ``root``.

    Leaf tensors with ``requires_grad`` accumulate into ``.grad`` (a Tensor
    tagged ``"grad"``); intermediate gradients live only transiently.
    """
    if root.grad_fn is None:
        if root.requires_grad:
            seed = grad.payload if grad is not None else pones_like(root.payload)
            _accumulate_leaf(root, seed)
            return
        raise RuntimeError("backward() on a tensor that is not part of a graph")

    if grad is None:
        if root.size != 1:
            raise RuntimeError(
                f"backward() without explicit gradient requires a scalar, got shape {root.shape}"
            )
        seed: Payload = pones_like(root.payload)
    else:
        seed = grad.payload

    # gradient buffers for intermediate tensors, keyed by tensor identity
    grads: Dict[int, Payload] = {id(root): seed}

    for node in _topo_order(root.grad_fn):
        out_grads: List[Optional[Payload]] = []
        any_grad = False
        for ref in node.outputs:
            t = ref()
            g = grads.get(id(t)) if t is not None else None
            if g is None and t is not None:
                g = pzeros(t.shape, t.dtype, spec=is_spec(t.payload))
            if g is not None:
                any_grad = True
            out_grads.append(g)
        if not any_grad:
            node.ctx.release()
            continue

        in_grads = node.fn_cls.backward(node.ctx, *out_grads)
        if not isinstance(in_grads, tuple):
            in_grads = (in_grads,)
        bflops = (
            node.ctx.backward_flops
            if node.ctx.backward_flops is not None
            else node.ctx.flops
        )
        if bflops:
            ref_t = _first_live(node)
            _charge(
                bflops,
                ref_t.dtype if ref_t is not None else np.dtype("float32"),
                op_name=f"{node.name}Backward",
            )

        tensor_inputs = [t for t in node.inputs if isinstance(t, Tensor)]
        if len(in_grads) != len(tensor_inputs):
            raise RuntimeError(
                f"{node.name}.backward returned {len(in_grads)} grads for "
                f"{len(tensor_inputs)} tensor inputs"
            )
        for t, g in zip(tensor_inputs, in_grads):
            if g is None or not t.requires_grad:
                continue
            if t.grad_fn is None:
                _accumulate_leaf(t, g)
            else:
                prev = grads.get(id(t))
                grads[id(t)] = g if prev is None else padd(prev, g)

        # free this node's state: saved activations + its outputs' grads
        node.ctx.release()
        for ref in node.outputs:
            t = ref()
            if t is not None:
                grads.pop(id(t), None)


def _first_live(node: Node) -> Optional[Tensor]:
    for ref in node.outputs:
        t = ref()
        if t is not None:
            return t
    return None


def _accumulate_leaf(t: Tensor, g: Payload) -> None:
    if tuple(g.shape) != t.shape:
        raise RuntimeError(
            f"gradient shape {tuple(g.shape)} does not match leaf shape {t.shape}"
        )
    if t.grad is None:
        t.grad = Tensor(g, device=t.device, tag="grad")
    else:
        t.grad.payload = padd(t.grad.payload, g)
    if t.grad_hook is not None:
        t.grad_hook(t)
