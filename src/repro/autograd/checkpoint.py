"""Activation checkpointing (Chen et al. [7] in the paper).

``checkpoint(fn, *inputs)`` runs ``fn`` under ``no_grad`` in the forward
pass — so none of its internal activations are saved — and re-executes it
with gradients enabled during backward to reconstruct them.  Memory drops
from O(activations of fn) to O(inputs + outputs); compute grows by one
extra forward, which the simulated clock charges automatically because the
recomputation re-runs the ops.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.autograd.function import FnCtx, Function, no_grad
from repro.autograd.engine import backward as run_backward
from repro.comm.payload import Payload
from repro.tensor.tensor import Tensor


class _Checkpoint(Function):
    @staticmethod
    def forward(ctx: FnCtx, fn: Callable, *inputs: Tensor) -> Payload:
        ctx.fn = fn
        ctx.save_for_backward(*inputs)
        with no_grad():
            out = fn(*inputs)
        if isinstance(out, tuple):
            raise NotImplementedError("checkpoint supports single-output functions")
        ctx.flops = 0.0  # inner ops charged themselves
        return out.payload

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        fn = ctx.fn
        inputs = ctx.saved_tensors
        # re-attach fresh leaves so the recomputed graph stops at the inputs
        detached = []
        for t in inputs:
            d = t.detach()
            d.requires_grad = t.requires_grad
            detached.append(d)
        out = fn(*detached)
        run_backward(out, Tensor(g, device=out.device))
        return tuple(
            (d.grad.payload if d.grad is not None else None) for d in detached
        )


def checkpoint(fn: Callable, *inputs: Tensor) -> Tensor:
    """Apply ``fn(*inputs)`` with activation checkpointing."""
    return _Checkpoint.apply(fn, *inputs)
