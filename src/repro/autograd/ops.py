"""Differentiable tensor operations.

Each op is a :class:`Function` subclass plus a small dispatcher that accepts
Python scalars where natural.  FLOP conventions (charged to the simulated
clock): matmul ``2·m·n·k`` forward and twice that backward (two matmuls);
elementwise ops ``~size``; normalization/softmax a small constant multiple
of ``size``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd.function import FnCtx, Function
from repro.autograd import payload_ops as P
from repro.comm.payload import Payload, SpecArray, is_spec
from repro.runtime.spmd import current_rank_context, in_spmd
from repro.tensor.tensor import Tensor

Scalar = Union[int, float]


def _const(value, like: Tensor) -> Tensor:
    """Wrap a scalar/array as a non-grad Tensor matching ``like``'s mode."""
    if is_spec(like.payload):
        arr = np.asarray(value, dtype=like.dtype)
        return Tensor(SpecArray(arr.shape, arr.dtype), device=like.device)
    return Tensor(np.asarray(value, dtype=like.dtype), device=like.device)


def _maybe_tensor(x, like: Tensor) -> Tensor:
    return x if isinstance(x, Tensor) else _const(x, like)


# ---------------------------------------------------------------------------
# elementwise binary
# ---------------------------------------------------------------------------


class Add(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, b: Tensor) -> Payload:
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        ctx.flops = max(a.size, b.size)
        return P.padd(a.payload, b.payload)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        return P.unbroadcast(g, ctx.a_shape), P.unbroadcast(g, ctx.b_shape)


class Sub(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, b: Tensor) -> Payload:
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        ctx.flops = max(a.size, b.size)
        return P.psub(a.payload, b.payload)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        return P.unbroadcast(g, ctx.a_shape), P.unbroadcast(P.pneg(g), ctx.b_shape)


class Mul(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, b: Tensor) -> Payload:
        ctx.save_for_backward(a, b)
        ctx.flops = max(a.size, b.size)
        return P.pmul(a.payload, b.payload)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        a, b = ctx.saved_tensors
        ga = P.unbroadcast(P.pmul(g, b.payload), a.shape)
        gb = P.unbroadcast(P.pmul(g, a.payload), b.shape)
        return ga, gb


class Div(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, b: Tensor) -> Payload:
        ctx.save_for_backward(a, b)
        ctx.flops = max(a.size, b.size)
        return P.pdiv(a.payload, b.payload)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        a, b = ctx.saved_tensors
        ga = P.unbroadcast(P.pdiv(g, b.payload), a.shape)
        gb_full = P.pneg(P.pdiv(P.pmul(g, a.payload), P.pmul(b.payload, b.payload)))
        return ga, P.unbroadcast(gb_full, b.shape)


def add(a: Tensor, b) -> Tensor:
    return Add.apply(a, _maybe_tensor(b, a))


def sub(a: Tensor, b) -> Tensor:
    return Sub.apply(a, _maybe_tensor(b, a))


def mul(a: Tensor, b) -> Tensor:
    return Mul.apply(a, _maybe_tensor(b, a))


def div(a: Tensor, b) -> Tensor:
    return Div.apply(a, _maybe_tensor(b, a))


# ---------------------------------------------------------------------------
# elementwise unary
# ---------------------------------------------------------------------------


class Neg(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor) -> Payload:
        ctx.flops = a.size
        return P.pneg(a.payload)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        return (P.pneg(g),)


class Power(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, exponent: float) -> Payload:
        ctx.save_for_backward(a)
        ctx.exponent = exponent
        ctx.flops = 2 * a.size
        return P.ppow(a.payload, exponent)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        (a,) = ctx.saved_tensors
        e = ctx.exponent
        return (P.pmul(g, P.pmul(P.ppow(a.payload, e - 1), _scalar_like(e, g))),)


def _scalar_like(v: float, ref: Payload) -> Payload:
    if is_spec(ref):
        return SpecArray((), ref.dtype)
    return np.asarray(v, dtype=ref.dtype)


class Exp(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor) -> Payload:
        out = P.pexp(a.payload)
        ctx.out = out
        ctx.flops = a.size
        return out

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        return (P.pmul(g, ctx.out),)


class Log(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor) -> Payload:
        ctx.save_for_backward(a)
        ctx.flops = a.size
        return P.plog(a.payload)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        (a,) = ctx.saved_tensors
        return (P.pdiv(g, a.payload),)


class Sqrt(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor) -> Payload:
        out = P.psqrt(a.payload)
        ctx.out = out
        ctx.flops = a.size
        return out

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        half = _scalar_like(0.5, g)
        return (P.pdiv(P.pmul(g, half), ctx.out),)


class Tanh(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor) -> Payload:
        out = P.ptanh(a.payload)
        ctx.out = out
        ctx.flops = a.size
        return out

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        t2 = P.pmul(ctx.out, ctx.out)
        one = _scalar_like(1.0, g)
        return (P.pmul(g, P.psub(one, t2)),)


class Sigmoid(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor) -> Payload:
        out = P.psigmoid(a.payload)
        ctx.out = out
        ctx.flops = 2 * a.size
        return out

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        s = ctx.out
        one = _scalar_like(1.0, g)
        return (P.pmul(g, P.pmul(s, P.psub(one, s))),)


class Relu(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor) -> Payload:
        ctx.save_for_backward(a)
        ctx.flops = a.size
        return P.prelu(a.payload)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        (a,) = ctx.saved_tensors
        if is_spec(g):
            return (g.copy(),)
        return (g * (a.payload > 0),)


class Gelu(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor) -> Payload:
        ctx.save_for_backward(a)
        ctx.flops = 8 * a.size
        return P.pgelu(a.payload)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        (a,) = ctx.saved_tensors
        return (P.pgelu_grad(a.payload, g),)


def neg(a: Tensor) -> Tensor:
    return Neg.apply(a)


def power(a: Tensor, exponent: float) -> Tensor:
    return Power.apply(a, exponent)


def exp(a: Tensor) -> Tensor:
    return Exp.apply(a)


def log(a: Tensor) -> Tensor:
    return Log.apply(a)


def sqrt(a: Tensor) -> Tensor:
    return Sqrt.apply(a)


def tanh(a: Tensor) -> Tensor:
    return Tanh.apply(a)


def sigmoid(a: Tensor) -> Tensor:
    return Sigmoid.apply(a)


def relu(a: Tensor) -> Tensor:
    return Relu.apply(a)


def gelu(a: Tensor) -> Tensor:
    return Gelu.apply(a)


# ---------------------------------------------------------------------------
# matmul
# ---------------------------------------------------------------------------


class MatMul(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, b: Tensor) -> Payload:
        ctx.save_for_backward(a, b)
        ctx.flops = P.matmul_flops(a.shape, b.shape)
        ctx.backward_flops = 2 * ctx.flops
        return P.pmatmul(a.payload, b.payload)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        a, b = ctx.saved_tensors
        ga = P.pmatmul(g, P.pswapaxes(b.payload, -1, -2))
        gb = P.pmatmul(P.pswapaxes(a.payload, -1, -2), g)
        # collapse broadcast batch dims back to operand shapes
        return P.unbroadcast(ga, a.shape), P.unbroadcast(gb, b.shape)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return MatMul.apply(a, b)


# ---------------------------------------------------------------------------
# shape manipulation (views: no new storage)
# ---------------------------------------------------------------------------


class Reshape(Function):
    IS_VIEW = True

    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, shape: Tuple[int, ...]) -> Payload:
        ctx.a_shape = a.shape
        return P.preshape(a.payload, shape)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        return (P.preshape(g, ctx.a_shape),)


class Transpose(Function):
    IS_VIEW = True

    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, axes: Tuple[int, ...]) -> Payload:
        ctx.axes = axes
        return P.ptranspose(a.payload, axes)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        # inverse permutation in pure Python: np.argsort on a 3-tuple costs
        # microseconds per call and dominated spec-mode backward wall-clock
        axes = ctx.axes
        n = len(axes)
        inverse = [0] * n
        for i, a in enumerate(axes):
            inverse[a % n] = i
        return (P.ptranspose(g, tuple(inverse)),)


class Slice(Function):
    IS_VIEW = True

    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, idx) -> Payload:
        ctx.a_shape = a.shape
        ctx.a_spec = is_spec(a.payload)
        ctx.a_dtype = a.dtype
        ctx.idx = idx
        return P.pslice(a.payload, idx)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        if ctx.a_spec or is_spec(g):
            return (SpecArray(ctx.a_shape, ctx.a_dtype),)
        out = np.zeros(ctx.a_shape, dtype=g.dtype)
        out[ctx.idx] = g
        return (out,)


class Concat(Function):
    @staticmethod
    def forward(ctx: FnCtx, *parts_and_axis) -> Payload:
        *parts, axis = parts_and_axis
        ctx.axis = axis
        ctx.sizes = [p.shape[axis] for p in parts]
        ctx.spec = any(is_spec(p.payload) for p in parts)
        ctx.dtypes = [p.dtype for p in parts]
        ctx.shapes = [p.shape for p in parts]
        return P.pconcat([p.payload for p in parts], axis)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        if ctx.spec or is_spec(g):
            return tuple(SpecArray(s, d) for s, d in zip(ctx.shapes, ctx.dtypes))
        grads = []
        start = 0
        for size in ctx.sizes:
            sl = [slice(None)] * g.ndim
            sl[ctx.axis] = slice(start, start + size)
            grads.append(np.ascontiguousarray(g[tuple(sl)]))
            start += size
        return tuple(grads)


def reshape(a: Tensor, *shape) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Reshape.apply(a, tuple(int(s) for s in shape))


def transpose(a: Tensor, *axes) -> Tensor:
    if not axes:
        axes = tuple(reversed(range(a.ndim)))
    elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
        axes = tuple(axes[0])
    return Transpose.apply(a, tuple(int(x) for x in axes))


def swapaxes(a: Tensor, ax1: int, ax2: int) -> Tensor:
    axes = list(range(a.ndim))
    axes[ax1], axes[ax2] = axes[ax2], axes[ax1]
    return Transpose.apply(a, tuple(axes))


def slice_(a: Tensor, idx) -> Tensor:
    return Slice.apply(a, idx)


def concat(parts: Sequence[Tensor], axis: int = 0) -> Tensor:
    return Concat.apply(*parts, axis)


def split(a: Tensor, parts: int, axis: int = 0) -> Tuple[Tensor, ...]:
    """Split into ``parts`` equal chunks along ``axis``."""
    if a.shape[axis] % parts != 0:
        raise ValueError(f"axis {axis} of {a.shape} not divisible by {parts}")
    step = a.shape[axis] // parts
    out = []
    for i in range(parts):
        sl = [slice(None)] * a.ndim
        sl[axis] = slice(i * step, (i + 1) * step)
        out.append(slice_(a, tuple(sl)))
    return tuple(out)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


class Sum(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, axis, keepdims: bool) -> Payload:
        ctx.a_shape = a.shape
        ctx.axis = axis
        ctx.keepdims = keepdims
        ctx.flops = a.size
        return P.psum(a.payload, axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        return (_expand_reduced(g, ctx.a_shape, ctx.axis, ctx.keepdims),)


class Mean(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, axis, keepdims: bool) -> Payload:
        ctx.a_shape = a.shape
        ctx.axis = axis
        ctx.keepdims = keepdims
        ctx.flops = a.size
        out = P.pmean(a.payload, axis=axis, keepdims=keepdims)
        ctx.count = a.size // max(math.prod(out.shape), 1)
        return out

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        expanded = _expand_reduced(g, ctx.a_shape, ctx.axis, ctx.keepdims)
        return (P.pdiv(expanded, _scalar_like(float(ctx.count), expanded)),)


def _expand_reduced(g: Payload, shape: Tuple[int, ...], axis, keepdims: bool) -> Payload:
    if is_spec(g):
        return SpecArray(shape, g.dtype)
    if axis is None:
        return np.broadcast_to(g.reshape([1] * len(shape)), shape).copy()
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = tuple(a % len(shape) for a in axes)
    gg = g
    if not keepdims:
        for a in sorted(axes):
            gg = np.expand_dims(gg, a)
    return np.broadcast_to(gg, shape).copy()


def sum_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return Sum.apply(a, axis, keepdims)


def mean_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return Mean.apply(a, axis, keepdims)


# ---------------------------------------------------------------------------
# softmax / losses / normalization
# ---------------------------------------------------------------------------


class Softmax(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, axis: int) -> Payload:
        out = P.psoftmax(a.payload, axis=axis)
        ctx.out = out
        ctx.axis = axis
        ctx.flops = 5 * a.size
        return out

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        if is_spec(g):
            return (g.copy(),)
        s = ctx.out
        dot = np.sum(g * s, axis=ctx.axis, keepdims=True)
        return (s * (g - dot),)


class LogSoftmax(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, axis: int) -> Payload:
        out = P.plog_softmax(a.payload, axis=axis)
        ctx.out = out
        ctx.axis = axis
        ctx.flops = 5 * a.size
        return out

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        if is_spec(g):
            return (g.copy(),)
        softmax = np.exp(ctx.out)
        return (g - softmax * np.sum(g, axis=ctx.axis, keepdims=True),)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    return Softmax.apply(a, axis)


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    return LogSoftmax.apply(a, axis)


class LayerNorm(Function):
    """Normalize over the last dimension with affine gamma/beta."""

    @staticmethod
    def forward(ctx: FnCtx, x: Tensor, gamma: Tensor, beta: Tensor, eps: float) -> Payload:
        ctx.flops = 8 * x.size
        if is_spec(x.payload):
            ctx.spec_shapes = (x.shape, gamma.shape, beta.shape)
            ctx.spec_dtype = x.dtype
            return x.payload.copy()
        mu = np.mean(x.payload, axis=-1, keepdims=True)
        var = np.var(x.payload, axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + eps)
        xhat = (x.payload - mu) * inv
        ctx.xhat = xhat
        ctx.inv = inv
        ctx.gamma = gamma.payload
        ctx.spec_shapes = None
        return xhat * gamma.payload + beta.payload

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        if ctx.spec_shapes is not None or is_spec(g):
            xs, gs, bs = ctx.spec_shapes
            d = ctx.spec_dtype
            return SpecArray(xs, d), SpecArray(gs, d), SpecArray(bs, d)
        xhat, inv, gamma = ctx.xhat, ctx.inv, ctx.gamma
        H = xhat.shape[-1]
        reduce_axes = tuple(range(g.ndim - 1))
        dgamma = np.sum(g * xhat, axis=reduce_axes)
        dbeta = np.sum(g, axis=reduce_axes)
        gx = g * gamma
        dx = (
            gx - np.mean(gx, axis=-1, keepdims=True)
            - xhat * np.mean(gx * xhat, axis=-1, keepdims=True)
        ) * inv
        _ = H
        return dx, dgamma, dbeta


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    return LayerNorm.apply(x, gamma, beta, eps)


class Embedding(Function):
    @staticmethod
    def forward(ctx: FnCtx, weight: Tensor, indices: np.ndarray) -> Payload:
        ctx.w_shape = weight.shape
        ctx.w_dtype = weight.dtype
        ctx.indices = indices
        ctx.flops = 0.0
        if is_spec(weight.payload):
            return SpecArray(tuple(indices.shape) + (weight.shape[1],), weight.dtype)
        return weight.payload[indices]

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        if is_spec(g):
            return (SpecArray(ctx.w_shape, ctx.w_dtype),)
        grad = np.zeros(ctx.w_shape, dtype=g.dtype)
        np.add.at(grad, ctx.indices.reshape(-1), g.reshape(-1, g.shape[-1]))
        return (grad,)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` by integer ``indices`` (a plain array,
    never differentiated).  In spec mode ``indices`` may be a SpecArray."""
    if isinstance(indices, Tensor):
        indices = indices.payload
    if is_spec(weight.payload) and not isinstance(indices, np.ndarray):
        # spec indices: fabricate an int array shape holder
        return Embedding.apply(weight, _SpecIndices(indices.shape))
    return Embedding.apply(weight, np.asarray(indices))


class _SpecIndices:
    """Shape-only index holder for spec-mode embedding."""

    def __init__(self, shape) -> None:
        self.shape = tuple(shape)


class Dropout(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, p: float, training: bool) -> Payload:
        ctx.flops = a.size
        if not training or p <= 0.0:
            ctx.mask = None
            return a.payload if is_spec(a.payload) else a.payload.copy()
        if is_spec(a.payload):
            ctx.mask = None
            return a.payload.copy()
        rng = current_rank_context().rng if in_spmd() else np.random.default_rng()
        mask = (rng.random(a.shape) >= p).astype(a.payload.dtype) / (1.0 - p)
        ctx.mask = mask
        return a.payload * mask

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        if ctx.mask is None or is_spec(g):
            return (g,)
        return (g * ctx.mask,)


def dropout(a: Tensor, p: float, training: bool = True) -> Tensor:
    return Dropout.apply(a, p, training)


class CrossEntropy(Function):
    """Mean cross-entropy of logits [N, C] against int targets [N]."""

    @staticmethod
    def forward(ctx: FnCtx, logits: Tensor, targets) -> Payload:
        ctx.flops = 8 * logits.size
        if is_spec(logits.payload):
            ctx.spec = (logits.shape, logits.dtype)
            return SpecArray((), logits.dtype)
        t = targets.payload if isinstance(targets, Tensor) else np.asarray(targets)
        logp = P.plog_softmax(logits.payload, axis=-1)
        n = logits.shape[0]
        ctx.spec = None
        ctx.softmax = np.exp(logp)
        ctx.targets = t
        return np.asarray(-np.mean(logp[np.arange(n), t]), dtype=logits.dtype)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        if ctx.spec is not None or is_spec(g):
            shape, dtype = ctx.spec
            return (SpecArray(shape, dtype),)
        s = ctx.softmax.copy()
        n = s.shape[0]
        s[np.arange(n), ctx.targets] -= 1.0
        return ((g * s / n).astype(s.dtype),)


def cross_entropy(logits: Tensor, targets) -> Tensor:
    """Softmax cross-entropy, mean over the batch; ``targets`` are integer
    class ids (array-like or non-grad Tensor)."""
    return CrossEntropy.apply(logits, targets)


class MSELoss(Function):
    @staticmethod
    def forward(ctx: FnCtx, pred: Tensor, target: Tensor) -> Payload:
        ctx.flops = 3 * pred.size
        if is_spec(pred.payload) or is_spec(target.payload):
            ctx.spec = (pred.shape, pred.dtype)
            return SpecArray((), pred.dtype)
        ctx.spec = None
        diff = pred.payload - target.payload
        ctx.diff = diff
        return np.asarray(np.mean(diff**2), dtype=pred.dtype)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        if ctx.spec is not None or is_spec(g):
            shape, dtype = ctx.spec
            return SpecArray(shape, dtype), None
        n = ctx.diff.size
        return (g * 2.0 * ctx.diff / n), None


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    return MSELoss.apply(pred, target)


class Cast(Function):
    @staticmethod
    def forward(ctx: FnCtx, a: Tensor, dtype) -> Payload:
        ctx.a_dtype = a.dtype
        ctx.flops = a.size
        return P.pastype(a.payload, dtype)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        return (P.pastype(g, ctx.a_dtype),)


def cast(a: Tensor, dtype) -> Tensor:
    return Cast.apply(a, dtype)
