"""Trainer lifecycle hooks.

Users customize training at well-defined points (the paper's §4: "define
their own training schedule and hooks at the operator or trainer level")
by subclassing :class:`Hook` and registering with the Trainer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.trainer.metric import Accuracy, AverageMeter
from repro.utils.logging import get_logger

logger = get_logger("trainer")


class Hook:
    """Override any subset of the lifecycle methods."""

    priority = 10  # lower runs earlier

    def on_fit_start(self, trainer) -> None: ...

    def on_fit_end(self, trainer) -> None: ...

    def on_epoch_start(self, trainer) -> None: ...

    def on_epoch_end(self, trainer) -> None: ...

    def before_step(self, trainer) -> None: ...

    def after_step(self, trainer, output, label, loss) -> None: ...


class LossLoggingHook(Hook):
    def __init__(self, every: int = 50) -> None:
        self.every = every
        self.meter = AverageMeter()

    def after_step(self, trainer, output, label, loss) -> None:
        if loss is not None:
            self.meter.update(float(loss))
        if trainer.step % self.every == 0 and self.meter.count:
            trainer.history.setdefault("loss", []).append(self.meter.avg)
            logger.info("step %d loss %.4f", trainer.step, self.meter.avg)
            self.meter.reset()


class LRSchedulerHook(Hook):
    def __init__(self, scheduler) -> None:
        self.scheduler = scheduler

    def after_step(self, trainer, output, label, loss) -> None:
        self.scheduler.step()


class MetricHook(Hook):
    """Tracks top-1 accuracy per epoch."""

    def __init__(self) -> None:
        self.metric = Accuracy()

    def on_epoch_start(self, trainer) -> None:
        self.metric.reset()

    def after_step(self, trainer, output, label, loss) -> None:
        if output is not None and label is not None:
            self.metric.update(output, label)

    def on_epoch_end(self, trainer) -> None:
        trainer.history.setdefault("accuracy", []).append(self.metric.value)


class ThroughputHook(Hook):
    """Records simulated samples/second per epoch (the paper's img/sec)."""

    def __init__(self, samples_per_step: int) -> None:
        self.samples_per_step = samples_per_step
        self._t0: Optional[float] = None
        self._steps = 0

    def on_epoch_start(self, trainer) -> None:
        self._t0 = trainer.sim_time()
        self._steps = 0

    def after_step(self, trainer, output, label, loss) -> None:
        self._steps += 1

    def on_epoch_end(self, trainer) -> None:
        dt = trainer.sim_time() - (self._t0 or 0.0)
        if dt > 0 and self._steps:
            trainer.history.setdefault("throughput", []).append(
                self.samples_per_step * self._steps / dt
            )
