"""Training metrics."""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor


class AverageMeter:
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def update(self, value: float, n: int = 1) -> None:
        self.total += value * n
        self.count += n

    @property
    def avg(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0


class Accuracy:
    """Top-1 classification accuracy over logits and integer targets."""

    def __init__(self) -> None:
        self.correct = 0
        self.count = 0

    def update(self, logits, targets) -> None:
        if isinstance(logits, Tensor):
            if not logits.materialized:
                return
            logits = logits.numpy()
        pred = np.argmax(logits, axis=-1)
        targets = np.asarray(targets)
        self.correct += int(np.sum(pred == targets))
        self.count += targets.size

    @property
    def value(self) -> float:
        return self.correct / self.count if self.count else 0.0

    def reset(self) -> None:
        self.correct = 0
        self.count = 0
