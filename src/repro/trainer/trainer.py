"""Trainer: epoch/step loop driving an Engine, with hooks."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.engine.engine import Engine
from repro.runtime.spmd import current_rank_context, in_spmd
from repro.tensor.tensor import Tensor
from repro.trainer.hooks import Hook


class Trainer:
    """Runs ``engine`` over a dataloader for N epochs.

    The dataloader yields ``(data, label)`` pairs; ``shard_input`` /
    ``loss_fn`` indirections let parallel model bundles slice inputs and
    compute mode-aware losses without the loop knowing the parallel mode.
    """

    def __init__(
        self,
        engine: Engine,
        hooks: Optional[List[Hook]] = None,
        shard_input: Optional[Callable[[Any], Any]] = None,
        loss_fn: Optional[Callable] = None,
    ) -> None:
        self.engine = engine
        self.hooks = sorted(hooks or [], key=lambda h: h.priority)
        self.shard_input = shard_input or (lambda x: x)
        self.loss_fn = loss_fn
        self.step = 0
        self.epoch = 0
        self.history: Dict[str, List[float]] = {}

    def sim_time(self) -> float:
        if in_spmd():
            return current_rank_context().clock.time
        return 0.0

    def _fire(self, event: str, *args: Any) -> None:
        for h in self.hooks:
            getattr(h, event)(self, *args)

    def fit(self, dataloader: Iterable, epochs: int = 1) -> Dict[str, List[float]]:
        self._fire("on_fit_start")
        for _ in range(epochs):
            self.epoch += 1
            self.engine.train()
            self._fire("on_epoch_start")
            for data, label in dataloader:
                self._fire("before_step")
                self.engine.zero_grad()
                if self.engine.schedule is not None:
                    loss_val = self.engine.execute_schedule(data, label)
                    output = None
                else:
                    x = self.shard_input(data)
                    if not isinstance(x, Tensor):
                        x = Tensor(x)
                    output = self.engine(x)
                    if self.loss_fn is not None:
                        loss = self.loss_fn(output, label)
                    else:
                        loss = self.engine.criterion(output, label)
                    self.engine.backward(loss)
                    loss_val = loss.item() if loss.materialized else None
                self.engine.step()
                self.step += 1
                self._fire("after_step", output, label, loss_val)
            self._fire("on_epoch_end")
        self._fire("on_fit_end")
        return self.history

    def evaluate(
        self, dataloader: Iterable, metric_fn: Callable[[Any, Any], None]
    ) -> None:
        """Run inference over a dataloader, feeding (output, label) to
        ``metric_fn``."""
        from repro.autograd.function import no_grad

        self.engine.eval()
        with no_grad():
            for data, label in dataloader:
                x = self.shard_input(data)
                if not isinstance(x, Tensor):
                    x = Tensor(x)
                output = self.engine(x)
                metric_fn(output, label)
