"""Trainer: epoch/step loop driving an Engine, with hooks.

Resilience: with a :class:`~repro.trainer.checkpoint.CheckpointManager`
attached (``checkpoint=`` / ``checkpoint_every=``), every rank snapshots
its full training state every N steps.  After a crash
(:class:`~repro.runtime.errors.RankFailure` aborting the SPMD program),
``Checkpoint.restore(trainer, loader)`` rewinds a freshly-built trainer to
the last consistent snapshot and ``fit`` continues — skipping
already-trained batches by replaying the loader — to a final state bitwise
identical to an uninterrupted run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.engine.engine import Engine
from repro.runtime.spmd import current_rank_context, in_spmd
from repro.tensor.tensor import Tensor
from repro.trainer.checkpoint import Checkpoint, CheckpointManager
from repro.trainer.hooks import Hook


class Trainer:
    """Runs ``engine`` over a dataloader for N epochs.

    The dataloader yields ``(data, label)`` pairs; ``shard_input`` /
    ``loss_fn`` indirections let parallel model bundles slice inputs and
    compute mode-aware losses without the loop knowing the parallel mode.
    """

    def __init__(
        self,
        engine: Engine,
        hooks: Optional[List[Hook]] = None,
        shard_input: Optional[Callable[[Any], Any]] = None,
        loss_fn: Optional[Callable] = None,
        checkpoint: Optional[CheckpointManager] = None,
        checkpoint_every: int = 0,
    ) -> None:
        self.engine = engine
        self.hooks = sorted(hooks or [], key=lambda h: h.priority)
        self.shard_input = shard_input or (lambda x: x)
        self.loss_fn = loss_fn
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every
        self.step = 0
        self.epoch = 0
        self.history: Dict[str, List[float]] = {}
        # resume machinery (armed by Checkpoint.restore)
        self._resumed = False
        self._resume_skip = 0
        self._steps_into_epoch = 0
        self._epoch_loader_state: Optional[Dict[str, Any]] = None
        self._active_loader: Optional[Any] = None

    def sim_time(self) -> float:
        if in_spmd():
            return current_rank_context().clock.time
        return 0.0

    def _trace_ctx(self):
        """(tracer, rank_context) — (None, None) when untraced or outside
        SPMD, so every trace site is one cheap check."""
        if in_spmd():
            ctx = current_rank_context()
            tracer = getattr(ctx.runtime, "tracer", None)
            if tracer is not None:
                return tracer, ctx
        return None, None

    def _fire(self, event: str, *args: Any) -> None:
        for h in self.hooks:
            getattr(h, event)(self, *args)

    def _check_injected_crash(self) -> None:
        """Fire any RankCrash(at_step=...) scheduled for the next step."""
        if not in_spmd():
            return
        ctx = current_rank_context()
        injector = getattr(ctx.runtime, "fault_injector", None)
        if injector is not None:
            injector.on_step(ctx.rank, self.step + 1)

    def _maybe_checkpoint(self) -> None:
        if (self.checkpoint is None or self.checkpoint_every <= 0
                or self.step % self.checkpoint_every != 0):
            return
        rank = current_rank_context().rank if in_spmd() else 0
        tracer, ctx = self._trace_ctx()
        if tracer is not None:
            with tracer.region(
                rank, "checkpoint", f"ckpt@step{self.step}", ctx.clock
            ):
                self.checkpoint.save(rank, Checkpoint.capture(self))
            return
        self.checkpoint.save(rank, Checkpoint.capture(self))

    def fit(self, dataloader: Iterable, epochs: int = 1) -> Dict[str, List[float]]:
        """Train for ``epochs`` epochs.  After ``Checkpoint.restore``,
        ``epochs`` is the *total* target and completed epochs are not
        re-run; the first resumed epoch replays (skips) batches the
        checkpoint already covers so the data order is unchanged.
        """
        self._fire("on_fit_start")
        remaining = epochs - self.epoch if self._resumed else epochs
        self._active_loader = dataloader
        for _ in range(max(0, remaining)):
            self.epoch += 1
            self.engine.train()
            self._fire("on_epoch_start")
            # Loader RNG is at its epoch-start state here (fresh epoch or
            # rewound by Checkpoint.restore); snapshot it for checkpoints.
            self._epoch_loader_state = (
                dataloader.state_dict()
                if hasattr(dataloader, "state_dict") else None
            )
            self._steps_into_epoch = 0
            for data, label in dataloader:
                if self._resume_skip > 0:
                    # Replay: this batch was trained before the checkpoint.
                    self._resume_skip -= 1
                    self._steps_into_epoch += 1
                    continue
                self._check_injected_crash()
                self._fire("before_step")
                tracer, tctx = self._trace_ctx()
                t0 = tctx.clock.time if tracer is not None else 0.0
                self.engine.zero_grad()
                if self.engine.schedule is not None:
                    loss_val = self.engine.execute_schedule(data, label)
                    output = None
                else:
                    x = self.shard_input(data)
                    if not isinstance(x, Tensor):
                        x = Tensor(x)
                    output = self.engine(x)
                    if self.loss_fn is not None:
                        loss = self.loss_fn(output, label)
                    else:
                        loss = self.engine.criterion(output, label)
                    self.engine.backward(loss)
                    loss_val = loss.item() if loss.materialized else None
                self.engine.step()
                self.step += 1
                self._steps_into_epoch += 1
                if tracer is not None:
                    tracer.annotate(
                        tctx.rank, "step", f"step{self.step}",
                        t0, tctx.clock.time, epoch=self.epoch,
                    )
                    tracer.sample_memory(
                        tctx.rank, tctx.device, tctx.clock.time
                    )
                self._fire("after_step", output, label, loss_val)
                self._maybe_checkpoint()
            self._fire("on_epoch_end")
        self._fire("on_fit_end")
        return self.history

    def evaluate(
        self, dataloader: Iterable, metric_fn: Callable[[Any, Any], None]
    ) -> None:
        """Run inference over a dataloader, feeding (output, label) to
        ``metric_fn``."""
        from repro.autograd.function import no_grad

        self.engine.eval()
        with no_grad():
            for data, label in dataloader:
                x = self.shard_input(data)
                if not isinstance(x, Tensor):
                    x = Tensor(x)
                output = self.engine(x)
                metric_fn(output, label)
