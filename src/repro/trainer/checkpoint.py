"""Checkpoint / resume for SPMD training.

A :class:`Checkpoint` is one rank's complete training state at a step
boundary: local model shards, optimizer state, engine bookkeeping (loss
scale, accumulation window) and the dataloader's shuffle-RNG state.  A
:class:`CheckpointManager` is the simulated persistent store — an
in-memory, thread-safe map ``rank -> step -> Checkpoint`` shared by every
rank thread and surviving the SPMD program that wrote it (the analogue of
a parallel filesystem that outlives a crashed job).

Recovery protocol: after a :class:`~repro.runtime.errors.RankFailure`
aborts a run, the supervisor picks ``manager.latest_common_step(world)`` —
the newest step checkpointed by *every* rank, i.e. a consistent global
snapshot — rebuilds the per-rank program, calls ``ckpt.restore(trainer,
loader)`` and re-enters ``trainer.fit``.  Because the dataloader's RNG is
restored to its epoch-start state and already-trained batches are skipped
by replay, a resumed run is **bitwise identical** to an uninterrupted one.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np


@dataclass
class Checkpoint:
    """One rank's training state at the end of global step ``step``."""

    step: int
    epoch: int  #: 1-based epoch the step belongs to
    steps_into_epoch: int  #: batches consumed in that epoch (1..len(loader))
    model_state: Dict[str, np.ndarray]
    optim_state: Optional[Dict[str, Any]]
    engine_state: Dict[str, Any]
    loader_state: Optional[Dict[str, Any]]  #: loader RNG at epoch start
    loader_state_end: Optional[Dict[str, Any]]  #: loader RNG at save time
    history: Dict[str, List[float]] = field(default_factory=dict)

    @classmethod
    def capture(cls, trainer: Any) -> "Checkpoint":
        """Snapshot ``trainer`` (model, optimizer, engine, loader, history)."""
        eng = trainer.engine
        engine_state: Dict[str, Any] = {
            "global_step": eng.global_step,
            "steps_skipped": eng.steps_skipped,
            "accum_count": eng._accum_count,
        }
        if eng.scaler is not None:
            engine_state["scaler"] = eng.scaler.state_dict()
        loader = trainer._active_loader
        loader_state_end = (
            loader.state_dict()
            if loader is not None and hasattr(loader, "state_dict")
            else None
        )
        optim = eng.optimizer
        return cls(
            step=trainer.step,
            epoch=trainer.epoch,
            steps_into_epoch=trainer._steps_into_epoch,
            model_state=eng.model.state_dict(),
            optim_state=optim.state_dict() if hasattr(optim, "state_dict") else None,
            engine_state=engine_state,
            loader_state=copy.deepcopy(trainer._epoch_loader_state),
            loader_state_end=loader_state_end,
            history={k: list(v) for k, v in trainer.history.items()},
        )

    def restore(self, trainer: Any, dataloader: Optional[Any] = None) -> None:
        """Load this snapshot into ``trainer`` and arm its resume path.

        ``dataloader`` must be the loader that will be passed to the
        subsequent ``trainer.fit`` call; its RNG is rewound so the resumed
        run sees the exact batch sequence of the original.  After restore,
        call ``trainer.fit(dataloader, epochs=total_epochs)`` with the same
        *total* epoch count as the original run.
        """
        eng = trainer.engine
        eng.model.load_state_dict(self.model_state)
        if self.optim_state is not None and hasattr(eng.optimizer, "load_state_dict"):
            eng.optimizer.load_state_dict(self.optim_state)
        eng.global_step = self.engine_state["global_step"]
        eng.steps_skipped = self.engine_state["steps_skipped"]
        eng._accum_count = self.engine_state["accum_count"]
        if eng.scaler is not None and "scaler" in self.engine_state:
            eng.scaler.load_state_dict(self.engine_state["scaler"])
        trainer.step = self.step
        trainer.history = {k: list(v) for k, v in self.history.items()}
        trainer._steps_into_epoch = 0
        mid_epoch = True
        if dataloader is not None and hasattr(dataloader, "__len__"):
            mid_epoch = self.steps_into_epoch < len(dataloader)
        if mid_epoch:
            # Re-enter the interrupted epoch: rewind the loader to its
            # epoch-start RNG so the shuffle replays, then skip the batches
            # this checkpoint already covers.
            trainer.epoch = self.epoch - 1
            trainer._resume_skip = self.steps_into_epoch
            if (dataloader is not None and self.loader_state is not None
                    and hasattr(dataloader, "load_state_dict")):
                dataloader.load_state_dict(self.loader_state)
        else:
            # Checkpoint fell exactly on an epoch boundary: continue with
            # the next epoch, loader RNG as it stood after the full epoch.
            trainer.epoch = self.epoch
            trainer._resume_skip = 0
            if (dataloader is not None and self.loader_state_end is not None
                    and hasattr(dataloader, "load_state_dict")):
                dataloader.load_state_dict(self.loader_state_end)
        trainer._resumed = True


class CheckpointManager:
    """In-memory, thread-safe checkpoint store shared across ranks and runs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._store: Dict[int, Dict[int, Checkpoint]] = {}

    def save(self, rank: int, ckpt: Checkpoint) -> None:
        with self._lock:
            self._store.setdefault(rank, {})[ckpt.step] = ckpt

    def load(self, rank: int, step: int) -> Checkpoint:
        with self._lock:
            try:
                return self._store[rank][step]
            except KeyError:
                raise KeyError(
                    f"no checkpoint for rank {rank} at step {step}"
                ) from None

    def steps(self, rank: int) -> List[int]:
        with self._lock:
            return sorted(self._store.get(rank, {}))

    def latest_common_step(self, world_size: int) -> Optional[int]:
        """Newest step checkpointed by *every* rank in ``range(world_size)``
        — the most recent consistent global snapshot — or ``None``."""
        with self._lock:
            common: Optional[set] = None
            for r in range(world_size):
                steps = set(self._store.get(r, {}))
                common = steps if common is None else (common & steps)
                if not common:
                    return None
        return max(common) if common else None

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
