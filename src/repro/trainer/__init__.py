"""Trainer with lifecycle hooks (§4 extensibility)."""

from repro.trainer.trainer import Trainer
from repro.trainer.checkpoint import Checkpoint, CheckpointManager
from repro.trainer.hooks import (
    Hook,
    LRSchedulerHook,
    LossLoggingHook,
    MetricHook,
    ThroughputHook,
)
from repro.trainer.metric import Accuracy, AverageMeter

__all__ = [
    "Trainer",
    "Checkpoint",
    "CheckpointManager",
    "Hook",
    "LossLoggingHook",
    "LRSchedulerHook",
    "MetricHook",
    "ThroughputHook",
    "Accuracy",
    "AverageMeter",
]
