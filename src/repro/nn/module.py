"""Module / Parameter base classes.

A light re-implementation of the familiar container API: attribute
assignment registers parameters and submodules, ``parameters()`` walks the
tree, ``state_dict()`` round-trips numpy arrays.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A Tensor registered as a trainable parameter (tag ``"param"``,
    ``requires_grad=True`` by default)."""

    def __init__(self, data, dtype=None, device=None, requires_grad: bool = True) -> None:
        super().__init__(
            data, dtype=dtype, device=device, requires_grad=requires_grad, tag="param"
        )


class Module:
    """Base class with parameter/submodule registration."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- registration -----------------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        params = self.__dict__.get("_parameters")
        modules = self.__dict__.get("_modules")
        if params is None:
            raise RuntimeError("call Module.__init__() before assigning attributes")
        if isinstance(value, Parameter):
            params[name] = value
            modules.pop(name, None)
        elif isinstance(value, Module):
            modules[name] = value
            params.pop(name, None)
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Optional[Parameter]) -> None:
        if param is not None:
            setattr(self, name, param)
        else:
            self._parameters.pop(name, None)
            object.__setattr__(self, name, None)

    def add_module(self, name: str, module: "Module") -> None:
        setattr(self, name, module)

    # -- traversal ------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mname, m in self._modules.items():
            yield from m.named_parameters(prefix=f"{prefix}{mname}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for mname, m in self._modules.items():
            yield from m.named_modules(prefix=f"{prefix}{mname}.")

    def modules(self) -> List["Module"]:
        return [m for _, m in self.named_modules()]

    # -- state ----------------------------------------------------------------

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            out[name] = p.numpy().copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, extra={sorted(extra)}")
        for name, p in own.items():
            arr = np.asarray(state[name], dtype=p.dtype)
            if arr.shape != p.shape:
                raise ValueError(
                    f"shape mismatch for {name}: param {p.shape} vs state {arr.shape}"
                )
            if p.materialized:
                p.payload[...] = arr

    # -- call ---------------------------------------------------------------------

    def forward(self, *args: Any, **kwargs: Any):
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class ModuleList(Module):
    """An indexable list of submodules."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._list: List[Module] = []
        for m in modules or []:
            self.append(m)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._list)), module)
        self._list.append(module)
        return self

    def __getitem__(self, i: int) -> Module:
        return self._list[i]

    def __len__(self) -> int:
        return len(self._list)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)
