"""Multi-head self-attention (serial reference).

The quadratic-in-sequence-length memory of the score matrix here is exactly
the "non-model data" bottleneck sequence parallelism attacks (§2.3); the
ring variant lives in :mod:`repro.parallel.sequence`.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.autograd import ops
from repro.comm.payload import SpecArray, is_spec
from repro.nn import init as init_mod
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.tensor.tensor import Tensor


def causal_mask_payload(seq: int, dtype, spec: bool):
    """Additive attention mask: 0 on/below the diagonal, -inf above."""
    if spec:
        return SpecArray((seq, seq), dtype)
    # keep the "minus infinity" representable: float16 tops out at ~6.5e4
    neg = -1e4 if np.dtype(dtype).itemsize < 4 else -1e9
    mask = np.triu(np.full((seq, seq), neg, dtype=np.dtype(dtype)), k=1)
    return mask


def split_heads(x: Tensor, n_heads: int) -> Tensor:
    """[B, S, H] -> [B, n_heads, S, H/n_heads]."""
    b, s, h = x.shape
    x = ops.reshape(x, (b, s, n_heads, h // n_heads))
    return ops.transpose(x, (0, 2, 1, 3))


def merge_heads(x: Tensor) -> Tensor:
    """[B, n_heads, S, d] -> [B, S, n_heads*d]."""
    b, nh, s, d = x.shape
    x = ops.transpose(x, (0, 2, 1, 3))
    return ops.reshape(x, (b, s, nh * d))


def attention_core(
    q: Tensor, k: Tensor, v: Tensor, causal: bool = False, dropout_p: float = 0.0,
    training: bool = True,
) -> Tensor:
    """Scaled dot-product attention over [B, nh, S, d] tensors."""
    d = q.shape[-1]
    # scale q, not the scores: the scores buffer is the largest activation
    # in the layer ([B, nh, S, S]); scaling it would double its footprint
    q = ops.mul(q, 1.0 / math.sqrt(d))
    scores = ops.matmul(q, ops.swapaxes(k, -1, -2))
    if causal:
        mask = Tensor(
            causal_mask_payload(q.shape[-2], q.dtype, is_spec(q.payload)),
            device=q.device,
        )
        scores = ops.add(scores, mask)
    probs = ops.softmax(scores, axis=-1)
    if dropout_p > 0.0:
        probs = ops.dropout(probs, dropout_p, training=training)
    return ops.matmul(probs, v)


class MultiHeadAttention(Module):
    """Standard MHA block: QKV projection, per-head attention, output proj."""

    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        attn_dropout: float = 0.0,
        out_dropout: float = 0.0,
        causal: bool = False,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if hidden_size % n_heads != 0:
            raise ValueError(
                f"hidden size {hidden_size} not divisible by {n_heads} heads"
            )
        self.hidden_size = hidden_size
        self.n_heads = n_heads
        self.causal = causal
        self.attn_dropout = attn_dropout
        self.qkv = Linear(
            hidden_size, 3 * hidden_size,
            weight_init=init_mod.lecun_normal(), dtype=dtype, rng=rng,
        )
        self.out = Linear(
            hidden_size, hidden_size,
            weight_init=init_mod.lecun_normal(), dtype=dtype, rng=rng,
        )
        self.dropout = Dropout(out_dropout) if out_dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        qkv = self.qkv(x)  # [B, S, 3H]
        q, k, v = ops.split(qkv, 3, axis=-1)
        q = split_heads(q, self.n_heads)
        k = split_heads(k, self.n_heads)
        v = split_heads(v, self.n_heads)
        attn = attention_core(
            q, k, v, causal=self.causal,
            dropout_p=self.attn_dropout, training=self.training,
        )
        y = self.out(merge_heads(attn))
        if self.dropout is not None:
            y = self.dropout(y)
        return y
