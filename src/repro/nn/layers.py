"""Core layers: Linear, LayerNorm, Embedding, Dropout, PatchEmbedding.

Linear weights use the ``[in_features, out_features]`` convention so that
forward is ``y = x @ W + b`` — this keeps the SUMMA/3D distributed matmul
code direct (no transposes hidden in layer code).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.autograd import ops
from repro.nn import init as init_mod
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor


class Identity(Module):
    def __init__(self) -> None:
        super().__init__()

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine map ``y = x @ W + b`` with W of shape [in, out]."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        weight_init: init_mod.InitFn = init_mod.xavier_uniform(),
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init_mod.param_payload((in_features, out_features), weight_init, rng, dtype)
        )
        if bias:
            self.bias: Optional[Parameter] = Parameter(
                init_mod.param_payload((out_features,), init_mod.zeros_init, rng, dtype)
            )
        else:
            self.register_parameter("bias", None)

    def forward(self, x: Tensor) -> Tensor:
        y = ops.matmul(x, self.weight)
        if self.bias is not None:
            y = ops.add(y, self.bias)
        return y


class LayerNorm(Module):
    def __init__(
        self,
        normalized_size: int,
        eps: float = 1e-5,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(
            init_mod.param_payload((normalized_size,), init_mod.ones_init, rng, dtype)
        )
        self.beta = Parameter(
            init_mod.param_payload((normalized_size,), init_mod.zeros_init, rng, dtype)
        )

    def forward(self, x: Tensor) -> Tensor:
        return ops.layer_norm(x, self.gamma, self.beta, self.eps)


class Embedding(Module):
    """Token embedding: int ids -> vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        weight_init: init_mod.InitFn = init_mod.normal(0.02),
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init_mod.param_payload((num_embeddings, embedding_dim), weight_init, rng, dtype)
        )

    def forward(self, indices) -> Tensor:
        return ops.embedding(self.weight, indices)


class Dropout(Module):
    def __init__(self, p: float = 0.1) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.p, training=self.training)


class PatchEmbedding(Module):
    """ViT patchifier: images [B, H, W, C] -> patch tokens [B, N, hidden].

    Implemented as reshape + linear over flattened ``patch x patch x C``
    blocks (equivalent to the conv-with-stride formulation).
    """

    def __init__(
        self,
        image_size: int,
        patch_size: int,
        in_channels: int,
        hidden_size: int,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if image_size % patch_size != 0:
            raise ValueError(f"image size {image_size} not divisible by patch {patch_size}")
        self.image_size = image_size
        self.patch_size = patch_size
        self.n_patches = (image_size // patch_size) ** 2
        self.proj = Linear(
            patch_size * patch_size * in_channels,
            hidden_size,
            weight_init=init_mod.lecun_normal(),
            dtype=dtype,
            rng=rng,
        )

    def forward(self, images: Tensor) -> Tensor:
        b, h, w, c = images.shape
        p = self.patch_size
        # [B, H/p, p, W/p, p, C] -> [B, H/p, W/p, p, p, C] -> [B, N, p*p*C]
        x = ops.reshape(images, (b, h // p, p, w // p, p, c))
        x = ops.transpose(x, (0, 1, 3, 2, 4, 5))
        x = ops.reshape(x, (b, self.n_patches, p * p * c))
        return self.proj(x)
