"""Transformer layer (Fig 2 of the paper): Multi-Head Attention block +
Feed Forward block, pre-norm residual wiring."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.autograd import ops
from repro.nn import init as init_mod
from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class FeedForward(Module):
    """The MLP block: Linear(H -> r*H) + GELU + Linear(r*H -> H).

    This is the ``Y = W2 (gelu(W1 X))`` module of the paper's Fig 4 — the
    canonical target of tensor parallelism.
    """

    def __init__(
        self,
        hidden_size: int,
        mlp_ratio: int = 4,
        dropout: float = 0.0,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.dense_1 = Linear(
            hidden_size, mlp_ratio * hidden_size,
            weight_init=init_mod.lecun_normal(), dtype=dtype, rng=rng,
        )
        self.dense_2 = Linear(
            mlp_ratio * hidden_size, hidden_size,
            weight_init=init_mod.lecun_normal(), dtype=dtype, rng=rng,
        )
        self.dropout = Dropout(dropout) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        h = ops.gelu(self.dense_1(x))
        h = self.dense_2(h)
        if self.dropout is not None:
            h = self.dropout(h)
        return h


class TransformerLayer(Module):
    """Pre-norm Transformer layer: x + MHA(LN(x)); x + FFN(LN(x))."""

    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        mlp_ratio: int = 4,
        attn_dropout: float = 0.0,
        dropout: float = 0.0,
        causal: bool = False,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.norm_1 = LayerNorm(hidden_size, dtype=dtype, rng=rng)
        self.attention = MultiHeadAttention(
            hidden_size, n_heads,
            attn_dropout=attn_dropout, out_dropout=dropout, causal=causal,
            dtype=dtype, rng=rng,
        )
        self.norm_2 = LayerNorm(hidden_size, dtype=dtype, rng=rng)
        self.mlp = FeedForward(hidden_size, mlp_ratio, dropout=dropout, dtype=dtype, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = ops.add(x, self.attention(self.norm_1(x)))
        x = ops.add(x, self.mlp(self.norm_2(x)))
        return x
