"""Neural-network building blocks (serial reference implementations).

The parallel packages (:mod:`repro.parallel`) provide drop-in parallel
versions of these layers; parity tests assert that each parallel layer
matches its serial counterpart here bit-for-bit (up to float tolerance).
"""

from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.layers import Dropout, Embedding, Identity, LayerNorm, Linear, PatchEmbedding
from repro.nn.attention import MultiHeadAttention
from repro.nn.transformer import FeedForward, TransformerLayer
from repro.nn.loss import CrossEntropyLoss, MSELoss
from repro.nn import init

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "Identity",
    "PatchEmbedding",
    "MultiHeadAttention",
    "FeedForward",
    "TransformerLayer",
    "CrossEntropyLoss",
    "MSELoss",
    "init",
]
