"""Loss modules."""

from __future__ import annotations

from repro.autograd import ops
from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class CrossEntropyLoss(Module):
    """Mean softmax cross-entropy over integer class targets.

    Accepts logits of shape [N, C] or [B, S, C] (flattened internally).
    """

    def __init__(self) -> None:
        super().__init__()

    def forward(self, logits: Tensor, targets) -> Tensor:
        if logits.ndim == 3:
            b, s, c = logits.shape
            logits = ops.reshape(logits, (b * s, c))
            if isinstance(targets, Tensor):
                targets = targets.payload
            else:
                import numpy as np

                targets = np.asarray(targets)
            if hasattr(targets, "reshape"):
                targets = targets.reshape(-1)
        return ops.cross_entropy(logits, targets)


class MSELoss(Module):
    def __init__(self) -> None:
        super().__init__()

    def forward(self, pred: Tensor, target: Tensor) -> Tensor:
        return ops.mse_loss(pred, target)
