"""Weight initializers.

All initializers are driven by an explicit :class:`numpy.random.Generator`
so tensor-parallel layers can draw the *same* global matrix on every rank
(seeded per parallel mode by :mod:`repro.context.seed`) and then keep only
their shard — the mechanism that makes multi-dimensional TP arithmetically
identical to serial execution (verified by the Fig 7 convergence bench).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.comm.payload import SpecArray
from repro.tensor.tensor import _default_materialize

InitFn = Callable[[Tuple[int, ...], np.random.Generator], np.ndarray]


def zeros_init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones_init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)


def normal(std: float = 0.02) -> InitFn:
    def fn(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.standard_normal(shape) * std

    return fn


def uniform(low: float, high: float) -> InitFn:
    def fn(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(low, high, shape)

    return fn


def _fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """(fan_in, fan_out) with our [in, out] linear-weight convention."""
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = shape[0] * int(np.prod(shape[2:])) if len(shape) > 2 else shape[0]
    fan_out = shape[1] * int(np.prod(shape[2:])) if len(shape) > 2 else shape[1]
    return fan_in, fan_out


def xavier_uniform(gain: float = 1.0) -> InitFn:
    def fn(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = _fan(shape)
        bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-bound, bound, shape)

    return fn


def xavier_normal(gain: float = 1.0) -> InitFn:
    def fn(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = _fan(shape)
        std = gain * math.sqrt(2.0 / (fan_in + fan_out))
        return rng.standard_normal(shape) * std

    return fn


def lecun_normal() -> InitFn:
    """The "Jax initialization" the paper uses for its ViT runs (§5.2)."""

    def fn(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = _fan(shape)
        std = math.sqrt(1.0 / max(fan_in, 1))
        return rng.standard_normal(shape) * std

    return fn


def param_payload(
    shape: Sequence[int],
    init_fn: InitFn,
    rng: Optional[np.random.Generator],
    dtype: Union[str, np.dtype] = "float32",
):
    """Materialize an init (or a SpecArray in spec mode)."""
    shape = tuple(int(s) for s in shape)
    if not _default_materialize():
        return SpecArray(shape, dtype)
    if rng is None:
        rng = np.random.default_rng()
    return init_fn(shape, rng).astype(np.dtype(dtype))
