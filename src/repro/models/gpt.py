"""GPT models as block lists for the ZeRO offload engine (§5.4 / Fig 14).

``build_gpt_blocks`` returns the model as a list of blocks — embedding,
each causal Transformer layer, LM head — which is exactly the granularity
the :class:`ZeroOffloadEngine` fetches, recomputes and reduce-scatters.

Presets match the paper's workloads: GPT-2 scaled to 10B parameters and
OPT-13B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.autograd import ops
from repro.models.common import crng
from repro.nn import init as init_mod
from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module, Parameter
from repro.nn.transformer import TransformerLayer
from repro.tensor.tensor import Tensor

_TOK, _POS, _HEAD = 0, 1, 1001
_LAYER0 = 2


@dataclass
class GPTConfig:
    vocab_size: int = 50257
    hidden_size: int = 1024
    n_layers: int = 24
    n_heads: int = 16
    seq_len: int = 1024
    mlp_ratio: int = 4
    dtype: str = "float16"
    seed: int = 17

    def param_count(self) -> int:
        """Approximate parameter count (the 12 h^2 rule + embeddings)."""
        per_layer = 12 * self.hidden_size**2 + 13 * self.hidden_size
        emb = (self.vocab_size + self.seq_len) * self.hidden_size
        head = self.hidden_size * self.vocab_size
        return self.n_layers * per_layer + emb + head


class GPTEmbeddingBlock(Module):
    def __init__(self, cfg: GPTConfig) -> None:
        super().__init__()
        self.token_emb = Embedding(
            cfg.vocab_size, cfg.hidden_size, dtype=cfg.dtype, rng=crng(cfg.seed, _TOK)
        )
        self.pos_emb = Parameter(
            init_mod.param_payload(
                (cfg.seq_len, cfg.hidden_size), init_mod.normal(0.02),
                crng(cfg.seed, _POS), cfg.dtype,
            )
        )

    def forward(self, token_ids) -> Tensor:
        x = self.token_emb(token_ids)
        return ops.add(x, self.pos_emb)


class GPTHeadBlock(Module):
    def __init__(self, cfg: GPTConfig) -> None:
        super().__init__()
        self.norm = LayerNorm(cfg.hidden_size, dtype=cfg.dtype, rng=crng(cfg.seed, _HEAD))
        self.head = Linear(
            cfg.hidden_size, cfg.vocab_size, bias=False,
            weight_init=init_mod.lecun_normal(), dtype=cfg.dtype,
            rng=crng(cfg.seed, _HEAD + 1),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.norm(x))


def build_gpt_blocks(cfg: GPTConfig) -> Tuple[List[Module], Callable]:
    """(blocks, criterion) for block-wise ZeRO training."""
    blocks: List[Module] = [GPTEmbeddingBlock(cfg)]
    for i in range(cfg.n_layers):
        blocks.append(
            TransformerLayer(
                cfg.hidden_size, cfg.n_heads, cfg.mlp_ratio, causal=True,
                dtype=cfg.dtype, rng=crng(cfg.seed, _LAYER0 + i),
            )
        )
    blocks.append(GPTHeadBlock(cfg))
    ce = CrossEntropyLoss()

    def criterion(logits: Tensor, targets) -> Tensor:
        return ce(logits, targets)

    return blocks, criterion


def gpt2_10b(seq_len: int = 1024) -> GPTConfig:
    """GPT-2 architecture scaled to ~10B parameters (§5.4): 50 layers,
    hidden 4096, 32 heads -> 12*4096^2*50 + embeddings ~= 10.5B."""
    return GPTConfig(
        vocab_size=50257,
        hidden_size=4096,
        n_layers=50,
        n_heads=32,
        seq_len=seq_len,
        mlp_ratio=4,
        dtype="float16",
    )


def opt_13b(seq_len: int = 1024) -> GPTConfig:
    """OPT-13B [41]: 40 layers, hidden 5120, 40 heads (~12.9B params)."""
    return GPTConfig(
        vocab_size=50272,
        hidden_size=5120,
        n_layers=40,
        n_heads=40,
        seq_len=seq_len,
        mlp_ratio=4,
        dtype="float16",
    )
