"""Parallelized model zoo (§4: "Colossal-AI also provides parallelized
popular model components such as BERT, GPT, ViT").

Each builder returns a :class:`ModelBundle` — the model plus mode-aware
input sharding and loss helpers — so examples and benchmarks run identical
loops across serial / 1D / 2D / 2.5D / 3D / sequence-parallel configs.
"""

from repro.models.common import ModelBundle, crng
from repro.models.vit import ViTConfig, build_vit
from repro.models.bert import BertConfig, build_bert
from repro.models.gpt import GPTConfig, build_gpt_blocks, gpt2_10b, opt_13b

__all__ = [
    "ModelBundle",
    "crng",
    "ViTConfig",
    "build_vit",
    "BertConfig",
    "build_bert",
    "GPTConfig",
    "build_gpt_blocks",
    "gpt2_10b",
    "opt_13b",
]
