"""Vision Transformer, parallelized for every tensor-parallel mode.

The paper's §5.2 workhorse.  ``build_vit(cfg, pc, mode)`` returns a
:class:`ModelBundle` whose loss matches the serial global-batch loss
exactly in every mode (parity-tested), so the Fig 7 convergence curves are
directly comparable.

Classification uses mean-pooling over patch tokens (a standard ViT variant)
instead of a CLS token: the pooled representation keeps the same sharding
layout as the tokens, so no mode needs extra communication at the head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.autograd import ops
from repro.comm.payload import is_spec
from repro.context.parallel_context import ParallelContext, ParallelMode
from repro.models.common import ModelBundle, crng
from repro.nn import init as init_mod
from repro.nn.layers import LayerNorm, Linear, PatchEmbedding
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module, ModuleList, Parameter
from repro.parallel.common import add_shared, parallel_cross_entropy
from repro.parallel.comm_ops import scatter_to_parallel_region
from repro.parallel.tensor1d import ParallelTransformerLayer1D
from repro.parallel.tensor2d import (
    Linear2D,
    LayerNorm2D,
    ParallelTransformerLayer2D,
)
from repro.parallel.tensor25d import (
    Linear25D,
    LayerNorm25D,
    ParallelTransformerLayer25D,
)
from repro.parallel.tensor3d import (
    LAYOUT_JK,
    Layout3D,
    Linear3D,
    LayerNorm3D,
    ParallelTransformerLayer3D,
)
from repro.nn.transformer import TransformerLayer
from repro.tensor.sharding import shard_payload
from repro.tensor.tensor import Tensor

# per-component RNG ids
_PATCH, _POS, _NORM, _HEAD = 0, 1, 1000, 1001
_LAYER0 = 2


@dataclass
class ViTConfig:
    image_size: int = 32
    patch_size: int = 4
    in_channels: int = 3
    hidden_size: int = 64
    n_layers: int = 2
    n_heads: int = 4
    n_classes: int = 10
    mlp_ratio: int = 4
    dropout: float = 0.0
    attn_dropout: float = 0.0
    dtype: str = "float32"
    seed: int = 7

    @property
    def n_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2

    @property
    def patch_dim(self) -> int:
        return self.patch_size * self.patch_size * self.in_channels


def _patchify(images: Tensor, patch: int) -> Tensor:
    """[B, H, W, C] -> [B, N, patch*patch*C]."""
    b, h, w, c = images.shape
    x = ops.reshape(images, (b, h // patch, patch, w // patch, patch, c))
    x = ops.transpose(x, (0, 1, 3, 2, 4, 5))
    return ops.reshape(x, (b, (h // patch) * (w // patch), patch * patch * c))


# ---------------------------------------------------------------------------
# serial / data-parallel
# ---------------------------------------------------------------------------


class SerialViT(Module):
    def __init__(self, cfg: ViTConfig) -> None:
        super().__init__()
        self.cfg = cfg
        self.patch_embed = PatchEmbedding(
            cfg.image_size, cfg.patch_size, cfg.in_channels, cfg.hidden_size,
            dtype=cfg.dtype, rng=crng(cfg.seed, _PATCH),
        )
        self.pos_emb = Parameter(
            init_mod.param_payload(
                (cfg.n_patches, cfg.hidden_size), init_mod.normal(0.02),
                crng(cfg.seed, _POS), cfg.dtype,
            )
        )
        self.layers = ModuleList(
            [
                TransformerLayer(
                    cfg.hidden_size, cfg.n_heads, cfg.mlp_ratio,
                    attn_dropout=cfg.attn_dropout, dropout=cfg.dropout,
                    dtype=cfg.dtype, rng=crng(cfg.seed, _LAYER0 + i),
                )
                for i in range(cfg.n_layers)
            ]
        )
        self.norm = LayerNorm(cfg.hidden_size, dtype=cfg.dtype, rng=crng(cfg.seed, _NORM))
        self.head = Linear(
            cfg.hidden_size, cfg.n_classes,
            weight_init=init_mod.lecun_normal(), dtype=cfg.dtype,
            rng=crng(cfg.seed, _HEAD),
        )

    def forward(self, images: Tensor) -> Tensor:
        x = self.patch_embed(images)
        x = ops.add(x, self.pos_emb)
        for layer in self.layers:
            x = layer(x)
        x = self.norm(x)
        pooled = ops.mean_(x, axis=1)
        return self.head(pooled)


# ---------------------------------------------------------------------------
# 1D (Megatron)
# ---------------------------------------------------------------------------


class ViT1D(Module):
    """Patch embedding, pos emb, final norm and head are replicated (their
    inputs are identical on all tensor ranks); transformer layers are 1D
    tensor parallel."""

    def __init__(self, cfg: ViTConfig, pc: ParallelContext) -> None:
        super().__init__()
        comm = pc.comm(ParallelMode.TENSOR)
        self.patch_embed = PatchEmbedding(
            cfg.image_size, cfg.patch_size, cfg.in_channels, cfg.hidden_size,
            dtype=cfg.dtype, rng=crng(cfg.seed, _PATCH),
        )
        self.pos_emb = Parameter(
            init_mod.param_payload(
                (cfg.n_patches, cfg.hidden_size), init_mod.normal(0.02),
                crng(cfg.seed, _POS), cfg.dtype,
            )
        )
        self.layers = ModuleList(
            [
                ParallelTransformerLayer1D(
                    cfg.hidden_size, cfg.n_heads, comm, cfg.mlp_ratio,
                    attn_dropout=cfg.attn_dropout, dropout=cfg.dropout,
                    dtype=cfg.dtype, rng=crng(cfg.seed, _LAYER0 + i),
                )
                for i in range(cfg.n_layers)
            ]
        )
        self.norm = LayerNorm(cfg.hidden_size, dtype=cfg.dtype, rng=crng(cfg.seed, _NORM))
        self.head = Linear(
            cfg.hidden_size, cfg.n_classes,
            weight_init=init_mod.lecun_normal(), dtype=cfg.dtype,
            rng=crng(cfg.seed, _HEAD),
        )

    def forward(self, images: Tensor) -> Tensor:
        x = self.patch_embed(images)
        x = ops.add(x, self.pos_emb)
        for layer in self.layers:
            x = layer(x)
        x = self.norm(x)
        return self.head(ops.mean_(x, axis=1))


# ---------------------------------------------------------------------------
# 2D / 2.5D
# ---------------------------------------------------------------------------


class ViTGrid(Module):
    """Shared implementation for the 2D and 2.5D grids (2.5D is 2D within a
    depth layer; depth sync is carried by the layers' parameter hooks)."""

    def __init__(self, cfg: ViTConfig, pc: ParallelContext, mode: str) -> None:
        super().__init__()
        self.cfg = cfg
        self.pc = pc
        self.grid_mode = mode
        if mode == "2d":
            q = pc.summa_dim
            row = ParallelMode.PARALLEL_2D_ROW
            col = ParallelMode.PARALLEL_2D_COL
            lin, ln, tl = Linear2D, LayerNorm2D, ParallelTransformerLayer2D
            dep_comm = None
            col_rank = pc.col_rank
        else:
            q = pc.tesseract_dim
            row = ParallelMode.PARALLEL_2P5D_ROW
            col = ParallelMode.PARALLEL_2P5D_COL
            lin, ln, tl = Linear25D, LayerNorm25D, ParallelTransformerLayer25D
            dep_comm = pc.comm(ParallelMode.PARALLEL_2P5D_DEP)
            col_rank = pc.col_rank
        self.row_mode, self.col_mode = row, col
        self.patch_proj = lin(
            cfg.patch_dim, cfg.hidden_size, pc,
            weight_init=init_mod.lecun_normal(), dtype=cfg.dtype,
            rng=crng(cfg.seed, _PATCH),
        )
        pos_full = init_mod.param_payload(
            (cfg.n_patches, cfg.hidden_size), init_mod.normal(0.02),
            crng(cfg.seed, _POS), cfg.dtype,
        )
        self.pos_emb = Parameter(shard_payload(pos_full, 1, q, col_rank))
        if dep_comm is not None:
            self.pos_emb.grad_sync_comms = [dep_comm]
        self.layers = ModuleList(
            [
                tl(
                    cfg.hidden_size, cfg.n_heads, pc, cfg.mlp_ratio,
                    attn_dropout=cfg.attn_dropout, dropout=cfg.dropout,
                    dtype=cfg.dtype, rng=crng(cfg.seed, _LAYER0 + i),
                )
                for i in range(cfg.n_layers)
            ]
        )
        self.norm = ln(cfg.hidden_size, pc, dtype=cfg.dtype, rng=crng(cfg.seed, _NORM))
        self.head = lin(
            cfg.hidden_size, cfg.n_classes, pc,
            weight_init=init_mod.lecun_normal(), dtype=cfg.dtype,
            rng=crng(cfg.seed, _HEAD),
        )

    def forward(self, images: Tensor) -> Tensor:
        x = _patchify(images, self.cfg.patch_size)
        # feature dim joins the grid: scatter over the row group (col index j)
        x = scatter_to_parallel_region(x, self.pc.comm(self.row_mode), axis=-1)
        x = self.patch_proj(x)
        x = add_shared(x, self.pos_emb, [self.pc.comm(self.col_mode)])
        for layer in self.layers:
            x = layer(x)
        x = self.norm(x)
        return self.head(ops.mean_(x, axis=1))


# ---------------------------------------------------------------------------
# 3D
# ---------------------------------------------------------------------------


class ViT3D(Module):
    """Layouts: images enter in LAYOUT_JK; the patch projection flips to
    LAYOUT_KJ, in which all transformer layers run; the head flips back so
    logits leave in LAYOUT_JK (batch sharded by (i, k), classes by j)."""

    def __init__(self, cfg: ViTConfig, pc: ParallelContext) -> None:
        super().__init__()
        self.cfg = cfg
        self.pc = pc
        l = pc.cubic_dim
        self.entry_layout = LAYOUT_JK
        body = LAYOUT_JK.flipped()
        self.body_layout = body
        self.patch_proj = Linear3D(
            cfg.patch_dim, cfg.hidden_size, pc, LAYOUT_JK,
            weight_init=init_mod.lecun_normal(), dtype=cfg.dtype,
            rng=crng(cfg.seed, _PATCH),
        )
        pos_full = init_mod.param_payload(
            (cfg.n_patches, cfg.hidden_size), init_mod.normal(0.02),
            crng(cfg.seed, _POS), cfg.dtype,
        )
        feat_rank = pc.comm(body.feature_mode).rank
        self.pos_emb = Parameter(shard_payload(pos_full, 1, l, feat_rank))
        self.layers = ModuleList(
            [
                ParallelTransformerLayer3D(
                    cfg.hidden_size, cfg.n_heads, pc, body, cfg.mlp_ratio,
                    attn_dropout=cfg.attn_dropout, dropout=cfg.dropout,
                    dtype=cfg.dtype, rng=crng(cfg.seed, _LAYER0 + i),
                )
                for i in range(cfg.n_layers)
            ]
        )
        self.norm = LayerNorm3D(
            cfg.hidden_size, pc, body, dtype=cfg.dtype, rng=crng(cfg.seed, _NORM)
        )
        self.head = Linear3D(
            cfg.hidden_size, cfg.n_classes, pc, body,
            weight_init=init_mod.lecun_normal(), dtype=cfg.dtype,
            rng=crng(cfg.seed, _HEAD),
        )

    def forward(self, images: Tensor) -> Tensor:
        pc = self.pc
        x = _patchify(images, self.cfg.patch_size)
        # feature dim scattered over the entry layout's feature axis (j)
        x = scatter_to_parallel_region(
            x, pc.comm(self.entry_layout.feature_mode), axis=-1
        )
        x = self.patch_proj(x)  # -> body layout
        x = add_shared(
            x, self.pos_emb,
            [pc.comm(ParallelMode.PARALLEL_3D_OUTPUT), pc.comm(self.body_layout.batch_sub_mode)],
        )
        for layer in self.layers:
            x = layer(x)
        x = self.norm(x)
        return self.head(ops.mean_(x, axis=1))  # -> entry layout


# ---------------------------------------------------------------------------
# bundle construction
# ---------------------------------------------------------------------------


def build_vit(
    cfg: ViTConfig,
    pc: Optional[ParallelContext] = None,
    mode: str = "serial",
) -> ModelBundle:
    """Build the ViT for ``mode`` in {serial, data, 1d, 2d, 2.5d, 3d}."""
    ce = CrossEntropyLoss()

    if mode in ("serial", "data"):
        model: Module = SerialViT(cfg)
        if mode == "data" and pc is not None and pc.data_size > 1:
            from repro.parallel.data import shard_batch

            dp_comm = pc.comm(ParallelMode.DATA)
            return ModelBundle(
                model=model,
                shard_input=lambda x: shard_batch(np.asarray(x), pc) if not is_spec(x) else shard_payload(x, 0, pc.data_size, pc.dp_rank),
                shard_target=lambda y: shard_batch(np.asarray(y), pc) if not is_spec(y) else y,
                loss_fn=lambda out, y: ce(out, y),
                gather_output=lambda out: dp_comm.all_gather(out.payload, axis=0),
                mode=mode,
            )
        return ModelBundle(
            model=model,
            shard_input=lambda x: x,
            shard_target=lambda y: y,
            loss_fn=lambda out, y: ce(out, y),
            gather_output=lambda out: out.payload,
            mode=mode,
        )

    if pc is None:
        raise ValueError(f"mode {mode!r} requires a ParallelContext")

    if mode == "1d":
        model = ViT1D(cfg, pc)
        return ModelBundle(
            model=model,
            shard_input=lambda x: x,
            shard_target=lambda y: y,
            loss_fn=lambda out, y: ce(out, y),
            gather_output=lambda out: out.payload,
            mode=mode,
        )

    if mode in ("2d", "2.5d"):
        model = ViTGrid(cfg, pc, mode)
        if mode == "2d":
            q = pc.summa_dim
            row = pc.comm(ParallelMode.PARALLEL_2D_ROW)
            col = pc.comm(ParallelMode.PARALLEL_2D_COL)
            batch_comms = [col]

            def shard_in(x):
                return shard_payload(x, 0, q, pc.row_rank)

            def shard_tg(y):
                return shard_payload(np.asarray(y) if not is_spec(y) else y, 0, q, pc.row_rank)

            def gather(out):
                full = row.all_gather(out.payload, axis=-1)
                return col.all_gather(full, axis=0)

        else:
            q = pc.tesseract_dim
            d = pc.tesseract_dep
            row = pc.comm(ParallelMode.PARALLEL_2P5D_ROW)
            col = pc.comm(ParallelMode.PARALLEL_2P5D_COL)
            dep = pc.comm(ParallelMode.PARALLEL_2P5D_DEP)
            batch_comms = [col, dep]

            def shard_in(x):
                x = shard_payload(x, 0, d, pc.dep_rank)
                return shard_payload(x, 0, q, pc.row_rank)

            def shard_tg(y):
                y = np.asarray(y) if not is_spec(y) else y
                y = shard_payload(y, 0, d, pc.dep_rank)
                return shard_payload(y, 0, q, pc.row_rank)

            def gather(out):
                full = row.all_gather(out.payload, axis=-1)
                full = col.all_gather(full, axis=0)
                return dep.all_gather(full, axis=0)

        return ModelBundle(
            model=model,
            shard_input=shard_in,
            shard_target=shard_tg,
            loss_fn=lambda out, y: parallel_cross_entropy(out, y, row, batch_comms),
            gather_output=gather,
            mode=mode,
        )

    if mode == "3d":
        model = ViT3D(cfg, pc)
        l = pc.cubic_dim
        # logits leave in LAYOUT_JK: batch (i, k), classes by j
        out_feat = pc.comm(LAYOUT_JK.feature_mode)       # j
        out_sub = pc.comm(LAYOUT_JK.batch_sub_mode)      # k
        out_i = pc.comm(ParallelMode.PARALLEL_3D_OUTPUT)

        def shard_in3(x):
            x = shard_payload(x, 0, l, pc.cube_i)
            return shard_payload(x, 0, l, pc.cube_k)

        def shard_tg3(y):
            y = np.asarray(y) if not is_spec(y) else y
            y = shard_payload(y, 0, l, pc.cube_i)
            return shard_payload(y, 0, l, pc.cube_k)

        def gather3(out):
            full = out_feat.all_gather(out.payload, axis=-1)
            full = out_sub.all_gather(full, axis=0)
            return out_i.all_gather(full, axis=0)

        return ModelBundle(
            model=model,
            shard_input=shard_in3,
            shard_target=shard_tg3,
            loss_fn=lambda out, y: parallel_cross_entropy(
                out, y, out_feat, [out_i, out_sub]
            ),
            gather_output=gather3,
            mode=mode,
        )

    raise ValueError(f"unknown ViT mode {mode!r}")
