"""BERT (masked-LM style), parallelized for 1D tensor parallelism and
sequence parallelism — the §5.3 comparison pair.

The sequence-parallel build is the one whose activation memory scales as
``S/p`` (ring attention never materializes a full [S, S] score block per
rank), while the 1D build replicates activations along the sequence — the
asymmetry behind Fig 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.autograd import ops
from repro.comm.payload import SpecArray, is_spec
from repro.context.parallel_context import ParallelContext, ParallelMode
from repro.models.common import ModelBundle, crng
from repro.nn import init as init_mod
from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.transformer import TransformerLayer
from repro.parallel.comm_ops import mean_loss_across
from repro.parallel.sequence import SequenceParallelTransformerLayer, _mark_seq_synced
from repro.parallel.tensor1d import (
    ColumnParallelLinear,
    ParallelTransformerLayer1D,
    VocabParallelEmbedding1D,
)
from repro.tensor.sharding import shard_payload
from repro.tensor.tensor import Tensor

_TOK, _POS, _NORM, _HEAD = 0, 1, 1000, 1001
_LAYER0 = 2


@dataclass
class BertConfig:
    vocab_size: int = 1024
    hidden_size: int = 64
    n_layers: int = 2
    n_heads: int = 4
    seq_len: int = 32
    mlp_ratio: int = 4
    dropout: float = 0.0
    dtype: str = "float32"
    seed: int = 13


class SerialBert(Module):
    def __init__(self, cfg: BertConfig) -> None:
        super().__init__()
        self.cfg = cfg
        self.token_emb = Embedding(
            cfg.vocab_size, cfg.hidden_size, dtype=cfg.dtype, rng=crng(cfg.seed, _TOK)
        )
        self.pos_emb = Parameter(
            init_mod.param_payload(
                (cfg.seq_len, cfg.hidden_size), init_mod.normal(0.02),
                crng(cfg.seed, _POS), cfg.dtype,
            )
        )
        self.layers = ModuleList(
            [
                TransformerLayer(
                    cfg.hidden_size, cfg.n_heads, cfg.mlp_ratio,
                    dropout=cfg.dropout, dtype=cfg.dtype,
                    rng=crng(cfg.seed, _LAYER0 + i),
                )
                for i in range(cfg.n_layers)
            ]
        )
        self.norm = LayerNorm(cfg.hidden_size, dtype=cfg.dtype, rng=crng(cfg.seed, _NORM))
        self.head = Linear(
            cfg.hidden_size, cfg.vocab_size,
            weight_init=init_mod.lecun_normal(), dtype=cfg.dtype,
            rng=crng(cfg.seed, _HEAD),
        )

    def forward(self, token_ids) -> Tensor:
        x = self.token_emb(token_ids)
        x = ops.add(x, self.pos_emb)
        for layer in self.layers:
            x = layer(x)
        return self.head(self.norm(x))


class Bert1D(Module):
    def __init__(self, cfg: BertConfig, pc: ParallelContext,
                 gather_logits: bool = True) -> None:
        super().__init__()
        comm = pc.comm(ParallelMode.TENSOR)
        self.tensor_comm = comm
        self.token_emb = VocabParallelEmbedding1D(
            cfg.vocab_size, cfg.hidden_size, comm, dtype=cfg.dtype,
            rng=crng(cfg.seed, _TOK),
        )
        self.pos_emb = Parameter(
            init_mod.param_payload(
                (cfg.seq_len, cfg.hidden_size), init_mod.normal(0.02),
                crng(cfg.seed, _POS), cfg.dtype,
            )
        )
        self.layers = ModuleList(
            [
                ParallelTransformerLayer1D(
                    cfg.hidden_size, cfg.n_heads, comm, cfg.mlp_ratio,
                    dropout=cfg.dropout, dtype=cfg.dtype,
                    rng=crng(cfg.seed, _LAYER0 + i),
                )
                for i in range(cfg.n_layers)
            ]
        )
        self.norm = LayerNorm(cfg.hidden_size, dtype=cfg.dtype, rng=crng(cfg.seed, _NORM))
        self.head = ColumnParallelLinear(
            cfg.hidden_size, cfg.vocab_size, comm, gather_output=gather_logits,
            weight_init=init_mod.lecun_normal(), dtype=cfg.dtype,
            rng=crng(cfg.seed, _HEAD),
        )

    def forward(self, token_ids) -> Tensor:
        x = self.token_emb(token_ids)
        x = ops.add(x, self.pos_emb)
        for layer in self.layers:
            x = layer(x)
        return self.head(self.norm(x))


class BertSP(Module):
    """Sequence-parallel BERT: operates on [B, S/p] token slices."""

    def __init__(self, cfg: BertConfig, pc: ParallelContext) -> None:
        super().__init__()
        comm = pc.comm(ParallelMode.SEQUENCE)
        self.comm = comm
        self.token_emb = Embedding(
            cfg.vocab_size, cfg.hidden_size, dtype=cfg.dtype, rng=crng(cfg.seed, _TOK)
        )
        pos_full = init_mod.param_payload(
            (cfg.seq_len, cfg.hidden_size), init_mod.normal(0.02),
            crng(cfg.seed, _POS), cfg.dtype,
        )
        # each rank owns its sub-sequence's positions: no replication
        self.pos_emb = Parameter(shard_payload(pos_full, 0, comm.size, comm.rank))
        self.layers = ModuleList(
            [
                SequenceParallelTransformerLayer(
                    cfg.hidden_size, cfg.n_heads, comm, cfg.mlp_ratio,
                    dropout=cfg.dropout, dtype=cfg.dtype,
                    rng=crng(cfg.seed, _LAYER0 + i),
                )
                for i in range(cfg.n_layers)
            ]
        )
        self.norm = LayerNorm(cfg.hidden_size, dtype=cfg.dtype, rng=crng(cfg.seed, _NORM))
        self.head = Linear(
            cfg.hidden_size, cfg.vocab_size,
            weight_init=init_mod.lecun_normal(), dtype=cfg.dtype,
            rng=crng(cfg.seed, _HEAD),
        )
        _mark_seq_synced(self.token_emb, comm)
        _mark_seq_synced(self.norm, comm)
        _mark_seq_synced(self.head, comm)

    def forward(self, token_ids) -> Tensor:
        x = self.token_emb(token_ids)
        x = ops.add(x, self.pos_emb)
        for layer in self.layers:
            x = layer(x)
        return self.head(self.norm(x))


def build_bert(
    cfg: BertConfig,
    pc: Optional[ParallelContext] = None,
    mode: str = "serial",
    vocab_parallel_loss: bool = False,
) -> ModelBundle:
    """``vocab_parallel_loss`` (1d mode only): keep the LM logits sharded
    along the vocabulary and use the gather-free vocab-parallel
    cross-entropy — wire traffic O(tokens) instead of O(tokens*vocab)."""
    ce = CrossEntropyLoss()

    if mode == "serial":
        model: Module = SerialBert(cfg)
        return ModelBundle(
            model=model,
            shard_input=lambda x: x,
            shard_target=lambda y: y,
            loss_fn=lambda out, y: ce(out, y),
            gather_output=lambda out: out.payload,
            mode=mode,
        )

    if pc is None:
        raise ValueError(f"mode {mode!r} requires a ParallelContext")

    if mode == "1d":
        model = Bert1D(cfg, pc, gather_logits=not vocab_parallel_loss)
        if vocab_parallel_loss:
            from repro.parallel.vocab_ce import vocab_parallel_cross_entropy

            comm = pc.comm(ParallelMode.TENSOR)
            return ModelBundle(
                model=model,
                shard_input=lambda x: x,
                shard_target=lambda y: y,
                loss_fn=lambda out, y: vocab_parallel_cross_entropy(out, y, comm),
                gather_output=lambda out: comm.all_gather(out.payload, axis=-1),
                mode=mode,
            )
        return ModelBundle(
            model=model,
            shard_input=lambda x: x,
            shard_target=lambda y: y,
            loss_fn=lambda out, y: ce(out, y),
            gather_output=lambda out: out.payload,
            mode=mode,
        )

    if mode == "sequence":
        model = BertSP(cfg, pc)
        comm = pc.comm(ParallelMode.SEQUENCE)

        def shard_seq(x):
            return shard_payload(x if is_spec(x) else np.asarray(x), 1, comm.size, comm.rank)

        def loss_fn(out, y):
            return mean_loss_across(ce(out, y), comm)

        return ModelBundle(
            model=model,
            shard_input=shard_seq,
            shard_target=shard_seq,
            loss_fn=loss_fn,
            gather_output=lambda out: comm.all_gather(out.payload, axis=1),
            mode=mode,
        )

    raise ValueError(f"unknown BERT mode {mode!r}")


def bert_base(seq_len: int = 512, dtype: str = "float16", seed: int = 13) -> BertConfig:
    """BERT-Base as in §5.3: 12 layers, hidden 768, 12 heads, 30k vocab."""
    return BertConfig(
        vocab_size=30528,
        hidden_size=768,
        n_layers=12,
        n_heads=12,
        seq_len=seq_len,
        mlp_ratio=4,
        dtype=dtype,
        seed=seed,
    )
