"""Model-bundle plumbing shared by the zoo."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.nn.module import Module
from repro.tensor.tensor import Tensor


def crng(seed: int, *component: int) -> np.random.Generator:
    """Deterministic per-component RNG: every parallel mode draws the same
    global weight for component ``(seed, *component)`` regardless of build
    order, then keeps its shard — the root of cross-mode parity."""
    return np.random.default_rng((0x5EED, seed) + tuple(component))


@dataclass
class ModelBundle:
    """A model plus the mode-specific glue the training loop needs.

    ``shard_input(global_batch)``   -> this rank's input payload
    ``shard_target(global_target)`` -> this rank's target slice
    ``loss_fn(output, local_target)`` -> scalar loss Tensor equal to the
    serial global-batch loss
    ``gather_output(output)``       -> full logits as numpy (for metrics)
    """

    model: Module
    shard_input: Callable[[Any], Any]
    shard_target: Callable[[Any], Any]
    loss_fn: Callable[[Tensor, Any], Tensor]
    gather_output: Callable[[Tensor], np.ndarray]
    mode: str = "serial"
    extra: dict = field(default_factory=dict)

    def train_step_fn(self):
        """Convenience closure: (engine, data, target) -> loss value."""

        def step(engine, data, target) -> Optional[float]:
            engine.zero_grad()
            out = engine(self.shard_input(data))
            loss = self.loss_fn(out, self.shard_target(target))
            engine.backward(loss)
            engine.step()
            return loss.item() if loss.materialized else None

        return step
