"""Chrome trace-event exporter.

Serialises a :class:`~repro.trace.tracer.Tracer` into the Trace Event
Format consumed by ``chrome://tracing`` and Perfetto: one process for the
simulated cluster, one thread lane per rank (plus a ``rank N comm stream``
lane when the run issued nonblocking collectives — stream transfers run
concurrently with the compute lane, so they get their own tid), duration
events as balanced ``B``/``E`` pairs, instants as ``i`` and memory samples
as ``C`` counters.  Timestamps are simulated microseconds
(``ts = sim_seconds * 1e6``).

Per lane the emitted stream is well-formed by construction: spans are
sorted outermost-first and closed LIFO, timestamps are clamped
non-decreasing, and every ``B`` has a matching ``E``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.trace.tracer import Span, Tracer

_US = 1e6  # trace-event timestamps are microseconds

#: tid offset for the per-rank comm-stream lanes (rank r -> tid r + offset);
#: stream spans overlap compute-lane spans in wall time, so they cannot
#: share the compute lane's nesting-based B/E emission
_STREAM_TID = 1000


def _ts(seconds: float) -> float:
    return round(seconds * _US, 3)


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Build the trace-event JSON document (a dict; see :func:`save_chrome_trace`)."""
    events: List[Dict[str, Any]] = [
        {
            "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
            "args": {"name": "repro simulated cluster"},
        }
    ]
    stream_ranks = {s.rank for s in tracer.spans(cat="comm_stream")}
    for rank in tracer.ranks():
        events.append({
            "ph": "M", "pid": 0, "tid": rank, "name": "thread_name",
            "args": {"name": f"rank {rank}"},
        })
        events.append({
            "ph": "M", "pid": 0, "tid": rank, "name": "thread_sort_index",
            "args": {"sort_index": 2 * rank},
        })
        if rank in stream_ranks:
            events.append({
                "ph": "M", "pid": 0, "tid": rank + _STREAM_TID,
                "name": "thread_name",
                "args": {"name": f"rank {rank} comm stream"},
            })
            events.append({
                "ph": "M", "pid": 0, "tid": rank + _STREAM_TID,
                "name": "thread_sort_index",
                "args": {"sort_index": 2 * rank + 1},
            })

    for rank in tracer.ranks():
        events.extend(_lane_events(
            [s for s in tracer.spans() if s.rank == rank and s.cat != "comm_stream"]
        ))
        if rank in stream_ranks:
            events.extend(_lane_events(
                [s for s in tracer.spans(cat="comm_stream") if s.rank == rank],
                tid=rank + _STREAM_TID,
            ))

    for inst in tracer.instants():
        events.append({
            "ph": "i", "s": "t", "pid": 0, "tid": inst.rank,
            "ts": _ts(inst.t), "name": inst.name, "args": inst.args,
        })
    for c in tracer.counters():
        events.append({
            "ph": "C", "pid": 0, "tid": c.rank, "ts": _ts(c.t),
            "name": c.name, "args": c.values,
        })

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _lane_events(spans: List[Span], tid: int = None) -> List[Dict[str, Any]]:
    """Emit balanced B/E pairs for one lane's spans.

    Spans on one lane all derive from the same monotonic simulated clock
    (compute clock for the rank lane, stream clock for a comm-stream lane),
    so they nest; sorting by (start, -end) puts enclosing spans first and a
    LIFO stack closes inner spans before outer ones.  Timestamps are
    clamped non-decreasing so rounding can never produce an out-of-order
    lane.  ``tid`` overrides the emitted thread id (comm-stream lanes use
    ``rank + _STREAM_TID``).
    """
    events: List[Dict[str, Any]] = []
    last_ts = float("-inf")

    def emit(ph: str, span: Span, t: float) -> None:
        nonlocal last_ts
        ts = max(_ts(t), last_ts)
        last_ts = ts
        ev: Dict[str, Any] = {
            "ph": ph, "pid": 0,
            "tid": span.rank if tid is None else tid, "ts": ts,
            "name": span.name, "cat": span.cat,
        }
        if ph == "B" and span.args:
            ev["args"] = span.args
        events.append(ev)

    stack: List[Span] = []
    for span in sorted(spans, key=lambda s: (s.t0, -s.t1)):
        while stack and stack[-1].t1 <= span.t0:
            emit("E", stack[-1], stack.pop().t1)
        stack.append(span)
        emit("B", span, span.t0)
    while stack:
        emit("E", stack[-1], stack.pop().t1)
    return events


def save_chrome_trace(tracer: Tracer, path: str) -> str:
    """Write the trace to ``path`` (open via chrome://tracing or
    https://ui.perfetto.dev); returns the path."""
    with open(path, "w") as f:
        json.dump(chrome_trace(tracer), f)
    return path
