"""Chrome trace-event exporter.

Serialises a :class:`~repro.trace.tracer.Tracer` into the Trace Event
Format consumed by ``chrome://tracing`` and Perfetto: one process for the
simulated cluster, one thread lane per rank, duration events as balanced
``B``/``E`` pairs, instants as ``i`` and memory samples as ``C`` counters.
Timestamps are simulated microseconds (``ts = sim_seconds * 1e6``).

Per lane the emitted stream is well-formed by construction: spans are
sorted outermost-first and closed LIFO, timestamps are clamped
non-decreasing, and every ``B`` has a matching ``E``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.trace.tracer import Span, Tracer

_US = 1e6  # trace-event timestamps are microseconds


def _ts(seconds: float) -> float:
    return round(seconds * _US, 3)


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Build the trace-event JSON document (a dict; see :func:`save_chrome_trace`)."""
    events: List[Dict[str, Any]] = [
        {
            "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
            "args": {"name": "repro simulated cluster"},
        }
    ]
    for rank in tracer.ranks():
        events.append({
            "ph": "M", "pid": 0, "tid": rank, "name": "thread_name",
            "args": {"name": f"rank {rank}"},
        })
        events.append({
            "ph": "M", "pid": 0, "tid": rank, "name": "thread_sort_index",
            "args": {"sort_index": rank},
        })

    for rank in tracer.ranks():
        events.extend(_lane_events(
            [s for s in tracer.spans() if s.rank == rank]
        ))

    for inst in tracer.instants():
        events.append({
            "ph": "i", "s": "t", "pid": 0, "tid": inst.rank,
            "ts": _ts(inst.t), "name": inst.name, "args": inst.args,
        })
    for c in tracer.counters():
        events.append({
            "ph": "C", "pid": 0, "tid": c.rank, "ts": _ts(c.t),
            "name": c.name, "args": c.values,
        })

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _lane_events(spans: List[Span]) -> List[Dict[str, Any]]:
    """Emit balanced B/E pairs for one rank's spans.

    Spans from one rank all derive from the same monotonic simulated clock,
    so they nest; sorting by (start, -end) puts enclosing spans first and a
    LIFO stack closes inner spans before outer ones.  Timestamps are
    clamped non-decreasing so rounding can never produce an out-of-order
    lane.
    """
    events: List[Dict[str, Any]] = []
    last_ts = float("-inf")

    def emit(ph: str, span: Span, t: float) -> None:
        nonlocal last_ts
        ts = max(_ts(t), last_ts)
        last_ts = ts
        ev: Dict[str, Any] = {
            "ph": ph, "pid": 0, "tid": span.rank, "ts": ts,
            "name": span.name, "cat": span.cat,
        }
        if ph == "B" and span.args:
            ev["args"] = span.args
        events.append(ev)

    stack: List[Span] = []
    for span in sorted(spans, key=lambda s: (s.t0, -s.t1)):
        while stack and stack[-1].t1 <= span.t0:
            emit("E", stack[-1], stack.pop().t1)
        stack.append(span)
        emit("B", span, span.t0)
    while stack:
        emit("E", stack[-1], stack.pop().t1)
    return events


def save_chrome_trace(tracer: Tracer, path: str) -> str:
    """Write the trace to ``path`` (open via chrome://tracing or
    https://ui.perfetto.dev); returns the path."""
    with open(path, "w") as f:
        json.dump(chrome_trace(tracer), f)
    return path
