"""Text summaries of a trace.

:class:`TraceReport` condenses a traced run into the tables the paper's
figures are made of: per-rank time breakdown by category (Fig 9-style
compute/comm split), the top-k collectives by wire bytes and by time
(Table 1 / Fig 5 territory), the pipeline-bubble fraction (the
``(p-1)/(m+p-1)`` term behind Fig 13b), and — for overlap-enabled runs —
the per-rank split of comm-stream time into *exposed* (a ``wait()``
actually stalled for it) and *overlapped* (hidden under compute) seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.trace.tracer import CLOCK_CATEGORIES, KIND_CLOCK, Tracer


@dataclass
class CollectiveStat:
    """Aggregate over all rounds of one collective op."""

    op: str
    calls: int = 0          # rounds (counted once per round, not per rank)
    wire_bytes: int = 0     # total bytes on the wire across rounds
    rank_seconds: float = 0.0  # span durations summed over every member rank
    retries: int = 0

    def row(self) -> List[str]:
        return [
            self.op, str(self.calls), f"{self.wire_bytes}",
            f"{self.rank_seconds:.6f}", str(self.retries),
        ]


@dataclass
class TraceReport:
    """Computed summary of one traced run (build via :meth:`from_tracer`)."""

    per_rank: Dict[int, Dict[str, float]] = field(default_factory=dict)
    per_rank_total: Dict[int, float] = field(default_factory=dict)
    collectives: Dict[str, CollectiveStat] = field(default_factory=dict)
    bubble_seconds: Dict[int, float] = field(default_factory=dict)
    # comm-stream accounting (empty unless the run used nonblocking comm):
    # stream occupancy, the exposed tail waits stalled for, and the hidden
    # remainder (stream - exposed)
    stream_seconds: Dict[int, float] = field(default_factory=dict)
    exposed_comm: Dict[int, float] = field(default_factory=dict)
    overlapped_comm: Dict[int, float] = field(default_factory=dict)

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "TraceReport":
        rep = cls()
        for s in tracer.spans(kind=KIND_CLOCK):
            cats = rep.per_rank.setdefault(s.rank, {})
            cats[s.cat] = cats.get(s.cat, 0.0) + s.duration
            rep.per_rank_total[s.rank] = max(
                rep.per_rank_total.get(s.rank, 0.0), s.t1
            )
        for s in tracer.spans(cat="collective"):
            stat = rep.collectives.setdefault(s.name, CollectiveStat(s.name))
            stat.rank_seconds += s.duration
            if s.args.get("primary"):
                stat.calls += 1
                stat.wire_bytes += int(s.args.get("wire_bytes", 0))
                stat.retries += int(s.args.get("retries", 0))
        for s in tracer.spans(cat="bubble"):
            rep.bubble_seconds[s.rank] = (
                rep.bubble_seconds.get(s.rank, 0.0) + s.duration
            )
        for s in tracer.spans(cat="comm_stream"):
            rep.stream_seconds[s.rank] = (
                rep.stream_seconds.get(s.rank, 0.0) + s.duration
            )
        for s in tracer.spans(cat="overlap"):
            rep.exposed_comm[s.rank] = (
                rep.exposed_comm.get(s.rank, 0.0)
                + float(s.args.get("exposed", s.duration))
            )
        for rank, stream in rep.stream_seconds.items():
            rep.overlapped_comm[rank] = max(
                0.0, stream - rep.exposed_comm.get(rank, 0.0)
            )
        return rep

    # -- derived metrics ---------------------------------------------------

    def bubble_fraction(self) -> float:
        """Fraction of total rank-time spent stalled on pipeline receives
        (0.0 when the run had no pipeline or a perfectly balanced one)."""
        total = sum(self.per_rank_total.values())
        if not total:
            return 0.0
        return sum(self.bubble_seconds.values()) / total

    def comm_fraction(self, rank: int) -> float:
        cats = self.per_rank.get(rank, {})
        total = self.per_rank_total.get(rank, 0.0)
        return cats.get("comm", 0.0) / total if total else 0.0

    def hidden_comm_fraction(self, rank: int) -> float:
        """Fraction of this rank's comm-stream time hidden under compute
        (1.0 = fully overlapped; 0.0 when the rank issued no stream comm)."""
        stream = self.stream_seconds.get(rank, 0.0)
        if not stream:
            return 0.0
        return self.overlapped_comm.get(rank, 0.0) / stream

    def top_collectives(self, k: int = 5, by: str = "wire_bytes") -> List[CollectiveStat]:
        """The ``k`` heaviest collectives by ``wire_bytes`` or ``rank_seconds``."""
        if by not in ("wire_bytes", "rank_seconds"):
            raise ValueError(f"top_collectives: unknown sort key {by!r}")
        return sorted(
            self.collectives.values(), key=lambda s: getattr(s, by), reverse=True
        )[:k]

    # -- rendering ---------------------------------------------------------

    def format(self, topk: int = 5) -> str:
        """Aligned text tables: breakdown, top collectives, bubble fraction."""
        cols = list(CLOCK_CATEGORIES) + ["bubble", "total"]
        lines = ["per-rank time breakdown (simulated seconds)"]
        lines.append("rank  " + "  ".join(f"{c:>10s}" for c in cols))
        for rank in sorted(self.per_rank):
            cats = self.per_rank[rank]
            vals = [cats.get(c, 0.0) for c in CLOCK_CATEGORIES]
            vals.append(self.bubble_seconds.get(rank, 0.0))
            vals.append(self.per_rank_total.get(rank, 0.0))
            lines.append(
                f"{rank:4d}  " + "  ".join(f"{v:10.6f}" for v in vals)
            )
        if self.collectives:
            lines.append("")
            lines.append(f"top-{topk} collectives by wire bytes")
            lines.append(
                f"{'op':>15s}  {'rounds':>7s}  {'bytes':>14s}  "
                f"{'rank-seconds':>13s}  {'retries':>7s}"
            )
            for stat in self.top_collectives(topk):
                lines.append(
                    f"{stat.op:>15s}  {stat.calls:7d}  {stat.wire_bytes:14d}  "
                    f"{stat.rank_seconds:13.6f}  {stat.retries:7d}"
                )
        if self.stream_seconds:
            lines.append("")
            lines.append("comm-stream overlap (simulated seconds)")
            lines.append(
                f"rank  {'stream':>10s}  {'exposed':>10s}  "
                f"{'overlapped':>10s}  {'hidden':>7s}"
            )
            for rank in sorted(self.stream_seconds):
                lines.append(
                    f"{rank:4d}  {self.stream_seconds[rank]:10.6f}  "
                    f"{self.exposed_comm.get(rank, 0.0):10.6f}  "
                    f"{self.overlapped_comm.get(rank, 0.0):10.6f}  "
                    f"{self.hidden_comm_fraction(rank):6.1%}"
                )
        lines.append("")
        lines.append(f"pipeline bubble fraction: {self.bubble_fraction():.4f}")
        return "\n".join(lines)
