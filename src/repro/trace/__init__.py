"""repro.trace — per-rank timeline tracing of simulated SPMD programs.

Typical use::

    from repro.trace import Tracer, TraceReport, save_chrome_trace

    tracer = Tracer()
    rt = SpmdRuntime(cluster, tracer=tracer)
    rt.run(program)
    print(TraceReport.from_tracer(tracer).format())
    save_chrome_trace(tracer, "trace.json")   # open in chrome://tracing
"""

from repro.trace.chrome import chrome_trace, save_chrome_trace
from repro.trace.report import CollectiveStat, TraceReport
from repro.trace.tracer import (
    ANNOTATION_CATEGORIES,
    CLOCK_CATEGORIES,
    Counter,
    Instant,
    Span,
    Tracer,
)

__all__ = [
    "ANNOTATION_CATEGORIES",
    "CLOCK_CATEGORIES",
    "CollectiveStat",
    "Counter",
    "Instant",
    "Span",
    "TraceReport",
    "Tracer",
    "chrome_trace",
    "save_chrome_trace",
]
