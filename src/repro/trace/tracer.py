"""Per-rank event tracing in simulated time.

A :class:`Tracer` records what every rank of an SPMD program did and when —
in *simulated* seconds, the same timebase :class:`~repro.runtime.clock.SimClock`
charges.  Two event sources feed it:

* **clock spans** — every ``SimClock.advance``/``sync_to`` emits a span
  tagged with the clock's category (``compute``, ``comm``, ``wait``,
  ``offload``, ``optimizer``).  Summed per category these reconcile exactly
  with ``SimClock.breakdown()``, so the trace is a lossless refinement of
  the end-state scalars.
* **annotation spans** — higher layers name the work: collectives with wire
  bytes and retry counts (``collective``/``retry``), point-to-point
  transfers (``p2p``), per-microbatch pipeline stages (``pipeline``) and
  receive stalls (``bubble``), ZeRO chunk traffic (``zero``), trainer steps
  and checkpoints (``step``/``checkpoint``), and one ``rank`` lifecycle
  span per rank.  Nonblocking collectives add a **comm-stream lane** per
  rank: ``comm_stream`` spans mark when each async transfer occupied the
  rank's communication stream, and ``overlap`` spans on the compute lane
  mark the *exposed* tail a ``wait()`` actually stalled for — together they
  split comm time into hidden (overlapped) and exposed parts.

Instrumentation is zero-cost when disabled: every hook site is a single
``is None`` check on an attribute that defaults to ``None``.

When a :class:`~repro.sanitize.CommSanitizer` is installed alongside the
tracer, collective spans additionally carry ``sanitized=True`` and (under
checksum mode) a ``digest`` tag — the combined CRC of the round's result
buffers — and sanitizer verdicts appear as ``sanitizer:<ErrorType>``
instant events on the rank that detected them.

Consumers: :func:`repro.trace.chrome.chrome_trace` (open in
``chrome://tracing`` / Perfetto) and :class:`repro.trace.report.TraceReport`
(text summary).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: categories emitted by SimClock observers (the reconcilable set)
CLOCK_CATEGORIES = ("compute", "comm", "wait", "offload", "optimizer")

#: categories emitted by annotation sites (not summed into breakdowns)
ANNOTATION_CATEGORIES = (
    "collective", "p2p", "pipeline", "bubble", "retry",
    "zero", "step", "checkpoint", "rank", "comm_stream", "overlap",
    "serve",
)

#: event kinds
KIND_CLOCK = "clock"
KIND_ANNOTATION = "annotation"


@dataclass
class Span:
    """One closed interval of simulated time on one rank's lane."""

    rank: int
    cat: str
    name: str
    t0: float
    t1: float
    kind: str = KIND_ANNOTATION
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class Instant:
    """A zero-duration marker (rank start/failure, user events)."""

    rank: int
    name: str
    t: float
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Counter:
    """A sampled value series point (memory-pool readings)."""

    rank: int
    name: str
    t: float
    values: Dict[str, float] = field(default_factory=dict)


class Tracer:
    """Collects per-rank spans/instants/counters for one or more SPMD runs.

    Attach with ``SpmdRuntime(cluster, tracer=tracer)`` or
    ``tracer.install(runtime)``; detach with :meth:`uninstall`.  Recording
    is thread-safe (rank threads and rendezvous finalizers all append).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._instants: List[Instant] = []
        self._counters: List[Counter] = []
        self._runtime: Optional[Any] = None

    # -- lifecycle ---------------------------------------------------------

    def install(self, runtime: Any) -> "Tracer":
        """Attach to a runtime: register clock observers and make this
        tracer visible to every instrumentation site via ``runtime.tracer``."""
        if self._runtime is not None and self._runtime is not runtime:
            self.uninstall()
        self._runtime = runtime
        runtime.tracer = self
        for rank, clock in enumerate(runtime.clocks):
            clock.set_observer(_ClockObserver(self, rank))
        return self

    def uninstall(self) -> None:
        """Detach from the runtime (instrumentation reverts to zero-cost)."""
        rt = self._runtime
        if rt is None:
            return
        for clock in rt.clocks:
            clock.set_observer(None)
        rt.tracer = None
        self._runtime = None

    def clear(self) -> None:
        """Drop all recorded events (e.g. between runs on the same runtime,
        whose clocks reset to t=0)."""
        with self._lock:
            self._spans.clear()
            self._instants.clear()
            self._counters.clear()

    # -- recording ---------------------------------------------------------

    def clock_span(self, rank: int, category: str, t0: float, t1: float) -> None:
        """Record a clock-level category span (called by SimClock observers;
        zero-duration advances are skipped at the call site)."""
        with self._lock:
            self._spans.append(Span(rank, category, category, t0, t1, KIND_CLOCK))

    def annotate(self, rank: int, cat: str, name: str, t0: float, t1: float,
                 **args: Any) -> None:
        """Record a named annotation span over ``[t0, t1]``."""
        with self._lock:
            self._spans.append(
                Span(rank, cat, name, t0, t1, KIND_ANNOTATION, dict(args))
            )

    @contextmanager
    def region(self, rank: int, cat: str, name: str, clock: Any,
               **args: Any) -> Iterator[None]:
        """Context manager recording an annotation span whose bounds are the
        clock's simulated time at entry and exit."""
        t0 = clock.time
        try:
            yield
        finally:
            self.annotate(rank, cat, name, t0, clock.time, **args)

    def instant(self, rank: int, name: str, t: float, **args: Any) -> None:
        with self._lock:
            self._instants.append(Instant(rank, name, t, dict(args)))

    def counter(self, rank: int, name: str, t: float, **values: float) -> None:
        with self._lock:
            self._counters.append(Counter(rank, name, t, dict(values)))

    def sample_memory(self, rank: int, device: Any, t: float) -> None:
        """Sample a device memory pool (allocated bytes) as a counter point."""
        self.counter(
            rank, f"mem:{device.name}", t,
            allocated=float(device.memory.allocated),
        )

    # -- accessors ---------------------------------------------------------

    def spans(self, kind: Optional[str] = None,
              cat: Optional[str] = None) -> List[Span]:
        with self._lock:
            out = list(self._spans)
        if kind is not None:
            out = [s for s in out if s.kind == kind]
        if cat is not None:
            out = [s for s in out if s.cat == cat]
        return out

    def instants(self) -> List[Instant]:
        with self._lock:
            return list(self._instants)

    def counters(self) -> List[Counter]:
        with self._lock:
            return list(self._counters)

    def ranks(self) -> List[int]:
        with self._lock:
            seen = {s.rank for s in self._spans}
            seen.update(i.rank for i in self._instants)
            seen.update(c.rank for c in self._counters)
        return sorted(seen)

    def clock_breakdown(self, rank: int) -> Dict[str, float]:
        """Per-category seconds summed from this rank's clock spans — must
        reconcile with ``SimClock.breakdown()`` for the same run."""
        out: Dict[str, float] = {}
        for s in self.spans(kind=KIND_CLOCK):
            if s.rank == rank:
                out[s.cat] = out.get(s.cat, 0.0) + s.duration
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(spans={len(self._spans)}, instants={len(self._instants)}, "
            f"counters={len(self._counters)})"
        )


class _ClockObserver:
    """Per-clock callback binding a rank id (avoids a closure per clock)."""

    __slots__ = ("_tracer", "_rank")

    def __init__(self, tracer: Tracer, rank: int) -> None:
        self._tracer = tracer
        self._rank = rank

    def __call__(self, category: str, t0: float, t1: float) -> None:
        self._tracer.clock_span(self._rank, category, t0, t1)
