"""Sharding descriptors.

``ShardSpec`` records how a logical (global) tensor is partitioned across a
device mesh — which tensor dimension is split how many ways — and maps a
mesh coordinate to the local chunk.  The tensor-parallel layers (1D/2D/
2.5D/3D) and the ZeRO sharded tensors both build on these helpers, which is
the paper's "unified sharded tensor interface" (§3.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.comm.payload import Payload, SpecArray, is_spec


@dataclass(frozen=True)
class ShardSpec:
    """Partition of a global shape: ``partitions[dim] = number of parts``.

    Dims absent from ``partitions`` are replicated.
    """

    global_shape: Tuple[int, ...]
    partitions: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for dim, parts in self.partitions.items():
            if dim < 0 or dim >= len(self.global_shape):
                raise ValueError(f"partition dim {dim} out of range for {self.global_shape}")
            if self.global_shape[dim] % parts != 0:
                raise ValueError(
                    f"dim {dim} of {self.global_shape} not divisible by {parts}"
                )

    @property
    def local_shape(self) -> Tuple[int, ...]:
        shape = list(self.global_shape)
        for dim, parts in self.partitions.items():
            shape[dim] //= parts
        return tuple(shape)

    @property
    def num_shards(self) -> int:
        return int(math.prod(self.partitions.values())) if self.partitions else 1

    def local_elements(self) -> int:
        return int(math.prod(self.local_shape))

    def chunk(self, payload: Payload, index: Dict[int, int]) -> Payload:
        """Extract the local chunk at mesh coordinate ``index``
        (``index[dim] = which part along dim``)."""
        if is_spec(payload):
            return SpecArray(self.local_shape, payload.dtype)
        out = payload
        for dim, parts in self.partitions.items():
            i = index.get(dim, 0)
            if not (0 <= i < parts):
                raise ValueError(f"shard index {i} out of range for dim {dim} ({parts} parts)")
            step = self.global_shape[dim] // parts
            out = np.take(out, range(i * step, (i + 1) * step), axis=dim)
        return np.ascontiguousarray(out)


def local_shard_shape(shape: Tuple[int, ...], axis: int, parts: int) -> Tuple[int, ...]:
    """Shape of one chunk when ``shape[axis]`` is split ``parts`` ways."""
    if shape[axis] % parts != 0:
        raise ValueError(f"axis {axis} of {shape} not divisible by {parts}")
    out = list(shape)
    out[axis] //= parts
    return tuple(out)


def shard_payload(payload: Payload, axis: int, parts: int, index: int) -> Payload:
    """The ``index``-th of ``parts`` equal chunks of ``payload`` along ``axis``."""
    if payload.shape[axis] % parts != 0:
        raise ValueError(f"axis {axis} of {payload.shape} not divisible by {parts}")
    if is_spec(payload):
        return SpecArray(local_shard_shape(payload.shape, axis, parts), payload.dtype)
    chunks = np.split(payload, parts, axis=axis)
    return np.ascontiguousarray(chunks[index])
