"""Tensor and Storage.

Storage lifetime drives memory accounting: creating a storage registers its
bytes with the owning device's pool (raising
:class:`~repro.cluster.device.DeviceOutOfMemoryError` when over capacity);
releasing it — explicitly or by garbage collection — returns them.  Views
(reshape/transpose/slices) share storage, so only genuinely new buffers
count, mirroring a caching GPU allocator closely enough for the paper's
"max allocated memory" range tests (Fig 8).
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.device import Device, DeviceKind
from repro.comm.payload import Payload, SpecArray, is_spec
from repro.runtime.spmd import in_spmd, current_rank_context
from repro.utils.units import GB

_fallback_lock = threading.Lock()
_fallback_device: Optional[Device] = None


def default_device() -> Device:
    """The device tensors land on when none is given.

    Inside an SPMD program this is the calling rank's GPU; outside (plain
    unit tests, notebooks) it is a lazily-created host device with a large
    pool so accounting still works.
    """
    if in_spmd():
        return current_rank_context().device
    global _fallback_device
    with _fallback_lock:
        if _fallback_device is None:
            _fallback_device = Device(
                name="local", kind=DeviceKind.CPU, memory_capacity=256 * GB
            )
        return _fallback_device


def set_default_device(device: Optional[Device]) -> None:
    """Override the out-of-SPMD fallback device (tests use this to assert
    accounting against a small pool)."""
    global _fallback_device
    with _fallback_lock:
        _fallback_device = device


class Storage:
    """A reference-counted byte allocation on one device."""

    __slots__ = ("device", "nbytes", "tag", "_finalizer", "__weakref__")

    def __init__(self, device: Device, nbytes: int, tag: str = "activation") -> None:
        self.device = device
        self.nbytes = int(nbytes)
        self.tag = tag
        device.memory.alloc(self.nbytes, tag, owner=device)
        self._finalizer = weakref.finalize(
            self, device.memory.free_bytes, self.nbytes, tag
        )

    @property
    def alive(self) -> bool:
        return self._finalizer.alive

    def release(self) -> None:
        """Return the bytes to the pool now (idempotent)."""
        self._finalizer()


def _as_payload(
    data: Any, dtype: Optional[Union[str, np.dtype]], materialize: bool
) -> Payload:
    if isinstance(data, SpecArray):
        return data if dtype is None else data.astype(dtype)
    if isinstance(data, Tensor):
        raise TypeError("wrap of Tensor in Tensor; use .payload or view methods")
    arr = np.asarray(data)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    if not materialize:
        return SpecArray(arr.shape, arr.dtype)
    return arr


def _default_materialize() -> bool:
    if in_spmd():
        return current_rank_context().materialize
    return True


class Tensor:
    """A device tensor, optionally tracked by autograd.

    Parameters
    ----------
    data:
        array-like, :class:`numpy.ndarray` or :class:`SpecArray`.
    dtype:
        storage dtype (``float16`` storage is accounted at 2 bytes/elem even
        though math runs in whatever numpy promotes to).
    device:
        target :class:`Device`; defaults to the current rank's GPU.
    requires_grad:
        include in autograd.
    tag:
        memory-pool tag (``"param"``, ``"grad"``, ``"optim"``,
        ``"activation"``) for peak-memory breakdowns.
    is_view:
        storage is shared with another tensor — do not allocate.
    """

    __slots__ = (
        "payload",
        "device",
        "storage",
        "requires_grad",
        "grad",
        "grad_fn",
        "grad_hook",
        "tag",
        "name",
        "__weakref__",
    )

    def __init__(
        self,
        data: Any,
        dtype: Optional[Union[str, np.dtype]] = None,
        device: Optional[Device] = None,
        requires_grad: bool = False,
        tag: str = "activation",
        base: Optional["Tensor"] = None,
        materialize: Optional[bool] = None,
    ) -> None:
        if materialize is None:
            materialize = _default_materialize()
        self.payload: Payload = _as_payload(data, dtype, materialize)
        self.device = device if device is not None else default_device()
        self.tag = tag
        if base is not None:
            self.storage = base.storage  # view: share allocation
        else:
            self.storage = Storage(self.device, int(self.payload.nbytes), tag)
        self.requires_grad = requires_grad
        self.grad: Optional[Tensor] = None
        self.grad_fn: Optional[Any] = None  # repro.autograd.function.Node
        # called with this tensor after every leaf-gradient accumulation
        # (DDP overlap uses it to flush ready buckets during backward)
        self.grad_hook: Optional[Any] = None
        self.name: Optional[str] = None

    # -- basic properties ------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.payload.shape)

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.payload.dtype)

    @property
    def ndim(self) -> int:
        return len(self.payload.shape)

    @property
    def size(self) -> int:
        return int(self.payload.size)

    @property
    def nbytes(self) -> int:
        return int(self.payload.nbytes)

    @property
    def materialized(self) -> bool:
        return not is_spec(self.payload)

    @property
    def data(self) -> Optional[np.ndarray]:
        """The numpy array, or ``None`` in spec mode."""
        return None if is_spec(self.payload) else self.payload

    def numpy(self) -> np.ndarray:
        if is_spec(self.payload):
            raise RuntimeError("spec-mode tensor has no materialized data")
        return self.payload

    def item(self) -> float:
        return float(self.numpy().reshape(-1)[0])

    def release(self) -> None:
        """Free this tensor's storage immediately."""
        self.storage.release()

    def detach(self) -> "Tensor":
        """A view sharing storage, cut out of the autograd graph."""
        t = Tensor.__new__(Tensor)
        t.payload = self.payload
        t.device = self.device
        t.storage = self.storage
        t.tag = self.tag
        t.requires_grad = False
        t.grad = None
        t.grad_fn = None
        t.grad_hook = None
        t.name = None
        return t

    def zero_grad(self) -> None:
        self.grad = None

    # -- autograd entry point ----------------------------------------------------

    def backward(self, grad: Optional["Tensor"] = None) -> None:
        from repro.autograd.engine import backward as _backward

        _backward(self, grad)

    # -- operators (lazy import to avoid tensor<->autograd cycle) ---------------

    def _ops(self):
        from repro.autograd import ops

        return ops

    def __add__(self, other):
        return self._ops().add(self, other)

    def __radd__(self, other):
        return self._ops().add(self, other)

    def __sub__(self, other):
        return self._ops().sub(self, other)

    def __mul__(self, other):
        return self._ops().mul(self, other)

    def __rmul__(self, other):
        return self._ops().mul(self, other)

    def __truediv__(self, other):
        return self._ops().div(self, other)

    def __neg__(self):
        return self._ops().neg(self)

    def __matmul__(self, other):
        return self._ops().matmul(self, other)

    def __pow__(self, exponent):
        return self._ops().power(self, exponent)

    def reshape(self, *shape):
        return self._ops().reshape(self, *shape)

    def transpose(self, *axes):
        return self._ops().transpose(self, *axes)

    def sum(self, axis=None, keepdims=False):
        return self._ops().sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        return self._ops().mean_(self, axis=axis, keepdims=keepdims)

    def __getitem__(self, idx):
        return self._ops().slice_(self, idx)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "spec" if is_spec(self.payload) else "data"
        grad = ", grad_fn" if self.grad_fn is not None else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype.name}, {mode}{grad})"


# -- factory helpers --------------------------------------------------------------


def tensor(
    data: Any,
    dtype: Optional[Union[str, np.dtype]] = None,
    requires_grad: bool = False,
    device: Optional[Device] = None,
    tag: str = "activation",
) -> Tensor:
    return Tensor(data, dtype=dtype, device=device, requires_grad=requires_grad, tag=tag)


def from_numpy(arr: np.ndarray, requires_grad: bool = False, tag: str = "activation") -> Tensor:
    return Tensor(arr, requires_grad=requires_grad, tag=tag)


def _filled(
    shape: Sequence[int],
    value: float,
    dtype: Union[str, np.dtype],
    requires_grad: bool,
    device: Optional[Device],
    tag: str,
) -> Tensor:
    shape = tuple(int(s) for s in shape)
    if _default_materialize():
        data: Any = np.full(shape, value, dtype=np.dtype(dtype))
    else:
        data = SpecArray(shape, dtype)
    return Tensor(data, device=device, requires_grad=requires_grad, tag=tag)


def zeros(shape, dtype="float32", requires_grad=False, device=None, tag="activation") -> Tensor:
    return _filled(shape, 0.0, dtype, requires_grad, device, tag)


def ones(shape, dtype="float32", requires_grad=False, device=None, tag="activation") -> Tensor:
    return _filled(shape, 1.0, dtype, requires_grad, device, tag)


def full(shape, value, dtype="float32", requires_grad=False, device=None, tag="activation") -> Tensor:
    return _filled(shape, value, dtype, requires_grad, device, tag)


def randn(
    shape,
    std: float = 1.0,
    dtype="float32",
    requires_grad=False,
    device=None,
    tag="activation",
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Gaussian init; uses the rank's seeded RNG inside SPMD for
    reproducibility."""
    shape = tuple(int(s) for s in shape)
    if _default_materialize():
        if rng is None:
            rng = current_rank_context().rng if in_spmd() else np.random.default_rng()
        data: Any = (rng.standard_normal(shape) * std).astype(np.dtype(dtype))
    else:
        data = SpecArray(shape, dtype)
    return Tensor(data, device=device, requires_grad=requires_grad, tag=tag)
