"""Device tensors.

A :class:`Tensor` couples a payload (a real :class:`numpy.ndarray`, or a
:class:`~repro.comm.payload.SpecArray` stand-in in spec mode) with a
byte-accurate :class:`Storage` registered on a simulated device's memory
pool.  Allocation, views, release and the high-water mark all behave the
same in both modes, which is what lets the paper's memory experiments run
at billion-parameter scale without materializing data.
"""

from repro.tensor.tensor import (
    Storage,
    Tensor,
    default_device,
    from_numpy,
    full,
    ones,
    randn,
    set_default_device,
    tensor,
    zeros,
)
from repro.tensor.sharding import ShardSpec, local_shard_shape, shard_payload

__all__ = [
    "Storage",
    "Tensor",
    "default_device",
    "set_default_device",
    "tensor",
    "from_numpy",
    "zeros",
    "ones",
    "full",
    "randn",
    "ShardSpec",
    "local_shard_shape",
    "shard_payload",
]
