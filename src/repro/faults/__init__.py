"""Fault injection & resilience.

Real clusters in the paper's regime lose ranks, drop messages and suffer
stragglers; this package makes those behaviours first-class *simulated*
properties.  A seedable :class:`FaultPlan` schedules deterministic fault
events against simulated time/steps; a :class:`FaultInjector` executes the
plan against one :class:`~repro.runtime.spmd.SpmdRuntime`::

    plan = (FaultPlan(seed=42)
            .drop(src=0, dst=1, count=2)         # transient: retry heals
            .straggler(rank=2, factor=3.0)        # 3x slower rank
            .crash(rank=1, at_step=5))            # permanent: resume needed
    rt = SpmdRuntime(cluster, fault_plan=plan)

Transient faults heal through the communicator's bounded
retry-with-backoff (retransmitted bytes are counted in ``CommCounters``,
retry latency is charged to the simulated clocks); permanent faults surface
as typed errors (``RankFailure``, ``CollectiveTimeout``) that the trainer's
checkpoint/resume machinery recovers from bitwise-exactly.
"""

from repro.faults.injector import CORRUPT, DELIVER, DROP, FaultInjector
from repro.faults.plan import (
    CollectiveGlitch,
    FaultEvent,
    FaultPlan,
    LinkDegrade,
    MessageFault,
    RankCrash,
    Straggler,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultEvent",
    "RankCrash",
    "MessageFault",
    "CollectiveGlitch",
    "Straggler",
    "LinkDegrade",
    "DELIVER",
    "DROP",
    "CORRUPT",
]
