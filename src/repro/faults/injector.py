"""Fault injection against a running SPMD program.

A :class:`FaultInjector` binds a :class:`FaultPlan` to one
:class:`~repro.runtime.spmd.SpmdRuntime`.  The runtime installs it at the
start of every :meth:`run` (applying stragglers to the per-rank clocks and
link degradations to the topology, and resetting per-run attempt counters);
the communication layer then consults it on every point-to-point
transmission attempt and every collective round:

* :meth:`p2p_verdict` — deliver / drop / corrupt one transmission attempt
  on a directed link (the communicator retries under the runtime's
  :class:`~repro.utils.backoff.RetryPolicy`),
* :meth:`collective_verdict` — how many retransmission rounds a collective
  call needs, or whether it is permanently dead,
* :meth:`check_time_crash` / :meth:`on_step` — raise
  :class:`~repro.runtime.errors.RankFailure` when a scheduled crash fires.

Crash events fire **once per injector** (not once per run): after an
aborted run the "node" is considered replaced, so a resumed program on the
same runtime does not immediately re-crash.  All other fault budgets reset
on :meth:`install`, i.e. per run.

When a :class:`~repro.sanitize.CommSanitizer` runs in checksum mode it
attributes every injector-scheduled corruption/glitch to the fault plan
(``ChecksumEvent(injected=True)``) — so a checksum mismatch the injector
does **not** own is reported as a logic bug, not noise.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Sequence, Set, Tuple

from repro.faults.plan import (
    CollectiveGlitch,
    FaultPlan,
    LinkDegrade,
    MessageFault,
    RankCrash,
    Straggler,
)
from repro.runtime.errors import RankFailure

#: p2p_verdict outcomes
DELIVER = "deliver"
DROP = "drop"
CORRUPT = "corrupt"


class FaultInjector:
    """Stateful executor of one :class:`FaultPlan` (thread-safe)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._consumed: Dict[int, int] = {}  # event index -> uses this run
        self._p2p_attempts: Dict[Tuple[int, int], int] = {}
        self._coll_calls: Dict[int, int] = {}
        self._fired_crashes: Set[int] = set()  # persists across installs
        self.stats: Dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def install(self, runtime: Any) -> None:
        """Bind to ``runtime`` for one run: validate ranks, apply stragglers
        and link degradations, reset per-run fault budgets."""
        world = runtime.world_size
        for ev in self.plan.events:
            for r in _ranks_of(ev):
                if not 0 <= r < world:
                    raise ValueError(
                        f"fault event {ev} names rank {r} outside world "
                        f"size {world}"
                    )
        with self._lock:
            self._consumed.clear()
            self._p2p_attempts.clear()
            self._coll_calls.clear()
            self.stats = {"dropped": 0, "corrupted": 0, "glitched": 0, "crashed": 0}
        for clock in runtime.clocks:
            clock.clear_slowdowns()
        topo = runtime.cluster.topology
        topo.restore_links()
        for ev in self.plan.events:
            if isinstance(ev, Straggler):
                runtime.clocks[ev.rank].set_slowdown(ev.factor, ev.start, ev.end)
            elif isinstance(ev, LinkDegrade):
                topo.scale_link(
                    runtime.cluster.gpus[ev.src].name,
                    runtime.cluster.gpus[ev.dst].name,
                    ev.factor,
                )

    # -- crash events -------------------------------------------------------

    def on_step(self, rank: int, step: int) -> None:
        """Raise :class:`RankFailure` if a crash is scheduled for ``rank``
        at training step ``step`` (call at the top of each step)."""
        with self._lock:
            for idx, ev in enumerate(self.plan.events):
                if (isinstance(ev, RankCrash) and ev.rank == rank
                        and ev.at_step == step and idx not in self._fired_crashes):
                    self._fired_crashes.add(idx)
                    self.stats["crashed"] = self.stats.get("crashed", 0) + 1
                    break
            else:
                return
        raise RankFailure(rank, step=step)

    def check_time_crash(self, rank: int, sim_time: float) -> None:
        """Raise :class:`RankFailure` if ``rank`` has a crash scheduled at or
        before simulated time ``sim_time`` (called from communication
        entry points)."""
        with self._lock:
            for idx, ev in enumerate(self.plan.events):
                if (isinstance(ev, RankCrash) and ev.rank == rank
                        and ev.at_time is not None and sim_time >= ev.at_time
                        and idx not in self._fired_crashes):
                    self._fired_crashes.add(idx)
                    self.stats["crashed"] = self.stats.get("crashed", 0) + 1
                    break
            else:
                return
        raise RankFailure(rank, sim_time=sim_time)

    # -- transport faults ---------------------------------------------------

    def p2p_verdict(self, src: int, dst: int) -> str:
        """Outcome of one transmission attempt on the directed link
        ``src -> dst``: ``"deliver"``, ``"drop"`` or ``"corrupt"``."""
        with self._lock:
            attempt = self._p2p_attempts.get((src, dst), 0)
            self._p2p_attempts[(src, dst)] = attempt + 1
            for idx, ev in enumerate(self.plan.events):
                if not isinstance(ev, MessageFault):
                    continue
                if ev.src != src or ev.dst != dst:
                    continue
                used = self._consumed.get(idx, 0)
                if ev.count is not None and used >= ev.count:
                    continue
                if ev.p < 1.0 and self.plan.coin(idx, src, dst, attempt) >= ev.p:
                    continue
                self._consumed[idx] = used + 1
                kind = CORRUPT if ev.corrupt else DROP
                self.stats["corrupted" if ev.corrupt else "dropped"] = (
                    self.stats.get("corrupted" if ev.corrupt else "dropped", 0) + 1
                )
                return kind
        return DELIVER

    def collective_verdict(
        self, op: str, ranks: Sequence[int], seq: int
    ) -> Tuple[int, bool]:
        """``(failed_attempts, permanent)`` for collective call number
        ``seq`` of ``op`` over ``ranks``."""
        with self._lock:
            for idx, ev in enumerate(self.plan.events):
                if not isinstance(ev, CollectiveGlitch):
                    continue
                if ev.op is not None and ev.op != op:
                    continue
                if ev.ranks is not None and tuple(ev.ranks) != tuple(ranks):
                    continue
                if ev.permanent:
                    return 0, True
                call = self._coll_calls.get(idx, 0)
                self._coll_calls[idx] = call + 1
                used = self._consumed.get(idx, 0)
                if ev.max_glitches is not None and used >= ev.max_glitches:
                    continue
                if ev.p < 1.0 and self.plan.coin(idx, call, seq) >= ev.p:
                    continue
                self._consumed[idx] = used + 1
                self.stats["glitched"] = self.stats.get("glitched", 0) + 1
                return ev.attempts, False
        return 0, False


def _ranks_of(ev: Any) -> Tuple[int, ...]:
    if isinstance(ev, RankCrash):
        return (ev.rank,)
    if isinstance(ev, Straggler):
        return (ev.rank,)
    if isinstance(ev, (MessageFault, LinkDegrade)):
        return (ev.src, ev.dst)
    if isinstance(ev, CollectiveGlitch) and ev.ranks is not None:
        return tuple(ev.ranks)
    return ()
