"""Deterministic fault schedules.

A :class:`FaultPlan` is a seedable list of fault events scheduled against
*simulated* quantities — training steps, simulated clock time, per-link
transmission attempts, per-group collective calls — never host wall time.
The same plan (same seed, same events) therefore produces the same fault
schedule, the same retry counts and the same simulated-clock readings on
every run, which is what makes chaos tests replayable from a failure
report.

Event kinds (build them with the fluent helpers on :class:`FaultPlan`):

``RankCrash``
    The rank raises :class:`~repro.runtime.errors.RankFailure` at training
    step ``at_step`` (checked by the Trainer) or the first communication
    call at/after simulated time ``at_time``.  Permanent — the surviving
    ranks abort and the program must resume from a checkpoint.
``MessageFault``
    Transient loss (or in-flight corruption, detected by the receiver-side
    checksum in the simulated transport) of point-to-point messages on one
    directed link.  Healed by the communicator's bounded retry; with
    ``count=None`` the link is permanently down and the sender times out.
``CollectiveGlitch``
    A collective call needs ``attempts`` extra retransmission rounds before
    succeeding (transient), or never succeeds (``permanent=True``) and every
    member rank raises :class:`~repro.runtime.errors.CollectiveTimeout`.
``Straggler``
    Clock-rate multiplier on one rank's :class:`SimClock` over a simulated
    time window — the rank does the same work, slower.
``LinkDegrade``
    Scales the bandwidth of one topology link for the whole run (flapping
    links compose this with a probabilistic ``MessageFault`` on the same
    link).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class RankCrash:
    rank: int
    at_step: Optional[int] = None
    at_time: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.at_step is None) == (self.at_time is None):
            raise ValueError("RankCrash needs exactly one of at_step / at_time")


@dataclass(frozen=True)
class MessageFault:
    src: int
    dst: int
    count: Optional[int] = 1  #: attempts to fault; None = link permanently down
    p: float = 1.0  #: per-attempt fault probability (seeded, deterministic)
    corrupt: bool = False  #: corrupt in flight instead of dropping


@dataclass(frozen=True)
class CollectiveGlitch:
    op: Optional[str] = None  #: None matches any collective
    ranks: Optional[Tuple[int, ...]] = None  #: None matches any group
    attempts: int = 1  #: failed attempts per glitched call
    p: float = 1.0  #: per-call glitch probability (seeded)
    max_glitches: Optional[int] = 1  #: total calls to glitch; None = unbounded
    permanent: bool = False  #: never succeeds -> CollectiveTimeout on all ranks


@dataclass(frozen=True)
class Straggler:
    rank: int
    factor: float  #: > 1 slows the rank down
    start: float = 0.0
    end: float = math.inf


@dataclass(frozen=True)
class LinkDegrade:
    src: int
    dst: int
    factor: float  #: bandwidth multiplier, 0 < factor


FaultEvent = Union[RankCrash, MessageFault, CollectiveGlitch, Straggler, LinkDegrade]


class FaultPlan:
    """A seeded, ordered collection of fault events.

    The seed drives every probabilistic decision through
    :meth:`coin`, so two runs of the same plan see identical faults.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.events: List[FaultEvent] = []

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    # -- fluent builders ---------------------------------------------------

    def crash(self, rank: int, at_step: Optional[int] = None,
              at_time: Optional[float] = None) -> "FaultPlan":
        return self.add(RankCrash(rank, at_step=at_step, at_time=at_time))

    def drop(self, src: int, dst: int, count: int = 1, p: float = 1.0) -> "FaultPlan":
        return self.add(MessageFault(src, dst, count=count, p=p))

    def corrupt(self, src: int, dst: int, count: int = 1, p: float = 1.0) -> "FaultPlan":
        return self.add(MessageFault(src, dst, count=count, p=p, corrupt=True))

    def link_down(self, src: int, dst: int) -> "FaultPlan":
        """Permanently kill the directed link: every send times out."""
        return self.add(MessageFault(src, dst, count=None))

    def glitch(self, op: Optional[str] = None,
               ranks: Optional[Sequence[int]] = None, attempts: int = 1,
               p: float = 1.0, max_glitches: Optional[int] = 1) -> "FaultPlan":
        return self.add(CollectiveGlitch(
            op=op, ranks=None if ranks is None else tuple(ranks),
            attempts=attempts, p=p, max_glitches=max_glitches,
        ))

    def blackout(self, op: Optional[str] = None,
                 ranks: Optional[Sequence[int]] = None) -> "FaultPlan":
        """Matching collectives never complete: every member rank raises
        :class:`CollectiveTimeout` after the retry budget is spent."""
        return self.add(CollectiveGlitch(
            op=op, ranks=None if ranks is None else tuple(ranks), permanent=True,
        ))

    def straggler(self, rank: int, factor: float, start: float = 0.0,
                  end: float = math.inf) -> "FaultPlan":
        return self.add(Straggler(rank, factor, start, end))

    def degrade_link(self, src: int, dst: int, factor: float) -> "FaultPlan":
        return self.add(LinkDegrade(src, dst, factor))

    # -- determinism -------------------------------------------------------

    def coin(self, *key: int) -> float:
        """Deterministic uniform [0, 1) draw for the fault decision
        identified by ``key`` (event index, attempt counter, ...)."""
        seq = np.random.SeedSequence([self.seed & 0x7FFFFFFF, *(abs(int(k)) for k in key)])
        return float(np.random.default_rng(seq).random())

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(seed={self.seed}, events={len(self.events)})"
