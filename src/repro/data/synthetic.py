"""Synthetic data generators.

The paper trains on ImageNet-1k (ViT) and Wikipedia (BERT/GPT); offline we
substitute learnable synthetic tasks with the same tensor shapes:

* ``synthetic_image_classification`` — images drawn as class prototypes
  plus Gaussian noise.  Linearly separable enough that accuracy climbs
  within a few epochs (what Fig 7 needs: *curves* that either coincide
  across parallel modes or don't), while noisy enough to need real
  optimization.
* ``synthetic_token_stream`` — tokens from a random first-order Markov
  chain, so next-token prediction has learnable structure.
"""

from __future__ import annotations

import copy
from typing import Iterator, Optional, Tuple

import numpy as np


def synthetic_image_classification(
    n_samples: int,
    image_size: int = 32,
    channels: int = 3,
    n_classes: int = 10,
    noise: float = 0.7,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Returns (images [N, H, W, C] float32, labels [N] int64)."""
    rng = np.random.default_rng(seed)
    prototypes = rng.standard_normal((n_classes, image_size, image_size, channels))
    labels = rng.integers(0, n_classes, n_samples)
    images = prototypes[labels] + noise * rng.standard_normal(
        (n_samples, image_size, image_size, channels)
    )
    return images.astype(np.float32), labels.astype(np.int64)


def synthetic_token_stream(
    n_tokens: int,
    vocab_size: int = 1024,
    seed: int = 0,
    branching: int = 4,
) -> np.ndarray:
    """A token stream from a sparse random Markov chain: each token has
    ``branching`` likely successors, so an LM can reduce perplexity."""
    rng = np.random.default_rng(seed)
    successors = rng.integers(0, vocab_size, (vocab_size, branching))
    out = np.empty(n_tokens, dtype=np.int64)
    tok = int(rng.integers(0, vocab_size))
    for i in range(n_tokens):
        out[i] = tok
        tok = int(successors[tok, rng.integers(0, branching)])
    return out


def lm_batches(
    stream: np.ndarray, batch_size: int, seq_len: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Cut a token stream into (inputs, next-token targets) of shape
    [n_batches, batch, seq]."""
    window = seq_len + 1
    n = (len(stream) - 1) // (batch_size * seq_len)
    need = n * batch_size * seq_len + 1
    if need > len(stream):
        raise ValueError("stream too short")
    flat = stream[: n * batch_size * seq_len].reshape(n * batch_size, seq_len)
    nxt = stream[1 : n * batch_size * seq_len + 1].reshape(n * batch_size, seq_len)
    _ = window
    return (
        flat.reshape(n, batch_size, seq_len),
        nxt.reshape(n, batch_size, seq_len),
    )


class DataLoader:
    """Minimal epoch iterator over in-memory arrays with optional
    shuffling; yields (data, label) global batches (parallel bundles shard
    them per rank)."""

    def __init__(
        self,
        data: np.ndarray,
        labels: np.ndarray,
        batch_size: int,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = True,
    ) -> None:
        if len(data) != len(labels):
            raise ValueError("data/labels length mismatch")
        self.data = data
        self.labels = labels
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = np.random.default_rng(seed)
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.data) // self.batch_size
        if not self.drop_last and len(self.data) % self.batch_size:
            n += 1
        return n

    def state_dict(self) -> dict:
        """Shuffle-RNG state; captured at epoch boundaries by the Trainer so
        a resumed run replays the exact same batch order."""
        return {"rng_state": copy.deepcopy(self.rng.bit_generator.state)}

    def load_state_dict(self, state: dict) -> None:
        self.rng.bit_generator.state = copy.deepcopy(state["rng_state"])

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        idx = np.arange(len(self.data))
        if self.shuffle:
            self.rng.shuffle(idx)
        end = len(self.data) - (len(self.data) % self.batch_size if self.drop_last else 0)
        for start in range(0, end, self.batch_size):
            sel = idx[start : start + self.batch_size]
            yield self.data[sel], self.labels[sel]
