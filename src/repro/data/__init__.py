"""Synthetic datasets standing in for ImageNet-1k and Wikipedia."""

from repro.data.synthetic import (
    DataLoader,
    synthetic_image_classification,
    synthetic_token_stream,
    lm_batches,
)

__all__ = [
    "DataLoader",
    "synthetic_image_classification",
    "synthetic_token_stream",
    "lm_batches",
]
