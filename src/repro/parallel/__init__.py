"""Parallel execution methods — the paper's §2/§3 inventory.

* :mod:`repro.parallel.comm_ops` — differentiable collectives (the f/g
  conjugate pairs every TP scheme is built from)
* :mod:`repro.parallel.data` — data parallelism (DDP with bucketed
  gradient allreduce)
* :mod:`repro.parallel.tensor1d` — Megatron-style 1D tensor parallelism
* :mod:`repro.parallel.tensor2d` — SUMMA-based 2D tensor parallelism
* :mod:`repro.parallel.tensor25d` — 2.5D (depth-replicated 2D grids)
* :mod:`repro.parallel.tensor3d` — 3D (Agarwal) tensor parallelism
* :mod:`repro.parallel.sequence` — sequence parallelism with ring
  self-attention
* :mod:`repro.parallel.pipeline` — pipeline parallelism (GPipe / 1F1B)
"""

from repro.parallel import comm_ops
from repro.parallel.data import DistributedDataParallel, sync_gradients

__all__ = ["comm_ops", "DistributedDataParallel", "sync_gradients"]
