"""3D tensor parallelism — Bian et al. [4], §2.2 of the paper.

p = l^3 devices form a cube with axes (i, j, k).  Following the paper, a
tensor of shape [P, Q] is partitioned into chunks [P/l^2, Q/l]: the batch
dimension is split twice (over i and over one of j/k) and the feature
dimension once (over the remaining axis).

The distributed matmul is the Agarwal 3D algorithm, expressed with three
collectives::

    forward:   A  = all_gather(X  over cx)       # recover batch sub-shard
               B  = all_gather(W  over cw)       # recover weight row shard
               Cp = A @ B                        # partial over rs axis
               C  = reduce_scatter(Cp over cc)   # sum partials + re-shard batch

    backward:  dC = all_gather(g over cc)
               dX = reduce_scatter(dC @ B^T over cx)
               dW = reduce_scatter(A^T @ dC over cw)

Each collective involves only ``l = p^(1/3)`` ranks — the smallest groups of
any TP mode, which is why 3D wins at large scale (Table 3, 64 GPUs).

Activation layouts alternate between consecutive linears: a linear that
consumes features sharded by j produces features sharded by k and vice
versa (the reduce-scatter re-shards the batch along the axis the input
features were gathered from).  :class:`Layout3D` tracks this; a Transformer
layer is layout-closed (QKV: j->k, out/dense2: k->j).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.autograd import ops
from repro.autograd.function import FnCtx, Function
from repro.autograd import payload_ops as P
from repro.comm.communicator import Communicator
from repro.comm.payload import Payload
from repro.context.parallel_context import ParallelContext, ParallelMode
from repro.nn import init as init_mod
from repro.nn.attention import attention_core, merge_heads, split_heads
from repro.nn.layers import Dropout
from repro.nn.module import Module, Parameter
from repro.parallel.common import add_shared, parallel_layer_norm
from repro.tensor.sharding import shard_payload
from repro.tensor.tensor import Tensor


@dataclass(frozen=True)
class Layout3D:
    """Which cube axes shard the activation: features by ``feature_mode``,
    batch by OUTPUT (i) and by ``batch_sub_mode``."""

    feature_mode: ParallelMode
    batch_sub_mode: ParallelMode

    def flipped(self) -> "Layout3D":
        return Layout3D(self.batch_sub_mode, self.feature_mode)


#: canonical entry layout: features sharded by WEIGHT (j), batch by i then k
LAYOUT_JK = Layout3D(ParallelMode.PARALLEL_3D_WEIGHT, ParallelMode.PARALLEL_3D_INPUT)
LAYOUT_KJ = LAYOUT_JK.flipped()


class Matmul3D(Function):
    """C = X @ W with the collective pattern described in the module
    docstring.  ``cx`` gathers X's batch sub-shard, ``cw`` gathers W's row
    sub-shard, ``cc`` reduce-scatters the output partials."""

    @staticmethod
    def forward(
        ctx: FnCtx,
        x: Tensor,
        w: Tensor,
        cx: Communicator,
        cw: Communicator,
        cc: Communicator,
    ) -> Payload:
        ctx.cx, ctx.cw, ctx.cc = cx, cw, cc
        a = cx.all_gather(x.payload, axis=0)
        b = cw.all_gather(w.payload, axis=0)
        ctx.a, ctx.b = a, b
        ctx.x_shape, ctx.w_shape = x.shape, w.shape
        ctx.flops = P.matmul_flops(a.shape if len(a.shape) > 1 else a.shape, b.shape)
        ctx.backward_flops = 2 * ctx.flops
        cp = P.pmatmul(a, b)
        return cc.reduce_scatter(cp, axis=0)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        a, b = ctx.a, ctx.b
        dcg = ctx.cc.all_gather(g, axis=0)
        dx_part = P.pmatmul(dcg, P.pswapaxes(b, -1, -2))
        dx = ctx.cx.reduce_scatter(dx_part, axis=0)
        a2d = P.preshape(a, (-1, a.shape[-1]))
        g2d = P.preshape(dcg, (-1, dcg.shape[-1]))
        dw_part = P.pmatmul(P.pswapaxes(a2d, -1, -2), g2d)
        dw = ctx.cw.reduce_scatter(dw_part, axis=0)
        return dx, dw


def shard_activation_3d(x, pc: ParallelContext, layout: Layout3D = LAYOUT_JK):
    """Global [B, ..., H] -> local [B/l^2, ..., H/l].

    Batch blocks are i-major then batch_sub-axis; features by the layout's
    feature axis."""
    l = pc.cubic_dim
    sub_rank = pc.comm(layout.batch_sub_mode).rank
    feat_rank = pc.comm(layout.feature_mode).rank
    x = shard_payload(x, 0, l, pc.cube_i)
    x = shard_payload(x, 0, l, sub_rank)
    return shard_payload(x, x.ndim - 1, l, feat_rank)


class Linear3D(Module):
    """3D-parallel linear.  Consumes activations in ``layout`` and produces
    them in ``layout.flipped()``.

    Weight chunk: rows (K) block index = in_feature_rank * l + i, cols (N)
    block = out_feature_rank (= the layout's batch_sub axis).  Bias is
    sharded by the output feature axis and replicated over (i, j_or_k);
    its gradient is synced over those groups.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        pc: ParallelContext,
        layout: Layout3D = LAYOUT_JK,
        bias: bool = True,
        weight_init: init_mod.InitFn = init_mod.lecun_normal(),
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
        qkv_sections: int = 1,
    ) -> None:
        super().__init__()
        l = pc.cubic_dim
        if in_features % (l * l) or out_features % (l * qkv_sections):
            raise ValueError(
                f"Linear3D({in_features}, {out_features}) needs in % l^2 == 0 "
                f"and out % l == 0 (l={l})"
            )
        self.pc = pc
        self.layout = layout
        in_rank = pc.comm(layout.feature_mode).rank
        out_rank = pc.comm(layout.batch_sub_mode).rank
        full_w = init_mod.param_payload((in_features, out_features), weight_init, rng, dtype)
        w = shard_payload(full_w, 0, l, in_rank)
        w = shard_payload(w, 0, l, pc.cube_i)
        w = _shard_sections_3d(w, 1, l, out_rank, qkv_sections)
        self.weight = Parameter(w)
        if bias:
            full_b = init_mod.param_payload((out_features,), init_mod.zeros_init, rng, dtype)
            self.bias: Optional[Parameter] = Parameter(
                _shard_sections_3d(full_b, 0, l, out_rank, qkv_sections)
            )
        else:
            self.register_parameter("bias", None)

    def forward(self, x: Tensor) -> Tensor:
        pc = self.pc
        cx = pc.comm(self.layout.batch_sub_mode)
        cw = pc.comm(ParallelMode.PARALLEL_3D_OUTPUT)
        cc = pc.comm(self.layout.feature_mode)
        y = Matmul3D.apply(x, self.weight, cx, cw, cc)
        if self.bias is not None:
            # output batch is sharded over (i, feature_mode-axis): sync there
            y = add_shared(
                y, self.bias,
                [pc.comm(ParallelMode.PARALLEL_3D_OUTPUT), pc.comm(self.layout.feature_mode)],
            )
        return y


def _shard_sections_3d(payload, axis: int, parts: int, index: int, sections: int):
    if sections == 1:
        return shard_payload(payload, axis, parts, index)
    blocks = P.psplit(payload, sections, axis)
    shards = [shard_payload(b, axis, parts, index) for b in blocks]
    return P.pconcat(shards, axis)


class LayerNorm3D(Module):
    """LayerNorm for activations in ``layout``: statistics all-reduced over
    the feature axis; affine params sharded by the feature axis and synced
    over the batch axes."""

    def __init__(
        self,
        normalized_size: int,
        pc: ParallelContext,
        layout: Layout3D = LAYOUT_JK,
        eps: float = 1e-5,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        l = pc.cubic_dim
        self.pc = pc
        self.layout = layout
        self.eps = eps
        feat_rank = pc.comm(layout.feature_mode).rank
        full_g = init_mod.param_payload((normalized_size,), init_mod.ones_init, rng, dtype)
        full_b = init_mod.param_payload((normalized_size,), init_mod.zeros_init, rng, dtype)
        self.gamma = Parameter(shard_payload(full_g, 0, l, feat_rank))
        self.beta = Parameter(shard_payload(full_b, 0, l, feat_rank))

    def forward(self, x: Tensor) -> Tensor:
        pc = self.pc
        return parallel_layer_norm(
            x,
            self.gamma,
            self.beta,
            stats_comm=pc.comm(self.layout.feature_mode),
            grad_comms=[
                pc.comm(ParallelMode.PARALLEL_3D_OUTPUT),
                pc.comm(self.layout.batch_sub_mode),
            ],
            eps=self.eps,
        )


class ParallelMLP3D(Module):
    """dense_1 flips the layout, dense_2 flips it back."""

    def __init__(
        self,
        hidden_size: int,
        pc: ParallelContext,
        layout: Layout3D = LAYOUT_JK,
        mlp_ratio: int = 4,
        dropout: float = 0.0,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.dense_1 = Linear3D(
            hidden_size, mlp_ratio * hidden_size, pc, layout, dtype=dtype, rng=rng
        )
        self.dense_2 = Linear3D(
            mlp_ratio * hidden_size, hidden_size, pc, layout.flipped(), dtype=dtype, rng=rng
        )
        self.dropout = Dropout(dropout) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        h = ops.gelu(self.dense_1(x))
        h = self.dense_2(h)
        if self.dropout is not None:
            h = self.dropout(h)
        return h


class ParallelSelfAttention3D(Module):
    """QKV projection flips layout; attention runs locally on the
    n_heads/l head shard; the output projection flips the layout back."""

    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        pc: ParallelContext,
        layout: Layout3D = LAYOUT_JK,
        attn_dropout: float = 0.0,
        out_dropout: float = 0.0,
        causal: bool = False,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        l = pc.cubic_dim
        if n_heads % l != 0:
            raise ValueError(f"3D attention needs n_heads ({n_heads}) divisible by l ({l})")
        self.pc = pc
        self.local_heads = n_heads // l
        self.causal = causal
        self.attn_dropout = attn_dropout
        self.qkv = Linear3D(
            hidden_size, 3 * hidden_size, pc, layout, dtype=dtype, rng=rng, qkv_sections=3
        )
        self.out = Linear3D(hidden_size, hidden_size, pc, layout.flipped(), dtype=dtype, rng=rng)
        self.dropout = Dropout(out_dropout) if out_dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        qkv = self.qkv(x)
        q_, k, v = ops.split(qkv, 3, axis=-1)
        q_ = split_heads(q_, self.local_heads)
        k = split_heads(k, self.local_heads)
        v = split_heads(v, self.local_heads)
        attn = attention_core(
            q_, k, v, causal=self.causal,
            dropout_p=self.attn_dropout, training=self.training,
        )
        y = self.out(merge_heads(attn))
        if self.dropout is not None:
            y = self.dropout(y)
        return y


class ParallelTransformerLayer3D(Module):
    """Layout-closed Transformer layer (input and output both in
    ``layout``)."""

    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        pc: ParallelContext,
        layout: Layout3D = LAYOUT_JK,
        mlp_ratio: int = 4,
        attn_dropout: float = 0.0,
        dropout: float = 0.0,
        causal: bool = False,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.norm_1 = LayerNorm3D(hidden_size, pc, layout, dtype=dtype, rng=rng)
        self.attention = ParallelSelfAttention3D(
            hidden_size, n_heads, pc, layout,
            attn_dropout=attn_dropout, out_dropout=dropout, causal=causal,
            dtype=dtype, rng=rng,
        )
        self.norm_2 = LayerNorm3D(hidden_size, pc, layout, dtype=dtype, rng=rng)
        self.mlp = ParallelMLP3D(
            hidden_size, pc, layout, mlp_ratio, dropout=dropout, dtype=dtype, rng=rng
        )

    def forward(self, x: Tensor) -> Tensor:
        x = ops.add(x, self.attention(self.norm_1(x)))
        x = ops.add(x, self.mlp(self.norm_2(x)))
        return x
