"""2.5D tensor parallelism — Wang et al. [36], §2.2 of the paper.

p = d * q^2 devices form ``d`` depth layers of q x q SUMMA grids.  Each
depth layer runs standard 2D tensor parallelism on **its own slice of the
batch** (the ``S_X / d`` in Table 1's 2.5D row); weights are replicated
across depth, so their gradients are all-reduced over the DEP group after
backward — depth behaves like data parallelism wrapped around a 2D grid.
With ``d == 1`` this degenerates to plain 2D, as the paper notes.

Parameters carry ``grad_sync_comms`` attributes; the engine (or
``sync_parameter_gradients``) applies the depth all-reduce before the
optimizer step.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.autograd import ops
from repro.comm.communicator import Communicator
from repro.context.parallel_context import ParallelContext, ParallelMode
from repro.nn import init as init_mod
from repro.nn.attention import attention_core, merge_heads, split_heads
from repro.nn.layers import Dropout
from repro.nn.module import Module, Parameter
from repro.parallel.common import add_shared, parallel_layer_norm, sync_parameter_gradients
from repro.parallel.tensor2d import Summa2DMatMul, _shard_sections
from repro.tensor.sharding import shard_payload
from repro.tensor.tensor import Tensor

__all__ = [
    "sync_parameter_gradients",  # re-export: callers treat it as 2.5D API too
    "matmul_25d",
    "shard_activation_25d",
    "Linear25D",
    "LayerNorm25D",
    "ParallelMLP25D",
    "ParallelSelfAttention25D",
    "ParallelTransformerLayer25D",
]


def _mark_depth_synced(param: Parameter, pc: ParallelContext) -> Parameter:
    param.grad_sync_comms = [pc.comm(ParallelMode.PARALLEL_2P5D_DEP)]
    return param


def matmul_25d(a: Tensor, b: Tensor, pc: ParallelContext) -> Tensor:
    """SUMMA on this rank's depth layer."""
    return Summa2DMatMul.apply(
        a,
        b,
        pc.comm(ParallelMode.PARALLEL_2P5D_ROW),
        pc.comm(ParallelMode.PARALLEL_2P5D_COL),
    )


def shard_activation_25d(x, pc: ParallelContext):
    """Global [B, ..., H] -> local [B/(d*q) (dep,i), ..., H/q (j)].

    The batch is split depth-first (dep major, grid row minor)."""
    d, q = pc.tesseract_dep, pc.tesseract_dim
    x = shard_payload(x, 0, d, pc.dep_rank)
    x = shard_payload(x, 0, q, pc.row_rank)
    return shard_payload(x, x.ndim - 1, q, pc.col_rank)


class Linear25D(Module):
    """2D SUMMA linear within a depth layer; weight/bias replicated across
    depth with summed gradient synchronization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        pc: ParallelContext,
        bias: bool = True,
        weight_init: init_mod.InitFn = init_mod.lecun_normal(),
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
        qkv_sections: int = 1,
    ) -> None:
        super().__init__()
        q = pc.tesseract_dim
        if in_features % q or out_features % (q * qkv_sections):
            raise ValueError(
                f"Linear25D({in_features}, {out_features}) not divisible by grid dim {q}"
            )
        self.pc = pc
        full_w = init_mod.param_payload((in_features, out_features), weight_init, rng, dtype)
        w = shard_payload(full_w, 0, q, pc.row_rank)
        w = _shard_sections(w, 1, q, pc.col_rank, qkv_sections)
        self.weight = _mark_depth_synced(Parameter(w), pc)
        if bias:
            full_b = init_mod.param_payload((out_features,), init_mod.zeros_init, rng, dtype)
            self.bias: Optional[Parameter] = _mark_depth_synced(
                Parameter(_shard_sections(full_b, 0, q, pc.col_rank, qkv_sections)), pc
            )
        else:
            self.register_parameter("bias", None)

    def forward(self, x: Tensor) -> Tensor:
        y = matmul_25d(x, self.weight, self.pc)
        if self.bias is not None:
            y = add_shared(y, self.bias, [self.pc.comm(ParallelMode.PARALLEL_2P5D_COL)])
        return y


class LayerNorm25D(Module):
    def __init__(
        self,
        normalized_size: int,
        pc: ParallelContext,
        eps: float = 1e-5,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        q = pc.tesseract_dim
        self.pc = pc
        self.eps = eps
        full_g = init_mod.param_payload((normalized_size,), init_mod.ones_init, rng, dtype)
        full_b = init_mod.param_payload((normalized_size,), init_mod.zeros_init, rng, dtype)
        self.gamma = _mark_depth_synced(
            Parameter(shard_payload(full_g, 0, q, pc.col_rank)), pc
        )
        self.beta = _mark_depth_synced(
            Parameter(shard_payload(full_b, 0, q, pc.col_rank)), pc
        )

    def forward(self, x: Tensor) -> Tensor:
        return parallel_layer_norm(
            x,
            self.gamma,
            self.beta,
            stats_comm=self.pc.comm(ParallelMode.PARALLEL_2P5D_ROW),
            grad_comms=[self.pc.comm(ParallelMode.PARALLEL_2P5D_COL)],
            eps=self.eps,
        )


class ParallelMLP25D(Module):
    def __init__(
        self,
        hidden_size: int,
        pc: ParallelContext,
        mlp_ratio: int = 4,
        dropout: float = 0.0,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.dense_1 = Linear25D(hidden_size, mlp_ratio * hidden_size, pc, dtype=dtype, rng=rng)
        self.dense_2 = Linear25D(mlp_ratio * hidden_size, hidden_size, pc, dtype=dtype, rng=rng)
        self.dropout = Dropout(dropout) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        h = ops.gelu(self.dense_1(x))
        h = self.dense_2(h)
        if self.dropout is not None:
            h = self.dropout(h)
        return h


class ParallelSelfAttention25D(Module):
    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        pc: ParallelContext,
        attn_dropout: float = 0.0,
        out_dropout: float = 0.0,
        causal: bool = False,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        q = pc.tesseract_dim
        if n_heads % q != 0:
            raise ValueError(f"2.5D attention needs n_heads ({n_heads}) divisible by q ({q})")
        self.pc = pc
        self.local_heads = n_heads // q
        self.causal = causal
        self.attn_dropout = attn_dropout
        self.qkv = Linear25D(hidden_size, 3 * hidden_size, pc, dtype=dtype, rng=rng, qkv_sections=3)
        self.out = Linear25D(hidden_size, hidden_size, pc, dtype=dtype, rng=rng)
        self.dropout = Dropout(out_dropout) if out_dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        qkv = self.qkv(x)
        q_, k, v = ops.split(qkv, 3, axis=-1)
        q_ = split_heads(q_, self.local_heads)
        k = split_heads(k, self.local_heads)
        v = split_heads(v, self.local_heads)
        attn = attention_core(
            q_, k, v, causal=self.causal,
            dropout_p=self.attn_dropout, training=self.training,
        )
        y = self.out(merge_heads(attn))
        if self.dropout is not None:
            y = self.dropout(y)
        return y


class ParallelTransformerLayer25D(Module):
    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        pc: ParallelContext,
        mlp_ratio: int = 4,
        attn_dropout: float = 0.0,
        dropout: float = 0.0,
        causal: bool = False,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.norm_1 = LayerNorm25D(hidden_size, pc, dtype=dtype, rng=rng)
        self.attention = ParallelSelfAttention25D(
            hidden_size, n_heads, pc,
            attn_dropout=attn_dropout, out_dropout=dropout, causal=causal,
            dtype=dtype, rng=rng,
        )
        self.norm_2 = LayerNorm25D(hidden_size, pc, dtype=dtype, rng=rng)
        self.mlp = ParallelMLP25D(hidden_size, pc, mlp_ratio, dropout=dropout, dtype=dtype, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = ops.add(x, self.attention(self.norm_1(x)))
        x = ops.add(x, self.mlp(self.norm_2(x)))
        return x
