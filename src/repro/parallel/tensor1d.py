"""1D (Megatron-LM) tensor parallelism — the paper's baseline TP (§2.2, Fig 4).

Weights are split along one dimension across the tensor group:

* :class:`ColumnParallelLinear` — W [in, out/p]; the input is replicated
  (``copy_to_parallel_region``) and outputs are partial columns.
* :class:`RowParallelLinear` — W [in/p, out]; inputs are already split
  along the feature dim and the partial products are summed with an
  all-reduce (``reduce_from_parallel_region``).

A Transformer layer uses column->row pairs for both MLP and attention, so
each layer costs 2 all-reduces forward and 2 backward over the *whole*
tensor group — the communication profile that Table 1's ``2(p-1)·S_X`` row
describes and that the advanced modes beat at scale.

Every layer draws the *global* weight from the shared model RNG stream and
keeps only its shard, which makes 1D-TP arithmetic identical to the serial
reference (tested bit-for-bit).
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.autograd import ops
from repro.comm.communicator import Communicator
from repro.context.parallel_context import ParallelContext, ParallelMode
from repro.nn import init as init_mod
from repro.nn.attention import attention_core, merge_heads, split_heads
from repro.nn.layers import Dropout, LayerNorm
from repro.nn.module import Module, Parameter
from repro.parallel.comm_ops import (
    copy_to_parallel_region,
    gather_from_parallel_region,
    reduce_from_parallel_region,
    scatter_to_parallel_region,
)
from repro.tensor.sharding import shard_payload
from repro.tensor.tensor import Tensor


def _shard_param(payload, axis: int, parts: int, index: int) -> Parameter:
    return Parameter(shard_payload(payload, axis, parts, index))


class ColumnParallelLinear(Module):
    """Linear with output features split across the tensor group."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        comm: Communicator,
        bias: bool = True,
        gather_output: bool = False,
        weight_init: init_mod.InitFn = init_mod.lecun_normal(),
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if out_features % comm.size != 0:
            raise ValueError(
                f"out_features {out_features} not divisible by tensor size {comm.size}"
            )
        self.comm = comm
        self.gather_output = gather_output
        full_w = init_mod.param_payload((in_features, out_features), weight_init, rng, dtype)
        self.weight = _shard_param(full_w, 1, comm.size, comm.rank)
        if bias:
            full_b = init_mod.param_payload((out_features,), init_mod.zeros_init, rng, dtype)
            self.bias: Optional[Parameter] = _shard_param(full_b, 0, comm.size, comm.rank)
        else:
            self.register_parameter("bias", None)

    def forward(self, x: Tensor) -> Tensor:
        x = copy_to_parallel_region(x, self.comm)
        y = ops.matmul(x, self.weight)
        if self.bias is not None:
            y = ops.add(y, self.bias)
        if self.gather_output:
            y = gather_from_parallel_region(y, self.comm, axis=-1)
        return y


class RowParallelLinear(Module):
    """Linear with input features split across the tensor group."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        comm: Communicator,
        bias: bool = True,
        input_is_parallel: bool = True,
        weight_init: init_mod.InitFn = init_mod.lecun_normal(),
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features % comm.size != 0:
            raise ValueError(
                f"in_features {in_features} not divisible by tensor size {comm.size}"
            )
        self.comm = comm
        self.input_is_parallel = input_is_parallel
        full_w = init_mod.param_payload((in_features, out_features), weight_init, rng, dtype)
        self.weight = _shard_param(full_w, 0, comm.size, comm.rank)
        if bias:
            # bias is replicated: it is added after the all-reduce
            self.bias: Optional[Parameter] = Parameter(
                init_mod.param_payload((out_features,), init_mod.zeros_init, rng, dtype)
            )
        else:
            self.register_parameter("bias", None)

    def forward(self, x: Tensor) -> Tensor:
        if not self.input_is_parallel:
            x = scatter_to_parallel_region(x, self.comm, axis=-1)
        partial = ops.matmul(x, self.weight)
        y = reduce_from_parallel_region(partial, self.comm)
        if self.bias is not None:
            y = ops.add(y, self.bias)
        return y


class ParallelMLP1D(Module):
    """Fig 4: column-parallel H->rH, GELU, row-parallel rH->H
    (one all-reduce forward, one backward)."""

    def __init__(
        self,
        hidden_size: int,
        comm: Communicator,
        mlp_ratio: int = 4,
        dropout: float = 0.0,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.dense_1 = ColumnParallelLinear(
            hidden_size, mlp_ratio * hidden_size, comm, dtype=dtype, rng=rng
        )
        self.dense_2 = RowParallelLinear(
            mlp_ratio * hidden_size, hidden_size, comm, dtype=dtype, rng=rng
        )
        self.dropout = Dropout(dropout) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        h = ops.gelu(self.dense_1(x))
        h = self.dense_2(h)
        if self.dropout is not None:
            h = self.dropout(h)
        return h


class ParallelSelfAttention1D(Module):
    """Attention with heads split across the tensor group.

    The QKV projection is column-parallel *per section* (each rank gets its
    heads' slice of Q, K and V), attention runs locally on the head subset,
    and the output projection is row-parallel.  Requires
    ``n_heads % tensor_size == 0`` — the constraint the paper calls out when
    comparing against sequence parallelism (§5.3).
    """

    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        comm: Communicator,
        attn_dropout: float = 0.0,
        out_dropout: float = 0.0,
        causal: bool = False,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        p = comm.size
        if n_heads % p != 0:
            raise ValueError(
                f"1D tensor parallelism requires n_heads ({n_heads}) divisible "
                f"by the tensor parallel size ({p})"
            )
        if hidden_size % n_heads != 0:
            raise ValueError(f"hidden {hidden_size} not divisible by heads {n_heads}")
        self.comm = comm
        self.hidden_size = hidden_size
        self.n_heads = n_heads
        self.local_heads = n_heads // p
        self.causal = causal
        self.attn_dropout = attn_dropout

        # global [H, 3H] weight drawn once; shard each of Q/K/V sections by
        # columns so the local slice is head-aligned
        full_w = init_mod.param_payload(
            (hidden_size, 3 * hidden_size), init_mod.lecun_normal(), rng, dtype
        )
        full_b = init_mod.param_payload((3 * hidden_size,), init_mod.zeros_init, rng, dtype)
        self.qkv_weight = Parameter(_shard_qkv(full_w, p, comm.rank, axis=1))
        self.qkv_bias = Parameter(_shard_qkv(full_b, p, comm.rank, axis=0))
        self.out = RowParallelLinear(hidden_size, hidden_size, comm, dtype=dtype, rng=rng)
        self.dropout = Dropout(out_dropout) if out_dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        x = copy_to_parallel_region(x, self.comm)
        qkv = ops.add(ops.matmul(x, self.qkv_weight), self.qkv_bias)  # [B,S,3H/p]
        q, k, v = ops.split(qkv, 3, axis=-1)
        q = split_heads(q, self.local_heads)
        k = split_heads(k, self.local_heads)
        v = split_heads(v, self.local_heads)
        attn = attention_core(
            q, k, v, causal=self.causal,
            dropout_p=self.attn_dropout, training=self.training,
        )
        y = self.out(merge_heads(attn))
        if self.dropout is not None:
            y = self.dropout(y)
        return y


def _shard_qkv(full, parts: int, index: int, axis: int):
    """Shard a fused-QKV weight/bias: take the ``index``-th column slice of
    each of the Q, K, V sections and re-concatenate."""
    from repro.autograd import payload_ops as P

    sections = P.psplit(full, 3, axis)
    shards = [shard_payload(s, axis, parts, index) for s in sections]
    return P.pconcat(shards, axis)


class ParallelTransformerLayer1D(Module):
    """Pre-norm Transformer layer under 1D tensor parallelism.

    LayerNorms are replicated (their inputs are identical on all tensor
    ranks after the row-parallel all-reduce)."""

    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        comm: Communicator,
        mlp_ratio: int = 4,
        attn_dropout: float = 0.0,
        dropout: float = 0.0,
        causal: bool = False,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.norm_1 = LayerNorm(hidden_size, dtype=dtype, rng=rng)
        self.attention = ParallelSelfAttention1D(
            hidden_size, n_heads, comm,
            attn_dropout=attn_dropout, out_dropout=dropout, causal=causal,
            dtype=dtype, rng=rng,
        )
        self.norm_2 = LayerNorm(hidden_size, dtype=dtype, rng=rng)
        self.mlp = ParallelMLP1D(
            hidden_size, comm, mlp_ratio, dropout=dropout, dtype=dtype, rng=rng
        )

    def forward(self, x: Tensor) -> Tensor:
        x = ops.add(x, self.attention(self.norm_1(x)))
        x = ops.add(x, self.mlp(self.norm_2(x)))
        return x


class VocabParallelEmbedding1D(Module):
    """Token embedding with the vocabulary split across the tensor group.

    Each rank holds rows ``[rank*V/p, (rank+1)*V/p)``; out-of-shard lookups
    contribute zero and the partial embeddings are summed with an
    all-reduce.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        comm: Communicator,
        weight_init: init_mod.InitFn = init_mod.normal(0.02),
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_embeddings % comm.size != 0:
            raise ValueError(
                f"vocab {num_embeddings} not divisible by tensor size {comm.size}"
            )
        self.comm = comm
        self.vocab_per_rank = num_embeddings // comm.size
        self.vocab_start = comm.rank * self.vocab_per_rank
        full = init_mod.param_payload(
            (num_embeddings, embedding_dim), weight_init, rng, dtype
        )
        self.weight = _shard_param(full, 0, comm.size, comm.rank)

    def forward(self, indices) -> Tensor:
        if isinstance(indices, Tensor):
            indices = indices.payload
        from repro.comm.payload import is_spec as _is_spec

        if _is_spec(self.weight.payload) or _is_spec(indices):
            out = ops.embedding(self.weight, indices)
            return reduce_from_parallel_region(out, self.comm)
        idx = np.asarray(indices)
        in_shard = (idx >= self.vocab_start) & (idx < self.vocab_start + self.vocab_per_rank)
        local_idx = np.where(in_shard, idx - self.vocab_start, 0)
        emb = ops.embedding(self.weight, local_idx)
        mask = Tensor(in_shard.astype(self.weight.dtype)[..., None])
        emb = ops.mul(emb, mask)
        return reduce_from_parallel_region(emb, self.comm)
