"""Differentiable communication operations.

Tensor parallelism is built from conjugate pairs: an op that communicates in
forward must perform the adjoint communication in backward.

==============================  ==============================
forward                         backward
==============================  ==============================
identity                        all-reduce        (Megatron "f")
all-reduce                      identity          (Megatron "g")
split along axis                all-gather
all-gather                      split
reduce-scatter                  all-gather
all-reduce mean of a scalar     scale by 1/p
==============================  ==============================

All of them work on materialized and spec payloads alike, and charge the
cost model through the underlying :class:`Communicator`.
"""

from __future__ import annotations

from typing import Optional

from repro.autograd.function import FnCtx, Function
from repro.autograd import payload_ops as P
from repro.comm.communicator import Communicator
from repro.comm.payload import Payload, is_spec
from repro.tensor.tensor import Tensor


class IdentityFwdAllReduceBwd(Function):
    """Megatron's ``f``: pass-through forward; all-reduce gradients in
    backward.  Placed where a replicated activation enters a
    tensor-parallel region."""

    IS_VIEW = True  # forward is a pass-through; no new buffer

    @staticmethod
    def forward(ctx: FnCtx, x: Tensor, comm: Communicator) -> Payload:
        ctx.comm = comm
        return x.payload

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        return (ctx.comm.all_reduce(g),)


class AllReduceFwdIdentityBwd(Function):
    """Megatron's ``g``: all-reduce forward; identity backward.  Placed
    where partial results leave a tensor-parallel region."""

    @staticmethod
    def forward(ctx: FnCtx, x: Tensor, comm: Communicator) -> Payload:
        return comm.all_reduce(x.payload)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        return (g,)


class SplitFwdAllGatherBwd(Function):
    """Scatter an activation along ``axis`` (keep this rank's chunk);
    gather gradients back in backward."""

    @staticmethod
    def forward(ctx: FnCtx, x: Tensor, comm: Communicator, axis: int) -> Payload:
        ctx.comm = comm
        ctx.axis = axis
        return P.psplit(x.payload, comm.size, axis)[comm.rank]

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        return (ctx.comm.all_gather(g, axis=ctx.axis),)


class AllGatherFwdSplitBwd(Function):
    """Gather chunks along ``axis``; in backward keep only the local
    gradient slice."""

    @staticmethod
    def forward(ctx: FnCtx, x: Tensor, comm: Communicator, axis: int) -> Payload:
        ctx.comm = comm
        ctx.axis = axis
        return comm.all_gather(x.payload, axis=axis)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        return (P.psplit(g, ctx.comm.size, ctx.axis)[ctx.comm.rank],)


class ReduceScatterFwdAllGatherBwd(Function):
    @staticmethod
    def forward(ctx: FnCtx, x: Tensor, comm: Communicator, axis: int) -> Payload:
        ctx.comm = comm
        ctx.axis = axis
        return comm.reduce_scatter(x.payload, axis=axis)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        return (ctx.comm.all_gather(g, axis=ctx.axis),)


class AllGatherFwdReduceScatterBwd(Function):
    @staticmethod
    def forward(ctx: FnCtx, x: Tensor, comm: Communicator, axis: int) -> Payload:
        ctx.comm = comm
        ctx.axis = axis
        return comm.all_gather(x.payload, axis=axis)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        return (ctx.comm.reduce_scatter(g, axis=ctx.axis),)


class AllReduceMeanScalar(Function):
    """Average a per-rank scalar (e.g. the loss over a batch shard) across
    the group.  Backward scales by 1/p without communication: each rank's
    term appears once in the mean."""

    @staticmethod
    def forward(ctx: FnCtx, x: Tensor, comm: Communicator) -> Payload:
        ctx.scale = 1.0 / comm.size
        summed = comm.all_reduce(x.payload)
        if is_spec(summed):
            return summed
        return summed * ctx.scale

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        if is_spec(g):
            return (g,)
        return (g * ctx.scale,)


# -- dispatcher helpers -------------------------------------------------------


def copy_to_parallel_region(x: Tensor, comm: Communicator) -> Tensor:
    return IdentityFwdAllReduceBwd.apply(x, comm)


def reduce_from_parallel_region(x: Tensor, comm: Communicator) -> Tensor:
    return AllReduceFwdIdentityBwd.apply(x, comm)


def scatter_to_parallel_region(x: Tensor, comm: Communicator, axis: int) -> Tensor:
    return SplitFwdAllGatherBwd.apply(x, comm, axis)


def gather_from_parallel_region(x: Tensor, comm: Communicator, axis: int) -> Tensor:
    return AllGatherFwdSplitBwd.apply(x, comm, axis)


def reduce_scatter_parallel_region(x: Tensor, comm: Communicator, axis: int) -> Tensor:
    return ReduceScatterFwdAllGatherBwd.apply(x, comm, axis)


def all_gather_parallel_region(x: Tensor, comm: Communicator, axis: int) -> Tensor:
    return AllGatherFwdReduceScatterBwd.apply(x, comm, axis)


def mean_loss_across(x: Tensor, comm: Optional[Communicator]) -> Tensor:
    """Average a scalar loss across a batch-sharding group (no-op for
    ``None`` or singleton groups)."""
    if comm is None or comm.size == 1:
        return x
    return AllReduceMeanScalar.apply(x, comm)
