"""Vocab-parallel cross-entropy.

With a column-parallel LM head the logits arrive sharded along the vocab
dimension ([N, V/p] per rank).  Gathering them (as ``gather_output=True``
does) materializes the full [N, V] matrix — typically the largest
activation in an LM.  This op computes the softmax cross-entropy *without
gathering*, using three scalar-per-row collectives:

1. all-reduce(max) of the row maxima (numerical stability),
2. all-reduce(sum) of the row exp-sums,
3. all-reduce(sum) of each row's target logit (only the rank owning the
   target's vocab slice contributes).

Backward is fully local: ``softmax_local - onehot_local`` (the one-hot hits
only the owner rank's shard).  Wire traffic drops from O(N·V) to O(N).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.function import FnCtx, Function
from repro.comm.communicator import Communicator
from repro.comm.payload import Payload, SpecArray, is_spec
from repro.tensor.tensor import Tensor


class VocabParallelCrossEntropy(Function):
    """Mean CE over logits [N, V/p] sharded by vocab across ``comm``."""

    @staticmethod
    def forward(ctx: FnCtx, logits: Tensor, targets, comm: Communicator) -> Payload:
        ctx.comm = comm
        ctx.flops = 8 * logits.size
        n, v_local = logits.shape[-2], logits.shape[-1]
        if is_spec(logits.payload):
            ctx.spec = (logits.shape, logits.dtype)
            stats = SpecArray((n,), logits.dtype)
            comm.all_reduce(stats, op="max")
            comm.all_reduce(stats)
            comm.all_reduce(stats)
            return SpecArray((), logits.dtype)
        ctx.spec = None
        t = np.asarray(targets.payload if isinstance(targets, Tensor) else targets)
        t = t.reshape(-1)
        flat = logits.payload.reshape(-1, v_local)
        if flat.shape[0] != t.size:
            raise ValueError(
                f"targets ({t.size}) do not match logit rows ({flat.shape[0]})"
            )
        vocab_start = comm.rank * v_local
        # 1. global row max
        local_max = np.max(flat, axis=-1)
        global_max = comm.all_reduce(local_max.astype(np.float32), op="max")
        shifted = flat.astype(np.float32) - global_max[:, None]
        e = np.exp(shifted)
        # 2. global exp sum
        local_sum = np.sum(e, axis=-1)
        global_sum = comm.all_reduce(local_sum)
        # 3. target logit (owner rank contributes, others send zero)
        in_shard = (t >= vocab_start) & (t < vocab_start + v_local)
        local_idx = np.where(in_shard, t - vocab_start, 0)
        rows = np.arange(t.size)
        target_shifted = np.where(in_shard, shifted[rows, local_idx], 0.0)
        target_global = comm.all_reduce(target_shifted.astype(np.float32))

        loss = np.mean(np.log(global_sum) - target_global)
        ctx.softmax = e / global_sum[:, None]
        ctx.in_shard = in_shard
        ctx.local_idx = local_idx
        ctx.n_rows = t.size
        ctx.out_dtype = logits.dtype
        return np.asarray(loss, dtype=logits.dtype)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        if ctx.spec is not None or is_spec(g):
            shape, dtype = ctx.spec
            return (SpecArray(shape, dtype),)
        grad = ctx.softmax.copy()
        rows = np.arange(ctx.n_rows)
        grad[rows[ctx.in_shard], ctx.local_idx[ctx.in_shard]] -= 1.0
        grad *= float(g) / ctx.n_rows
        return (grad.astype(ctx.out_dtype),)


def vocab_parallel_cross_entropy(
    logits: Tensor, targets, comm: Communicator
) -> Tensor:
    """Mean softmax cross-entropy over vocab-sharded logits.

    ``logits``: [N, V/p] or [B, S, V/p]; ``targets``: matching int ids.
    """
    from repro.autograd import ops

    if logits.ndim == 3:
        b, s, v = logits.shape
        logits = ops.reshape(logits, (b * s, v))
        if isinstance(targets, Tensor):
            targets = targets.payload
        if not is_spec(targets) and not isinstance(targets, SpecArray):
            targets = np.asarray(targets).reshape(-1)
    return VocabParallelCrossEntropy.apply(logits, targets, comm)
