"""Utilities shared by the 2D / 2.5D / 3D tensor-parallel layers.

These handle the two recurring problems of multi-dimensional TP:

* normalization over a feature dimension that is sharded (statistics need
  an all-reduce over the feature-sharding group), and
* parameters that are *replicated* across batch-sharding groups (bias, pos
  embeddings, layernorm affine): their gradients must be summed over every
  group that shards the batch, or replicas would drift apart.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autograd.function import FnCtx, Function
from repro.autograd import ops
from repro.autograd import payload_ops as P
from repro.comm.communicator import Communicator
from repro.comm.payload import Payload, SpecArray, is_spec
from repro.tensor.tensor import Tensor


def sync_parameter_gradients(module) -> None:
    """All-reduce (sum) gradients of parameters that declare
    ``grad_sync_comms`` — parameters replicated across a group whose members
    each saw only part of the batch/sequence (2.5D depth replication,
    sequence parallelism)."""
    for p in module.parameters():
        comms = getattr(p, "grad_sync_comms", [])
        if p.grad is None:
            continue
        for comm in comms:
            if comm.size > 1:
                p.grad.payload = comm.all_reduce(p.grad.payload)


class AddSharedParam(Function):
    """``x + param`` where ``param`` (bias / positional embedding) is
    replicated across the groups in ``sync_comms``; backward reduces the
    broadcast dims locally, then all-reduces the parameter gradient over
    each sync group so replicas receive the global sum."""

    @staticmethod
    def forward(ctx: FnCtx, x: Tensor, param: Tensor, sync_comms: Sequence[Communicator]) -> Payload:
        ctx.sync_comms = list(sync_comms)
        ctx.p_shape = param.shape
        ctx.flops = x.size
        return P.padd(x.payload, param.payload)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        dparam = P.unbroadcast(g, ctx.p_shape)
        for comm in ctx.sync_comms:
            if comm.size > 1:
                dparam = comm.all_reduce(dparam)
        return g, dparam


def add_shared(x: Tensor, param: Tensor, sync_comms: Sequence[Communicator]) -> Tensor:
    return AddSharedParam.apply(x, param, sync_comms)


class ParallelLayerNormFn(Function):
    """LayerNorm over a feature dim sharded across ``stats_comm``.

    Forward all-reduces (sum, sumsq) over the feature group; backward
    all-reduces the two per-row reduction terms of the dx formula over the
    same group, and the gamma/beta gradients over the batch-sharding groups
    in ``grad_comms``.
    """

    @staticmethod
    def forward(
        ctx: FnCtx,
        x: Tensor,
        gamma: Tensor,
        beta: Tensor,
        eps: float,
        stats_comm: Communicator,
        grad_comms: Sequence[Communicator],
    ) -> Payload:
        ctx.stats_comm = stats_comm
        ctx.grad_comms = list(grad_comms)
        ctx.flops = 8 * x.size
        h_local = x.shape[-1]
        h_global = h_local * stats_comm.size
        ctx.shapes = (x.shape, gamma.shape, beta.shape, x.dtype)
        if is_spec(x.payload):
            # cost-equivalent collectives on spec stats
            stats = SpecArray(x.shape[:-1] + (2,), x.dtype)
            stats_comm.all_reduce(stats)
            return x.payload.copy()
        local = np.stack(
            [np.sum(x.payload, axis=-1), np.sum(x.payload**2, axis=-1)], axis=-1
        )
        total = stats_comm.all_reduce(local)
        mean = total[..., 0:1] / h_global
        var = total[..., 1:2] / h_global - mean**2
        inv = 1.0 / np.sqrt(var + eps)
        xhat = (x.payload - mean) * inv
        ctx.xhat = xhat
        ctx.inv = inv
        ctx.gamma = gamma.payload
        ctx.h_global = h_global
        return xhat * gamma.payload + beta.payload

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        x_shape, g_shape, b_shape, dtype = ctx.shapes
        if is_spec(g):
            stats = SpecArray(tuple(x_shape[:-1]) + (2,), dtype)
            ctx.stats_comm.all_reduce(stats)
            dgamma = SpecArray(g_shape, dtype)
            dbeta = SpecArray(b_shape, dtype)
            for comm in ctx.grad_comms:
                if comm.size > 1:
                    dgamma = comm.all_reduce(dgamma)
                    dbeta = comm.all_reduce(dbeta)
            return SpecArray(x_shape, dtype), dgamma, dbeta
        xhat, inv, gamma = ctx.xhat, ctx.inv, ctx.gamma
        h = ctx.h_global
        reduce_axes = tuple(range(g.ndim - 1))
        dgamma = np.sum(g * xhat, axis=reduce_axes)
        dbeta = np.sum(g, axis=reduce_axes)
        for comm in ctx.grad_comms:
            if comm.size > 1:
                dgamma = comm.all_reduce(dgamma)
                dbeta = comm.all_reduce(dbeta)
        gx = g * gamma
        local = np.stack(
            [np.sum(gx, axis=-1), np.sum(gx * xhat, axis=-1)], axis=-1
        )
        total = ctx.stats_comm.all_reduce(local)
        mean_gx = total[..., 0:1] / h
        mean_gxxh = total[..., 1:2] / h
        dx = (gx - mean_gx - xhat * mean_gxxh) * inv
        return dx, dgamma, dbeta


def parallel_layer_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    stats_comm: Communicator,
    grad_comms: Sequence[Communicator],
    eps: float = 1e-5,
) -> Tensor:
    return ParallelLayerNormFn.apply(x, gamma, beta, eps, stats_comm, grad_comms)


def parallel_cross_entropy(
    logits: Tensor,
    targets,
    gather_comm: Optional[Communicator],
    batch_comms: Sequence[Communicator],
) -> Tensor:
    """Cross-entropy when logits are sharded along classes and/or batch.

    Gathers the class dimension over ``gather_comm`` (split in backward),
    computes local CE over this rank's batch rows, then averages the scalar
    loss over every batch-sharding group so the result equals the serial
    global-batch mean.
    """
    from repro.parallel.comm_ops import gather_from_parallel_region, mean_loss_across

    if gather_comm is not None and gather_comm.size > 1:
        logits = gather_from_parallel_region(logits, gather_comm, axis=-1)
    loss = ops.cross_entropy(logits, targets)
    for comm in batch_comms:
        loss = mean_loss_across(loss, comm)
    return loss
