"""Sequence parallelism with Ring Self-Attention — Li et al. [21], §2.3.

The model is replicated (like data parallelism) but the *sequence* dimension
of the input is split across ranks, breaking the memory wall of the
quadratic attention score matrix: each rank only ever materializes
``[B, heads, S/p, S]`` scores and ``S/p``-length activations.

The attention core is rebuilt from two ring primitives:

* :class:`RingQK` — scores ``Q_local @ K_r^T`` for every ring position r;
  K blocks rotate around the ring (p-1 ``ring_pass`` steps).
* :class:`RingAV` — ``sum_r P_r @ V_r`` with V blocks rotating.

Backward replays the rings for the rotating operand's gradient and uses an
all-to-all to return each rank's partial gradient for the blocks it
produced (``dK_r = sum_m dS_{m,r}^T Q_m`` is a reduction *to* rank r).

Parameters carry ``grad_sync_comms = [sequence group]``: every rank saw
only its tokens, so replicated-parameter gradients are summed across the
group after backward.
"""

from __future__ import annotations

import math
from typing import List, Optional, Union

import numpy as np

from repro.autograd import ops
from repro.autograd.function import FnCtx, Function
from repro.autograd import payload_ops as P
from repro.comm.communicator import Communicator
from repro.comm.payload import Payload
from repro.context.parallel_context import ParallelContext, ParallelMode
from repro.nn import init as init_mod
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.attention import merge_heads, split_heads
from repro.nn.module import Module, Parameter
from repro.nn.transformer import FeedForward
from repro.tensor.sharding import shard_payload
from repro.tensor.tensor import Tensor


class RingQK(Function):
    """scores[B, nh, S/p, S] = Q_local @ K_global^T via ring rotation."""

    @staticmethod
    def forward(ctx: FnCtx, q: Tensor, k: Tensor, comm: Communicator) -> Payload:
        p = comm.size
        ctx.comm = comm
        ctx.save_for_backward(q, k)
        ctx.flops = p * P.matmul_flops(q.shape, P.pswapaxes(k.payload, -1, -2).shape)
        ctx.backward_flops = 2 * ctx.flops
        chunks: List[Optional[Payload]] = [None] * p
        cur = k.payload
        for t in range(p):
            src = (comm.rank - t) % p
            chunks[src] = P.pmatmul(q.payload, P.pswapaxes(cur, -1, -2))
            if t < p - 1:
                cur = comm.ring_pass(cur)
        return P.pconcat(chunks, axis=-1)

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        q, k = ctx.saved_tensors
        comm = ctx.comm
        p = comm.size
        g_blocks = P.psplit(g, p, axis=-1)  # g_blocks[r] pairs with K_r
        # dQ = sum_r g_r @ K_r — replay the K ring
        dq: Optional[Payload] = None
        cur = k.payload
        for t in range(p):
            src = (comm.rank - t) % p
            part = P.pmatmul(g_blocks[src], cur)
            dq = part if dq is None else P.padd(dq, part)
            if t < p - 1:
                cur = comm.ring_pass(cur)
        # dK_r = sum_m g_{m,r}^T @ Q_m — all-to-all the partials, sum locally
        partials = [
            P.pmatmul(P.pswapaxes(g_blocks[r], -1, -2), q.payload) for r in range(p)
        ]
        received = comm.all_to_all(partials)
        dk: Optional[Payload] = None
        for part in received:
            dk = part if dk is None else P.padd(dk, part)
        return dq, dk


class RingAV(Function):
    """out[B, nh, S/p, d] = probs @ V_global via ring rotation of V."""

    @staticmethod
    def forward(ctx: FnCtx, probs: Tensor, v: Tensor, comm: Communicator) -> Payload:
        p = comm.size
        ctx.comm = comm
        ctx.save_for_backward(probs, v)
        p_blocks = P.psplit(probs.payload, p, axis=-1)
        ctx.flops = p * P.matmul_flops(p_blocks[0].shape, v.shape)
        ctx.backward_flops = 2 * ctx.flops
        out: Optional[Payload] = None
        cur = v.payload
        for t in range(p):
            src = (comm.rank - t) % p
            part = P.pmatmul(p_blocks[src], cur)
            out = part if out is None else P.padd(out, part)
            if t < p - 1:
                cur = comm.ring_pass(cur)
        return out

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        probs, v = ctx.saved_tensors
        comm = ctx.comm
        p = comm.size
        p_blocks = P.psplit(probs.payload, p, axis=-1)
        # dP_r = g @ V_r^T — replay the V ring
        chunks: List[Optional[Payload]] = [None] * p
        cur = v.payload
        for t in range(p):
            src = (comm.rank - t) % p
            chunks[src] = P.pmatmul(g, P.pswapaxes(cur, -1, -2))
            if t < p - 1:
                cur = comm.ring_pass(cur)
        dprobs = P.pconcat(chunks, axis=-1)
        # dV_r = sum_m P_{m,r}^T @ g_m — all-to-all partials
        partials = [P.pmatmul(P.pswapaxes(p_blocks[r], -1, -2), g) for r in range(p)]
        received = comm.all_to_all(partials)
        dv: Optional[Payload] = None
        for part in received:
            dv = part if dv is None else P.padd(dv, part)
        return dprobs, dv


def _mark_seq_synced(module: Module, comm: Communicator) -> None:
    for p in module.parameters():
        existing = getattr(p, "grad_sync_comms", [])
        p.grad_sync_comms = list(existing) + [comm]


class RingSelfAttention(Module):
    """Drop-in MHA replacement for sequence parallelism.

    QKV and output projections are ordinary replicated Linears acting on
    the local sub-sequence; the attention core uses RingQK / RingAV.
    """

    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        comm: Communicator,
        attn_dropout: float = 0.0,
        out_dropout: float = 0.0,
        causal: bool = False,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if hidden_size % n_heads != 0:
            raise ValueError(f"hidden {hidden_size} not divisible by heads {n_heads}")
        self.comm = comm
        self.n_heads = n_heads
        self.attn_dropout = attn_dropout
        self.causal = causal
        self.qkv = Linear(
            hidden_size, 3 * hidden_size,
            weight_init=init_mod.lecun_normal(), dtype=dtype, rng=rng,
        )
        self.out = Linear(
            hidden_size, hidden_size,
            weight_init=init_mod.lecun_normal(), dtype=dtype, rng=rng,
        )
        self.dropout = Dropout(out_dropout) if out_dropout > 0 else None
        _mark_seq_synced(self, comm)

    def forward(self, x: Tensor) -> Tensor:
        qkv = self.qkv(x)  # [B, S/p, 3H]
        q, k, v = ops.split(qkv, 3, axis=-1)
        q = split_heads(q, self.n_heads)
        k = split_heads(k, self.n_heads)
        v = split_heads(v, self.n_heads)
        # scale q, not the ring scores: the [B, nh, S/p, S] score buffer is
        # the layer's largest activation and must not be duplicated
        q = ops.mul(q, 1.0 / math.sqrt(q.shape[-1]))
        scores = RingQK.apply(q, k, self.comm)  # [B, nh, S/p, S]
        if self.causal:
            scores = ops.add(scores, Tensor(self._causal_mask(scores)))
        probs = ops.softmax(scores, axis=-1)
        if self.attn_dropout > 0:
            probs = ops.dropout(probs, self.attn_dropout, training=self.training)
        attn = RingAV.apply(probs, v, self.comm)  # [B, nh, S/p, d]
        y = self.out(merge_heads(attn))
        if self.dropout is not None:
            y = self.dropout(y)
        return y

    def _causal_mask(self, scores: Tensor):
        """Additive causal mask for the local query block: query at local
        row i sits at global position rank*s_loc + i and may only attend
        to keys at global positions <= that."""
        from repro.comm.payload import SpecArray, is_spec

        s_loc, s_full = scores.shape[-2], scores.shape[-1]
        if is_spec(scores.payload):
            return SpecArray((s_loc, s_full), scores.dtype)
        offset = self.comm.rank * s_loc
        neg = -1e4 if scores.dtype.itemsize < 4 else -1e9
        q_pos = offset + np.arange(s_loc)[:, None]
        k_pos = np.arange(s_full)[None, :]
        return (k_pos > q_pos).astype(scores.dtype) * np.asarray(neg, dtype=scores.dtype)


class SequenceParallelTransformerLayer(Module):
    """Transformer layer operating on a sub-sequence [B, S/p, H]; only the
    attention core communicates (the rings)."""

    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        comm: Communicator,
        mlp_ratio: int = 4,
        attn_dropout: float = 0.0,
        dropout: float = 0.0,
        causal: bool = False,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.norm_1 = LayerNorm(hidden_size, dtype=dtype, rng=rng)
        self.attention = RingSelfAttention(
            hidden_size, n_heads, comm,
            attn_dropout=attn_dropout, out_dropout=dropout, causal=causal,
            dtype=dtype, rng=rng,
        )
        self.norm_2 = LayerNorm(hidden_size, dtype=dtype, rng=rng)
        self.mlp = FeedForward(hidden_size, mlp_ratio, dropout=dropout, dtype=dtype, rng=rng)
        _mark_seq_synced(self.norm_1, comm)
        _mark_seq_synced(self.norm_2, comm)
        _mark_seq_synced(self.mlp, comm)

    def forward(self, x: Tensor) -> Tensor:
        x = ops.add(x, self.attention(self.norm_1(x)))
        x = ops.add(x, self.mlp(self.norm_2(x)))
        return x


def shard_sequence(x, comm: Communicator):
    """Global [B, S, ...] -> local [B, S/p, ...] along the sequence dim."""
    return shard_payload(x, 1, comm.size, comm.rank)
