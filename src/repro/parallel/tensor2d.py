"""2D tensor parallelism (SUMMA) — Xu et al. [39], §2.2 of the paper.

Devices form a q x q grid (p = q^2).  Activations are sharded
``[B/q (grid row i), S, H/q (grid col j)]`` and weights ``[K/q (i), N/q (j)]``
— input, weight *and* output are all partitioned, which is the memory
advantage over 1D TP that Fig 8 measures.

The distributed matmul is SUMMA: q steps of (row-broadcast an A block,
column-broadcast a B block, accumulate a local product).  Communication is
confined to one row or one column of the grid — groups of size q = sqrt(p)
instead of p — which is the hardware-compatibility advantage on
partially-connected machines (System II, Fig 11b).

Total fwd+bwd wire volume is ``3(q-1)(S_X + S_W)`` — exactly Table 1's 2D
row; the Table 1 bench asserts the counters match this closed form.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.autograd import ops
from repro.autograd.function import FnCtx, Function
from repro.autograd import payload_ops as P
from repro.comm.communicator import Communicator
from repro.comm.payload import Payload
from repro.context.parallel_context import ParallelContext, ParallelMode
from repro.nn import init as init_mod
from repro.nn.attention import attention_core, merge_heads, split_heads
from repro.nn.layers import Dropout
from repro.nn.module import Module, Parameter
from repro.parallel.common import add_shared, parallel_layer_norm
from repro.tensor.sharding import shard_payload
from repro.tensor.tensor import Tensor


class Summa2DMatMul(Function):
    """C = A @ B over the 2D grid.

    A (activations): rows sharded by grid row i, cols (K) by grid col j.
    B (weight):      rows (K) sharded by i, cols (N) by j.
    C:               rows by i, cols (N) by j — same layout as A.
    """

    @staticmethod
    def forward(
        ctx: FnCtx,
        a: Tensor,
        b: Tensor,
        row_comm: Communicator,
        col_comm: Communicator,
    ) -> Payload:
        q = row_comm.size
        i, j = col_comm.rank, row_comm.rank  # grid coordinates
        ctx.row_comm, ctx.col_comm = row_comm, col_comm
        ctx.save_for_backward(a, b)
        ctx.flops = q * P.matmul_flops(a.shape, b.shape)
        ctx.backward_flops = 2 * ctx.flops
        c: Optional[Payload] = None
        for t in range(q):
            a_t = row_comm.broadcast(a.payload if j == t else None, root=t)
            b_t = col_comm.broadcast(b.payload if i == t else None, root=t)
            part = P.pmatmul(a_t, b_t)
            c = part if c is None else P.padd(c, part)
        return c

    @staticmethod
    def backward(ctx: FnCtx, g: Payload):
        a, b = ctx.saved_tensors
        row_comm, col_comm = ctx.row_comm, ctx.col_comm
        q = row_comm.size
        i, j = col_comm.rank, row_comm.rank
        # flatten leading dims of a for the weight gradient
        a2d = P.preshape(a.payload, (-1, a.shape[-1]))
        g2d = P.preshape(g, (-1, g.shape[-1]))

        da: Optional[Payload] = None
        for t in range(q):
            b_t = col_comm.broadcast(b.payload if i == t else None, root=t)
            part = P.pmatmul(g, P.pswapaxes(b_t, -1, -2))
            red = row_comm.reduce(part, root=t)
            if j == t:
                da = red
        db: Optional[Payload] = None
        for t in range(q):
            a_t = row_comm.broadcast(a2d if j == t else None, root=t)
            part = P.pmatmul(P.pswapaxes(a_t, -1, -2), g2d)
            red = col_comm.reduce(part, root=t)
            if i == t:
                db = red
        return da, db


def matmul_2d(a: Tensor, b: Tensor, pc: ParallelContext) -> Tensor:
    return Summa2DMatMul.apply(
        a, b, pc.comm(ParallelMode.PARALLEL_2D_ROW), pc.comm(ParallelMode.PARALLEL_2D_COL)
    )


def shard_activation_2d(x: np.ndarray, pc: ParallelContext) -> np.ndarray:
    """Slice a global activation [B, ..., H] to this rank's 2D chunk
    [B/q (i), ..., H/q (j)]."""
    q = pc.summa_dim
    x = shard_payload(x, 0, q, pc.row_rank)
    return shard_payload(x, x.ndim - 1 if hasattr(x, "ndim") else -1, q, pc.col_rank)


class Linear2D(Module):
    """Linear layer with SUMMA matmul; bias sharded by grid column and
    synchronized across grid rows."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        pc: ParallelContext,
        bias: bool = True,
        weight_init: init_mod.InitFn = init_mod.lecun_normal(),
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
        qkv_sections: int = 1,
    ) -> None:
        super().__init__()
        q = pc.summa_dim
        if in_features % q or out_features % (q * qkv_sections):
            raise ValueError(
                f"Linear2D({in_features}, {out_features}) not divisible by grid dim {q}"
            )
        self.pc = pc
        full_w = init_mod.param_payload((in_features, out_features), weight_init, rng, dtype)
        full_b = init_mod.param_payload((out_features,), init_mod.zeros_init, rng, dtype) if bias else None
        w = shard_payload(full_w, 0, q, pc.row_rank)
        w = _shard_sections(w, 1, q, pc.col_rank, qkv_sections)
        self.weight = Parameter(w)
        if full_b is not None:
            self.bias: Optional[Parameter] = Parameter(
                _shard_sections(full_b, 0, q, pc.col_rank, qkv_sections)
            )
        else:
            self.register_parameter("bias", None)

    def forward(self, x: Tensor) -> Tensor:
        y = matmul_2d(x, self.weight, self.pc)
        if self.bias is not None:
            # bias replicated across grid rows (i): sync its grad over COL group
            y = add_shared(x=y, param=self.bias, sync_comms=[self.pc.comm(ParallelMode.PARALLEL_2D_COL)])
        return y


def _shard_sections(payload, axis: int, parts: int, index: int, sections: int):
    """Shard ``payload`` along ``axis`` per-section (for fused QKV weights:
    each of the ``sections`` equal blocks is sharded independently so the
    local slice stays head-aligned)."""
    if sections == 1:
        return shard_payload(payload, axis, parts, index)
    blocks = P.psplit(payload, sections, axis)
    shards = [shard_payload(b, axis, parts, index) for b in blocks]
    return P.pconcat(shards, axis)


class LayerNorm2D(Module):
    """LayerNorm over the j-sharded hidden dim; affine params are sharded by
    j, replicated over i (grads synced over the COL group)."""

    def __init__(
        self,
        normalized_size: int,
        pc: ParallelContext,
        eps: float = 1e-5,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        q = pc.summa_dim
        self.pc = pc
        self.eps = eps
        full_g = init_mod.param_payload((normalized_size,), init_mod.ones_init, rng, dtype)
        full_b = init_mod.param_payload((normalized_size,), init_mod.zeros_init, rng, dtype)
        self.gamma = Parameter(shard_payload(full_g, 0, q, pc.col_rank))
        self.beta = Parameter(shard_payload(full_b, 0, q, pc.col_rank))

    def forward(self, x: Tensor) -> Tensor:
        return parallel_layer_norm(
            x,
            self.gamma,
            self.beta,
            stats_comm=self.pc.comm(ParallelMode.PARALLEL_2D_ROW),
            grad_comms=[self.pc.comm(ParallelMode.PARALLEL_2D_COL)],
            eps=self.eps,
        )


class ParallelMLP2D(Module):
    def __init__(
        self,
        hidden_size: int,
        pc: ParallelContext,
        mlp_ratio: int = 4,
        dropout: float = 0.0,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.dense_1 = Linear2D(hidden_size, mlp_ratio * hidden_size, pc, dtype=dtype, rng=rng)
        self.dense_2 = Linear2D(mlp_ratio * hidden_size, hidden_size, pc, dtype=dtype, rng=rng)
        self.dropout = Dropout(dropout) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        h = ops.gelu(self.dense_1(x))
        h = self.dense_2(h)
        if self.dropout is not None:
            h = self.dropout(h)
        return h


class ParallelSelfAttention2D(Module):
    """Attention on the 2D grid: batch sharded by i, heads sharded by j.

    After the 2D QKV projection each rank holds [B/q, S, 3H/q] with its
    n_heads/q heads' features, so the attention core is entirely local —
    no communication beyond the SUMMA matmuls.
    """

    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        pc: ParallelContext,
        attn_dropout: float = 0.0,
        out_dropout: float = 0.0,
        causal: bool = False,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        q = pc.summa_dim
        if n_heads % q != 0:
            raise ValueError(f"2D attention needs n_heads ({n_heads}) divisible by q ({q})")
        self.pc = pc
        self.local_heads = n_heads // q
        self.causal = causal
        self.attn_dropout = attn_dropout
        self.qkv = Linear2D(hidden_size, 3 * hidden_size, pc, dtype=dtype, rng=rng, qkv_sections=3)
        self.out = Linear2D(hidden_size, hidden_size, pc, dtype=dtype, rng=rng)
        self.dropout = Dropout(out_dropout) if out_dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        qkv = self.qkv(x)  # [B/q, S, 3H/q], head-aligned sections
        q_, k, v = ops.split(qkv, 3, axis=-1)
        q_ = split_heads(q_, self.local_heads)
        k = split_heads(k, self.local_heads)
        v = split_heads(v, self.local_heads)
        attn = attention_core(
            q_, k, v, causal=self.causal,
            dropout_p=self.attn_dropout, training=self.training,
        )
        y = self.out(merge_heads(attn))
        if self.dropout is not None:
            y = self.dropout(y)
        return y


class ParallelTransformerLayer2D(Module):
    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        pc: ParallelContext,
        mlp_ratio: int = 4,
        attn_dropout: float = 0.0,
        dropout: float = 0.0,
        causal: bool = False,
        dtype: Union[str, np.dtype] = "float32",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.norm_1 = LayerNorm2D(hidden_size, pc, dtype=dtype, rng=rng)
        self.attention = ParallelSelfAttention2D(
            hidden_size, n_heads, pc,
            attn_dropout=attn_dropout, out_dropout=dropout, causal=causal,
            dtype=dtype, rng=rng,
        )
        self.norm_2 = LayerNorm2D(hidden_size, pc, dtype=dtype, rng=rng)
        self.mlp = ParallelMLP2D(hidden_size, pc, mlp_ratio, dropout=dropout, dtype=dtype, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = ops.add(x, self.attention(self.norm_1(x)))
        x = ops.add(x, self.mlp(self.norm_2(x)))
        return x
