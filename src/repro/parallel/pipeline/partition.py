"""Stage partitioning.

``partition_balanced`` solves the contiguous balanced-partition problem
exactly (minimize the maximum per-stage cost) with the classic
binary-search-over-answer + greedy-feasibility algorithm; layer costs
default to 1 (uniform) but callers pass parameter counts or FLOP estimates
for heterogeneous models (embedding + transformer + head).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def partition_uniform(n_layers: int, n_stages: int) -> List[Tuple[int, int]]:
    """Contiguous [start, end) ranges of near-equal length; earlier stages
    get the remainder layers."""
    if n_stages < 1 or n_layers < n_stages:
        raise ValueError(f"cannot split {n_layers} layers into {n_stages} stages")
    base, rem = divmod(n_layers, n_stages)
    ranges = []
    start = 0
    for s in range(n_stages):
        size = base + (1 if s < rem else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def _feasible(costs: Sequence[float], n_stages: int, cap: float) -> bool:
    stages = 1
    acc = 0.0
    for c in costs:
        if c > cap:
            return False
        if acc + c > cap:
            stages += 1
            acc = c
            if stages > n_stages:
                return False
        else:
            acc += c
    return True


def partition_balanced(
    costs: Sequence[float], n_stages: int, tol: float = 1e-6
) -> List[Tuple[int, int]]:
    """Contiguous ranges minimizing the max per-stage total cost."""
    n = len(costs)
    if n_stages < 1 or n < n_stages:
        raise ValueError(f"cannot split {n} layers into {n_stages} stages")
    lo, hi = max(costs), sum(costs)
    while hi - lo > tol * max(hi, 1.0):
        mid = (lo + hi) / 2
        if _feasible(costs, n_stages, mid):
            hi = mid
        else:
            lo = mid
    cap = hi
    # greedy fill, but never leave fewer layers than remaining stages need
    ranges: List[Tuple[int, int]] = []
    start = 0
    acc = 0.0
    stage = 0
    for idx, c in enumerate(costs):
        remaining_stages = n_stages - stage - 1
        must_break = (n - idx) == remaining_stages  # each later stage needs >= 1 layer
        if idx > start and (acc + c > cap * (1 + tol) or must_break):
            ranges.append((start, idx))
            start = idx
            acc = 0.0
            stage += 1
        acc += c
    ranges.append((start, n))
    while len(ranges) < n_stages:  # degenerate: pad by splitting the last range
        s, e = ranges.pop()
        ranges.append((s, e - 1))
        ranges.append((e - 1, e))
    return ranges
