"""Pipeline parallelism (§2.2 of the paper, Fig 3c).

Consecutive layers are partitioned into stages, one per pipeline rank;
activations and their gradients flow between stages over point-to-point
sends.  Two microbatch schedules are provided: GPipe (all forwards, then
all backwards) and 1F1B (PipeDream-flush).  The pipeline bubble emerges
from the simulated clocks — a stage's recv cannot complete before the
sender produced the activation.
"""

from repro.parallel.pipeline.partition import partition_balanced, partition_uniform
from repro.parallel.pipeline.schedule import GPipeSchedule, OneFOneBSchedule, PipelineSchedule

__all__ = [
    "partition_balanced",
    "partition_uniform",
    "PipelineSchedule",
    "GPipeSchedule",
    "OneFOneBSchedule",
]
