"""Microbatch schedules: GPipe and 1F1B.

A schedule drives one training step on one pipeline stage: it splits the
global batch into microbatches, runs the stage module on each, moves
activations/gradients over the PIPELINE communicator, and returns the
(microbatch-averaged) loss on the last stage.

The loss of each microbatch is scaled by ``1/num_microbatches`` before
backward so accumulated parameter gradients equal those of the equivalent
single large batch.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.autograd import ops
from repro.comm.communicator import Communicator
from repro.comm.payload import Payload, SpecArray, is_spec
from repro.context.parallel_context import ParallelContext, ParallelMode
from repro.nn.module import Module
from repro.tensor.sharding import shard_payload
from repro.tensor.tensor import Tensor

Criterion = Callable[[Tensor, Any], Tensor]


def _split_micro(batch, m: int):
    """Split an array/SpecArray (or None) into m microbatches along axis 0."""
    if batch is None:
        return [None] * m
    if is_spec(batch):
        return [
            SpecArray((batch.shape[0] // m,) + tuple(batch.shape[1:]), batch.dtype)
            for _ in range(m)
        ]
    arr = np.asarray(batch)
    if arr.shape[0] % m != 0:
        raise ValueError(f"batch {arr.shape[0]} not divisible into {m} microbatches")
    return [np.ascontiguousarray(c) for c in np.split(arr, m, axis=0)]


class PipelineSchedule:
    """Base class holding stage topology helpers."""

    def __init__(self, pc: ParallelContext, num_microbatches: int) -> None:
        self.pc = pc
        self.num_microbatches = num_microbatches
        self.comm = pc.comm(ParallelMode.PIPELINE)
        self.stage = pc.pp_rank
        self.n_stages = pc.pipeline_size
        runtime = self.comm.group.runtime
        self._tracer = runtime.tracer
        self._clock = runtime.clocks[self.comm.global_rank]
        # overlap mode: activation/gradient sends run on the sender's p2p
        # stream (isend) so the next microbatch's compute starts immediately;
        # handles are drained (max-joined) at the end of the step
        self._overlap = getattr(runtime, "comm_overlap", False) and self.n_stages > 1
        self._pending_sends: List[Any] = []

    @property
    def is_first(self) -> bool:
        return self.stage == 0

    @property
    def is_last(self) -> bool:
        return self.stage == self.n_stages - 1

    def _recv_fwd(self, mb: int) -> Tensor:
        payload = self._traced_recv(self.stage - 1, ("fwd", mb))
        return Tensor(payload, requires_grad=True)

    def _send_fwd(self, mb: int, out: Tensor) -> None:
        if self._overlap:
            self._pending_sends.append(
                self.comm.isend(out.payload, self.stage + 1, tag=("fwd", mb))
            )
        else:
            self.comm.send(out.payload, self.stage + 1, tag=("fwd", mb))

    def _recv_bwd(self, mb: int) -> Tensor:
        payload = self._traced_recv(self.stage + 1, ("bwd", mb))
        return Tensor(payload)

    def _traced_recv(self, src_stage: int, tag) -> Payload:
        """Receive a stage boundary payload; the time this rank sits blocked
        (upstream still busy + wire time) is recorded as a ``bubble`` span."""
        if self._tracer is None:
            return self.comm.recv(src_stage, tag=tag)
        t0 = self._clock.time
        payload = self.comm.recv(src_stage, tag=tag)
        if self._clock.time > t0:
            self._tracer.annotate(
                self.comm.global_rank, "bubble", f"{tag[0]}_stall/mb{tag[1]}",
                t0, self._clock.time,
            )
        return payload

    def _send_bwd(self, mb: int, x: Tensor) -> None:
        if x.grad is None:
            raise RuntimeError("no gradient flowed to the stage input")
        if self._overlap:
            self._pending_sends.append(
                self.comm.isend(x.grad.payload, self.stage - 1, tag=("bwd", mb))
            )
        else:
            self.comm.send(x.grad.payload, self.stage - 1, tag=("bwd", mb))

    def _drain_sends(self) -> None:
        """Wait outstanding stream sends (end of step): max-joins the stage
        clock to the last transfer so step time includes the wire."""
        for handle in self._pending_sends:
            handle.wait()
        self._pending_sends.clear()

    # -- per-microbatch work ---------------------------------------------------

    def _forward_micro(
        self,
        module: Module,
        mb: int,
        data_mb,
        target_mb,
        criterion: Optional[Criterion],
    ) -> Tuple[Optional[Tensor], Optional[Tensor], Optional[Tensor]]:
        """Returns (stage_input, stage_output, loss)."""
        t0 = self._clock.time
        if self.is_first:
            x = Tensor(data_mb) if not isinstance(data_mb, Tensor) else data_mb
        else:
            x = self._recv_fwd(mb)
        out = module(x)
        loss = None
        if self.is_last:
            if criterion is not None:
                loss = criterion(out, target_mb)
                loss = ops.mul(loss, 1.0 / self.num_microbatches)
        else:
            self._send_fwd(mb, out)
        if self._tracer is not None:
            self._tracer.annotate(
                self.comm.global_rank, "pipeline", f"fwd/mb{mb}",
                t0, self._clock.time, stage=self.stage,
            )
        return x, out, loss

    def _backward_micro(
        self, mb: int, x: Optional[Tensor], out: Tensor, loss: Optional[Tensor]
    ) -> None:
        t0 = self._clock.time
        if self.is_last:
            if loss is None:
                raise RuntimeError("last stage needs a criterion to run backward")
            loss.backward()
        else:
            grad = self._recv_bwd(mb)
            out.backward(grad)
        if not self.is_first and x is not None:
            self._send_bwd(mb, x)
        if self._tracer is not None:
            self._tracer.annotate(
                self.comm.global_rank, "pipeline", f"bwd/mb{mb}",
                t0, self._clock.time, stage=self.stage,
            )

    def run(
        self,
        module: Module,
        data,
        targets=None,
        criterion: Optional[Criterion] = None,
    ) -> Optional[float]:
        raise NotImplementedError


class GPipeSchedule(PipelineSchedule):
    """All microbatch forwards, then all backwards (Huang et al. [16]).

    Peak activation memory grows with the number of in-flight microbatches;
    bubble fraction is ``(p-1)/(m+p-1)``.
    """

    def run(self, module, data, targets=None, criterion=None) -> Optional[float]:
        m = self.num_microbatches
        data_mbs = _split_micro(data, m) if self.is_first else [None] * m
        target_mbs = _split_micro(targets, m) if self.is_last else [None] * m

        states: List[Tuple[Optional[Tensor], Tensor, Optional[Tensor]]] = []
        for mb in range(m):
            states.append(
                self._forward_micro(module, mb, data_mbs[mb], target_mbs[mb], criterion)
            )
        total = 0.0
        have_loss = False
        for mb in range(m - 1, -1, -1):
            x, out, loss = states[mb]
            self._backward_micro(mb, x, out, loss)
            if loss is not None and loss.materialized:
                total += loss.item()
                have_loss = True
            states[mb] = (None, out, None)  # free input/loss refs eagerly
        self._drain_sends()
        return total if have_loss else None


class OneFOneBSchedule(PipelineSchedule):
    """1F1B (PipeDream-flush, Narayanan et al. [25]).

    Same bubble as GPipe but peak activations bounded by the number of
    warm-up microbatches (at most the stage count) instead of all of them.
    """

    def run(self, module, data, targets=None, criterion=None) -> Optional[float]:
        m = self.num_microbatches
        data_mbs = _split_micro(data, m) if self.is_first else [None] * m
        target_mbs = _split_micro(targets, m) if self.is_last else [None] * m

        warmup = min(self.n_stages - self.stage - 1, m)
        pending: List[Tuple[int, Optional[Tensor], Tensor, Optional[Tensor]]] = []
        total = 0.0
        have_loss = False
        fwd_mb = 0
        bwd_mb = 0

        def fwd_one() -> None:
            nonlocal fwd_mb
            x, out, loss = self._forward_micro(
                module, fwd_mb, data_mbs[fwd_mb], target_mbs[fwd_mb], criterion
            )
            pending.append((fwd_mb, x, out, loss))
            fwd_mb += 1

        def bwd_one() -> None:
            nonlocal bwd_mb, total, have_loss
            mb, x, out, loss = pending.pop(0)
            assert mb == bwd_mb, "1F1B backward order violated"
            self._backward_micro(mb, x, out, loss)
            if loss is not None and loss.materialized:
                total += loss.item()
                have_loss = True
            bwd_mb += 1

        for _ in range(warmup):
            fwd_one()
        for _ in range(m - warmup):  # steady state
            fwd_one()
            bwd_one()
        for _ in range(warmup):  # drain
            bwd_one()
        self._drain_sends()
        return total if have_loss else None
