"""Data parallelism.

The model is replicated; the dataset is sharded (Fig 3a).  After backward,
parameter gradients are averaged across the data-parallel group with
bucketed all-reduce — fusing small gradients into flat buckets is what
keeps bandwidth utilisation high on real NCCL and the alpha term small in
our cost model.

With ``comm.overlap`` enabled the DDP wrapper goes further: buckets are
built over *reversed* registration order (gradients become ready back to
front) and each bucket's all-reduce is issued nonblocking from a gradient
hook the moment its last gradient lands, so bucket k's transfer runs on
the comm stream while earlier layers' backward still computes.  ``sync()``
then only waits the handles and unpacks — numerically identical to the
post-backward sweep, because each bucket's reduction combines the same
per-rank values in the same local-rank order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.comm.communicator import Communicator
from repro.comm.payload import SpecArray, is_spec
from repro.context.parallel_context import ParallelContext, ParallelMode
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor
from repro.utils.units import MB


def _bucketize(params: Sequence[Parameter], bucket_bytes: int) -> List[List[Parameter]]:
    """Greedy order-preserving bucketing: close the current bucket once it
    reaches ``bucket_bytes``.  A single parameter at or over the cap gets a
    dedicated bucket — any accumulated smaller params are flushed first, so
    an oversized param never drags neighbours past the cap with it."""
    buckets: List[List[Parameter]] = []
    current: List[Parameter] = []
    size = 0
    for p in params:
        if p.nbytes >= bucket_bytes:
            if current:
                buckets.append(current)
                current, size = [], 0
            buckets.append([p])
            continue
        current.append(p)
        size += p.nbytes
        if size >= bucket_bytes:
            buckets.append(current)
            current, size = [], 0
    if current:
        buckets.append(current)
    return buckets


def sync_gradients(
    params: Sequence[Parameter],
    comm: Communicator,
    bucket_mb: float = 25.0,
    average: bool = True,
) -> None:
    """All-reduce (and average) ``.grad`` of every parameter across ``comm``.

    Gradients are flattened into ~``bucket_mb`` MiB buckets; one all-reduce
    per bucket.  Parameters without gradients are skipped.
    """
    if comm.size == 1:
        return
    pool = comm.group.runtime.buffer_pool
    with_grads = [p for p in params if p.grad is not None]
    for bucket in _bucketize(with_grads, int(bucket_mb * MB)):
        if any(not p.grad.materialized for p in bucket):
            nbytes = sum(p.grad.nbytes for p in bucket)
            flat: object = SpecArray((nbytes // 4,), "float32")
            comm.all_reduce(flat)
            continue
        flat = _flat_bucket(bucket, pool)
        reduced = comm.all_reduce(flat)
        if pool is not None:
            pool.restock(flat)  # round done; the flat staging copy is dead
        averaged = reduced / comm.size if average else reduced
        offset = 0
        for p in bucket:
            n = p.grad.size
            p.grad.payload[...] = averaged[offset : offset + n].reshape(p.grad.shape)
            offset += n
        if pool is not None:
            # both transients are dead after the unpack above; donate them
            pool.restock(reduced)
            if averaged is not reduced:
                pool.restock(averaged)


def _flat_bucket(bucket: Sequence[Parameter], pool: Optional[Any]) -> np.ndarray:
    """Flatten a bucket's gradients into one staging buffer, pooled when the
    dtypes are uniform (``np.concatenate(..., out=)`` is bitwise identical
    to the allocating form; mixed dtypes fall back so promotion semantics
    are untouched)."""
    grads = [p.grad.numpy().reshape(-1) for p in bucket]
    first_dtype = grads[0].dtype
    if pool is not None and all(g.dtype == first_dtype for g in grads[1:]):
        flat = pool.loan((sum(g.size for g in grads),), first_dtype, "ddp.flat")
        np.concatenate(grads, out=flat)
        return flat
    return np.concatenate(grads)


class DistributedDataParallel(Module):
    """DDP wrapper: forward delegates; ``sync()`` averages gradients across
    the DATA group (call it between ``backward`` and ``optimizer.step``; the
    Engine does this automatically).

    ``overlap=True`` (default: follow ``runtime.comm_overlap``) switches to
    hook-driven bucket flushing: gradient buckets are laid out over reversed
    parameter-registration order and each bucket's all-reduce is issued
    nonblocking as soon as its last gradient is accumulated, overlapping
    communication with the rest of backward.  ``sync()`` flushes stragglers,
    waits the handles in issue order and unpacks.  Overlap assumes one
    gradient accumulation per parameter per ``sync()`` — models that reuse
    a parameter in several ops (tied weights) or accumulate over multiple
    backwards must run with ``overlap=False``; a double fire raises rather
    than desynchronizing numerics.
    """

    def __init__(
        self,
        module: Module,
        pc: ParallelContext,
        bucket_mb: float = 25.0,
        overlap: Optional[bool] = None,
    ) -> None:
        super().__init__()
        self.module = module
        self.pc = pc
        self.bucket_mb = bucket_mb
        self.comm = pc.comm(ParallelMode.DATA)
        if overlap is None:
            overlap = getattr(self.comm.group.runtime, "comm_overlap", False)
        self.overlap = bool(overlap) and self.comm.size > 1
        self._buckets: List[List[Parameter]] = []
        self._param_bucket: Dict[int, int] = {}
        self._ready: List[Set[int]] = []
        self._flushed: List[bool] = []
        self._pending: List[Tuple[int, Any]] = []
        if self.overlap:
            self._install_hooks()

    def forward(self, *args, **kwargs):
        return self.module(*args, **kwargs)

    # -- overlap path ------------------------------------------------------

    def _install_hooks(self) -> None:
        grad_params = [p for p in self.module.parameters() if p.requires_grad]
        # gradients become ready back to front during backward, so bucket
        # over reversed registration order to flush early buckets early
        self._buckets = _bucketize(
            list(reversed(grad_params)), int(self.bucket_mb * MB)
        )
        self._ready = [set() for _ in self._buckets]
        self._flushed = [False] * len(self._buckets)
        for bi, bucket in enumerate(self._buckets):
            for p in bucket:
                self._param_bucket[id(p)] = bi
                p.grad_hook = self._on_grad_ready

    def _on_grad_ready(self, p: Tensor) -> None:
        bi = self._param_bucket[id(p)]
        ready = self._ready[bi]
        if self._flushed[bi] or id(p) in ready:
            raise RuntimeError(
                f"DDP overlap: parameter {p.name or id(p)} accumulated a "
                f"gradient twice before sync() — shared parameters and "
                f"multi-backward gradient accumulation require overlap=False"
            )
        ready.add(id(p))
        if len(ready) == len(self._buckets[bi]):
            self._flush_bucket(bi)

    def _flush_bucket(self, bi: int) -> None:
        self._flushed[bi] = True
        bucket = [p for p in self._buckets[bi] if p.grad is not None]
        if not bucket:
            return
        if any(not p.grad.materialized for p in bucket):
            nbytes = sum(p.grad.nbytes for p in bucket)
            flat: Any = SpecArray((nbytes // 4,), "float32")
        else:
            flat = _flat_bucket(bucket, self.comm.group.runtime.buffer_pool)
        self._pending.append((bi, self.comm.iallreduce(flat), flat))

    def sync(self) -> None:
        if not self.overlap:
            sync_gradients(
                self.module.parameters(), self.comm, bucket_mb=self.bucket_mb
            )
            return
        # stragglers: buckets whose params got no gradient this step (or a
        # partial set), flushed in bucket order so every rank issues the
        # same collective sequence
        for bi in range(len(self._buckets)):
            if not self._flushed[bi]:
                self._flush_bucket(bi)
        pool = self.comm.group.runtime.buffer_pool
        for bi, handle, flat in self._pending:
            reduced = handle.wait()
            if pool is not None:
                pool.restock(flat)
            if is_spec(reduced):
                continue
            bucket = [p for p in self._buckets[bi] if p.grad is not None]
            averaged = reduced / self.comm.size
            offset = 0
            for p in bucket:
                n = p.grad.size
                p.grad.payload[...] = averaged[offset : offset + n].reshape(
                    p.grad.shape
                )
                offset += n
            if pool is not None:
                pool.restock(reduced)
                pool.restock(averaged)
        self._pending.clear()
        for ready in self._ready:
            ready.clear()
        self._flushed = [False] * len(self._buckets)


def shard_batch(batch: np.ndarray, pc: ParallelContext) -> np.ndarray:
    """Keep this data-parallel rank's slice of a global batch (axis 0)."""
    dp = pc.data_size
    if dp == 1:
        return batch
    if batch.shape[0] % dp != 0:
        raise ValueError(f"global batch {batch.shape[0]} not divisible by dp={dp}")
    n = batch.shape[0] // dp
    return batch[pc.dp_rank * n : (pc.dp_rank + 1) * n]
