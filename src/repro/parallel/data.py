"""Data parallelism.

The model is replicated; the dataset is sharded (Fig 3a).  After backward,
parameter gradients are averaged across the data-parallel group with
bucketed all-reduce — fusing small gradients into flat buckets is what
keeps bandwidth utilisation high on real NCCL and the alpha term small in
our cost model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.comm.communicator import Communicator
from repro.comm.payload import SpecArray, is_spec
from repro.context.parallel_context import ParallelContext, ParallelMode
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor
from repro.utils.units import MB


def _bucketize(params: Sequence[Parameter], bucket_bytes: int) -> List[List[Parameter]]:
    buckets: List[List[Parameter]] = []
    current: List[Parameter] = []
    size = 0
    for p in params:
        current.append(p)
        size += p.nbytes
        if size >= bucket_bytes:
            buckets.append(current)
            current, size = [], 0
    if current:
        buckets.append(current)
    return buckets


def sync_gradients(
    params: Sequence[Parameter],
    comm: Communicator,
    bucket_mb: float = 25.0,
    average: bool = True,
) -> None:
    """All-reduce (and average) ``.grad`` of every parameter across ``comm``.

    Gradients are flattened into ~``bucket_mb`` MiB buckets; one all-reduce
    per bucket.  Parameters without gradients are skipped.
    """
    if comm.size == 1:
        return
    with_grads = [p for p in params if p.grad is not None]
    for bucket in _bucketize(with_grads, int(bucket_mb * MB)):
        if any(not p.grad.materialized for p in bucket):
            nbytes = sum(p.grad.nbytes for p in bucket)
            flat: object = SpecArray((nbytes // 4,), "float32")
            comm.all_reduce(flat)
            continue
        flat = np.concatenate([p.grad.numpy().reshape(-1) for p in bucket])
        reduced = comm.all_reduce(flat)
        if average:
            reduced = reduced / comm.size
        offset = 0
        for p in bucket:
            n = p.grad.size
            p.grad.payload[...] = reduced[offset : offset + n].reshape(p.grad.shape)
            offset += n


class DistributedDataParallel(Module):
    """DDP wrapper: forward delegates; ``sync()`` averages gradients across
    the DATA group (call it between ``backward`` and ``optimizer.step``; the
    Engine does this automatically)."""

    def __init__(
        self,
        module: Module,
        pc: ParallelContext,
        bucket_mb: float = 25.0,
    ) -> None:
        super().__init__()
        self.module = module
        self.pc = pc
        self.bucket_mb = bucket_mb

    def forward(self, *args, **kwargs):
        return self.module(*args, **kwargs)

    def sync(self) -> None:
        sync_gradients(
            self.module.parameters(),
            self.pc.comm(ParallelMode.DATA),
            bucket_mb=self.bucket_mb,
        )


def shard_batch(batch: np.ndarray, pc: ParallelContext) -> np.ndarray:
    """Keep this data-parallel rank's slice of a global batch (axis 0)."""
    dp = pc.data_size
    if dp == 1:
        return batch
    if batch.shape[0] % dp != 0:
        raise ValueError(f"global batch {batch.shape[0]} not divisible by dp={dp}")
    n = batch.shape[0] // dp
    return batch[pc.dp_rank * n : (pc.dp_rank + 1) * n]
