"""CPU Adam — the DeepSpeed zero-offload design (§2.4 / §3.2 of the paper).

The Adam math is identical to :class:`Adam`, but moments and master weights
live in *host* memory and the update runs at host-CPU FLOP rates, so the
simulated clock reflects the real cost trade of offloaded updates (slow
CPU math + PCIe traffic vs freed GPU memory).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

import numpy as np

from repro.optim.adam import Adam
from repro.runtime.spmd import current_rank_context, in_spmd
from repro.tensor.tensor import Tensor
from repro.tensor import zeros


class CPUAdam(Adam):
    DECOUPLED_WD = True

    def _host_device(self):
        if in_spmd():
            return current_rank_context().cpu
        return None

    def _init_state(self, p: Tensor) -> Dict[str, Any]:
        host = self._host_device()
        dev = host if host is not None else p.device
        state: Dict[str, Any] = {
            "m": zeros(p.shape, dtype="float32", device=dev, tag="optim"),
            "v": zeros(p.shape, dtype="float32", device=dev, tag="optim"),
            "t": 0,
        }
        if p.dtype != np.float32:
            if p.materialized:
                state["master"] = Tensor(
                    p.numpy().astype(np.float32), device=dev, tag="optim"
                )
            else:
                state["master"] = zeros(p.shape, dtype="float32", device=dev, tag="optim")
        return state

    def _charge(self, n_elements: int, device=None) -> None:
        host = self._host_device()
        super()._charge(n_elements, device=host if host is not None else device)
