"""Adam and AdamW (Kingma & Ba [17]; decoupled weight decay).

Keeps fp32 master weights when the parameter storage dtype is narrower
(mixed-precision training), plus fp32 ``m``/``v`` moments — the 3x-plus
model-data blowup of "stateful optimizers" that §2.1 of the paper
describes and ZeRO exists to shard.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

import numpy as np

from repro.optim.optimizer import Optimizer
from repro.tensor.tensor import Tensor
from repro.tensor import zeros


class Adam(Optimizer):
    FLOPS_PER_ELEMENT = 12.0
    STATE_FLOATS_PER_ELEMENT = 2  # m + v (master weights added when fp16)
    DECOUPLED_WD = False

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(
            params, dict(lr=lr, betas=betas, eps=eps, weight_decay=weight_decay)
        )

    def _init_state(self, p: Tensor) -> Dict[str, Any]:
        state: Dict[str, Any] = {
            "m": zeros(p.shape, dtype="float32", device=p.device, tag="optim"),
            "v": zeros(p.shape, dtype="float32", device=p.device, tag="optim"),
            "t": 0,
        }
        if p.dtype != np.float32 and p.materialized:
            master = Tensor(
                p.numpy().astype(np.float32), device=p.device, tag="optim"
            )
            state["master"] = master
        elif p.dtype != np.float32:
            state["master"] = zeros(p.shape, dtype="float32", device=p.device, tag="optim")
        return state

    def _update(self, p: Tensor, grad: np.ndarray, state: Dict[str, Any]) -> None:
        lr = self.defaults["lr"]
        b1, b2 = self.defaults["betas"]
        eps = self.defaults["eps"]
        wd = self.defaults["weight_decay"]
        state["t"] += 1
        t = state["t"]
        g = grad.astype(np.float32, copy=False)
        weights = state["master"].numpy() if "master" in state else p.numpy()
        if wd and not self.DECOUPLED_WD:
            g = g + wd * weights
        m = state["m"].numpy()
        v = state["v"].numpy()
        m *= b1
        m += (1 - b1) * g
        v *= b2
        v += (1 - b2) * g * g
        mhat = m / (1 - b1**t)
        vhat = v / (1 - b2**t)
        update = mhat / (np.sqrt(vhat) + eps)
        if wd and self.DECOUPLED_WD:
            update = update + wd * weights
        weights -= lr * update
        if "master" in state:
            p.payload[...] = weights.astype(p.dtype)


class AdamW(Adam):
    """Adam with decoupled weight decay — the optimizer of the paper's ViT
    convergence experiment (lr 0.003, wd 0.3, §5.2)."""

    DECOUPLED_WD = True

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 3e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.3,
    ) -> None:
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=weight_decay)
