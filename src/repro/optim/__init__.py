"""Optimizers.

All optimizers run dual-mode: materialized (real parameter updates, used by
the convergence experiments) and spec (state allocation, FLOP and
memory-pool accounting only, used by the billion-parameter experiments).
``CPUAdam`` charges update time at host-CPU rates; ``HybridAdam`` (§3.2 of
the paper) splits the update between GPU-resident and CPU-resident
parameters according to the placement the offload policy chose.
"""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.cpu_adam import CPUAdam
from repro.optim.hybrid_adam import HybridAdam
from repro.optim.lr_scheduler import CosineAnnealingLR, LinearWarmupCosine

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "CPUAdam",
    "HybridAdam",
    "CosineAnnealingLR",
    "LinearWarmupCosine",
]
