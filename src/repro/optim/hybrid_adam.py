"""Hybrid Adam (§3.2 of the paper).

Colossal-AI's answer to CPU Adam: instead of statically pinning all fp32
master state in host memory, the optimizer keeps the states of
*GPU-resident* parameters on the GPU and updates them at GPU rates; only
parameters the placement policy offloaded are updated on the CPU.  The
placement is queried per parameter via ``placement_of`` (wired to the
offload policy by the ZeRO engine), so as GPU memory frees up, more of the
update migrates to the fast device — "parameters are updated on both CPU
and GPU" exactly as the paper describes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

import numpy as np

from repro.optim.adam import Adam
from repro.runtime.spmd import current_rank_context, in_spmd
from repro.tensor.tensor import Tensor
from repro.tensor import zeros

#: returns "gpu" or "cpu" for a parameter
PlacementFn = Callable[[Tensor], str]


class HybridAdam(Adam):
    DECOUPLED_WD = True

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        placement_of: Optional[PlacementFn] = None,
    ) -> None:
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=weight_decay)
        self.placement_of: PlacementFn = placement_of or (lambda p: "gpu")

    def _device_for(self, p: Tensor):
        where = self.placement_of(p)
        if not in_spmd():
            return p.device
        ctx = current_rank_context()
        return ctx.cpu if where == "cpu" else ctx.device

    def _init_state(self, p: Tensor) -> Dict[str, Any]:
        dev = self._device_for(p)
        state: Dict[str, Any] = {
            "m": zeros(p.shape, dtype="float32", device=dev, tag="optim"),
            "v": zeros(p.shape, dtype="float32", device=dev, tag="optim"),
            "t": 0,
        }
        if p.dtype != np.float32:
            if p.materialized:
                state["master"] = Tensor(p.numpy().astype(np.float32), device=dev, tag="optim")
            else:
                state["master"] = zeros(p.shape, dtype="float32", device=dev, tag="optim")
        return state

    def step(self) -> None:
        self.step_count += 1
        for p in self.params:
            if p.grad is None:
                continue
            state = self.state_for(p)
            self._charge(p.size, device=self._device_for(p))
            if p.materialized and p.grad.materialized:
                self._update(p, p.grad.numpy(), state)
