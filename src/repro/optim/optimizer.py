"""Optimizer base class."""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.runtime.spmd import current_rank_context, in_spmd
from repro.tensor.tensor import Tensor


class Optimizer:
    """Holds parameters and per-parameter state.

    Subclasses implement ``_update(param, grad, state)`` (materialized) and
    declare ``FLOPS_PER_ELEMENT`` / ``STATE_FLOATS_PER_ELEMENT`` so spec-mode
    runs charge the same time and memory.
    """

    FLOPS_PER_ELEMENT: float = 1.0
    #: fp32 state floats allocated per parameter element (e.g. Adam: m+v=2)
    STATE_FLOATS_PER_ELEMENT: int = 0

    def __init__(self, params: Iterable[Tensor], defaults: Dict[str, Any]) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.defaults = defaults
        self.state: Dict[int, Dict[str, Any]] = {}
        self.step_count = 0

    # -- hooks -----------------------------------------------------------------

    def _init_state(self, p: Tensor) -> Dict[str, Any]:
        return {}

    def _update(self, p: Tensor, grad: np.ndarray, state: Dict[str, Any]) -> None:
        raise NotImplementedError

    # -- API --------------------------------------------------------------------

    def state_for(self, p: Tensor) -> Dict[str, Any]:
        key = id(p)
        if key not in self.state:
            self.state[key] = self._init_state(p)
        return self.state[key]

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def _charge(self, n_elements: int, device=None) -> None:
        if not in_spmd():
            return
        ctx = current_rank_context()
        dev = device if device is not None else ctx.device
        ctx.clock.advance(
            dev.compute_seconds(self.FLOPS_PER_ELEMENT * n_elements, "float32"),
            "optimizer",
        )

    def step(self) -> None:
        self.step_count += 1
        for p in self.params:
            if p.grad is None:
                continue
            state = self.state_for(p)
            self._charge(p.size)
            if p.materialized and p.grad.materialized:
                self._update(p, p.grad.numpy(), state)

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot of all per-parameter state, ordered like ``self.params``
        (checkpointing; Tensor-valued state is copied out as numpy)."""
        entries: List[Optional[Dict[str, Any]]] = []
        for p in self.params:
            st = self.state.get(id(p))
            if st is None:
                entries.append(None)
                continue
            entry: Dict[str, Any] = {}
            for k, v in st.items():
                if isinstance(v, Tensor):
                    entry[k] = v.numpy().copy() if v.materialized else None
                elif isinstance(v, np.ndarray):
                    entry[k] = v.copy()
                else:
                    entry[k] = copy.deepcopy(v)
            entries.append(entry)
        return {"step_count": self.step_count, "param_state": entries}

    def load_state_dict(self, sd: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot into this optimizer's
        parameters (matched by position)."""
        entries = sd["param_state"]
        if len(entries) != len(self.params):
            raise ValueError(
                f"optimizer state for {len(entries)} params cannot load into "
                f"{len(self.params)} params"
            )
        self.step_count = sd["step_count"]
        for p, entry in zip(self.params, entries):
            if entry is None:
                self.state.pop(id(p), None)
                continue
            st = self.state_for(p)
            for k, v in entry.items():
                cur = st.get(k)
                if isinstance(cur, Tensor):
                    if cur.materialized and v is not None:
                        cur.payload[...] = np.asarray(v, dtype=cur.dtype)
                elif isinstance(v, np.ndarray):
                    st[k] = v.copy()
                else:
                    st[k] = copy.deepcopy(v)

    def clip_grad_norm(self, max_norm: float) -> float:
        """Global L2 clipping over all local grads; returns the norm."""
        grads = [p.grad for p in self.params if p.grad is not None]
        if not grads or any(not g.materialized for g in grads):
            return 0.0
        total = float(np.sqrt(sum(float(np.sum(g.numpy() ** 2)) for g in grads)))
        if max_norm > 0 and total > max_norm:
            scale = max_norm / (total + 1e-6)
            for g in grads:
                g.payload *= scale
        return total
