"""Learning-rate schedules."""

from __future__ import annotations

import math


class LRScheduler:
    def __init__(self, optimizer, base_lr: float) -> None:
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.last_step = 0

    def get_lr(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.last_step += 1
        lr = self.get_lr(self.last_step)
        self.optimizer.defaults["lr"] = lr
        return lr


class CosineAnnealingLR(LRScheduler):
    def __init__(self, optimizer, base_lr: float, total_steps: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer, base_lr)
        self.total_steps = total_steps
        self.min_lr = min_lr

    def get_lr(self, step: int) -> float:
        t = min(step / max(self.total_steps, 1), 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * t))


class LinearWarmupCosine(LRScheduler):
    """Linear warmup to ``base_lr`` over ``warmup_steps``, then cosine decay
    — the schedule used in ViT training."""

    def __init__(
        self,
        optimizer,
        base_lr: float,
        warmup_steps: int,
        total_steps: int,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer, base_lr)
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def get_lr(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * step / max(self.warmup_steps, 1)
        t = (step - self.warmup_steps) / max(self.total_steps - self.warmup_steps, 1)
        t = min(t, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * t))
