"""SGD with momentum and weight decay."""

from __future__ import annotations

from typing import Any, Dict, Iterable

import numpy as np

from repro.optim.optimizer import Optimizer
from repro.tensor.tensor import Tensor
from repro.tensor import zeros


class SGD(Optimizer):
    FLOPS_PER_ELEMENT = 4.0

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, dict(lr=lr, momentum=momentum, weight_decay=weight_decay))
        self.STATE_FLOATS_PER_ELEMENT = 1 if momentum else 0

    def _init_state(self, p: Tensor) -> Dict[str, Any]:
        if self.defaults["momentum"]:
            return {"velocity": zeros(p.shape, dtype="float32", device=p.device, tag="optim")}
        return {}

    def _update(self, p: Tensor, grad: np.ndarray, state: Dict[str, Any]) -> None:
        lr = self.defaults["lr"]
        wd = self.defaults["weight_decay"]
        mu = self.defaults["momentum"]
        g = grad.astype(np.float32, copy=False)
        if wd:
            g = g + wd * p.numpy()
        if mu:
            v = state["velocity"].numpy()
            v *= mu
            v += g
            p.payload -= (lr * v).astype(p.dtype)
        else:
            p.payload -= (lr * g).astype(p.dtype)
