"""fp16 model wrapping.

``cast_model_to`` converts parameter storage dtype in place (the memory
pools see the 2-byte accounting immediately); :class:`FP16Module` pairs the
cast model with input/output casts so callers keep feeding fp32 data.
Master fp32 weights are handled inside the optimizers (see
:class:`repro.optim.Adam`).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.comm.payload import SpecArray, is_spec
from repro.nn.module import Module
from repro.tensor.tensor import Storage, Tensor


def cast_model_to(module: Module, dtype="float16") -> Module:
    """Re-store every parameter in ``dtype`` (reallocates pool bytes)."""
    target = np.dtype(dtype)
    for p in module.parameters():
        if p.dtype == target:
            continue
        if is_spec(p.payload):
            new_payload = SpecArray(p.shape, target)
        else:
            new_payload = p.payload.astype(target)
        old = p.storage
        p.storage = Storage(p.device, int(new_payload.nbytes), p.tag)
        old.release()
        p.payload = new_payload
    return module


class FP16Module(Module):
    """Runs the wrapped module in half precision: casts inputs down and the
    output back up to fp32."""

    def __init__(self, module: Module) -> None:
        super().__init__()
        self.module = cast_model_to(module, "float16")

    def forward(self, x: Tensor) -> Tensor:
        if x.dtype != np.float16:
            x = ops.cast(x, "float16")
        out = self.module(x)
        return ops.cast(out, "float32")
