"""Dynamic loss scaling.

fp16 gradients underflow; scaling the loss by a large factor before
backward and unscaling gradients before the optimizer step keeps them
representable.  The scale grows after ``growth_interval`` consecutive
finite steps and backs off on overflow, skipping that step — the standard
dynamic schedule.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.config import FP16Config
from repro.tensor.tensor import Tensor


class GradScaler:
    def __init__(self, config: FP16Config = FP16Config(enabled=True)) -> None:
        self.scale = config.initial_scale
        self.min_scale = config.min_scale
        self.growth_interval = config.growth_interval
        self.backoff = config.backoff_factor
        self.growth = config.growth_factor
        self._good_steps = 0
        self.overflows = 0

    def scale_loss(self, loss: Tensor) -> Tensor:
        from repro.autograd import ops

        return ops.mul(loss, float(self.scale))

    def unscale_and_check(self, params: Iterable[Tensor]) -> bool:
        """Divide grads by the scale; returns True when all grads are
        finite (step may proceed), False on overflow (step must be
        skipped).  Spec-mode grads are assumed finite."""
        finite = True
        inv = 1.0 / self.scale
        for p in params:
            if p.grad is None:
                continue
            if not p.grad.materialized:
                continue
            g = p.grad.numpy()
            if not np.all(np.isfinite(g)):
                finite = False
            g *= inv
        self._after_check(finite)
        return finite

    def state_dict(self) -> dict:
        """Dynamic-scale state for checkpointing."""
        return {
            "scale": self.scale,
            "good_steps": self._good_steps,
            "overflows": self.overflows,
        }

    def load_state_dict(self, state: dict) -> None:
        self.scale = state["scale"]
        self._good_steps = state["good_steps"]
        self.overflows = state["overflows"]

    def _after_check(self, finite: bool) -> None:
        if finite:
            self._good_steps += 1
            if self._good_steps >= self.growth_interval:
                self.scale *= self.growth
                self._good_steps = 0
        else:
            self.overflows += 1
            self.scale = max(self.scale * self.backoff, self.min_scale)
            self._good_steps = 0
