"""Mixed-precision training (fp16 storage + fp32 master math)."""

from repro.amp.grad_scaler import GradScaler
from repro.amp.fp16 import FP16Module, cast_model_to

__all__ = ["GradScaler", "FP16Module", "cast_model_to"]
