"""Communication substrate.

An MPI-flavoured communicator (mpi4py naming: lowercase methods move Python
payloads — here numpy arrays or :class:`SpecArray` shape stand-ins) executed
over the SPMD thread runtime.  Every operation

* actually moves/combines data when materialized (collectives are
  numerically exact, which is what the parity tests rely on),
* charges simulated time to the participating ranks' clocks via the
  alpha-beta cost model over the cluster topology, and
* counts wire traffic (bytes and elements) per process group — the
  measurement behind Table 1 / Fig 5.
"""

from repro.comm.payload import SpecArray, payload_nbytes, payload_elements
from repro.comm.algorithms import ALGORITHMS, SELECTABLE_OPS, AlgorithmSelector
from repro.comm.cost import CollectiveCost, CostModel
from repro.comm.counters import CommCounters
from repro.comm.group import ProcessGroup, WorkHandle
from repro.comm.communicator import Communicator, Request

__all__ = [
    "WorkHandle",
    "Request",
    "SpecArray",
    "payload_nbytes",
    "payload_elements",
    "ALGORITHMS",
    "SELECTABLE_OPS",
    "AlgorithmSelector",
    "CollectiveCost",
    "CostModel",
    "CommCounters",
    "ProcessGroup",
    "Communicator",
]
