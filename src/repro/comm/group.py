"""Process groups and the collective rendezvous.

A :class:`ProcessGroup` is the meeting point for a fixed set of global ranks.
Collectives are sequence-numbered per group (MPI semantics: all members must
issue group collectives in the same order); each call forms a *round* that
completes when every member has arrived, at which point the last arriver

1. combines the payloads (the actual data movement/arithmetic),
2. computes the call's cost from the cost model,
3. synchronizes all member clocks to ``max(entry times) + cost``, and
4. records wire traffic in the group's counters.

The rendezvous is event-driven: waiters park on the group condition and the
last arriver (or the abort path via ``SpmdRuntime._wake_all``) notifies them
— there is no poll tick.  One failing rank therefore aborts everyone
immediately instead of at the next poll interval.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.comm.cost import CollectiveCost, CostModel
from repro.comm.counters import CommCounters
from repro.runtime.errors import CollectiveTimeout

#: With a sanitizer installed, parked waiters still wake on this cadence to
#: run ``check_stalled`` — it is the sanitizer's desync-diagnosis latency,
#: not a liveness mechanism (completion and abort are notify-driven).
_DIAG_WINDOW = 0.05

#: shared empty trace-tag mapping — rounds only swap in a real dict when the
#: sanitizer contributes tags, so the disabled path allocates nothing extra
_NO_EXTRA: Dict[str, Any] = {}

#: finalize(payloads by local rank) ->
#:   (results by local rank, cost, op name, itemsize for element accounting)
FinalizeFn = Callable[
    [Dict[int, Any]], Tuple[Dict[int, Any], CollectiveCost, str, int]
]


class _Round:
    __slots__ = (
        "payloads", "entry_times", "results", "done", "claimed", "error",
        "op", "t_start", "t_end", "wire_bytes", "retries", "retry_seconds",
        "algorithm", "specs", "trace_extra", "mode",
    )

    def __init__(self) -> None:
        self.payloads: Dict[int, Any] = {}
        self.entry_times: Dict[int, float] = {}
        self.results: Optional[Dict[int, Any]] = None
        self.done = False
        self.claimed = 0
        self.error: Optional[BaseException] = None
        # trace annotations filled in by the finalizer
        self.op: Optional[str] = None
        self.t_start = 0.0
        self.t_end = 0.0
        self.wire_bytes = 0
        self.retries = 0
        self.retry_seconds = 0.0
        self.algorithm = ""
        # sanitizer state: per-local-rank CollectiveSpec, extra span tags
        self.specs: Optional[Dict[int, Any]] = None
        self.trace_extra: Dict[str, Any] = _NO_EXTRA
        # "sync" (blocking rendezvous) or "async" (handle-based); set by the
        # first arriver — mixing the two in one round is a program error
        self.mode: Optional[str] = None


class WorkHandle:
    """Handle for a nonblocking communication operation.

    ``wait()`` completes the op and reconciles the caller's compute clock by
    *max-join*: the clock jumps to the op's completion time if it has not
    already passed it, charging only the exposed remainder as ``comm``.
    ``test()`` polls completion without blocking or charging time.
    """

    __slots__ = ()

    def wait(self) -> Any:
        raise NotImplementedError

    def test(self) -> bool:
        raise NotImplementedError


class ProcessGroup:
    """A fixed, ordered set of global ranks with collective state.

    Create via ``runtime.group(ranks)`` (idempotent) — never directly, or
    different ranks would rendezvous on different objects.
    """

    def __init__(self, runtime: Any, ranks: List[int]) -> None:
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in group: {ranks}")
        self.runtime = runtime
        self.ranks = list(ranks)
        self.size = len(ranks)
        self._local = {g: i for i, g in enumerate(ranks)}
        self.cost_model = CostModel(
            runtime.cluster,
            algorithm=getattr(runtime, "comm_algorithm", "ring"),
            island_ratio=getattr(runtime, "comm_island_ratio", 0.5),
        )
        self.counters = CommCounters()
        self._cond = threading.Condition()
        self._rounds: Dict[int, _Round] = {}
        self._seq: Dict[int, int] = {r: 0 for r in ranks}
        #: simulated time this group's comm stream drains: every collective
        #: (blocking or nonblocking) serializes after it, NCCL-stream-style
        self.async_tail = 0.0
        #: per-sender p2p stream tails (only the owning rank's thread writes
        #: its key; pre-populated so concurrent reads never resize the dict)
        self._p2p_tails: Dict[int, float] = {g: 0.0 for g in ranks}

    def local_rank(self, global_rank: int) -> int:
        try:
            return self._local[global_rank]
        except KeyError:
            raise ValueError(
                f"rank {global_rank} is not a member of group {self.ranks}"
            ) from None

    def global_rank(self, local_rank: int) -> int:
        return self.ranks[local_rank]

    def __contains__(self, global_rank: int) -> bool:
        return global_rank in self._local

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessGroup(ranks={self.ranks})"

    def reset_rounds(self) -> None:
        """Discard in-flight rendezvous state and restart sequence numbers
        (called between runs so an aborted program leaves no stale rounds)."""
        with self._cond:
            self._rounds.clear()
            self._seq = {r: 0 for r in self.ranks}
            self.async_tail = 0.0
            for g in self.ranks:
                self._p2p_tails[g] = 0.0
            self._cond.notify_all()

    # ------------------------------------------------------------------

    def rendezvous(self, my_global_rank: int, payload: Any,
                   finalize: FinalizeFn, spec: Any = None) -> Any:
        """Enter a collective round; returns this rank's share of the result.

        ``finalize`` must be logically identical on all ranks; the last
        arriver's instance runs.  ``spec`` (a
        :class:`~repro.sanitize.spec.CollectiveSpec`, built by the
        communicator only when a sanitizer is installed) declares what this
        rank believes the call to be; the sanitizer cross-checks the specs
        when the round fills.
        """
        me = self.local_rank(my_global_rank)
        clock = self.runtime.clocks[my_global_rank]

        injector = self.runtime.fault_injector
        if injector is not None:
            injector.check_time_crash(my_global_rank, clock.time)

        tracer = self.runtime.tracer
        san = self.runtime.sanitizer
        if spec is not None:
            spec.seq = self._seq[my_global_rank]

        if self.size == 1:
            t0 = clock.time
            extra: Dict[str, Any] = _NO_EXTRA
            if san is not None:
                san.verify_round(self, self._seq[my_global_rank], {0: spec} if spec else None)
            results, cost, op, itemsize = finalize({0: payload})
            if san is not None:
                extra = san.finish_round(
                    self, self._seq[my_global_rank],
                    {0: spec} if spec else None, {0: payload}, results,
                )
                self._seq[my_global_rank] += 1
            if self.async_tail > clock.time:
                clock.sync_to(self.async_tail, "comm")
            clock.advance(cost.seconds, "comm")
            self.async_tail = clock.time
            if cost.wire_bytes:
                self.counters.record(
                    op, cost.wire_bytes, cost.wire_elements(itemsize),
                    algorithm=cost.algorithm,
                )
            cap = self.runtime.capture
            if cap is not None:
                cap.record_solo(my_global_rank, self, op, cost, itemsize, payload)
            if tracer is not None:
                tracer.annotate(
                    my_global_rank, "collective", op, t0, clock.time,
                    wire_bytes=cost.wire_bytes, group_size=1, primary=True,
                    algo=cost.algorithm, **extra,
                )
            return results[0]

        seq = self._seq[my_global_rank]
        self._seq[my_global_rank] = seq + 1

        with self._cond:
            rnd = self._rounds.get(seq)
            if rnd is None:
                rnd = _Round()
                self._rounds[seq] = rnd
            self._check_mode(rnd, "sync")
            rnd.payloads[me] = payload
            rnd.entry_times[me] = clock.time
            if spec is not None:
                if rnd.specs is None:
                    rnd.specs = {}
                rnd.specs[me] = spec

            if rnd.done:
                # The round already failed (a sanitizer desync verdict)
                # while this rank was on its way; claim the error below.
                pass
            elif len(rnd.payloads) == self.size:
                # Last arriver finalizes on behalf of everyone.
                race_token = None
                try:
                    if san is not None:
                        san.verify_round(self, seq, rnd.specs)
                        race_token = san.race_acquire(self, rnd.payloads)
                    results, cost, op, itemsize = finalize(rnd.payloads)
                    failures, permanent = 0, False
                    retry_seconds = 0.0
                    if injector is not None:
                        failures, permanent = injector.collective_verdict(
                            op, self.ranks, seq
                        )
                        if (failures or permanent) and san is not None:
                            san.note_injected_glitch(
                                op, self.ranks, failures, permanent
                            )
                        if permanent:
                            # Exhaust the full retransmission budget, then
                            # give up: every member raises the timeout.
                            failures = self.runtime.retry_policy.max_retries + 1
                        if failures:
                            policy = self.runtime.retry_policy
                            for a in range(1, failures + 1):
                                retry_seconds += cost.seconds + policy.backoff(a)
                            self.counters.record_retry(
                                op,
                                failures * cost.wire_bytes,
                                failures * cost.wire_elements(itemsize),
                                attempts=failures,
                            )
                    # a blocking round serializes after any in-flight
                    # nonblocking ops on this group's comm stream
                    t_base = max(rnd.entry_times.values())
                    if self.async_tail > t_base:
                        t_base = self.async_tail
                    if permanent:
                        t_end = t_base + retry_seconds
                    else:
                        t_end = t_base + cost.seconds + retry_seconds
                    self.async_tail = t_end
                    for g in self.ranks:
                        self.runtime.clocks[g].sync_to(t_end, "comm")
                    if permanent:
                        raise CollectiveTimeout(
                            op, self.ranks, attempts=failures
                        )
                    if cost.wire_bytes:
                        self.counters.record(
                            op, cost.wire_bytes, cost.wire_elements(itemsize),
                            algorithm=cost.algorithm,
                        )
                    if san is not None:
                        rnd.trace_extra = san.finish_round(
                            self, seq, rnd.specs, rnd.payloads, results,
                            race_token,
                        )
                        race_token = None  # released by finish_round
                    rnd.algorithm = cost.algorithm
                    rnd.op = op
                    rnd.t_end = t_end
                    rnd.wire_bytes = cost.wire_bytes
                    rnd.retries = failures
                    rnd.retry_seconds = retry_seconds
                    rnd.results = results
                    cap = self.runtime.capture
                    if cap is not None:
                        cap.record_round(
                            self, seq, "sync", cost, op, itemsize, rnd.payloads
                        )
                except BaseException as exc:  # propagate to all members
                    if race_token is not None:
                        san.race_release(race_token)
                    rnd.error = exc
                rnd.done = True
                self._cond.notify_all()
            else:
                self._await_round(my_global_rank, seq, rnd, spec, clock)

            if rnd.error is not None:
                rnd.claimed += 1
                if rnd.claimed == self.size:
                    del self._rounds[seq]
                raise rnd.error

            assert rnd.results is not None
            result = rnd.results[me]
            cap = self.runtime.capture
            if cap is not None:
                cap.record_member(my_global_rank, self, seq, "c")
            if tracer is not None and rnd.op is not None:
                # one span per member rank, from its own entry to the common
                # completion; local rank 0's span carries the round totals
                tracer.annotate(
                    my_global_rank, "collective", rnd.op,
                    rnd.entry_times[me], rnd.t_end,
                    wire_bytes=rnd.wire_bytes, group_size=self.size,
                    retries=rnd.retries, primary=(me == 0),
                    algo=rnd.algorithm, **rnd.trace_extra,
                )
                if rnd.retries:
                    tracer.annotate(
                        my_global_rank, "retry", f"{rnd.op}:retry",
                        rnd.t_end - rnd.retry_seconds, rnd.t_end,
                        attempts=rnd.retries,
                    )
            rnd.claimed += 1
            if rnd.claimed == self.size:
                del self._rounds[seq]
            return result

    # ------------------------------------------------------------------

    def _await_round(self, my_global_rank: int, seq: int, rnd: "_Round",
                     spec: Any, clock: Any) -> None:
        """Park (group condition held) until ``rnd`` completes.

        Shared by the blocking rendezvous and :meth:`AsyncCollectiveHandle.wait`.
        Completion and abort are notify-driven (the last arriver and
        ``SpmdRuntime._wake_all`` call ``notify_all``); with a sanitizer
        installed the wait is additionally chopped into ``_DIAG_WINDOW``
        slices so ``check_stalled`` keeps its one-tick desync-diagnosis
        latency.  The deadline is measured against a monotonic start
        timestamp — wake-ups before the timeout no longer undercount
        elapsed time the way the old ``deadline -= poll_interval``
        accounting did.
        """
        runtime = self.runtime
        san = runtime.sanitizer
        tracer = runtime.tracer
        deadline_ts = time.monotonic() + runtime.deadlock_timeout
        if san is not None:
            san.enter_wait(my_global_rank, self, seq, spec, rnd)
        try:
            while not rnd.done:
                if runtime.aborting():
                    runtime.check_abort()
                if san is not None:
                    err = san.check_stalled(self, seq, rnd)
                    if err is not None and not rnd.done:
                        rnd.error = err
                        rnd.done = True
                        self._cond.notify_all()
                        if tracer is not None:
                            tracer.instant(
                                my_global_rank,
                                f"sanitizer:{type(err).__name__}",
                                clock.time,
                            )
                        break
                remaining = deadline_ts - time.monotonic()
                if remaining <= 0:
                    raise CollectiveTimeout(
                        "collective", self.ranks,
                        timeout=runtime.deadlock_timeout,
                    )
                self._cond.wait(
                    remaining if san is None else min(remaining, _DIAG_WINDOW)
                )
        finally:
            if san is not None:
                san.exit_wait(my_global_rank)

    def wake(self) -> None:
        """Wake every thread parked in this group's rendezvous so it
        re-checks abort/done state (called by ``SpmdRuntime._wake_all``)."""
        with self._cond:
            self._cond.notify_all()

    def _check_mode(self, rnd: _Round, mode: str) -> None:
        """All ranks of a round must agree on blocking vs nonblocking: for a
        nonblocking round, *handle completion* (not issue order) defines the
        rendezvous point, so a blocking caller mixed into it would have its
        clock synced under the wrong semantics.  Fail the round for everyone
        rather than silently mis-pricing it."""
        if rnd.mode is None:
            rnd.mode = mode
        elif rnd.mode != mode:
            err: BaseException = RuntimeError(
                f"collective on group {self.ranks} mixes blocking and "
                f"nonblocking calls across ranks (round is {rnd.mode!r}, "
                f"this rank called {mode!r})"
            )
            if not rnd.done:
                rnd.error = err
                rnd.done = True
                self._cond.notify_all()
            rnd.claimed += 1
            raise err

    def rendezvous_async(self, my_global_rank: int, payload: Any,
                         finalize: FinalizeFn, spec: Any = None) -> "WorkHandle":
        """Enter a collective round without blocking.

        The round finalizes inline on whichever rank *issues* it last (per-
        rank program order makes that deterministic in simulated time); the
        collective then occupies the group's comm stream from
        ``max(async_tail, max issue times)`` for its priced cost.  No
        compute clock moves at finalize — each member reconciles when it
        waits the returned handle (max-join).  Byte/cost accounting is
        identical to the blocking rendezvous.
        """
        me = self.local_rank(my_global_rank)
        clock = self.runtime.clocks[my_global_rank]

        injector = self.runtime.fault_injector
        if injector is not None:
            injector.check_time_crash(my_global_rank, clock.time)

        san = self.runtime.sanitizer
        if spec is not None:
            spec.seq = self._seq[my_global_rank]

        seq = self._seq[my_global_rank]
        self._seq[my_global_rank] = seq + 1

        with self._cond:
            rnd = self._rounds.get(seq)
            if rnd is None:
                rnd = _Round()
                self._rounds[seq] = rnd
            self._check_mode(rnd, "async")
            rnd.payloads[me] = payload
            rnd.entry_times[me] = clock.time
            if spec is not None:
                if rnd.specs is None:
                    rnd.specs = {}
                rnd.specs[me] = spec
            cap = self.runtime.capture
            if cap is not None:
                cap.record_member(my_global_rank, self, seq, "ic")
            if not rnd.done and len(rnd.payloads) == self.size:
                self._finalize_async(rnd, seq, finalize)
            return AsyncCollectiveHandle(self, seq, me, my_global_rank, spec)

    def _finalize_async(self, rnd: _Round, seq: int, finalize: FinalizeFn) -> None:
        """Finalize a nonblocking round (lock held, last issuer's thread)."""
        runtime = self.runtime
        injector = runtime.fault_injector
        san = runtime.sanitizer
        tracer = runtime.tracer
        race_token = None
        try:
            if san is not None:
                san.verify_round(self, seq, rnd.specs)
                race_token = san.race_acquire(self, rnd.payloads)
            results, cost, op, itemsize = finalize(rnd.payloads)
            failures, permanent = 0, False
            retry_seconds = 0.0
            if injector is not None:
                failures, permanent = injector.collective_verdict(
                    op, self.ranks, seq
                )
                if (failures or permanent) and san is not None:
                    san.note_injected_glitch(op, self.ranks, failures, permanent)
                if permanent:
                    failures = runtime.retry_policy.max_retries + 1
                if failures:
                    policy = runtime.retry_policy
                    for a in range(1, failures + 1):
                        retry_seconds += cost.seconds + policy.backoff(a)
                    self.counters.record_retry(
                        op,
                        failures * cost.wire_bytes,
                        failures * cost.wire_elements(itemsize),
                        attempts=failures,
                    )
            t_start = max(rnd.entry_times.values())
            if self.async_tail > t_start:
                t_start = self.async_tail
            if permanent:
                t_end = t_start + retry_seconds
            else:
                t_end = t_start + cost.seconds + retry_seconds
            self.async_tail = t_end
            for g in self.ranks:
                runtime.comm_streams[g].occupy(t_start, t_end)
            if permanent:
                raise CollectiveTimeout(op, self.ranks, attempts=failures)
            if cost.wire_bytes:
                self.counters.record(
                    op, cost.wire_bytes, cost.wire_elements(itemsize),
                    algorithm=cost.algorithm,
                )
            if san is not None:
                rnd.trace_extra = san.finish_round(
                    self, seq, rnd.specs, rnd.payloads, results, race_token,
                )
                race_token = None  # released by finish_round
            rnd.algorithm = cost.algorithm
            rnd.op = op
            rnd.t_start = t_start
            rnd.t_end = t_end
            rnd.wire_bytes = cost.wire_bytes
            rnd.retries = failures
            rnd.retry_seconds = retry_seconds
            rnd.results = results
            cap = runtime.capture
            if cap is not None:
                cap.record_round(
                    self, seq, "async", cost, op, itemsize, rnd.payloads
                )
            if tracer is not None:
                for local, g in enumerate(self.ranks):
                    tracer.annotate(
                        g, "comm_stream", op, t_start, t_end,
                        wire_bytes=cost.wire_bytes, group_size=self.size,
                        retries=failures, primary=(local == 0),
                        algo=cost.algorithm, **rnd.trace_extra,
                    )
        except BaseException as exc:  # propagate to every waiter
            if race_token is not None:
                san.race_release(race_token)
            rnd.error = exc
        rnd.done = True
        self._cond.notify_all()


class AsyncCollectiveHandle(WorkHandle):
    """One rank's handle on an in-flight nonblocking collective round."""

    __slots__ = ("_group", "_seq", "_me", "_rank", "_spec", "_done", "_result")

    def __init__(self, group: ProcessGroup, seq: int, me: int, rank: int,
                 spec: Any) -> None:
        self._group = group
        self._seq = seq
        self._me = me
        self._rank = rank
        self._spec = spec
        self._done = False
        self._result: Any = None

    def test(self) -> bool:
        if self._done:
            return True
        with self._group._cond:
            rnd = self._group._rounds.get(self._seq)
            return rnd is None or rnd.done

    def wait(self) -> Any:
        """Block (in host time) until the round completes, then max-join the
        caller's compute clock to the completion time.  Only the portion of
        the op duration the clock actually stalls on is exposed; the rest is
        accounted as overlapped."""
        if self._done:
            return self._result
        group = self._group
        runtime = group.runtime
        clock = runtime.clocks[self._rank]
        tracer = runtime.tracer
        with group._cond:
            rnd = group._rounds.get(self._seq)
            if rnd is None:
                raise RuntimeError(
                    f"nonblocking collective #{self._seq} on group "
                    f"{group.ranks} has no round state (runtime reset while "
                    f"the handle was outstanding?)"
                )
            if not rnd.done:
                group._await_round(self._rank, self._seq, rnd, self._spec, clock)
            if rnd.error is not None:
                rnd.claimed += 1
                if rnd.claimed == group.size:
                    del group._rounds[self._seq]
                self._done = True
                raise rnd.error
            assert rnd.results is not None
            result = rnd.results[self._me]
            t_start, t_end, op = rnd.t_start, rnd.t_end, rnd.op
            rnd.claimed += 1
            if rnd.claimed == group.size:
                del group._rounds[self._seq]
        duration = t_end - t_start
        t_wait = clock.time
        exposed = min(duration, max(0.0, t_end - t_wait))
        clock.sync_to(t_end, "comm")
        runtime.comm_streams[self._rank].note_exposed(exposed)
        group.counters.record_overlap(
            op or "collective", exposed, max(0.0, duration - exposed)
        )
        cap = runtime.capture
        if cap is not None:
            cap.record_member(self._rank, group, self._seq, "cw")
        if tracer is not None and exposed > 0.0:
            tracer.annotate(
                self._rank, "overlap", f"wait/{op}", t_wait, t_end,
                exposed=exposed, overlapped=max(0.0, duration - exposed),
            )
        self._done = True
        self._result = result
        return result
