"""Process groups and the collective rendezvous.

A :class:`ProcessGroup` is the meeting point for a fixed set of global ranks.
Collectives are sequence-numbered per group (MPI semantics: all members must
issue group collectives in the same order); each call forms a *round* that
completes when every member has arrived, at which point the last arriver

1. combines the payloads (the actual data movement/arithmetic),
2. computes the call's cost from the cost model,
3. synchronizes all member clocks to ``max(entry times) + cost``, and
4. records wire traffic in the group's counters.

The rendezvous polls the runtime abort flag while blocked, so one failing
rank aborts everyone instead of deadlocking.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.comm.cost import CollectiveCost, CostModel
from repro.comm.counters import CommCounters
from repro.runtime.errors import CollectiveTimeout

_POLL_INTERVAL = 0.05

#: shared empty trace-tag mapping — rounds only swap in a real dict when the
#: sanitizer contributes tags, so the disabled path allocates nothing extra
_NO_EXTRA: Dict[str, Any] = {}

#: finalize(payloads by local rank) ->
#:   (results by local rank, cost, op name, itemsize for element accounting)
FinalizeFn = Callable[
    [Dict[int, Any]], Tuple[Dict[int, Any], CollectiveCost, str, int]
]


class _Round:
    __slots__ = (
        "payloads", "entry_times", "results", "done", "claimed", "error",
        "op", "t_end", "wire_bytes", "retries", "retry_seconds", "algorithm",
        "specs", "trace_extra",
    )

    def __init__(self) -> None:
        self.payloads: Dict[int, Any] = {}
        self.entry_times: Dict[int, float] = {}
        self.results: Optional[Dict[int, Any]] = None
        self.done = False
        self.claimed = 0
        self.error: Optional[BaseException] = None
        # trace annotations filled in by the finalizer
        self.op: Optional[str] = None
        self.t_end = 0.0
        self.wire_bytes = 0
        self.retries = 0
        self.retry_seconds = 0.0
        self.algorithm = ""
        # sanitizer state: per-local-rank CollectiveSpec, extra span tags
        self.specs: Optional[Dict[int, Any]] = None
        self.trace_extra: Dict[str, Any] = _NO_EXTRA


class ProcessGroup:
    """A fixed, ordered set of global ranks with collective state.

    Create via ``runtime.group(ranks)`` (idempotent) — never directly, or
    different ranks would rendezvous on different objects.
    """

    def __init__(self, runtime: Any, ranks: List[int]) -> None:
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in group: {ranks}")
        self.runtime = runtime
        self.ranks = list(ranks)
        self.size = len(ranks)
        self._local = {g: i for i, g in enumerate(ranks)}
        self.cost_model = CostModel(
            runtime.cluster,
            algorithm=getattr(runtime, "comm_algorithm", "ring"),
            island_ratio=getattr(runtime, "comm_island_ratio", 0.5),
        )
        self.counters = CommCounters()
        self._cond = threading.Condition()
        self._rounds: Dict[int, _Round] = {}
        self._seq: Dict[int, int] = {r: 0 for r in ranks}

    def local_rank(self, global_rank: int) -> int:
        try:
            return self._local[global_rank]
        except KeyError:
            raise ValueError(
                f"rank {global_rank} is not a member of group {self.ranks}"
            ) from None

    def global_rank(self, local_rank: int) -> int:
        return self.ranks[local_rank]

    def __contains__(self, global_rank: int) -> bool:
        return global_rank in self._local

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessGroup(ranks={self.ranks})"

    def reset_rounds(self) -> None:
        """Discard in-flight rendezvous state and restart sequence numbers
        (called between runs so an aborted program leaves no stale rounds)."""
        with self._cond:
            self._rounds.clear()
            self._seq = {r: 0 for r in self.ranks}
            self._cond.notify_all()

    # ------------------------------------------------------------------

    def rendezvous(self, my_global_rank: int, payload: Any,
                   finalize: FinalizeFn, spec: Any = None) -> Any:
        """Enter a collective round; returns this rank's share of the result.

        ``finalize`` must be logically identical on all ranks; the last
        arriver's instance runs.  ``spec`` (a
        :class:`~repro.sanitize.spec.CollectiveSpec`, built by the
        communicator only when a sanitizer is installed) declares what this
        rank believes the call to be; the sanitizer cross-checks the specs
        when the round fills.
        """
        me = self.local_rank(my_global_rank)
        clock = self.runtime.clocks[my_global_rank]

        injector = self.runtime.fault_injector
        if injector is not None:
            injector.check_time_crash(my_global_rank, clock.time)

        tracer = self.runtime.tracer
        san = self.runtime.sanitizer
        if spec is not None:
            spec.seq = self._seq[my_global_rank]

        if self.size == 1:
            t0 = clock.time
            extra: Dict[str, Any] = _NO_EXTRA
            if san is not None:
                san.verify_round(self, self._seq[my_global_rank], {0: spec} if spec else None)
            results, cost, op, itemsize = finalize({0: payload})
            if san is not None:
                extra = san.finish_round(
                    self, self._seq[my_global_rank],
                    {0: spec} if spec else None, {0: payload}, results,
                )
                self._seq[my_global_rank] += 1
            clock.advance(cost.seconds, "comm")
            if cost.wire_bytes:
                self.counters.record(
                    op, cost.wire_bytes, cost.wire_elements(itemsize),
                    algorithm=cost.algorithm,
                )
            if tracer is not None:
                tracer.annotate(
                    my_global_rank, "collective", op, t0, clock.time,
                    wire_bytes=cost.wire_bytes, group_size=1, primary=True,
                    algo=cost.algorithm, **extra,
                )
            return results[0]

        seq = self._seq[my_global_rank]
        self._seq[my_global_rank] = seq + 1

        with self._cond:
            rnd = self._rounds.get(seq)
            if rnd is None:
                rnd = _Round()
                self._rounds[seq] = rnd
            rnd.payloads[me] = payload
            rnd.entry_times[me] = clock.time
            if spec is not None:
                if rnd.specs is None:
                    rnd.specs = {}
                rnd.specs[me] = spec

            if rnd.done:
                # The round already failed (a sanitizer desync verdict)
                # while this rank was on its way; claim the error below.
                pass
            elif len(rnd.payloads) == self.size:
                # Last arriver finalizes on behalf of everyone.
                race_token = None
                try:
                    if san is not None:
                        san.verify_round(self, seq, rnd.specs)
                        race_token = san.race_acquire(self, rnd.payloads)
                    results, cost, op, itemsize = finalize(rnd.payloads)
                    failures, permanent = 0, False
                    retry_seconds = 0.0
                    if injector is not None:
                        failures, permanent = injector.collective_verdict(
                            op, self.ranks, seq
                        )
                        if (failures or permanent) and san is not None:
                            san.note_injected_glitch(
                                op, self.ranks, failures, permanent
                            )
                        if permanent:
                            # Exhaust the full retransmission budget, then
                            # give up: every member raises the timeout.
                            failures = self.runtime.retry_policy.max_retries + 1
                        if failures:
                            policy = self.runtime.retry_policy
                            for a in range(1, failures + 1):
                                retry_seconds += cost.seconds + policy.backoff(a)
                            self.counters.record_retry(
                                op,
                                failures * cost.wire_bytes,
                                failures * cost.wire_elements(itemsize),
                                attempts=failures,
                            )
                    if permanent:
                        t_end = max(rnd.entry_times.values()) + retry_seconds
                    else:
                        t_end = (
                            max(rnd.entry_times.values())
                            + cost.seconds
                            + retry_seconds
                        )
                    for g in self.ranks:
                        self.runtime.clocks[g].sync_to(t_end, "comm")
                    if permanent:
                        raise CollectiveTimeout(
                            op, self.ranks, attempts=failures
                        )
                    if cost.wire_bytes:
                        self.counters.record(
                            op, cost.wire_bytes, cost.wire_elements(itemsize),
                            algorithm=cost.algorithm,
                        )
                    if san is not None:
                        rnd.trace_extra = san.finish_round(
                            self, seq, rnd.specs, rnd.payloads, results,
                            race_token,
                        )
                        race_token = None  # released by finish_round
                    rnd.algorithm = cost.algorithm
                    rnd.op = op
                    rnd.t_end = t_end
                    rnd.wire_bytes = cost.wire_bytes
                    rnd.retries = failures
                    rnd.retry_seconds = retry_seconds
                    rnd.results = results
                except BaseException as exc:  # propagate to all members
                    if race_token is not None:
                        san.race_release(race_token)
                    rnd.error = exc
                rnd.done = True
                self._cond.notify_all()
            else:
                deadline = self.runtime.deadlock_timeout
                if san is not None:
                    san.enter_wait(my_global_rank, self, seq, spec, rnd)
                try:
                    while not rnd.done:
                        if self.runtime.aborting():
                            self.runtime.check_abort()
                        if san is not None:
                            err = san.check_stalled(self, seq, rnd)
                            if err is not None and not rnd.done:
                                rnd.error = err
                                rnd.done = True
                                self._cond.notify_all()
                                if tracer is not None:
                                    tracer.instant(
                                        my_global_rank,
                                        f"sanitizer:{type(err).__name__}",
                                        clock.time,
                                    )
                                break
                        if deadline <= 0:
                            raise CollectiveTimeout(
                                "collective", self.ranks,
                                timeout=self.runtime.deadlock_timeout,
                            )
                        self._cond.wait(_POLL_INTERVAL)
                        deadline -= _POLL_INTERVAL
                finally:
                    if san is not None:
                        san.exit_wait(my_global_rank)

            if rnd.error is not None:
                rnd.claimed += 1
                if rnd.claimed == self.size:
                    del self._rounds[seq]
                raise rnd.error

            assert rnd.results is not None
            result = rnd.results[me]
            if tracer is not None and rnd.op is not None:
                # one span per member rank, from its own entry to the common
                # completion; local rank 0's span carries the round totals
                tracer.annotate(
                    my_global_rank, "collective", rnd.op,
                    rnd.entry_times[me], rnd.t_end,
                    wire_bytes=rnd.wire_bytes, group_size=self.size,
                    retries=rnd.retries, primary=(me == 0),
                    algo=rnd.algorithm, **rnd.trace_extra,
                )
                if rnd.retries:
                    tracer.annotate(
                        my_global_rank, "retry", f"{rnd.op}:retry",
                        rnd.t_end - rnd.retry_seconds, rnd.t_end,
                        attempts=rnd.retries,
                    )
            rnd.claimed += 1
            if rnd.claimed == self.size:
                del self._rounds[seq]
            return result
