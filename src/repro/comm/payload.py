"""Communication payloads.

Materialized programs communicate :class:`numpy.ndarray`; spec-mode programs
communicate :class:`SpecArray` — a shape/dtype stand-in whose byte size is
accounted identically, so the cost model and counters see exactly the same
traffic in both modes.
"""

from __future__ import annotations

import math
from typing import Tuple, Union

import numpy as np


# np.dtype(...) construction is measurable at SpecArray churn rates; cache
# the canonical instance per spelling (np.dtype objects are interned-like
# singletons for builtin types, so identity reuse is safe)
_DTYPE_CACHE: dict = {}


def _as_dtype(dtype) -> np.dtype:
    if type(dtype) is np.dtype:
        return dtype
    try:
        return _DTYPE_CACHE[dtype]
    except (KeyError, TypeError):
        dt = np.dtype(dtype)
        try:
            _DTYPE_CACHE[dtype] = dt
        except TypeError:
            pass
        return dt


class SpecArray:
    """A shape+dtype stand-in for an ndarray (no storage).

    Supports the handful of shape manipulations the parallel layers perform
    on communicated buffers (reshape/concat-like derivations happen in the
    communicator itself).
    """

    __slots__ = ("shape", "dtype")

    def __init__(self, shape: Tuple[int, ...], dtype: Union[str, np.dtype] = "float32") -> None:
        # plain-int tuples (the common case) pass through untouched; only
        # np.intp/list shapes pay for normalization
        if type(shape) is tuple:
            for s in shape:
                if type(s) is not int:
                    shape = tuple(int(x) for x in shape)
                    break
        else:
            shape = tuple(int(s) for s in shape)
        self.shape = shape
        self.dtype = _as_dtype(dtype)

    @property
    def size(self) -> int:
        return int(math.prod(self.shape)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def reshape(self, *shape) -> "SpecArray":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        shape = tuple(int(s) for s in shape)
        if -1 in shape:
            known = math.prod(s for s in shape if s != -1)
            shape = tuple(self.size // known if s == -1 else s for s in shape)
        if math.prod(shape) != self.size:
            raise ValueError(f"cannot reshape {self.shape} -> {shape}")
        return SpecArray(shape, self.dtype)

    def astype(self, dtype) -> "SpecArray":
        return SpecArray(self.shape, dtype)

    def copy(self) -> "SpecArray":
        return SpecArray(self.shape, self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpecArray(shape={self.shape}, dtype={self.dtype.name})"


Payload = Union[np.ndarray, SpecArray]


def is_spec(x: Payload) -> bool:
    return isinstance(x, SpecArray)


def payload_nbytes(x: Payload) -> int:
    return int(x.nbytes)


def payload_elements(x: Payload) -> int:
    return int(x.size)


def like(x: Payload, shape: Tuple[int, ...]) -> SpecArray:
    """A SpecArray with ``shape`` and ``x``'s dtype."""
    return SpecArray(shape, x.dtype)
