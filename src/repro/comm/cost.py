"""Alpha-beta cost model for collectives over a topology.

Each collective call is priced by an explicit *algorithm* over the actual
topology graph; the cost of a call over a group is::

    time = alpha * steps + latency_term + data_term(bandwidths)

Three algorithm families are implemented for the reduction/gather ops
(``all_reduce``/``all_gather``/``reduce_scatter``/``broadcast``/``reduce``):

``ring``
    The classic pipelined flat ring (NCCL default), bottlenecked by the
    slowest link on the ring.  Group members are first reordered along
    high-bandwidth edges (:meth:`Topology.order_ring`) and the ring is
    priced contention-aware (:meth:`Topology.ring_stats`): hops share the
    physical links their shortest paths traverse.  This single rule is what
    makes System II (PCIe between distant GPUs) slow for group-wide
    collectives while leaving adjacent-pair traffic at NVLink speed — the
    mechanism behind the paper's Fig 10/11.

``tree``
    Latency-optimal recursive halving/doubling (allreduce, reduce-scatter,
    allgather) and binomial trees (broadcast, reduce): ``O(log p)`` alpha
    steps instead of ``O(p)``, at the price of unpipelined transfers and a
    worst-pair bandwidth bound.  Wins for small messages.

``hierarchical``
    The NCCL-style two-level schedule for asymmetric fabrics.  The group is
    partitioned into fast-link islands (:meth:`Topology.islands`: NVLink
    cliques on System II, node-local cliques on Systems III/IV); an
    allreduce then runs intra-island reduce-scatter -> inter-island
    exchange of the resulting shards over the slow bridge (one concurrent
    leader ring per shard rail) -> intra-island allgather.  Phases are
    chunk-pipelined: each phase pays its bandwidth-ramp *fill* once (summed
    over phases), while the steady-state data term is the *max* of the
    phase rates — so small messages pay the extra phase startups and large
    messages only see the slowest phase, with most bytes never leaving
    fast links.  Wins for large messages on island topologies (Fig 10/11's
    System II).

Wire accounting (``wire_bytes``, totalled over ranks) follows each
algorithm's own volume; for allreduce/reduce-scatter/broadcast every family
moves the same total bytes (e.g. ``2(p-1)n`` for allreduce), they differ in
*where* those bytes flow.

=================  ============================  =======================
collective         time (ring beta, per rank)    total wire bytes (ring)
=================  ============================  =======================
allreduce (ring)   2(p-1)/p * n / bw             2(p-1) * n
allgather (ring)   (p-1) * n_local / bw          p(p-1) * n_local
reducescatter      (p-1)/p * n / bw              (p-1) * n
broadcast (ring)   n / bw (pipelined)            (p-1) * n
reduce (ring)      n / bw (pipelined)            (p-1) * n
scatter/gather     (p-1) * n_local / bw_root     (p-1) * n_local
all_to_all         (p-1)/p * n / bw              (p-1) * n
p2p                n / bw(a,b)                   n
=================  ============================  =======================

``algorithm="auto"`` delegates to the memoized
:class:`~repro.comm.algorithms.AlgorithmSelector`, which picks the min-cost
family per (group, op, message-size bucket) and never does worse than the
flat ring.  Only simulated seconds/wire accounting depend on the algorithm;
collective *results* are combined identically in every case.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.machine import ClusterSpec
from repro.comm.algorithms import ALGORITHMS, AlgorithmSelector


@dataclass(frozen=True)
class CollectiveCost:
    """Result of a cost query: simulated seconds, wire traffic and the
    algorithm that produced them."""

    seconds: float
    wire_bytes: int
    algorithm: str = "ring"

    def wire_elements(self, itemsize: int) -> int:
        return self.wire_bytes // max(itemsize, 1)


_ZERO = CollectiveCost(0.0, 0)


class CostModel:
    """Collective/p2p cost queries bound to one cluster.

    ``algorithm`` is the default family for selectable collectives
    (``"ring" | "tree" | "hierarchical" | "auto"``); every collective method
    also takes a per-call ``algorithm=`` override.  ``island_ratio`` is the
    bandwidth-ratio threshold for island detection (a member pair is
    "fast" when its path bandwidth is at least this fraction of the
    group's fastest pair).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        algorithm: str = "ring",
        island_ratio: float = 0.5,
    ) -> None:
        self.cluster = cluster
        self.alpha = cluster.alpha
        self.bw_ramp = getattr(cluster, "bw_ramp_time", 0.0)
        _check_algorithm(algorithm)
        self.algorithm = algorithm
        self.island_ratio = island_ratio
        self.selector = AlgorithmSelector(self)

    def _eff(self, bw: float, nbytes: int) -> float:
        """Effective bandwidth after the NCCL-style message-size ramp: a
        link achieves half its peak for messages of ``bw * bw_ramp_time``
        bytes, so small payloads on fast links are protocol-bound."""
        if self.bw_ramp <= 0 or not math.isfinite(bw):
            return bw
        knee = bw * self.bw_ramp
        return bw * nbytes / (nbytes + knee)

    # -- helpers ---------------------------------------------------------------

    def _names(self, ranks: Sequence[int]) -> List[str]:
        return self.cluster.gpu_names(list(ranks))

    def _ring(self, ranks: Sequence[int]) -> Tuple[float, float]:
        """(contention-aware bottleneck bandwidth, summed latency) of the
        group's topology-aware ring ordering."""
        topo = self.cluster.topology
        names = topo.order_ring(self._names(ranks))
        return topo.ring_stats(names)

    def _pairwise(self, ranks: Sequence[int]) -> Tuple[float, float]:
        """(worst pair bandwidth, worst pair latency) — the per-round bound
        of recursive halving/doubling, whose partners span every distance."""
        names = self._names(ranks)
        topo = self.cluster.topology
        bw = math.inf
        lat = 0.0
        for a, b in itertools.combinations(names, 2):
            b_, l_ = topo.path_stats(a, b)
            bw = min(bw, b_)
            lat = max(lat, l_)
        return bw, lat

    def _star(self, root: int, ranks: Sequence[int]) -> Tuple[float, float]:
        """(bottleneck root<->member bandwidth, max latency) for scatter/gather."""
        topo = self.cluster.topology
        rn = self.cluster.gpus[root].name
        bw = math.inf
        lat = 0.0
        for r in ranks:
            if r == root:
                continue
            b, l = topo.path_stats(rn, self.cluster.gpus[r].name)
            bw = min(bw, b)
            lat = max(lat, l)
        return bw, lat

    def _islands(self, ranks: Sequence[int]) -> List[List[str]]:
        return self.cluster.topology.islands(self._names(ranks), self.island_ratio)

    def _phase(
        self, send_bytes: float, buffer_bytes: float, bw: float
    ) -> Tuple[float, float]:
        """(pipeline-fill startup, steady-state data seconds) of one phase
        of a chunk-pipelined multi-phase schedule.

        Chunks stream through consecutive phases, so the total data term of
        a schedule is the *sum* of the per-phase startups (each phase's
        bandwidth ramp must fill once) plus the *max* of the per-phase
        steady-state terms (the slowest phase gates the pipeline).  The
        startup equals the fraction of the buffer this phase moves times
        the cluster's ``bw_ramp_time`` — the same decomposition
        ``n/eff(bw, n) = n/bw + ramp`` that a single-phase ring pays.
        """
        if send_bytes <= 0 or buffer_bytes <= 0:
            return 0.0, 0.0
        slope = send_bytes / bw if math.isfinite(bw) else 0.0
        return (send_bytes / buffer_bytes) * self.bw_ramp, slope

    def _island_phases(
        self, islands: List[List[str]]
    ) -> Tuple[List[Tuple[int, float, float]], float, float, int, int]:
        """Per-island ring stats plus the inter-island leader-ring stats.

        Returns ``(intra, bridge_bw, bridge_lat, k, s)`` where ``intra`` is a
        list of ``(size, ring_bw, ring_lat)`` for the multi-member islands,
        ``k`` the island count and ``s`` the smallest island size (the
        number of shard rails driving the bridge concurrently).
        """
        topo = self.cluster.topology
        intra = []
        for g in islands:
            if len(g) > 1:
                bw, lat = topo.ring_stats(topo.order_ring(g))
                intra.append((len(g), bw, lat))
        leaders = topo.order_ring([g[0] for g in islands])
        bridge_bw, bridge_lat = topo.ring_stats(leaders)
        k = len(islands)
        s = min(len(g) for g in islands)
        return intra, bridge_bw, bridge_lat, k, s

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(
        self, op: str, ranks: Sequence[int], nbytes: int, algorithm: Optional[str]
    ) -> CollectiveCost:
        if len(ranks) < 2 or nbytes == 0:
            return _ZERO
        algo = algorithm if algorithm is not None else self.algorithm
        if algo == "auto":
            return self.selector.select(op, ranks, nbytes)
        _check_algorithm(algo)
        return self._op_cost(op, ranks, nbytes, algo)

    def _op_cost(
        self, op: str, ranks: Sequence[int], nbytes: int, algo: str
    ) -> CollectiveCost:
        """Cost of ``op`` under one concrete algorithm.  Ops that do not
        implement the requested family fall back to their flat schedule, so
        a global ``algorithm="tree"`` setting stays valid for every op."""
        fn = getattr(self, f"_{algo}_{op}", None)
        if fn is None:
            fn = getattr(self, f"_ring_{op}")
        return fn(ranks, nbytes)

    # -- flat ring algorithms ----------------------------------------------------

    def _ring_all_reduce(self, ranks: Sequence[int], nbytes: int) -> CollectiveCost:
        p = len(ranks)
        bw, lat = self._ring(ranks)
        steps = 2 * (p - 1)
        seconds = (
            steps * self.alpha + lat
            + (2 * (p - 1) / p) * nbytes / self._eff(bw, nbytes)
        )
        return CollectiveCost(seconds, 2 * (p - 1) * nbytes, "ring")

    def _ring_all_gather(self, ranks: Sequence[int], nbytes_local: int) -> CollectiveCost:
        p = len(ranks)
        bw, lat = self._ring(ranks)
        seconds = (
            (p - 1) * self.alpha + lat
            + (p - 1) * nbytes_local / self._eff(bw, p * nbytes_local)
        )
        return CollectiveCost(seconds, p * (p - 1) * nbytes_local, "ring")

    def _ring_reduce_scatter(self, ranks: Sequence[int], nbytes_in: int) -> CollectiveCost:
        p = len(ranks)
        bw, lat = self._ring(ranks)
        seconds = (
            (p - 1) * self.alpha + lat
            + ((p - 1) / p) * nbytes_in / self._eff(bw, nbytes_in)
        )
        return CollectiveCost(seconds, (p - 1) * nbytes_in, "ring")

    def _ring_broadcast(self, ranks: Sequence[int], nbytes: int) -> CollectiveCost:
        p = len(ranks)
        bw, lat = self._ring(ranks)
        seconds = p * self.alpha + lat + nbytes / self._eff(bw, nbytes)
        return CollectiveCost(seconds, (p - 1) * nbytes, "ring")

    _ring_reduce = _ring_broadcast  # symmetric ring algorithm

    # -- tree algorithms ---------------------------------------------------------

    def _tree_all_reduce(self, ranks: Sequence[int], nbytes: int) -> CollectiveCost:
        """Recursive halving (reduce-scatter) + doubling (allgather):
        ``2 ceil(log2 p)`` rounds moving ``2(p-1)/p * n`` per rank, bounded
        by the worst partner pair (round partners span every distance).
        Rounds use the eager low-latency protocol, so the bandwidth ramp is
        charged once on the aggregate volume rather than per round."""
        p = len(ranks)
        steps = 2 * math.ceil(math.log2(p))
        bw, lat = self._pairwise(ranks)
        seconds = (
            steps * (self.alpha + lat)
            + (2 * (p - 1) / p) * nbytes / self._eff(bw, nbytes)
        )
        return CollectiveCost(seconds, 2 * (p - 1) * nbytes, "tree")

    def _tree_all_gather(self, ranks: Sequence[int], nbytes_local: int) -> CollectiveCost:
        """Recursive doubling: ceil(log2 p) rounds, same volume as the ring."""
        p = len(ranks)
        steps = math.ceil(math.log2(p))
        bw, lat = self._pairwise(ranks)
        seconds = (
            steps * (self.alpha + lat)
            + (p - 1) * nbytes_local / self._eff(bw, p * nbytes_local)
        )
        return CollectiveCost(seconds, p * (p - 1) * nbytes_local, "tree")

    def _tree_reduce_scatter(self, ranks: Sequence[int], nbytes_in: int) -> CollectiveCost:
        """Recursive halving: ceil(log2 p) rounds, (p-1)/p * n per rank."""
        p = len(ranks)
        steps = math.ceil(math.log2(p))
        bw, lat = self._pairwise(ranks)
        seconds = (
            steps * (self.alpha + lat)
            + ((p - 1) / p) * nbytes_in / self._eff(bw, nbytes_in)
        )
        return CollectiveCost(seconds, (p - 1) * nbytes_in, "tree")

    def _tree_broadcast(self, ranks: Sequence[int], nbytes: int) -> CollectiveCost:
        """Binomial tree: ceil(log2 p) levels each forwarding the full
        payload (unpipelined — the ring wins for large messages)."""
        p = len(ranks)
        steps = math.ceil(math.log2(p))
        bw, lat = self._pairwise(ranks)
        seconds = steps * (self.alpha + lat + nbytes / self._eff(bw, nbytes))
        return CollectiveCost(seconds, (p - 1) * nbytes, "tree")

    _tree_reduce = _tree_broadcast  # mirrored binomial tree

    # -- hierarchical (two-level island) algorithms ------------------------------

    def _hierarchical_all_reduce(self, ranks: Sequence[int], nbytes: int) -> CollectiveCost:
        """Intra-island reduce-scatter -> per-shard-rail inter-island ring
        allreduce over the slow bridge -> intra-island allgather.  The
        phases are chunk-pipelined (data term = max of the phase terms) and
        the ``s`` shard rails of an island drive the bridge concurrently,
        so each rail only carries ``n/s`` bytes across the slow links."""
        p = len(ranks)
        islands = self._islands(ranks)
        k = len(islands)
        if k < 2:
            cost = self._ring_all_reduce(ranks, nbytes)
            return CollectiveCost(cost.seconds, cost.wire_bytes, "hierarchical")
        intra, bridge_bw, bridge_lat, k, s = self._island_phases(islands)
        shard = nbytes / s
        phases = [
            self._phase((sz - 1) / sz * nbytes, nbytes, bw) for sz, bw, _lat in intra
        ]
        su_intra = max((su for su, _sl in phases), default=0.0)
        sl_intra = max((sl for _su, sl in phases), default=0.0)
        su_inter, sl_inter = self._phase(2 * (k - 1) / k * shard, shard, bridge_bw)
        max_s = max(len(g) for g in islands)
        max_intra_lat = max((lat for _sz, _bw, lat in intra), default=0.0)
        steps = 2 * (max_s - 1) + 2 * (k - 1)
        seconds = (
            steps * self.alpha
            + 2 * max_intra_lat + bridge_lat
            + 2 * su_intra + su_inter
            + max(sl_intra, sl_inter)
        )
        wire = 2 * (p - k) * nbytes + 2 * (k - 1) * nbytes
        return CollectiveCost(seconds, wire, "hierarchical")

    def _hierarchical_all_gather(
        self, ranks: Sequence[int], nbytes_local: int
    ) -> CollectiveCost:
        """Per-rail inter-island allgather of each member's shard over the
        bridge, then intra-island allgather of the rail hauls; pipelined."""
        islands = self._islands(ranks)
        k = len(islands)
        if k < 2:
            cost = self._ring_all_gather(ranks, nbytes_local)
            return CollectiveCost(cost.seconds, cost.wire_bytes, "hierarchical")
        intra, bridge_bw, bridge_lat, k, s = self._island_phases(islands)
        su_inter, sl_inter = self._phase(
            (k - 1) * nbytes_local, k * nbytes_local, bridge_bw
        )
        phases = [
            self._phase((sz - 1) * k * nbytes_local, sz * k * nbytes_local, bw)
            for sz, bw, _lat in intra
        ]
        su_intra = max((su for su, _sl in phases), default=0.0)
        sl_intra = max((sl for _su, sl in phases), default=0.0)
        max_s = max(len(g) for g in islands)
        max_intra_lat = max((lat for _sz, _bw, lat in intra), default=0.0)
        steps = (k - 1) + (max_s - 1)
        seconds = (
            steps * self.alpha
            + bridge_lat + max_intra_lat
            + su_inter + su_intra
            + max(sl_inter, sl_intra)
        )
        wire = s * k * (k - 1) * nbytes_local + k * nbytes_local * sum(
            len(g) * (len(g) - 1) for g in islands
        )
        return CollectiveCost(seconds, wire, "hierarchical")

    def _hierarchical_reduce_scatter(
        self, ranks: Sequence[int], nbytes_in: int
    ) -> CollectiveCost:
        """Intra-island reduce-scatter of the full payload, then per-rail
        inter-island reduce-scatter of the ``n/s`` shards; pipelined."""
        p = len(ranks)
        islands = self._islands(ranks)
        k = len(islands)
        if k < 2:
            cost = self._ring_reduce_scatter(ranks, nbytes_in)
            return CollectiveCost(cost.seconds, cost.wire_bytes, "hierarchical")
        intra, bridge_bw, bridge_lat, k, s = self._island_phases(islands)
        shard = nbytes_in / s
        phases = [
            self._phase((sz - 1) / sz * nbytes_in, nbytes_in, bw)
            for sz, bw, _lat in intra
        ]
        su_intra = max((su for su, _sl in phases), default=0.0)
        sl_intra = max((sl for _su, sl in phases), default=0.0)
        su_inter, sl_inter = self._phase((k - 1) / k * shard, shard, bridge_bw)
        max_s = max(len(g) for g in islands)
        max_intra_lat = max((lat for _sz, _bw, lat in intra), default=0.0)
        steps = (max_s - 1) + (k - 1)
        seconds = (
            steps * self.alpha
            + max_intra_lat + bridge_lat
            + su_intra + su_inter
            + max(sl_intra, sl_inter)
        )
        wire = (p - k) * nbytes_in + (k - 1) * nbytes_in
        return CollectiveCost(seconds, wire, "hierarchical")

    def _hierarchical_broadcast(self, ranks: Sequence[int], nbytes: int) -> CollectiveCost:
        """Pipelined ring broadcast over the island leaders, then pipelined
        ring broadcasts inside every island (concurrent across islands)."""
        p = len(ranks)
        islands = self._islands(ranks)
        k = len(islands)
        if k < 2:
            cost = self._ring_broadcast(ranks, nbytes)
            return CollectiveCost(cost.seconds, cost.wire_bytes, "hierarchical")
        intra, bridge_bw, bridge_lat, k, _s = self._island_phases(islands)
        su_inter, sl_inter = self._phase(nbytes, nbytes, bridge_bw)
        phases = [self._phase(nbytes, nbytes, bw) for _sz, bw, _lat in intra]
        su_intra = max((su for su, _sl in phases), default=0.0)
        sl_intra = max((sl for _su, sl in phases), default=0.0)
        max_s = max(len(g) for g in islands)
        max_intra_lat = max((lat for _sz, _bw, lat in intra), default=0.0)
        seconds = (
            (k + max_s) * self.alpha
            + bridge_lat + max_intra_lat
            + su_inter + su_intra
            + max(sl_inter, sl_intra)
        )
        wire = (k - 1) * nbytes + (p - k) * nbytes
        return CollectiveCost(seconds, wire, "hierarchical")

    _hierarchical_reduce = _hierarchical_broadcast  # mirrored schedule

    # -- collectives ------------------------------------------------------------

    def allreduce(
        self, ranks: Sequence[int], nbytes: int, algorithm: Optional[str] = None
    ) -> CollectiveCost:
        return self._dispatch("all_reduce", ranks, int(nbytes), algorithm)

    def allgather(
        self, ranks: Sequence[int], nbytes_local: int, algorithm: Optional[str] = None
    ) -> CollectiveCost:
        return self._dispatch("all_gather", ranks, int(nbytes_local), algorithm)

    def reduce_scatter(
        self, ranks: Sequence[int], nbytes_in: int, algorithm: Optional[str] = None
    ) -> CollectiveCost:
        return self._dispatch("reduce_scatter", ranks, int(nbytes_in), algorithm)

    def broadcast(
        self, ranks: Sequence[int], nbytes: int, algorithm: Optional[str] = None
    ) -> CollectiveCost:
        return self._dispatch("broadcast", ranks, int(nbytes), algorithm)

    def reduce(
        self, ranks: Sequence[int], nbytes: int, algorithm: Optional[str] = None
    ) -> CollectiveCost:
        return self._dispatch("reduce", ranks, int(nbytes), algorithm)

    def scatter(self, root: int, ranks: Sequence[int], nbytes_local: int) -> CollectiveCost:
        p = len(ranks)
        if p < 2 or nbytes_local == 0:
            return _ZERO
        bw, lat = self._star(root, ranks)
        seconds = (
            (p - 1) * self.alpha + lat
            + (p - 1) * nbytes_local / self._eff(bw, p * nbytes_local)
        )
        return CollectiveCost(seconds, (p - 1) * nbytes_local, "star")

    def gather(self, root: int, ranks: Sequence[int], nbytes_local: int) -> CollectiveCost:
        return self.scatter(root, ranks, nbytes_local)

    def all_to_all(self, ranks: Sequence[int], nbytes_local: int) -> CollectiveCost:
        p = len(ranks)
        if p < 2 or nbytes_local == 0:
            return _ZERO
        names = self._names(ranks)
        topo = self.cluster.topology
        bw = topo.min_bandwidth(names)
        # worst pair latency — the same per-call latency term every other
        # collective charges (was dropped before)
        lat = max(
            topo.latency(a, b) for a, b in itertools.combinations(names, 2)
        )
        seconds = (
            (p - 1) * self.alpha + lat
            + ((p - 1) / p) * nbytes_local / self._eff(bw, nbytes_local)
        )
        return CollectiveCost(seconds, (p - 1) * nbytes_local, "direct")

    def barrier(self, ranks: Sequence[int]) -> CollectiveCost:
        p = len(ranks)
        if p < 2:
            return _ZERO
        return CollectiveCost(self.alpha * math.ceil(math.log2(p)), 0, "tree")

    def p2p(self, src: int, dst: int, nbytes: int) -> CollectiveCost:
        if nbytes == 0 or src == dst:
            return _ZERO
        a = self.cluster.gpus[src].name
        b = self.cluster.gpus[dst].name
        bw, lat = self.cluster.topology.path_stats(a, b)
        return CollectiveCost(
            self.alpha + lat + nbytes / self._eff(bw, nbytes), nbytes, "direct"
        )

    def host_transfer(self, rank: int, nbytes: int) -> CollectiveCost:
        """CPU <-> GPU transfer (offloading traffic)."""
        if nbytes == 0:
            return _ZERO
        bw = self.cluster.h2d_bandwidth(rank)
        return CollectiveCost(
            self.alpha + nbytes / self._eff(bw, nbytes), nbytes, "direct"
        )


def _check_algorithm(algorithm: str) -> None:
    valid = ALGORITHMS + ("auto",)
    if algorithm not in valid:
        raise ValueError(
            f"unknown collective algorithm {algorithm!r}; choose from {valid}"
        )
