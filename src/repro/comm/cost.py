"""Alpha-beta cost model for collectives over a topology.

Each collective maps to its standard ring/tree algorithm; the cost of a call
over a group is::

    time = alpha * steps + latency_term + wire_bytes_per_rank / bandwidth

where ``bandwidth`` is the bottleneck link bandwidth of the algorithm's
communication pattern on the actual topology graph.  This single rule is
what makes System II (PCIe between distant GPUs) slow for group-wide
collectives while leaving adjacent-pair traffic at NVLink speed — the
mechanism behind the paper's Fig 10/11.

Wire accounting (``wire_bytes``, totalled over ranks) follows the classic
algorithm volumes:

=================  ============================  =======================
collective         time (beta term, per rank)    total wire bytes
=================  ============================  =======================
allreduce (ring)   2(p-1)/p * n / bw             2(p-1) * n
allgather (ring)   (p-1) * n_local / bw          p(p-1) * n_local
reducescatter      (p-1)/p * n / bw              (p-1) * n
broadcast (ring)   n / bw (pipelined)            (p-1) * n
reduce (ring)      n / bw (pipelined)            (p-1) * n
scatter/gather     (p-1) * n_local / bw_root     (p-1) * n_local
all_to_all         (p-1)/p * n / bw              (p-1) * n
p2p                n / bw(a,b)                   n
=================  ============================  =======================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.cluster.machine import ClusterSpec


@dataclass(frozen=True)
class CollectiveCost:
    """Result of a cost query: simulated seconds and wire traffic."""

    seconds: float
    wire_bytes: int

    def wire_elements(self, itemsize: int) -> int:
        return self.wire_bytes // max(itemsize, 1)


class CostModel:
    """Collective/p2p cost queries bound to one cluster."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self.alpha = cluster.alpha
        self.bw_ramp = getattr(cluster, "bw_ramp_time", 0.0)

    def _eff(self, bw: float, nbytes: int) -> float:
        """Effective bandwidth after the NCCL-style message-size ramp: a
        link achieves half its peak for messages of ``bw * bw_ramp_time``
        bytes, so small payloads on fast links are protocol-bound."""
        if self.bw_ramp <= 0:
            return bw
        knee = bw * self.bw_ramp
        return bw * nbytes / (nbytes + knee)

    # -- helpers ---------------------------------------------------------------

    def _names(self, ranks: List[int]) -> List[str]:
        return self.cluster.gpu_names(ranks)

    def _ring(self, ranks: List[int]) -> Tuple[float, float]:
        """(bottleneck ring bandwidth, summed ring latency) for a group."""
        names = self._names(ranks)
        topo = self.cluster.topology
        bw = topo.ring_bandwidth(names)
        lat = sum(topo.latency(a, b) for a, b in zip(names, names[1:] + names[:1]))
        return bw, lat

    def _star(self, root: int, ranks: List[int]) -> Tuple[float, float]:
        """(bottleneck root<->member bandwidth, max latency) for scatter/gather."""
        topo = self.cluster.topology
        rn = self.cluster.gpus[root].name
        bw = math.inf
        lat = 0.0
        for r in ranks:
            if r == root:
                continue
            b, l = topo.path_stats(rn, self.cluster.gpus[r].name)
            bw = min(bw, b)
            lat = max(lat, l)
        return bw, lat

    # -- collectives ------------------------------------------------------------

    def allreduce(self, ranks: List[int], nbytes: int) -> CollectiveCost:
        p = len(ranks)
        if p < 2 or nbytes == 0:
            return CollectiveCost(0.0, 0)
        bw, lat = self._ring(ranks)
        steps = 2 * (p - 1)
        seconds = steps * self.alpha + lat + (2 * (p - 1) / p) * nbytes / self._eff(bw, nbytes)
        return CollectiveCost(seconds, 2 * (p - 1) * nbytes)

    def allgather(self, ranks: List[int], nbytes_local: int) -> CollectiveCost:
        p = len(ranks)
        if p < 2 or nbytes_local == 0:
            return CollectiveCost(0.0, 0)
        bw, lat = self._ring(ranks)
        seconds = (p - 1) * self.alpha + lat + (p - 1) * nbytes_local / self._eff(bw, p * nbytes_local)
        return CollectiveCost(seconds, p * (p - 1) * nbytes_local)

    def reduce_scatter(self, ranks: List[int], nbytes_in: int) -> CollectiveCost:
        p = len(ranks)
        if p < 2 or nbytes_in == 0:
            return CollectiveCost(0.0, 0)
        bw, lat = self._ring(ranks)
        seconds = (p - 1) * self.alpha + lat + ((p - 1) / p) * nbytes_in / self._eff(bw, nbytes_in)
        return CollectiveCost(seconds, (p - 1) * nbytes_in)

    def broadcast(self, ranks: List[int], nbytes: int) -> CollectiveCost:
        p = len(ranks)
        if p < 2 or nbytes == 0:
            return CollectiveCost(0.0, 0)
        bw, lat = self._ring(ranks)
        seconds = p * self.alpha + lat + nbytes / self._eff(bw, nbytes)
        return CollectiveCost(seconds, (p - 1) * nbytes)

    def reduce(self, ranks: List[int], nbytes: int) -> CollectiveCost:
        return self.broadcast(ranks, nbytes)  # symmetric ring algorithm

    def scatter(self, root: int, ranks: List[int], nbytes_local: int) -> CollectiveCost:
        p = len(ranks)
        if p < 2 or nbytes_local == 0:
            return CollectiveCost(0.0, 0)
        bw, lat = self._star(root, ranks)
        seconds = (p - 1) * self.alpha + lat + (p - 1) * nbytes_local / self._eff(bw, p * nbytes_local)
        return CollectiveCost(seconds, (p - 1) * nbytes_local)

    def gather(self, root: int, ranks: List[int], nbytes_local: int) -> CollectiveCost:
        return self.scatter(root, ranks, nbytes_local)

    def all_to_all(self, ranks: List[int], nbytes_local: int) -> CollectiveCost:
        p = len(ranks)
        if p < 2 or nbytes_local == 0:
            return CollectiveCost(0.0, 0)
        names = self._names(ranks)
        bw = self.cluster.topology.min_bandwidth(names)
        seconds = (p - 1) * self.alpha + ((p - 1) / p) * nbytes_local / self._eff(bw, nbytes_local)
        return CollectiveCost(seconds, (p - 1) * nbytes_local)

    def barrier(self, ranks: List[int]) -> CollectiveCost:
        p = len(ranks)
        if p < 2:
            return CollectiveCost(0.0, 0)
        return CollectiveCost(self.alpha * math.ceil(math.log2(p)), 0)

    def p2p(self, src: int, dst: int, nbytes: int) -> CollectiveCost:
        if nbytes == 0 or src == dst:
            return CollectiveCost(0.0, 0)
        a = self.cluster.gpus[src].name
        b = self.cluster.gpus[dst].name
        bw, lat = self.cluster.topology.path_stats(a, b)
        return CollectiveCost(self.alpha + lat + nbytes / self._eff(bw, nbytes), nbytes)

    def host_transfer(self, rank: int, nbytes: int) -> CollectiveCost:
        """CPU <-> GPU transfer (offloading traffic)."""
        if nbytes == 0:
            return CollectiveCost(0.0, 0)
        bw = self.cluster.h2d_bandwidth(rank)
        return CollectiveCost(self.alpha + nbytes / self._eff(bw, nbytes), nbytes)
