"""Cost-driven collective algorithm selection.

Real communication libraries (NCCL, MSCCL) do not run one flat ring for
every call: they pick per (communicator, op, message size) among a family of
algorithms — latency-optimal trees for small messages, bandwidth-optimal
rings for large ones on symmetric fabrics, and two-level hierarchical
schedules on asymmetric fabrics (NVLink islands bridged by PCIe/NIC).  The
:class:`AlgorithmSelector` reproduces that decision procedure on top of the
alpha-beta :class:`~repro.comm.cost.CostModel`: for a selectable op it
evaluates every candidate algorithm's cost and memoizes the winner per
``(group signature, op, message-size bucket)``.

The memo is keyed by power-of-two size bucket (``nbytes.bit_length()``) so a
training loop that repeats the same tensor sizes hits the cache, while the
returned cost is always evaluated at the *actual* byte count.  On a bucket
hit the cached algorithm is re-priced against the flat ring and the cheaper
of the two is returned, so selection never does worse than the flat-ring
baseline anywhere in a bucket (the invariant the parity suite pins).

The cache watches :attr:`~repro.cluster.topology.Topology.version` and
drops itself whenever the link graph changes — fault-injected link
degradation (``scale_link``) or recovery (``restore_links``) re-triggers
selection with the new bandwidths.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

#: candidate algorithms, in tie-break preference order
ALGORITHMS = ("ring", "tree", "hierarchical")

#: collectives with more than one implemented algorithm; every other op
#: (scatter/gather stars, all_to_all, barrier, p2p) has a single schedule
#: and bypasses selection.
SELECTABLE_OPS = frozenset(
    {"all_reduce", "all_gather", "reduce_scatter", "broadcast", "reduce"}
)


class AlgorithmSelector:
    """Memoized min-cost algorithm choice for one :class:`CostModel`."""

    def __init__(self, model: Any) -> None:
        self.model = model
        self._cache: Dict[Tuple[Tuple[int, ...], str, int], str] = {}
        self._topo_version: Optional[int] = None
        self.hits = 0
        self.misses = 0

    def _sync_topology(self) -> None:
        version = self.model.cluster.topology.version
        if version != self._topo_version:
            self._cache.clear()
            self._topo_version = version

    def cached_choice(
        self, op: str, ranks: Sequence[int], nbytes: int
    ) -> Optional[str]:
        """The memoized algorithm for this (group, op, size bucket), if any."""
        self._sync_topology()
        return self._cache.get((tuple(ranks), op, int(nbytes).bit_length()))

    def select(self, op: str, ranks: Sequence[int], nbytes: int) -> Any:
        """Return the min-cost :class:`CollectiveCost` for this call.

        Guarantees ``cost.seconds <= ring cost.seconds`` for every size, not
        just the bucket representative that populated the cache.
        """
        if op not in SELECTABLE_OPS:
            return self.model._op_cost(op, ranks, nbytes, "ring")
        self._sync_topology()
        key = (tuple(ranks), op, int(nbytes).bit_length())
        algo = self._cache.get(key)
        if algo is None:
            self.misses += 1
            best = None
            for cand in ALGORITHMS:
                cost = self.model._op_cost(op, ranks, nbytes, cand)
                if best is None or cost.seconds < best.seconds:
                    best, algo = cost, cand
            self._cache[key] = algo
            return best
        self.hits += 1
        cost = self.model._op_cost(op, ranks, nbytes, algo)
        if algo != "ring":
            ring = self.model._op_cost(op, ranks, nbytes, "ring")
            if ring.seconds < cost.seconds:
                return ring
        return cost

    def clear(self) -> None:
        self._cache.clear()
        self._topo_version = None

    def __len__(self) -> int:
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AlgorithmSelector(entries={len(self._cache)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
