"""Rank-facing communication API.

A :class:`Communicator` is one rank's view of a :class:`ProcessGroup`.  The
method set mirrors the standard collective vocabulary (mpi4py / NCCL):
``all_reduce``, ``all_gather``, ``reduce_scatter``, ``broadcast``,
``reduce``, ``scatter``, ``gather``, ``all_to_all``, ``barrier``,
``send``/``recv`` and ``ring_pass`` (one rotation step, the primitive under
ring self-attention and SUMMA-style algorithms).

All methods accept either real ``numpy`` arrays or :class:`SpecArray`
stand-ins and return the same kind; reductions are combined in local-rank
order so results are bitwise deterministic run-to-run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.comm.cost import CollectiveCost
from repro.comm.group import ProcessGroup, WorkHandle
from repro.comm.payload import Payload, SpecArray, is_spec, like
from repro.runtime.errors import CollectiveTimeout

ReduceOp = str  # "sum" | "max" | "min" | "prod"

_REDUCERS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}

#: nominal wire size charged for control-plane object exchanges
_OBJECT_NBYTES = 64


def _check_same_shape(payloads: Dict[int, Payload], what: str) -> None:
    shapes = {tuple(p.shape) for p in payloads.values()}
    if len(shapes) > 1:
        raise ValueError(f"{what}: mismatched shapes across ranks: {sorted(shapes)}")


def _check_reduce_op(op: ReduceOp, what: str) -> None:
    """Reject unknown reduce ops up front, identically in both execution
    modes (spec mode never touches ``_REDUCERS``, so without this check it
    silently accepted any string while real mode raised a raw KeyError)."""
    if op not in _REDUCERS:
        raise ValueError(
            f"{what}: invalid reduce op {op!r}; valid ops: {sorted(_REDUCERS)}"
        )


def _combine(payloads: Dict[int, Payload], op: ReduceOp,
             pool: Any = None) -> Payload:
    """Reduce payloads in local-rank order (deterministic).

    With a :class:`~repro.runtime.buffer_pool.BufferPool` the accumulator is
    a pooled scratch buffer filled in place (``fn(acc, arr, out=acc)``) —
    bitwise identical to the chained ``acc = fn(acc, arr)`` when all operand
    dtypes match (elementwise ufuncs, no promotion), which is the only case
    the pooled path takes.  The caller owns the returned buffer and must
    ``adopt`` it out of the pool (reductions escape as rank results).
    """
    ordered = [payloads[i] for i in sorted(payloads)]
    first = ordered[0]
    if is_spec(first):
        dtype = np.result_type(*[p.dtype for p in ordered])
        return SpecArray(first.shape, dtype)
    fn = _REDUCERS[op]
    if pool is not None and all(p.dtype == first.dtype for p in ordered[1:]):
        acc = pool.loan(first.shape, first.dtype, f"combine:{op}")
        np.copyto(acc, first)
        for arr in ordered[1:]:
            fn(acc, arr, out=acc)
        pool.adopt(acc)
        return acc
    acc = ordered[0].copy()
    for arr in ordered[1:]:
        acc = fn(acc, arr)
    return acc


def _pooled_copy(arr: np.ndarray, pool: Any, label: str) -> np.ndarray:
    """A copy of ``arr`` drawn from (and adopted out of) the buffer pool."""
    out = pool.loan(arr.shape, arr.dtype, label)
    np.copyto(out, arr)
    pool.adopt(out)
    return out


def _split_axis(x: Payload, parts: int, axis: int, what: str) -> List[Payload]:
    if x.shape[axis] % parts != 0:
        raise ValueError(
            f"{what}: axis {axis} of shape {x.shape} not divisible into "
            f"{parts} parts"
        )
    if is_spec(x):
        shape = list(x.shape)
        shape[axis] //= parts
        return [SpecArray(tuple(shape), x.dtype) for _ in range(parts)]
    return [np.ascontiguousarray(c) for c in np.split(x, parts, axis=axis)]


def _concat_axis(chunks: List[Payload], axis: int, what: str) -> Payload:
    """Concatenate along ``axis``, validating every non-concat dimension in
    both modes (numpy rejects mismatches; spec mode must too)."""
    first = chunks[0]
    if first.ndim == 0:
        raise ValueError(f"{what}: zero-dimensional payloads cannot be concatenated")
    for c in chunks[1:]:
        if c.ndim != first.ndim or any(
            c.shape[d] != first.shape[d]
            for d in range(first.ndim) if d != axis % first.ndim
        ):
            raise ValueError(
                f"{what}: mismatched non-concat dims along axis {axis}: "
                f"{sorted({tuple(c.shape) for c in chunks})}"
            )
    if is_spec(first):
        shape = list(first.shape)
        shape[axis] = sum(c.shape[axis] for c in chunks)
        dtype = np.result_type(*[c.dtype for c in chunks])
        return SpecArray(tuple(shape), dtype)
    return np.concatenate(chunks, axis=axis)


class Communicator:
    """One rank's handle on a process group."""

    def __init__(self, group: ProcessGroup, global_rank: int) -> None:
        self.group = group
        self.global_rank = global_rank
        self.rank = group.local_rank(global_rank)
        self.size = group.size

    # -- construction ------------------------------------------------------

    @staticmethod
    def world(ctx: Any) -> "Communicator":
        """Communicator over all ranks of the running SPMD program."""
        return Communicator(ctx.runtime.world_group, ctx.rank)

    def split(self, color: int, key: int = 0) -> "Communicator":
        """MPI_Comm_split: ranks with equal ``color`` form a subgroup ordered
        by ``(key, global rank)``.  Collective over the parent group."""

        def finalize(payloads: Dict[int, Any]):
            results: Dict[int, Any] = {}
            groups: Dict[int, List] = {}
            for local, (c, k) in payloads.items():
                groups.setdefault(c, []).append((k, self.group.global_rank(local)))
            membership: Dict[int, List[int]] = {}
            for c, members in groups.items():
                membership[c] = [g for _, g in sorted(members)]
            for local, (c, _k) in payloads.items():
                results[local] = membership[c]
            return results, CollectiveCost(self.group.cost_model.alpha, 0), "split", 1

        san = self.group.runtime.sanitizer
        spec = None if san is None else san.make_spec("split", None, self)
        ranks = self.group.rendezvous(
            self.global_rank, (color, key), finalize, spec
        )
        return Communicator(self.group.runtime.group(ranks), self.global_rank)

    def subgroup(self, local_ranks: Sequence[int]) -> "Communicator":
        """Communicator over a subset of this group (must include self)."""
        ranks = [self.group.global_rank(lr) for lr in local_ranks]
        return Communicator(self.group.runtime.group(ranks), self.global_rank)

    # -- collectives ---------------------------------------------------------

    def _allreduce_round(self, x: Payload, op: ReduceOp):
        """Finalize closure + sanitizer spec for an all_reduce round; shared
        by the blocking and nonblocking entry points so both price and
        combine identically."""
        _check_reduce_op(op, "all_reduce")

        def finalize(payloads: Dict[int, Payload]):
            _check_same_shape(payloads, "all_reduce")
            pool = self.group.runtime.buffer_pool
            combined = _combine(payloads, op, pool)
            cost = self.group.cost_model.allreduce(self.group.ranks, int(x.nbytes))
            if is_spec(combined) or pool is None:
                results = {
                    i: (combined if i == 0 or is_spec(combined)
                        else combined.copy())
                    for i in payloads
                }
            else:
                results = {
                    i: (combined if i == 0
                        else _pooled_copy(combined, pool, "all_reduce:result"))
                    for i in payloads
                }
            return results, cost, "all_reduce", x.dtype.itemsize

        san = self.group.runtime.sanitizer
        spec = (None if san is None
                else san.make_spec("all_reduce", x, self, reduce_op=op))
        return finalize, spec

    def all_reduce(self, x: Payload, op: ReduceOp = "sum") -> Payload:
        """Reduce across the group; every rank receives the full result."""
        finalize, spec = self._allreduce_round(x, op)
        return self.group.rendezvous(self.global_rank, x, finalize, spec)

    def iallreduce(self, x: Payload, op: ReduceOp = "sum") -> "WorkHandle":
        """Nonblocking :meth:`all_reduce`: the round runs on the group's comm
        stream; ``wait()`` on the returned handle delivers this rank's result
        and max-joins its compute clock to the completion time."""
        finalize, spec = self._allreduce_round(x, op)
        return self.group.rendezvous_async(self.global_rank, x, finalize, spec)

    def _allgather_round(self, x: Payload, axis: int):
        def finalize(payloads: Dict[int, Payload]):
            chunks = [payloads[i] for i in sorted(payloads)]
            gathered = _concat_axis(chunks, axis, "all_gather")
            cost = self.group.cost_model.allgather(self.group.ranks, int(x.nbytes))
            results = {
                i: (gathered if i == 0 or is_spec(gathered) else gathered.copy())
                for i in payloads
            }
            return results, cost, "all_gather", x.dtype.itemsize

        san = self.group.runtime.sanitizer
        spec = (None if san is None
                else san.make_spec("all_gather", x, self, axis=axis))
        return finalize, spec

    def all_gather(self, x: Payload, axis: int = 0) -> Payload:
        """Concatenate every rank's payload along ``axis``; all ranks receive
        the concatenation (in local-rank order)."""
        finalize, spec = self._allgather_round(x, axis)
        return self.group.rendezvous(self.global_rank, x, finalize, spec)

    def iall_gather(self, x: Payload, axis: int = 0) -> "WorkHandle":
        """Nonblocking :meth:`all_gather` (see :meth:`iallreduce`)."""
        finalize, spec = self._allgather_round(x, axis)
        return self.group.rendezvous_async(self.global_rank, x, finalize, spec)

    def _reduce_scatter_round(self, x: Payload, axis: int, op: ReduceOp):
        _check_reduce_op(op, "reduce_scatter")

        def finalize(payloads: Dict[int, Payload]):
            _check_same_shape(payloads, "reduce_scatter")
            # combined is adopted out of the pool by _combine: the scattered
            # chunks are axis-0 *views* of it, so it must never be restocked
            combined = _combine(payloads, op, self.group.runtime.buffer_pool)
            chunks = _split_axis(combined, self.size, axis, "reduce_scatter")
            cost = self.group.cost_model.reduce_scatter(self.group.ranks, int(x.nbytes))
            return dict(enumerate(chunks)), cost, "reduce_scatter", x.dtype.itemsize

        san = self.group.runtime.sanitizer
        spec = (None if san is None else san.make_spec(
            "reduce_scatter", x, self, reduce_op=op, axis=axis))
        return finalize, spec

    def reduce_scatter(self, x: Payload, axis: int = 0, op: ReduceOp = "sum") -> Payload:
        """Reduce across the group, then scatter the result: rank i receives
        the i-th chunk of the reduction along ``axis``."""
        finalize, spec = self._reduce_scatter_round(x, axis, op)
        return self.group.rendezvous(self.global_rank, x, finalize, spec)

    def ireduce_scatter(self, x: Payload, axis: int = 0,
                        op: ReduceOp = "sum") -> "WorkHandle":
        """Nonblocking :meth:`reduce_scatter` (see :meth:`iallreduce`)."""
        finalize, spec = self._reduce_scatter_round(x, axis, op)
        return self.group.rendezvous_async(self.global_rank, x, finalize, spec)

    def broadcast(self, x: Optional[Payload], root: int = 0) -> Payload:
        """Send root's payload to every rank (``root`` is a local rank)."""

        def finalize(payloads: Dict[int, Payload]):
            src = payloads[root]
            if src is None:
                raise ValueError("broadcast: root payload is None")
            cost = self.group.cost_model.broadcast(self.group.ranks, int(src.nbytes))
            results = {
                i: (src if i == root or is_spec(src) else src.copy())
                for i in payloads
            }
            return results, cost, "broadcast", src.dtype.itemsize

        san = self.group.runtime.sanitizer
        spec = (None if san is None
                else san.make_spec("broadcast", x, self, root=root))
        return self.group.rendezvous(self.global_rank, x, finalize, spec)

    def reduce(self, x: Payload, root: int = 0, op: ReduceOp = "sum") -> Optional[Payload]:
        """Reduce to the local rank ``root``; other ranks receive ``None``."""
        _check_reduce_op(op, "reduce")

        def finalize(payloads: Dict[int, Payload]):
            _check_same_shape(payloads, "reduce")
            combined = _combine(payloads, op, self.group.runtime.buffer_pool)
            cost = self.group.cost_model.reduce(self.group.ranks, int(x.nbytes))
            results: Dict[int, Optional[Payload]] = {i: None for i in payloads}
            results[root] = combined
            return results, cost, "reduce", x.dtype.itemsize

        san = self.group.runtime.sanitizer
        spec = (None if san is None else san.make_spec(
            "reduce", x, self, reduce_op=op, root=root))
        return self.group.rendezvous(self.global_rank, x, finalize, spec)

    def scatter(self, x: Optional[Payload], root: int = 0, axis: int = 0) -> Payload:
        """Split root's payload into ``size`` chunks along ``axis``; rank i
        receives chunk i."""

        def finalize(payloads: Dict[int, Payload]):
            src = payloads[root]
            if src is None:
                raise ValueError("scatter: root payload is None")
            chunks = _split_axis(src, self.size, axis, "scatter")
            cost = self.group.cost_model.scatter(
                self.group.global_rank(root), self.group.ranks, int(chunks[0].nbytes)
            )
            return dict(enumerate(chunks)), cost, "scatter", src.dtype.itemsize

        san = self.group.runtime.sanitizer
        spec = (None if san is None
                else san.make_spec("scatter", x, self, root=root, axis=axis))
        return self.group.rendezvous(self.global_rank, x, finalize, spec)

    def gather(self, x: Payload, root: int = 0, axis: int = 0) -> Optional[Payload]:
        """Concatenate payloads on local rank ``root``; others get ``None``."""

        def finalize(payloads: Dict[int, Payload]):
            chunks = [payloads[i] for i in sorted(payloads)]
            gathered = _concat_axis(chunks, axis, "gather")
            cost = self.group.cost_model.gather(
                self.group.global_rank(root), self.group.ranks, int(x.nbytes)
            )
            results: Dict[int, Optional[Payload]] = {i: None for i in payloads}
            results[root] = gathered
            return results, cost, "gather", x.dtype.itemsize

        san = self.group.runtime.sanitizer
        spec = (None if san is None
                else san.make_spec("gather", x, self, root=root, axis=axis))
        return self.group.rendezvous(self.global_rank, x, finalize, spec)

    def all_to_all(self, chunks: List[Payload]) -> List[Payload]:
        """Personalized exchange: rank i sends ``chunks[j]`` to rank j and
        receives rank j's ``chunks[i]``."""
        if len(chunks) != self.size:
            raise ValueError(
                f"all_to_all needs {self.size} chunks, got {len(chunks)}"
            )
        nbytes_local = sum(int(c.nbytes) for c in chunks)

        def finalize(payloads: Dict[int, List[Payload]]):
            results = {
                i: [payloads[j][i] for j in sorted(payloads)] for i in payloads
            }
            cost = self.group.cost_model.all_to_all(self.group.ranks, nbytes_local)
            return results, cost, "all_to_all", chunks[0].dtype.itemsize

        san = self.group.runtime.sanitizer
        spec = (None if san is None else san.make_spec(
            "all_to_all", None, self, nchunks=len(chunks)))
        return self.group.rendezvous(self.global_rank, chunks, finalize, spec)

    def barrier(self) -> None:
        def finalize(payloads: Dict[int, Any]):
            cost = self.group.cost_model.barrier(self.group.ranks)
            return {i: None for i in payloads}, cost, "barrier", 1

        san = self.group.runtime.sanitizer
        spec = None if san is None else san.make_spec("barrier", None, self)
        self.group.rendezvous(self.global_rank, None, finalize, spec)

    def ring_pass(self, x: Payload, shift: int = 1) -> Payload:
        """One ring rotation: send to ``(rank+shift) % size``, receive from
        ``(rank-shift) % size``.  All transfers overlap, so the step costs
        the slowest ring edge."""

        def finalize(payloads: Dict[int, Payload]):
            p = self.size
            results = {i: payloads[(i - shift) % p] for i in payloads}
            cm = self.group.cost_model
            seconds = 0.0
            wire = 0
            for i in sorted(payloads):
                src = self.group.global_rank(i)
                dst = self.group.global_rank((i + shift) % p)
                c = cm.p2p(src, dst, int(payloads[i].nbytes))
                seconds = max(seconds, c.seconds)
                wire += c.wire_bytes
            cost = CollectiveCost(seconds, wire)
            return results, cost, "ring_pass", x.dtype.itemsize

        san = self.group.runtime.sanitizer
        spec = (None if san is None
                else san.make_spec("ring_pass", x, self, shift=shift))
        return self.group.rendezvous(self.global_rank, x, finalize, spec)

    def all_gather_object(self, obj: Any) -> List[Any]:
        """Control-plane allgather of small Python objects (OOM flags, batch
        search results).  Charged a nominal wire size."""

        def finalize(payloads: Dict[int, Any]):
            ordered = [payloads[i] for i in sorted(payloads)]
            cost = self.group.cost_model.allgather(self.group.ranks, _OBJECT_NBYTES)
            return {i: list(ordered) for i in payloads}, cost, "all_gather_object", 1

        san = self.group.runtime.sanitizer
        spec = (None if san is None
                else san.make_spec("all_gather_object", None, self))
        return self.group.rendezvous(self.global_rank, obj, finalize, spec)

    # -- point-to-point ---------------------------------------------------------

    def _deliver(self, x: Payload, dst: int, tag: Any,
                 start_time: Optional[float] = None) -> CollectiveCost:
        """Run the fault/retry loop for one p2p transmission and enqueue the
        payload; returns the successful attempt's cost (the caller decides
        when the sender's clock is charged for it — blocking ``send``
        immediately, ``isend`` on ``wait``).

        Each dropped/corrupted attempt charges the failed transfer plus
        backoff to the sender's clock and counts the retransmitted bytes;
        a permanently dead link exhausts the retry budget and raises
        :class:`CollectiveTimeout`.
        """
        src_g = self.global_rank
        dst_g = self.group.global_rank(dst)
        runtime = self.group.runtime
        clock = runtime.clocks[src_g]
        cost = self.group.cost_model.p2p(src_g, dst_g, int(x.nbytes))
        injector = runtime.fault_injector
        san = runtime.sanitizer
        if injector is not None:
            injector.check_time_crash(src_g, clock.time)
            policy = runtime.retry_policy
            tracer = runtime.tracer
            failures = 0
            while True:
                verdict = injector.p2p_verdict(src_g, dst_g)
                if verdict == "deliver":
                    break
                if verdict == "corrupt" and san is not None:
                    san.note_injected_corruption(src_g, dst_g)
                failures += 1
                t0 = clock.time
                clock.advance(cost.seconds + policy.backoff(failures), "comm")
                if tracer is not None:
                    tracer.annotate(
                        src_g, "retry", "p2p:retry", t0, clock.time,
                        dst=dst_g, attempt=failures,
                    )
                self.group.counters.record_retry(
                    "p2p", cost.wire_bytes, int(x.size)
                )
                if failures > policy.max_retries:
                    raise CollectiveTimeout(
                        "p2p", (src_g, dst_g), attempts=failures
                    )
        # stream sends start at max(issue time, sender's p2p stream tail);
        # injected retransmissions above advance the sender's clock, so the
        # max keeps availability consistent with the charged retries
        if start_time is None:
            t_avail = clock.time + cost.seconds
        else:
            t_avail = max(start_time, clock.time) + cost.seconds
        self.group.counters.record("p2p", cost.wire_bytes, int(x.size))
        payload = x if is_spec(x) else x.copy()
        key = (src_g, dst_g, (id(self.group), tag))
        if san is not None:
            san.note_send(src_g, dst_g, key, payload)
        runtime.mailboxes.put(key, (payload, t_avail))
        return cost

    def send(self, x: Payload, dst: int, tag: Any = 0) -> None:
        """Send ``x`` to local rank ``dst``.  Returns once the payload is
        enqueued; the sender's clock is charged the full transfer (eager
        synchronous model), plus retransmissions under injected faults."""
        runtime = self.group.runtime
        clock = runtime.clocks[self.global_rank]
        t0 = clock.time
        cost = self._deliver(x, dst, tag)
        clock.advance(cost.seconds, "comm")
        cap = runtime.capture
        if cap is not None:
            cap.record_send(
                self.global_rank, "ps", self.group,
                self.group.global_rank(dst), tag, int(x.nbytes),
                int(x.size), cost,
            )
        if runtime.tracer is not None:
            runtime.tracer.annotate(
                self.global_rank, "p2p", "send", t0, clock.time,
                dst=self.group.global_rank(dst), nbytes=int(x.nbytes),
            )

    def recv(self, src: int, tag: Any = 0) -> Payload:
        """Blocking receive from local rank ``src``."""
        src_g = self.group.global_rank(src)
        dst_g = self.global_rank
        runtime = self.group.runtime
        if runtime.fault_injector is not None:
            runtime.fault_injector.check_time_crash(
                dst_g, runtime.clocks[dst_g].time
            )
        clock = runtime.clocks[dst_g]
        t0 = clock.time
        key = (src_g, dst_g, (id(self.group), tag))
        payload, t_avail = runtime.mailboxes.get(key, runtime.aborting)
        san = runtime.sanitizer
        if san is not None:
            san.verify_recv(src_g, dst_g, key, payload)
        clock.sync_to(t_avail, "comm")
        cap = runtime.capture
        if cap is not None:
            cap.record_recv(dst_g, self.group, src_g, tag)
        if runtime.tracer is not None:
            runtime.tracer.annotate(
                dst_g, "p2p", "recv", t0, clock.time,
                src=src_g, nbytes=int(payload.nbytes),
            )
        return payload

    def sendrecv(self, x: Payload, dst: int, src: int, tag: Any = 0) -> Payload:
        """Combined send+recv (deadlock-free pairwise exchange)."""
        self.send(x, dst, tag)
        return self.recv(src, tag)

    def isend(self, x: Payload, dst: int, tag: Any = 0) -> WorkHandle:
        """Non-blocking send (mpi4py style).

        With ``runtime.comm_overlap`` enabled the transfer runs on the
        sender's p2p comm stream: it starts at max(issue time, stream tail),
        the sender's clock is not charged, and ``wait()`` max-joins to the
        transfer completion (charging only the exposed remainder).  With
        overlap disabled the legacy eager semantics apply: the payload is
        immediately available and the sender's clock is charged the full
        transfer on ``wait()`` (retransmission charges land immediately).
        """
        runtime = self.group.runtime
        cap = runtime.capture
        if not runtime.comm_overlap:
            cost = self._deliver(x, dst, tag)
            if cap is not None:
                cap.record_send(
                    self.global_rank, "pse", self.group,
                    self.group.global_rank(dst), tag, int(x.nbytes),
                    int(x.size), cost,
                )
            return Request(kind="send", comm=self, seconds=cost.seconds)
        src_g = self.global_rank
        clock = runtime.clocks[src_g]
        start = max(clock.time, self.group._p2p_tails[src_g])
        cost = self._deliver(x, dst, tag, start_time=start)
        start = max(start, clock.time)  # injected retries moved the clock
        t_end = start + cost.seconds
        self.group._p2p_tails[src_g] = t_end
        runtime.comm_streams[src_g].occupy(start, t_end)
        sid = None
        if cap is not None:
            sid = cap.record_isend_stream(
                src_g, self.group, self.group.global_rank(dst), tag,
                int(x.nbytes), int(x.size), cost,
            )
        if runtime.tracer is not None:
            runtime.tracer.annotate(
                src_g, "comm_stream", "isend", start, t_end,
                dst=self.group.global_rank(dst), nbytes=int(x.nbytes),
            )
        return StreamSendHandle(self, t_end, cost.seconds, sid=sid)

    def irecv(self, src: int, tag: Any = 0) -> "Request":
        """Non-blocking receive; ``wait()`` blocks until the message lands."""
        return Request(kind="recv", comm=self, src=src, tag=tag)


class StreamSendHandle(WorkHandle):
    """Handle for an overlap-mode ``isend`` running on the sender's p2p
    stream; ``wait()`` max-joins the sender's clock to transfer completion."""

    __slots__ = ("_comm", "_t_end", "_seconds", "_done", "_sid")

    def __init__(self, comm: "Communicator", t_end: float, seconds: float,
                 sid: Optional[int] = None) -> None:
        self._comm = comm
        self._t_end = t_end
        self._seconds = seconds
        self._done = False
        self._sid = sid

    def test(self) -> bool:
        # the payload is enqueued at issue; completion is purely a simulated-
        # time question, answered at wait()
        return True

    def wait(self) -> None:
        if self._done:
            return None
        runtime = self._comm.group.runtime
        rank = self._comm.global_rank
        clock = runtime.clocks[rank]
        t_wait = clock.time
        exposed = min(self._seconds, max(0.0, self._t_end - t_wait))
        clock.sync_to(self._t_end, "comm")
        runtime.comm_streams[rank].note_exposed(exposed)
        self._comm.group.counters.record_overlap(
            "p2p", exposed, max(0.0, self._seconds - exposed)
        )
        cap = runtime.capture
        if cap is not None and self._sid is not None:
            cap.record_stream_wait(rank, self._sid)
        if runtime.tracer is not None and exposed > 0.0:
            runtime.tracer.annotate(
                rank, "overlap", "wait/isend", t_wait, self._t_end,
                exposed=exposed, overlapped=max(0.0, self._seconds - exposed),
            )
        self._done = True
        return None


class Request(WorkHandle):
    """Handle for a non-blocking operation (``Request.wait`` completes it)."""

    def __init__(self, kind: str, comm: "Communicator", seconds: float = 0.0,
                 src: int = -1, tag: Any = 0) -> None:
        self._kind = kind
        self._comm = comm
        self._seconds = seconds
        self._src = src
        self._tag = tag
        self._done = False
        self._result: Optional[Payload] = None

    def test(self) -> bool:
        """True once the operation can complete without blocking."""
        if self._done or self._kind == "send":
            return True
        runtime = self._comm.group.runtime
        src_g = self._comm.group.global_rank(self._src)
        key = (src_g, self._comm.global_rank, (id(self._comm.group), self._tag))
        with runtime.mailboxes._cond:
            return bool(runtime.mailboxes._boxes.get(key))

    def wait(self) -> Optional[Payload]:
        """Complete the op: send charges the transfer time, recv blocks for
        and returns the payload."""
        if self._done:
            return self._result
        if self._kind == "send":
            self._comm.group.runtime.clocks[self._comm.global_rank].advance(
                self._seconds, "comm"
            )
            cap = self._comm.group.runtime.capture
            if cap is not None:
                cap.record_wait_eager(self._comm.global_rank, self._seconds)
        else:
            self._result = self._comm.recv(self._src, self._tag)
        self._done = True
        return self._result

    # -- introspection ------------------------------------------------------------

    @property
    def counters(self):
        return self.group.counters

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Communicator(rank={self.rank}/{self.size}, group={self.group.ranks})"
