"""Wire-traffic counters.

``CommCounters`` accumulates, per process group, the total number of bytes
and elements that crossed the interconnect, broken down by collective kind.
"Total" follows the paper's Table 1 convention: the sum over all ranks of
elements each rank put on the wire (so a ring allreduce of S elements over p
ranks counts 2(p-1)·S in total).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CommCounters:
    """Thread-safe traffic accumulator for one process group."""

    bytes_total: int = 0
    elements_total: int = 0
    calls_total: int = 0
    by_op_bytes: Dict[str, int] = field(default_factory=dict)
    by_op_elements: Dict[str, int] = field(default_factory=dict)
    by_op_calls: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, op: str, wire_bytes: int, wire_elements: int) -> None:
        with self._lock:
            self.bytes_total += wire_bytes
            self.elements_total += wire_elements
            self.calls_total += 1
            self.by_op_bytes[op] = self.by_op_bytes.get(op, 0) + wire_bytes
            self.by_op_elements[op] = self.by_op_elements.get(op, 0) + wire_elements
            self.by_op_calls[op] = self.by_op_calls.get(op, 0) + 1

    def reset(self) -> None:
        with self._lock:
            self.bytes_total = 0
            self.elements_total = 0
            self.calls_total = 0
            self.by_op_bytes.clear()
            self.by_op_elements.clear()
            self.by_op_calls.clear()

    def merged_with(self, other: "CommCounters") -> "CommCounters":
        out = CommCounters()
        for src in (self, other):
            out.bytes_total += src.bytes_total
            out.elements_total += src.elements_total
            out.calls_total += src.calls_total
            for k, v in src.by_op_bytes.items():
                out.by_op_bytes[k] = out.by_op_bytes.get(k, 0) + v
            for k, v in src.by_op_elements.items():
                out.by_op_elements[k] = out.by_op_elements.get(k, 0) + v
            for k, v in src.by_op_calls.items():
                out.by_op_calls[k] = out.by_op_calls.get(k, 0) + v
        return out
