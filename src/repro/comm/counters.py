"""Wire-traffic counters.

``CommCounters`` accumulates, per process group, the total number of bytes
and elements that crossed the interconnect, broken down by collective kind.
"Total" follows the paper's Table 1 convention: the sum over all ranks of
elements each rank put on the wire (so a ring allreduce of S elements over p
ranks counts 2(p-1)·S in total).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CommCounters:
    """Thread-safe traffic accumulator for one process group.

    Retransmissions (fault-injected drops/corruptions healed by the retry
    layer) are tracked both separately — ``retries_total`` /
    ``retry_bytes_total`` / ``by_op_retries`` — and folded into
    ``bytes_total``, because retransmitted bytes really do cross the wire.
    They do not increment ``calls_total`` (the call eventually succeeds
    exactly once).
    """

    bytes_total: int = 0
    elements_total: int = 0
    calls_total: int = 0
    retries_total: int = 0
    retry_bytes_total: int = 0
    #: comm/compute-overlap accounting (nonblocking ops only, recorded at
    #: wait per member rank): seconds the compute clock stalled on a handle
    #: vs seconds hidden behind compute.  Not folded into byte totals.
    exposed_seconds_total: float = 0.0
    overlapped_seconds_total: float = 0.0
    by_op_bytes: Dict[str, int] = field(default_factory=dict)
    by_op_elements: Dict[str, int] = field(default_factory=dict)
    by_op_calls: Dict[str, int] = field(default_factory=dict)
    by_op_retries: Dict[str, int] = field(default_factory=dict)
    by_algorithm_bytes: Dict[str, int] = field(default_factory=dict)
    by_algorithm_calls: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, op: str, wire_bytes: int, wire_elements: int,
               algorithm: str = "") -> None:
        with self._lock:
            self.bytes_total += wire_bytes
            self.elements_total += wire_elements
            self.calls_total += 1
            self.by_op_bytes[op] = self.by_op_bytes.get(op, 0) + wire_bytes
            self.by_op_elements[op] = self.by_op_elements.get(op, 0) + wire_elements
            self.by_op_calls[op] = self.by_op_calls.get(op, 0) + 1
            if algorithm:
                self.by_algorithm_bytes[algorithm] = (
                    self.by_algorithm_bytes.get(algorithm, 0) + wire_bytes
                )
                self.by_algorithm_calls[algorithm] = (
                    self.by_algorithm_calls.get(algorithm, 0) + 1
                )

    def record_retry(self, op: str, wire_bytes: int, wire_elements: int,
                     attempts: int = 1) -> None:
        """Account ``attempts`` failed transmission attempts of ``op`` whose
        payload totalled ``wire_bytes`` / ``wire_elements`` on the wire."""
        with self._lock:
            self.retries_total += attempts
            self.retry_bytes_total += wire_bytes
            self.bytes_total += wire_bytes
            self.elements_total += wire_elements
            self.by_op_retries[op] = self.by_op_retries.get(op, 0) + attempts
            self.by_op_bytes[op] = self.by_op_bytes.get(op, 0) + wire_bytes
            self.by_op_elements[op] = self.by_op_elements.get(op, 0) + wire_elements

    def record_overlap(self, op: str, exposed_seconds: float,
                       overlapped_seconds: float) -> None:
        """Account one rank's wait on a nonblocking ``op``: how much of the
        op's duration was exposed (stalled on) vs overlapped with compute."""
        with self._lock:
            self.exposed_seconds_total += exposed_seconds
            self.overlapped_seconds_total += overlapped_seconds

    def reset(self) -> None:
        with self._lock:
            self.bytes_total = 0
            self.elements_total = 0
            self.calls_total = 0
            self.retries_total = 0
            self.retry_bytes_total = 0
            self.exposed_seconds_total = 0.0
            self.overlapped_seconds_total = 0.0
            self.by_op_bytes.clear()
            self.by_op_elements.clear()
            self.by_op_calls.clear()
            self.by_op_retries.clear()
            self.by_algorithm_bytes.clear()
            self.by_algorithm_calls.clear()

    def merged_with(self, other: "CommCounters") -> "CommCounters":
        out = CommCounters()
        for src in (self, other):
            out.bytes_total += src.bytes_total
            out.elements_total += src.elements_total
            out.calls_total += src.calls_total
            out.retries_total += src.retries_total
            out.retry_bytes_total += src.retry_bytes_total
            out.exposed_seconds_total += src.exposed_seconds_total
            out.overlapped_seconds_total += src.overlapped_seconds_total
            for k, v in src.by_op_bytes.items():
                out.by_op_bytes[k] = out.by_op_bytes.get(k, 0) + v
            for k, v in src.by_op_elements.items():
                out.by_op_elements[k] = out.by_op_elements.get(k, 0) + v
            for k, v in src.by_op_calls.items():
                out.by_op_calls[k] = out.by_op_calls.get(k, 0) + v
            for k, v in src.by_op_retries.items():
                out.by_op_retries[k] = out.by_op_retries.get(k, 0) + v
            for k, v in src.by_algorithm_bytes.items():
                out.by_algorithm_bytes[k] = out.by_algorithm_bytes.get(k, 0) + v
            for k, v in src.by_algorithm_calls.items():
                out.by_algorithm_calls[k] = out.by_algorithm_calls.get(k, 0) + v
        return out
