"""Chunk-based memory management (PatrickStar [12], integrated per §3.2).

Parameters are packed into fixed-size flat **chunks**; the chunk — not the
individual tensor — is the unit of all-gather, host<->device transfer and
optimizer update.  Large uniform transfers keep effective bandwidth high
(the alpha term is paid once per chunk instead of once per tensor), which
is the stated reason Colossal-AI adopts chunks for offloading.

Authoritative storage is the per-rank ZeRO-3 *shard* of each chunk
(``capacity / dp`` elements).  ``fetch`` reconstructs the full fp16 chunk on
the GPU (host transfer if the shard is offloaded + all-gather across the
data-parallel group); ``release_full`` drops it.  Gradient shards can reuse
the fp16 parameter shard storage (Fig 6 memory-space reuse) because the
fp32 master copy lives in the optimizer state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.device import Device
from repro.comm.communicator import Communicator
from repro.comm.cost import CostModel
from repro.comm.payload import Payload, SpecArray, is_spec
from repro.nn.module import Module, Parameter
from repro.runtime.spmd import current_rank_context
from repro.tensor.tensor import Storage, Tensor


@dataclass
class ParamRecord:
    param: Parameter
    offset: int
    numel: int
    shape: Tuple[int, ...]


class Chunk:
    """One fixed-size flat buffer of parameters."""

    def __init__(
        self,
        capacity: int,
        dtype: np.dtype,
        comm: Communicator,
        gpu: Device,
        cpu: Device,
        index: int,
    ) -> None:
        self.capacity = capacity  # elements, multiple of comm.size
        self.dtype = np.dtype(dtype)
        self.comm = comm
        self.gpu = gpu
        self.cpu = cpu
        self.index = index
        self.records: List[ParamRecord] = []
        self.used = 0
        self.location = "gpu"  # where the shard lives
        self.shard_elems = capacity // comm.size
        # bookkeeping values (materialized mode); identical on all ranks at
        # pack time, each rank authoritative for its own slice afterwards
        self.values: Optional[np.ndarray] = None
        self._shard_storage = Storage(gpu, self.shard_elems * self.dtype.itemsize, "param")
        self._full_storage: Optional[Storage] = None
        self._grad_shard: Optional[np.ndarray] = None
        self._grad_storage: Optional[Storage] = None
        # in-flight nonblocking ops (overlap scheduler): the prefetched
        # all-gather handle and the (handle, average) of an async
        # reduce-scatter of this chunk's gradients
        self._pending_gather: Optional[Any] = None
        self._pending_rs: Optional[Tuple[Any, bool, Payload]] = None
        self.last_used_step = -1

    # -- packing ----------------------------------------------------------------

    @property
    def free_elements(self) -> int:
        return self.capacity - self.used

    def pack(self, param: Parameter) -> None:
        n = param.size
        if n > self.free_elements:
            raise ValueError(f"chunk {self.index} overflow packing {n} elements")
        rec = ParamRecord(param, self.used, n, param.shape)
        self.records.append(rec)
        if param.materialized:
            if self.values is None:
                self.values = np.zeros(self.capacity, dtype=self.dtype)
            self.values[rec.offset : rec.offset + n] = (
                param.numpy().astype(self.dtype).reshape(-1)
            )
            # re-point the parameter at the chunk's buffer and release its
            # standalone storage: the chunk is now the accounting unit
            param.storage.release()
            param.payload = self.values[rec.offset : rec.offset + n].reshape(rec.shape)
        else:
            param.storage.release()
            param.payload = SpecArray(rec.shape, self.dtype)
        self.used += n

    # -- shard payload ------------------------------------------------------------

    def shard_payload(self) -> Payload:
        if self.values is not None:
            r = self.comm.rank
            return self.values[r * self.shard_elems : (r + 1) * self.shard_elems]
        return SpecArray((self.shard_elems,), self.dtype)

    @property
    def shard_nbytes(self) -> int:
        return self.shard_elems * self.dtype.itemsize

    @property
    def full_nbytes(self) -> int:
        return self.capacity * self.dtype.itemsize

    @property
    def is_fetched(self) -> bool:
        return self._full_storage is not None

    # -- movement -------------------------------------------------------------------

    def move_shard(self, where: str, cost_model: CostModel, rank: int, clock) -> None:
        """Move the shard (and pay the PCIe cost) between host and device."""
        if where == self.location:
            return
        cost = cost_model.host_transfer(rank, self.shard_nbytes)
        clock.advance(cost.seconds, "offload")
        target = self.gpu if where == "gpu" else self.cpu
        old = self._shard_storage
        self._shard_storage = Storage(target, self.shard_nbytes, "param")
        old.release()
        self.location = where

    def prefetch(self, cost_model: CostModel, rank: int, clock) -> None:
        """Issue this chunk's all-gather on the comm stream without blocking
        (the overlap scheduler calls this one block ahead); the next
        :meth:`fetch` completes it.  An offloaded shard pays its host
        transfer here — same charge as the blocking path, just earlier."""
        if self.is_fetched or self._pending_gather is not None:
            return
        if self.location == "cpu":
            cost = cost_model.host_transfer(rank, self.shard_nbytes)
            clock.advance(cost.seconds, "offload")
        self._pending_gather = self.comm.iall_gather(self.shard_payload(), axis=0)

    def fetch(self, cost_model: CostModel, rank: int, clock, step: int = 0) -> None:
        """Reconstruct the full fp16 chunk on the GPU."""
        if self.is_fetched:
            self.last_used_step = step
            return
        if self._pending_gather is not None:
            gathered = self._pending_gather.wait()
            self._pending_gather = None
        else:
            if self.location == "cpu":
                cost = cost_model.host_transfer(rank, self.shard_nbytes)
                clock.advance(cost.seconds, "offload")
            gathered = self.comm.all_gather(self.shard_payload(), axis=0)
        if self.values is not None and not is_spec(gathered):
            self.values[...] = gathered
        self._full_storage = Storage(self.gpu, self.full_nbytes, "param")
        self.last_used_step = step

    def release_full(self) -> None:
        if self._full_storage is not None:
            self._full_storage.release()
            self._full_storage = None

    # -- gradients -----------------------------------------------------------------

    def reduce_scatter_grads(
        self,
        cost_model: CostModel,
        rank: int,
        clock,
        reuse_fp16_storage: bool = True,
        average: bool = True,
        async_op: bool = False,
    ) -> None:
        """Collect full parameter grads, reduce-scatter across the group,
        keep this rank's grad shard (optionally reusing the fp16 param
        shard storage — Fig 6).

        ``async_op=True`` issues the reduce-scatter nonblocking on the comm
        stream and returns immediately; :meth:`finish_grad_reduce` completes
        it (the overlap scheduler calls that right before the chunk's
        optimizer update)."""
        pool = self.comm.group.runtime.buffer_pool
        if self.values is not None and all(
            r.param.grad is not None and r.param.grad.materialized for r in self.records
        ):
            if pool is not None:
                flat: Payload = pool.loan(
                    (self.capacity,), np.float32, "zero.chunk_flat"
                )
                flat.fill(0.0)  # padding past the packed records must be zero
            else:
                flat = np.zeros(self.capacity, dtype=np.float32)
            for r in self.records:
                flat[r.offset : r.offset + r.numel] = (
                    r.param.grad.numpy().astype(np.float32).reshape(-1)
                )
        else:
            flat = SpecArray((self.capacity,), self.dtype)
        if async_op:
            self._pending_rs = (
                self.comm.ireduce_scatter(flat, axis=0), average, flat,
            )
        else:
            shard = self.comm.reduce_scatter(flat, axis=0)
            if pool is not None:
                pool.restock(flat)
            if is_spec(shard):
                self._grad_shard = None
            else:
                if average:
                    shard = shard / self.comm.size
                self._grad_shard = shard
        if not reuse_fp16_storage:
            self._grad_storage = Storage(
                self.gpu if self.location == "gpu" else self.cpu,
                self.shard_nbytes,
                "grad",
            )
        if self.location == "cpu":
            # offloaded shard: stream the gradient shard to the host
            cost = cost_model.host_transfer(rank, self.shard_nbytes)
            clock.advance(cost.seconds, "offload")
        # drop the full per-parameter gradients
        for r in self.records:
            r.param.grad = None

    def finish_grad_reduce(self) -> None:
        """Complete an ``async_op`` reduce-scatter (no-op otherwise): wait
        the handle and keep this rank's averaged grad shard."""
        if self._pending_rs is None:
            return
        handle, average, flat = self._pending_rs
        self._pending_rs = None
        shard = handle.wait()
        pool = self.comm.group.runtime.buffer_pool
        if pool is not None:
            pool.restock(flat)
        if is_spec(shard):
            self._grad_shard = None
        else:
            if average:
                shard = shard / self.comm.size
            self._grad_shard = shard

    @property
    def grad_shard(self) -> Optional[np.ndarray]:
        return self._grad_shard

    def clear_grad_shard(self) -> None:
        self._grad_shard = None
        if self._grad_storage is not None:
            self._grad_storage.release()
            self._grad_storage = None

    def apply_shard_update(self, new_fp16: Optional[np.ndarray]) -> None:
        """Write the updated fp16 shard back (optimizer step output)."""
        if new_fp16 is not None and self.values is not None:
            r = self.comm.rank
            self.values[r * self.shard_elems : (r + 1) * self.shard_elems] = new_fp16

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Chunk({self.index}, used={self.used}/{self.capacity}, "
            f"loc={self.location}, fetched={self.is_fetched})"
        )


class ChunkManager:
    """Packs module parameters into chunks and tracks ownership."""

    def __init__(
        self,
        comm: Communicator,
        gpu: Device,
        cpu: Device,
        chunk_elements: int,
        dtype: np.dtype = np.dtype("float16"),
    ) -> None:
        self.comm = comm
        self.gpu = gpu
        self.cpu = cpu
        # chunk size must shard evenly across the group
        self.chunk_elements = math.ceil(chunk_elements / comm.size) * comm.size
        self.dtype = np.dtype(dtype)
        self.chunks: List[Chunk] = []
        self.param_chunk: Dict[int, Chunk] = {}
        self._open: Optional[Chunk] = None

    def _new_chunk(self, capacity: int) -> Chunk:
        chunk = Chunk(
            capacity, self.dtype, self.comm, self.gpu, self.cpu, len(self.chunks)
        )
        self.chunks.append(chunk)
        return chunk

    def register_module(self, module: Module) -> None:
        for p in module.parameters():
            self.register_param(p)

    def register_param(self, param: Parameter) -> None:
        n = param.size
        if n > self.chunk_elements:
            # oversized parameter: dedicated right-sized chunk
            cap = math.ceil(n / self.comm.size) * self.comm.size
            chunk = self._new_chunk(cap)
            self._open = None
        else:
            chunk = self._open
            if chunk is None or chunk.free_elements < n:
                chunk = self._new_chunk(self.chunk_elements)
            self._open = chunk
        chunk.pack(param)
        self.param_chunk[id(param)] = chunk

    def close_current(self) -> None:
        """Seal the open chunk so the next parameter starts a fresh one.

        The offload engine calls this at block boundaries so a chunk never
        spans two checkpointed blocks (its gradients must all exist when the
        chunk's reduce-scatter runs)."""
        self._open = None

    def chunks_of(self, module: Module) -> List[Chunk]:
        seen: Dict[int, Chunk] = {}
        for p in module.parameters():
            c = self.param_chunk.get(id(p))
            if c is not None:
                seen[c.index] = c
        return [seen[i] for i in sorted(seen)]

    def total_param_elements(self) -> int:
        return sum(c.used for c in self.chunks)

    def shard_bytes_total(self) -> int:
        return sum(c.shard_nbytes for c in self.chunks)
