"""Tensor placement policies (§3.2 "adaptive tensor placement").

``StaticPolicy`` reproduces DeepSpeed zero-offload: every parameter shard
(and all optimizer state) is pinned in host memory, unconditionally — the
paper's point is that this wastes free GPU memory and pays PCIe on every
step when the batch is small (Fig 14).

``AdaptivePolicy`` is Colossal-AI's improvement: it monitors the GPU pool
and keeps chunk shards (plus their optimizer states) on the GPU as long as
free memory stays above a headroom reserved for activations, offloading
only the overflow.  ``placement_of`` feeds :class:`HybridAdam`, so updates
run on the GPU for GPU-resident chunks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.device import Device
from repro.comm.cost import CostModel
from repro.zero.chunk import Chunk


class PlacementPolicy:
    """Decides where chunk shards (and their optimizer state) live."""

    #: label used by benchmarks
    name = "base"

    def __init__(self, gpu: Device, cpu: Device, cost_model: CostModel, rank: int) -> None:
        self.gpu = gpu
        self.cpu = cpu
        self.cost_model = cost_model
        self.rank = rank

    def setup(self, chunks: List[Chunk], clock) -> None:
        """Place shards before training starts."""
        raise NotImplementedError

    def optimizer_device(self, chunk: Chunk) -> str:
        """Where the fp32 master/moments of a chunk live ("gpu"/"cpu")."""
        raise NotImplementedError

    def pre_fetch(self, chunk: Chunk, clock, step: int) -> None:
        """Called before a chunk is fetched for compute."""

    def post_release(self, chunk: Chunk, clock, step: int) -> None:
        """Called after a chunk's full buffer is released."""


class StaticPolicy(PlacementPolicy):
    """DeepSpeed-style static offload: everything lives on the host."""

    name = "static"

    def setup(self, chunks: List[Chunk], clock) -> None:
        for c in chunks:
            c.move_shard("cpu", self.cost_model, self.rank, clock)

    def optimizer_device(self, chunk: Chunk) -> str:
        return "cpu"


class NoOffloadPolicy(PlacementPolicy):
    """Keep everything on the GPU (plain ZeRO-3); OOMs when it doesn't fit."""

    name = "none"

    def setup(self, chunks: List[Chunk], clock) -> None:
        for c in chunks:
            c.move_shard("gpu", self.cost_model, self.rank, clock)

    def optimizer_device(self, chunk: Chunk) -> str:
        return "gpu"


class AdaptivePolicy(PlacementPolicy):
    """Colossal-AI adaptive placement.

    At setup, chunks are kept on the GPU greedily (shard + its fp32
    optimizer state, ~``OPTIM_FLOATS``x4 bytes per element) until free GPU
    memory would drop below ``activation_headroom`` bytes; the rest is
    offloaded.  During training, if an OOM-risk is detected before a fetch
    (free < chunk full size), the least-recently-used GPU-resident chunk is
    evicted.
    """

    name = "adaptive"

    #: fp32 floats of optimizer state per parameter element (master + m + v)
    OPTIM_FLOATS = 3

    def __init__(
        self,
        gpu: Device,
        cpu: Device,
        cost_model: CostModel,
        rank: int,
        activation_headroom: int = 0,
    ) -> None:
        super().__init__(gpu, cpu, cost_model, rank)
        self.activation_headroom = activation_headroom
        self._gpu_resident: List[Chunk] = []

    def _state_bytes(self, chunk: Chunk) -> int:
        return chunk.shard_elems * 4 * self.OPTIM_FLOATS

    def setup(self, chunks: List[Chunk], clock) -> None:
        budget = self.gpu.memory.free - self.activation_headroom
        for c in chunks:
            need = c.shard_nbytes + self._state_bytes(c)
            if need <= budget:
                c.move_shard("gpu", self.cost_model, self.rank, clock)
                self._gpu_resident.append(c)
                budget -= need
            else:
                c.move_shard("cpu", self.cost_model, self.rank, clock)

    def optimizer_device(self, chunk: Chunk) -> str:
        return chunk.location

    def pre_fetch(self, chunk: Chunk, clock, step: int) -> None:
        # evict LRU GPU-resident chunks if the full gathered buffer wouldn't
        # fit.  The margin here is a couple of chunk sizes — NOT the
        # activation headroom, which was already reserved at setup;
        # re-applying it here would evict the whole model the moment
        # activations start occupying their reserved space.
        margin = 2 * chunk.full_nbytes
        while (
            self.gpu.memory.free < chunk.full_nbytes + margin
            and self._gpu_resident
        ):
            lru = min(self._gpu_resident, key=lambda c: c.last_used_step)
            if lru is chunk or lru.is_fetched:
                break
            lru.move_shard("cpu", self.cost_model, self.rank, clock)
            self._gpu_resident.remove(lru)
