"""ZeRO-3 + offload training engine (the Fig 14 system).

Runs block-wise activation-checkpointed training of a huge model:

* **forward** — per block: fetch the block's chunks (host transfer for
  offloaded shards + all-gather across the data-parallel group), run the
  block under ``no_grad`` (no activations retained), release the full
  chunks, keep only the block input.
* **backward** — per block in reverse: re-fetch, recompute with gradients,
  backprop the incoming gradient, reduce-scatter the parameter gradients
  into per-rank shards (fp16 param storage reused per Fig 6), release.
* **step** — per chunk: Adam on the fp32 master shard, on the device the
  placement policy chose (GPU for resident chunks — the HybridAdam design;
  CPU for offloaded ones), then write the fp16 shard back.

The engine works identically in materialized mode (small models; parity
tests compare it against plain training) and spec mode (GPT-2 10B /
OPT-13B throughput experiments), because every constituent — autograd,
collectives, chunks — is dual-mode.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.autograd.function import no_grad
from repro.comm.communicator import Communicator
from repro.comm.cost import CostModel
from repro.nn.module import Module
from repro.runtime.spmd import RankContext
from repro.tensor.tensor import Tensor
from repro.tensor import zeros
from repro.zero.chunk import Chunk, ChunkManager
from repro.zero.policies import PlacementPolicy
from repro.utils.units import MB

Criterion = Callable[[Tensor, Any], Tensor]

#: Adam with decoupled decay over a shard: ~12 flops/element
_ADAM_FLOPS_PER_ELEM = 12.0


class ZeroOffloadEngine:
    def __init__(
        self,
        ctx: RankContext,
        blocks: List[Module],
        dp_comm: Communicator,
        policy: PlacementPolicy,
        criterion: Optional[Criterion] = None,
        chunk_mb: float = 32.0,
        lr: float = 1e-4,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        reuse_fp16_storage: bool = True,
        param_dtype: str = "float16",
        overlap: Optional[bool] = None,
    ) -> None:
        self.ctx = ctx
        self.blocks = blocks
        self.comm = dp_comm
        self.policy = policy
        self.criterion = criterion
        if overlap is None:
            overlap = getattr(ctx.runtime, "comm_overlap", False)
        #: overlap scheduler: prefetch the next block's all-gathers while the
        #: current block computes, reduce-scatter gradients asynchronously
        self.overlap = bool(overlap) and dp_comm.size > 1
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.reuse_fp16_storage = reuse_fp16_storage
        self.cost_model = CostModel(ctx.cluster)
        self._tracer = getattr(ctx.runtime, "tracer", None)
        dtype = np.dtype(param_dtype)
        chunk_elements = int(chunk_mb * MB / dtype.itemsize)
        self.chunk_mgr = ChunkManager(
            dp_comm, ctx.device, ctx.cpu, chunk_elements, dtype=dtype
        )
        for block in blocks:
            self.chunk_mgr.register_module(block)
            self.chunk_mgr.close_current()
        self._block_chunks: List[List[Chunk]] = [
            self.chunk_mgr.chunks_of(b) for b in blocks
        ]
        policy.setup(self.chunk_mgr.chunks, ctx.clock)
        self._opt_state: Dict[int, Dict[str, Any]] = {}
        self._init_optimizer_state()
        self._step = 0

    # -- optimizer state -----------------------------------------------------

    def _init_optimizer_state(self) -> None:
        for chunk in self.chunk_mgr.chunks:
            where = self.policy.optimizer_device(chunk)
            device = self.ctx.device if where == "gpu" else self.ctx.cpu
            n = chunk.shard_elems
            state: Dict[str, Any] = {
                "where": where,
                "t": 0,
                # fp32 master + moments, pool-accounted on the policy device
                "master_t": zeros((n,), dtype="float32", device=device, tag="optim"),
                "m_t": zeros((n,), dtype="float32", device=device, tag="optim"),
                "v_t": zeros((n,), dtype="float32", device=device, tag="optim"),
            }
            if chunk.values is not None:
                state["master_t"].payload[...] = chunk.shard_payload().astype(np.float32)
            self._opt_state[chunk.index] = state

    def _chunk_adam(self, chunk: Chunk) -> None:
        state = self._opt_state[chunk.index]
        where = self.policy.optimizer_device(chunk)
        device = self.ctx.device if where == "gpu" else self.ctx.cpu
        if self._tracer is not None:
            t0 = self.ctx.clock.time
            self._adam_inner(chunk, state, device)
            self._tracer.annotate(
                self.ctx.rank, "zero", f"adam/chunk{chunk.index}",
                t0, self.ctx.clock.time, where=where,
            )
            return
        self._adam_inner(chunk, state, device)

    def _adam_inner(self, chunk: Chunk, state: Dict[str, Any], device) -> None:
        self.ctx.clock.advance(
            device.compute_seconds(_ADAM_FLOPS_PER_ELEM * chunk.shard_elems, "float32"),
            "optimizer",
        )
        g = chunk.grad_shard
        if g is None:
            return  # spec mode: only timing/memory matter
        b1, b2 = self.betas
        state["t"] += 1
        t = state["t"]
        master = state["master_t"].numpy()
        m = state["m_t"].numpy()
        v = state["v_t"].numpy()
        m *= b1
        m += (1 - b1) * g
        v *= b2
        v += (1 - b2) * g * g
        mhat = m / (1 - b1**t)
        vhat = v / (1 - b2**t)
        update = mhat / (np.sqrt(vhat) + self.eps)
        if self.weight_decay:
            update = update + self.weight_decay * master
        master -= self.lr * update
        chunk.apply_shard_update(master.astype(chunk.dtype))

    # -- chunk traffic ------------------------------------------------------------

    def _prefetch_block(self, idx: int) -> None:
        """Issue the block's all-gathers on the comm stream (overlap mode);
        the block's later ``_fetch_block`` waits them."""
        for chunk in self._block_chunks[idx]:
            if not chunk.is_fetched and chunk._pending_gather is None:
                self.policy.pre_fetch(chunk, self.ctx.clock, self._step)
                chunk.prefetch(self.cost_model, self.ctx.rank, self.ctx.clock)

    def _fetch_block(self, idx: int) -> None:
        t0 = self.ctx.clock.time
        for chunk in self._block_chunks[idx]:
            if chunk._pending_gather is None:
                self.policy.pre_fetch(chunk, self.ctx.clock, self._step)
            chunk.fetch(self.cost_model, self.ctx.rank, self.ctx.clock, self._step)
        if self._tracer is not None:
            self._tracer.annotate(
                self.ctx.rank, "zero", f"fetch/block{idx}",
                t0, self.ctx.clock.time,
            )
            self._tracer.sample_memory(
                self.ctx.rank, self.ctx.device, self.ctx.clock.time
            )

    def _release_block(self, idx: int) -> None:
        t0 = self.ctx.clock.time
        for chunk in self._block_chunks[idx]:
            chunk.release_full()
            self.policy.post_release(chunk, self.ctx.clock, self._step)
        if self._tracer is not None:
            self._tracer.annotate(
                self.ctx.rank, "zero", f"release/block{idx}",
                t0, self.ctx.clock.time,
            )
            self._tracer.sample_memory(
                self.ctx.rank, self.ctx.device, self.ctx.clock.time
            )

    # -- training -----------------------------------------------------------------

    def train_step(self, data, target=None) -> Optional[float]:
        """One optimizer step over one (local) batch; returns the loss when
        materialized."""
        self._step += 1
        if self._tracer is not None:
            with self._tracer.region(
                self.ctx.rank, "step", f"zero_step{self._step}", self.ctx.clock
            ):
                return self._train_step_inner(data, target)
        return self._train_step_inner(data, target)

    def _train_step_inner(self, data, target=None) -> Optional[float]:
        x = data if isinstance(data, Tensor) else Tensor(data)
        inputs: List[Tensor] = []
        with no_grad():
            for b in range(len(self.blocks)):
                self._fetch_block(b)
                if self.overlap and b + 1 < len(self.blocks):
                    self._prefetch_block(b + 1)
                inputs.append(x)
                x = self.blocks[b](x)
                self._release_block(b)

        loss_val: Optional[float] = None
        grad_in = None
        last = len(self.blocks) - 1
        for b in range(last, -1, -1):
            self._fetch_block(b)
            if self.overlap and b > 0:
                self._prefetch_block(b - 1)
            xin = inputs[b].detach()
            xin.requires_grad = b > 0
            out = self.blocks[b](xin)  # recompute with graph
            if b == last:
                if self.criterion is None:
                    raise RuntimeError("ZeroOffloadEngine.train_step needs a criterion")
                loss = self.criterion(out, target)
                if loss.materialized:
                    loss_val = loss.item()
                loss.backward()
            else:
                out.backward(Tensor(grad_in))
            grad_in = xin.grad.payload if xin.grad is not None else None
            for chunk in self._block_chunks[b]:
                chunk.reduce_scatter_grads(
                    self.cost_model,
                    self.ctx.rank,
                    self.ctx.clock,
                    reuse_fp16_storage=self.reuse_fp16_storage,
                    async_op=self.overlap,
                )
            self._release_block(b)
            inputs[b] = None  # type: ignore[call-overload]

        for chunk in self.chunk_mgr.chunks:
            chunk.finish_grad_reduce()
            self._chunk_adam(chunk)
            chunk.clear_grad_shard()
        return loss_val

    def gather_parameters(self) -> None:
        """Reconstruct full parameter values on every rank (all-gather each
        chunk, then release).  Needed before reading weights for evaluation
        or checkpointing: after ``step`` only each rank's own shard slice is
        up to date."""
        for chunk in self.chunk_mgr.chunks:
            chunk.fetch(self.cost_model, self.ctx.rank, self.ctx.clock, self._step)
            chunk.release_full()

    # -- introspection ----------------------------------------------------------------

    def gpu_param_fraction(self) -> float:
        """Fraction of parameter shards resident on the GPU."""
        total = sum(c.shard_nbytes for c in self.chunk_mgr.chunks)
        on_gpu = sum(
            c.shard_nbytes for c in self.chunk_mgr.chunks if c.location == "gpu"
        )
        return on_gpu / total if total else 0.0
