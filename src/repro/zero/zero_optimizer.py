"""ZeRO stages 1-2 for ordinary data-parallel training (§2.1 of the paper).

Wraps standard training (full parameters on every rank) but shards the
expensive parts across the data-parallel group:

* **stage 1** — optimizer states sharded: gradients are all-reduced as in
  DDP, but each rank keeps Adam moments and fp32 master weights only for
  its 1/p slice, updates that slice, and all-gathers the updated values.
* **stage 2** — gradients sharded too: the all-reduce is replaced by a
  reduce-scatter (each rank receives only its slice's gradient, halving
  gradient traffic and removing grad redundancy).

(Stage 3 — parameter sharding — lives in :class:`ZeroOffloadEngine`, where
gather/release is interleaved with compute.)
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

import numpy as np

from repro.comm.communicator import Communicator
from repro.comm.payload import SpecArray, is_spec
from repro.runtime.spmd import current_rank_context, in_spmd
from repro.tensor.tensor import Tensor
from repro.tensor import zeros
from repro.zero.sharded_tensor import FlatShardingStrategy


class ZeroRedundancyOptimizer:
    """Adam(W) with ZeRO stage 1/2 sharding over ``comm``."""

    def __init__(
        self,
        params: Iterable[Tensor],
        comm: Communicator,
        stage: int = 1,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled_wd: bool = True,
    ) -> None:
        if stage not in (1, 2):
            raise ValueError(f"ZeroRedundancyOptimizer handles stages 1-2, got {stage}")
        self.params: List[Tensor] = list(params)
        self.comm = comm
        self.stage = stage
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled_wd = decoupled_wd
        self.strategy = FlatShardingStrategy()
        self.step_count = 0
        # per-param sharded optimizer state (only 1/p of the full state)
        self.state: Dict[int, Dict[str, Any]] = {}
        for p in self.params:
            per = self.strategy.shard_elements(p.shape, comm.size)
            st: Dict[str, Any] = {
                "m": zeros((per,), dtype="float32", device=p.device, tag="optim"),
                "v": zeros((per,), dtype="float32", device=p.device, tag="optim"),
                "master": zeros((per,), dtype="float32", device=p.device, tag="optim"),
                "t": 0,
                "per": per,
            }
            if p.materialized:
                st["master"].payload[...] = self._my_slice(
                    p.numpy().astype(np.float32).reshape(-1), per
                )
            self.state[id(p)] = st

    def _my_slice(self, flat: np.ndarray, per: int) -> np.ndarray:
        padded = np.zeros(per * self.comm.size, dtype=flat.dtype)
        padded[: flat.size] = flat
        r = self.comm.rank
        return padded[r * per : (r + 1) * per].copy()

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def _grad_shard(self, p: Tensor, per: int):
        """Stage-dependent gradient exchange; returns the averaged local
        slice of the global gradient."""
        if p.grad is None:
            return None
        if not p.grad.materialized:
            payload = SpecArray((per * self.comm.size,), "float32")
            if self.stage == 2:
                self.comm.reduce_scatter(payload, axis=0)
            else:
                self.comm.all_reduce(payload)
            return None
        flat = p.grad.numpy().astype(np.float32).reshape(-1)
        padded = np.zeros(per * self.comm.size, dtype=np.float32)
        padded[: flat.size] = flat
        if self.stage == 2:
            shard = self.comm.reduce_scatter(padded, axis=0)
        else:
            reduced = self.comm.all_reduce(padded)
            r = self.comm.rank
            shard = reduced[r * per : (r + 1) * per]
        return shard / self.comm.size

    def step(self) -> None:
        self.step_count += 1
        b1, b2 = self.betas
        for p in self.params:
            if p.grad is None:
                continue
            st = self.state[id(p)]
            per = st["per"]
            g = self._grad_shard(p, per)
            self._charge(per, p.device)
            if g is not None:
                st["t"] += 1
                t = st["t"]
                master = st["master"].numpy()
                m = st["m"].numpy()
                v = st["v"].numpy()
                m *= b1
                m += (1 - b1) * g
                v *= b2
                v += (1 - b2) * g * g
                mhat = m / (1 - b1**t)
                vhat = v / (1 - b2**t)
                update = mhat / (np.sqrt(vhat) + self.eps)
                if self.weight_decay:
                    if self.decoupled_wd:
                        update = update + self.weight_decay * master
                    else:
                        raise NotImplementedError("coupled wd needs grad-side decay")
                master -= self.lr * update
            # reassemble the full parameter from the updated shards
            if p.materialized:
                gathered = self.comm.all_gather(st["master"].numpy(), axis=0)
                p.payload[...] = (
                    gathered[: p.size].reshape(p.shape).astype(p.dtype)
                )
            else:
                self.comm.all_gather(SpecArray((per,), "float32"), axis=0)

    def _charge(self, n: int, device) -> None:
        if not in_spmd():
            return
        ctx = current_rank_context()
        ctx.clock.advance(device.compute_seconds(12.0 * n, "float32"), "optimizer")

    def optimizer_state_bytes(self) -> int:
        return sum(
            st["m"].nbytes + st["v"].nbytes + st["master"].nbytes
            for st in self.state.values()
        )
