"""Zero-redundancy data parallelism, chunked memory management and
heterogeneous offloading (§3.2 of the paper).

* :mod:`repro.zero.sharded_tensor` — the unified sharded-tensor interface
  with customizable sharding strategies and life-cycle hooks.
* :mod:`repro.zero.chunk` — PatrickStar-style chunks: parameters are packed
  into fixed-size buffers that become the unit of gather/offload traffic.
* :mod:`repro.zero.policies` — tensor placement: ``StaticPolicy``
  (DeepSpeed-like, everything offloaded to CPU) vs ``AdaptivePolicy``
  (Colossal-AI: keep chunks on GPU while memory allows).
* :mod:`repro.zero.zero_optimizer` — ZeRO stages 1-3 for ordinary
  (non-offloaded) data-parallel training.
* :mod:`repro.zero.engine` — the block-wise ZeRO-3 + offload training
  engine used by the GPT-2 10B / OPT-13B experiments (Fig 14).
"""

from repro.zero.sharded_tensor import (
    FlatShardingStrategy,
    ShardedTensor,
    ShardingStrategy,
    TensorState,
)
from repro.zero.chunk import Chunk, ChunkManager
from repro.zero.policies import AdaptivePolicy, PlacementPolicy, StaticPolicy
from repro.zero.zero_optimizer import ZeroRedundancyOptimizer
from repro.zero.engine import ZeroOffloadEngine

__all__ = [
    "ShardedTensor",
    "ShardingStrategy",
    "FlatShardingStrategy",
    "TensorState",
    "Chunk",
    "ChunkManager",
    "PlacementPolicy",
    "StaticPolicy",
    "AdaptivePolicy",
    "ZeroRedundancyOptimizer",
    "ZeroOffloadEngine",
]
