"""Unified sharded tensor interface (§3.2).

A :class:`ShardedTensor` owns a logical tensor whose authoritative storage
is a per-rank shard; ``gather()`` reconstructs the full payload with an
all-gather and ``release()`` drops it again.  The partitioning scheme is a
pluggable :class:`ShardingStrategy`, and state transitions fire life-cycle
hooks — the extension points the paper calls out ("customizable sharding
strategies and life-cycle hooks for easy modification of the training
workflow").
"""

from __future__ import annotations

import enum
import math
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.comm.communicator import Communicator
from repro.comm.payload import Payload, SpecArray, is_spec
from repro.tensor.tensor import Tensor


class TensorState(enum.Enum):
    SHARDED = "sharded"
    GATHERED = "gathered"


class ShardingStrategy:
    """How a full payload maps to per-rank shards."""

    def shard(self, full: Payload, comm: Communicator) -> Payload:
        raise NotImplementedError

    def gather(self, local: Payload, comm: Communicator, global_shape: Tuple[int, ...]) -> Payload:
        raise NotImplementedError

    def shard_elements(self, global_shape: Tuple[int, ...], world: int) -> int:
        raise NotImplementedError


class FlatShardingStrategy(ShardingStrategy):
    """ZeRO-style flat sharding: flatten, zero-pad to a multiple of the
    group size, slice equally.  Works for any shape."""

    def _padded(self, n: int, world: int) -> int:
        return math.ceil(n / world) * world

    def shard_elements(self, global_shape: Tuple[int, ...], world: int) -> int:
        n = int(np.prod(global_shape)) if global_shape else 1
        return self._padded(n, world) // world

    def shard(self, full: Payload, comm: Communicator) -> Payload:
        n = int(full.size)
        per = self.shard_elements(tuple(full.shape), comm.size)
        if is_spec(full):
            return SpecArray((per,), full.dtype)
        flat = np.asarray(full).reshape(-1)
        padded = np.zeros(per * comm.size, dtype=flat.dtype)
        padded[:n] = flat
        return padded[comm.rank * per : (comm.rank + 1) * per].copy()

    def gather(self, local: Payload, comm: Communicator, global_shape: Tuple[int, ...]) -> Payload:
        gathered = comm.all_gather(local, axis=0)
        n = int(np.prod(global_shape)) if global_shape else 1
        if is_spec(gathered):
            return SpecArray(global_shape, gathered.dtype)
        return gathered.reshape(-1)[:n].reshape(global_shape)


HookFn = Callable[["ShardedTensor"], None]


class ShardedTensor:
    """A tensor stored as a shard, gatherable on demand.

    Life-cycle hooks: ``on_gather`` fires after the full payload is
    reconstructed, ``on_release`` after it is dropped, ``on_shard_update``
    after ``update_shard``.
    """

    def __init__(
        self,
        full: Payload,
        comm: Communicator,
        strategy: Optional[ShardingStrategy] = None,
        device=None,
        tag: str = "param",
    ) -> None:
        self.comm = comm
        self.strategy = strategy or FlatShardingStrategy()
        self.global_shape = tuple(full.shape)
        self.dtype = np.dtype(full.dtype)
        self.tag = tag
        self._hooks: Dict[str, List[HookFn]] = {
            "on_gather": [], "on_release": [], "on_shard_update": []
        }
        self.shard_tensor = Tensor(
            self.strategy.shard(full, comm), device=device, tag=tag
        )
        self.full_tensor: Optional[Tensor] = None
        self.state = TensorState.SHARDED

    # -- hooks -----------------------------------------------------------------

    def register_hook(self, event: str, fn: HookFn) -> None:
        if event not in self._hooks:
            raise ValueError(f"unknown hook event {event!r}; one of {list(self._hooks)}")
        self._hooks[event].append(fn)

    def _fire(self, event: str) -> None:
        for fn in self._hooks[event]:
            fn(self)

    # -- state transitions --------------------------------------------------------

    def gather(self, device=None) -> Tensor:
        """Reconstruct the full payload (all-gather over the group)."""
        if self.state is TensorState.GATHERED:
            assert self.full_tensor is not None
            return self.full_tensor
        full = self.strategy.gather(
            self.shard_tensor.payload, self.comm, self.global_shape
        )
        self.full_tensor = Tensor(full, device=device, tag=self.tag)
        self.state = TensorState.GATHERED
        self._fire("on_gather")
        return self.full_tensor

    def release(self) -> None:
        """Drop the full payload, keep the shard."""
        if self.state is TensorState.SHARDED:
            return
        assert self.full_tensor is not None
        self.full_tensor.release()
        self.full_tensor = None
        self.state = TensorState.SHARDED
        self._fire("on_release")

    def update_shard(self, new_shard: Payload) -> None:
        """Replace the shard contents (e.g. after an optimizer step)."""
        if tuple(new_shard.shape) != self.shard_tensor.shape:
            raise ValueError(
                f"shard shape mismatch: {tuple(new_shard.shape)} vs {self.shard_tensor.shape}"
            )
        self.shard_tensor.payload = new_shard
        self._fire("on_shard_update")

    @property
    def shard_elements(self) -> int:
        return self.shard_tensor.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedTensor(global={self.global_shape}, state={self.state.value}, "
            f"shard={self.shard_tensor.shape})"
        )
