"""Interconnect topologies.

A :class:`Topology` is a link graph over device names with per-link bandwidth
(bytes/s) and latency (s).  Effective point-to-point bandwidth between two
devices is the bottleneck bandwidth along the shortest path — this is what
makes System II (NVLink only between adjacent GPU pairs, PCIe otherwise,
Fig 9b) behave differently from System I (fully-connected NVLink, Fig 9a):
a collective that crosses a PCIe hop is limited by the PCIe link, which is
the exact mechanism behind the paper's Fig 10/11 results.

The graph is a :class:`networkx.Graph`; multi-node systems (III, IV) are
assembled as node-local cliques bridged by NIC links arranged in a dragonfly
pattern.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.utils.units import GB


class LinkType(enum.Enum):
    NVLINK = "nvlink"
    PCIE = "pcie"
    INFINIBAND = "infiniband"
    ARIES = "aries"
    HOST = "host"  # CPU <-> GPU over PCIe


#: Default per-link unidirectional bandwidths (bytes/s) and latencies (s).
LINK_BANDWIDTH: Dict[LinkType, float] = {
    LinkType.NVLINK: 200 * GB,
    LinkType.PCIE: 16 * GB,
    LinkType.INFINIBAND: 25 * GB,  # HDR 200 Gb/s
    LinkType.ARIES: 10 * GB,
    LinkType.HOST: 16 * GB,
}

LINK_LATENCY: Dict[LinkType, float] = {
    LinkType.NVLINK: 2e-6,
    LinkType.PCIE: 5e-6,
    LinkType.INFINIBAND: 8e-6,
    LinkType.ARIES: 10e-6,
    LinkType.HOST: 5e-6,
}


class Topology:
    """Link graph with bandwidth/latency queries.

    Bandwidth queries are cached: SPMD collectives issue many identical
    queries per step and shortest-path search would otherwise dominate.
    """

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self._bw_cache: Dict[Tuple[str, str], Tuple[float, float]] = {}
        self._path_cache: Dict[Tuple[str, str], List[str]] = {}
        self._ring_cache: Dict[Tuple[str, ...], Tuple[float, float]] = {}
        self._order_cache: Dict[Tuple[str, ...], List[str]] = {}
        self._island_cache: Dict[Tuple[Tuple[str, ...], float], List[List[str]]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone counter bumped on every structural/bandwidth change.

        Consumers that memoize decisions derived from the link graph (the
        collective :class:`~repro.comm.algorithms.AlgorithmSelector`) compare
        this to detect fault-injected degradation (:meth:`scale_link`) and
        recovery (:meth:`restore_links`)."""
        return self._version

    def _invalidate(self) -> None:
        self._bw_cache.clear()
        self._path_cache.clear()
        self._ring_cache.clear()
        self._order_cache.clear()
        self._island_cache.clear()
        self._version += 1

    def add_device(self, name: str) -> None:
        self.graph.add_node(name)

    def add_link(
        self,
        a: str,
        b: str,
        link: LinkType,
        bandwidth: Optional[float] = None,
        latency: Optional[float] = None,
    ) -> None:
        """Add (or overwrite) an undirected link between devices ``a`` and ``b``."""
        self.graph.add_edge(
            a,
            b,
            link=link,
            bandwidth=bandwidth if bandwidth is not None else LINK_BANDWIDTH[link],
            latency=latency if latency is not None else LINK_LATENCY[link],
        )
        self._invalidate()

    def has_direct_link(self, a: str, b: str) -> bool:
        return self.graph.has_edge(a, b)

    def scale_link(self, a: str, b: str, factor: float) -> None:
        """Set a link's bandwidth to ``factor`` times its *base* rate
        (fault injection: ``factor`` < 1 degrades, 1.0 restores).

        Idempotent: repeated calls scale the original bandwidth, not the
        already-scaled value, so re-installing a fault plan is safe.
        """
        if factor <= 0:
            raise ValueError(f"bandwidth scale factor must be positive, got {factor}")
        if not self.graph.has_edge(a, b):
            raise ValueError(f"no direct link between {a} and {b}")
        edge = self.graph.edges[a, b]
        base = edge.setdefault("base_bandwidth", edge["bandwidth"])
        edge["bandwidth"] = base * factor
        self._invalidate()

    def restore_links(self) -> None:
        """Undo every :meth:`scale_link` degradation."""
        for _u, _v, data in self.graph.edges(data=True):
            if "base_bandwidth" in data:
                data["bandwidth"] = data["base_bandwidth"]
        self._invalidate()

    def link_type(self, a: str, b: str) -> Optional[LinkType]:
        if self.graph.has_edge(a, b):
            return self.graph.edges[a, b]["link"]
        return None

    def path_stats(self, a: str, b: str) -> Tuple[float, float]:
        """Return ``(bottleneck_bandwidth, total_latency)`` between two devices.

        Uses the hop-count shortest path; the effective bandwidth is the
        minimum link bandwidth on the path and the latency is the sum.
        """
        if a == b:
            return float("inf"), 0.0
        key = (a, b) if a <= b else (b, a)
        cached = self._bw_cache.get(key)
        if cached is not None:
            return cached
        try:
            path = nx.shortest_path(self.graph, a, b)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise ValueError(f"no interconnect path between {a} and {b}") from exc
        bw = float("inf")
        lat = 0.0
        for u, v in zip(path, path[1:]):
            edge = self.graph.edges[u, v]
            bw = min(bw, edge["bandwidth"])
            lat += edge["latency"]
        self._bw_cache[key] = (bw, lat)
        return bw, lat

    def bandwidth(self, a: str, b: str) -> float:
        return self.path_stats(a, b)[0]

    def latency(self, a: str, b: str) -> float:
        return self.path_stats(a, b)[1]

    def min_bandwidth(self, names: Iterable[str]) -> float:
        """Bottleneck bandwidth over all pairs in ``names`` (collective bound)."""
        names = list(names)
        bw = float("inf")
        for a, b in itertools.combinations(names, 2):
            bw = min(bw, self.bandwidth(a, b))
        return bw

    def ring_bandwidth(self, names: List[str]) -> float:
        """Bottleneck bandwidth around the ring ``names[0] -> ... -> names[0]``.

        Ring collectives (NCCL-style allreduce/allgather) are limited by the
        slowest link on the ring, not the slowest pair overall.
        """
        if len(names) < 2:
            return float("inf")
        bw = float("inf")
        for a, b in zip(names, names[1:] + names[:1]):
            bw = min(bw, self.bandwidth(a, b))
        return bw

    def shortest_path(self, a: str, b: str) -> List[str]:
        """Hop-count shortest path between two devices (cached)."""
        key = (a, b)
        path = self._path_cache.get(key)
        if path is None:
            try:
                path = nx.shortest_path(self.graph, a, b)
            except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                raise ValueError(f"no interconnect path between {a} and {b}") from exc
            self._path_cache[key] = path
        return path

    def ring_stats(self, names: List[str]) -> Tuple[float, float]:
        """Contention-aware ``(bottleneck bandwidth, latency sum)`` of the
        directed ring ``names[0] -> names[1] -> ... -> names[0]``.

        Unlike :meth:`ring_bandwidth`, hops are routed over their shortest
        paths and every *directed* physical link divides its bandwidth by the
        number of ring hops that traverse it.  A ring that re-crosses the
        same bridge link in the same direction (an interleaved multi-node
        ordering, or members routed through a shared gateway) is throttled
        accordingly — this is what makes the topology-aware member ordering
        of :meth:`order_ring` matter.  Links are full duplex: the two
        directions of one physical link do not contend (so a 2-ring costs one
        traversal, as before).
        """
        if len(names) < 2:
            return float("inf"), 0.0
        key = tuple(names)
        cached = self._ring_cache.get(key)
        if cached is not None:
            return cached
        load: Dict[Tuple[str, str], int] = {}
        lat = 0.0
        for a, b in zip(names, names[1:] + names[:1]):
            path = self.shortest_path(a, b)
            for u, v in zip(path, path[1:]):
                load[(u, v)] = load.get((u, v), 0) + 1
                lat += self.graph.edges[u, v]["latency"]
        bw = min(
            self.graph.edges[u, v]["bandwidth"] / uses
            for (u, v), uses in load.items()
        )
        self._ring_cache[key] = (bw, lat)
        return bw, lat

    def order_ring(self, names: List[str]) -> List[str]:
        """Greedy high-bandwidth ring ordering of ``names``.

        Starting from ``names[0]``, repeatedly append the unvisited member
        with the highest path bandwidth from the current tail (ties broken by
        position in ``names``, so uniform topologies keep the given order).
        On System II this makes a scrambled group hug its NVLink pairs and
        cross PCIe only between islands instead of at every hop.
        """
        if len(names) <= 2:
            return list(names)
        key = tuple(names)
        cached = self._order_cache.get(key)
        if cached is None:
            index = {n: i for i, n in enumerate(names)}
            order = [names[0]]
            remaining = list(names[1:])
            while remaining:
                cur = order[-1]
                best = max(remaining, key=lambda n: (self.bandwidth(cur, n), -index[n]))
                order.append(best)
                remaining.remove(best)
            cached = order
            self._order_cache[key] = cached
        return list(cached)

    def islands(self, names: List[str], ratio: float = 0.5) -> List[List[str]]:
        """Partition ``names`` into fast-link islands.

        Two members belong to the same island when their path bandwidth is at
        least ``ratio`` times the fastest member pair's; islands are the
        connected components of that fast-pair graph.  On System II this
        yields the NVLink pairs; on Systems III/IV the node-local cliques;
        on a uniform/fully-connected fabric the whole group is one island.

        Islands preserve member order and are ordered by first member.
        """
        names = list(names)
        if len(names) <= 1:
            return [names] if names else []
        key = (tuple(names), ratio)
        cached = self._island_cache.get(key)
        if cached is None:
            pair_bw = {
                (a, b): self.bandwidth(a, b)
                for a, b in itertools.combinations(names, 2)
            }
            threshold = max(pair_bw.values()) * ratio
            parent = {n: n for n in names}

            def find(n: str) -> str:
                while parent[n] != n:
                    parent[n] = parent[parent[n]]
                    n = parent[n]
                return n

            for (a, b), bw in pair_bw.items():
                if bw >= threshold:
                    ra, rb = find(a), find(b)
                    if ra != rb:
                        parent[rb] = ra
            groups: Dict[str, List[str]] = {}
            for n in names:
                groups.setdefault(find(n), []).append(n)
            cached = list(groups.values())
            self._island_cache[key] = cached
        return [list(g) for g in cached]

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @staticmethod
    def fully_connected(
        names: List[str], link: LinkType = LinkType.NVLINK, **kw
    ) -> "Topology":
        """All-pairs direct links (System I style, Fig 9a)."""
        topo = Topology()
        for n in names:
            topo.add_device(n)
        for a, b in itertools.combinations(names, 2):
            topo.add_link(a, b, link, **kw)
        return topo

    @staticmethod
    def pairwise_nvlink(names: List[str]) -> "Topology":
        """NVLink between adjacent even/odd pairs, PCIe elsewhere (Fig 9b).

        GPUs (0,1), (2,3), ... get NVLink; every other pair talks over PCIe.
        """
        topo = Topology()
        for n in names:
            topo.add_device(n)
        for a, b in itertools.combinations(names, 2):
            ia, ib = names.index(a), names.index(b)
            if ia // 2 == ib // 2:
                topo.add_link(a, b, LinkType.NVLINK)
            else:
                topo.add_link(a, b, LinkType.PCIE)
        return topo

    @staticmethod
    def multi_node(
        node_devices: List[List[str]],
        intra_link: LinkType = LinkType.NVLINK,
        inter_link: LinkType = LinkType.INFINIBAND,
        dragonfly_group_size: int = 4,
    ) -> "Topology":
        """Multi-node cluster: intra-node clique + dragonfly inter-node fabric.

        The dragonfly arranges nodes into groups of ``dragonfly_group_size``;
        nodes within a group are fully connected at the NIC rate and each
        group pair is bridged by one global link at the same rate (bandwidth
        tapering of real dragonflies is approximated by routing all
        group-to-group traffic through the single global link).
        """
        topo = Topology()
        for devs in node_devices:
            for d in devs:
                topo.add_device(d)
            for a, b in itertools.combinations(devs, 2):
                topo.add_link(a, b, intra_link)
        n_nodes = len(node_devices)
        gateway = [devs[0] for devs in node_devices]  # NIC attach point per node
        groups: List[List[int]] = [
            list(range(g, min(g + dragonfly_group_size, n_nodes)))
            for g in range(0, n_nodes, dragonfly_group_size)
        ]
        # intra-group: full mesh of node gateways
        for grp in groups:
            for i, j in itertools.combinations(grp, 2):
                topo.add_link(gateway[i], gateway[j], inter_link)
        # inter-group: one global link between the lead nodes of each group
        for gi, gj in itertools.combinations(range(len(groups)), 2):
            a = gateway[groups[gi][0]]
            b = gateway[groups[gj][0]]
            if not topo.has_direct_link(a, b):
                topo.add_link(a, b, inter_link)
        return topo
