"""Simulated cluster substrate.

The paper evaluates on four physical systems (Table 2).  This package
provides the stand-in: devices with real memory accounting (capacity,
allocated, peak, OOM), a compute-rate model, and interconnect topologies with
per-link bandwidth/latency that reproduce the NVLink/PCIe/InfiniBand/Aries
configurations of Systems I-IV (Figs 9a/9b).
"""

from repro.cluster.device import (
    Device,
    DeviceKind,
    DeviceOutOfMemoryError,
    MemoryPool,
)
from repro.cluster.topology import LinkType, Topology
from repro.cluster.machine import (
    ClusterSpec,
    system_i,
    system_ii,
    system_iii,
    system_iv,
    uniform_cluster,
)
from repro.cluster.bandwidth import (
    measure_p2p_bandwidth,
    measure_broadcast_bandwidth,
    measure_allreduce_bandwidth,
)

__all__ = [
    "Device",
    "DeviceKind",
    "DeviceOutOfMemoryError",
    "MemoryPool",
    "LinkType",
    "Topology",
    "ClusterSpec",
    "system_i",
    "system_ii",
    "system_iii",
    "system_iv",
    "uniform_cluster",
    "measure_p2p_bandwidth",
    "measure_broadcast_bandwidth",
    "measure_allreduce_bandwidth",
]
