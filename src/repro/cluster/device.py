"""Simulated devices and their memory pools.

A :class:`Device` models one accelerator (or a host CPU) with

* a :class:`MemoryPool` that tracks allocated bytes, the high-water mark and
  raises :class:`DeviceOutOfMemoryError` on exhaustion — the substrate for
  the paper's memory range tests (Fig 8) and OOM-bounded batch searches
  (Figs 11-13), and
* a compute-rate model (``peak_flops`` per dtype and an efficiency factor)
  used by the simulated clock to charge compute time.

Memory accounting is exact in both materialized and spec execution modes:
tensor storages register/unregister with the pool of the device they live on.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.utils.units import GB, format_bytes


class DeviceOutOfMemoryError(MemoryError):
    """Raised when an allocation would exceed a device's memory capacity."""

    def __init__(self, device: "Device", requested: int) -> None:
        self.device = device
        self.requested = requested
        super().__init__(
            f"{device.name}: out of memory allocating "
            f"{format_bytes(requested)} "
            f"(allocated {format_bytes(device.memory.allocated)} / "
            f"capacity {format_bytes(device.memory.capacity)})"
        )


class DeviceKind(enum.Enum):
    GPU = "gpu"
    CPU = "cpu"


class MemoryPool:
    """Byte-accurate allocator bookkeeping for one device.

    Thread-safe: in SPMD execution multiple rank threads may touch the CPU
    pool concurrently.  Allocations are tagged so peak memory can be broken
    down into model data vs non-model data, mirroring the paper's
    terminology (§1).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._allocated = 0
        self._peak = 0
        self._by_tag: Dict[str, int] = {}

    @property
    def allocated(self) -> int:
        return self._allocated

    @property
    def peak(self) -> int:
        return self._peak

    @property
    def free(self) -> int:
        return self.capacity - self._allocated

    def breakdown(self) -> Dict[str, int]:
        """Currently allocated bytes per tag."""
        with self._lock:
            return dict(self._by_tag)

    def alloc(self, nbytes: int, tag: str = "untagged", owner: Optional["Device"] = None) -> None:
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        with self._lock:
            if self._allocated + nbytes > self.capacity:
                raise DeviceOutOfMemoryError(owner or _anonymous_device(self), nbytes)
            self._allocated += nbytes
            self._by_tag[tag] = self._by_tag.get(tag, 0) + nbytes
            if self._allocated > self._peak:
                self._peak = self._allocated

    def free_bytes(self, nbytes: int, tag: str = "untagged") -> None:
        with self._lock:
            self._allocated -= nbytes
            self._by_tag[tag] = self._by_tag.get(tag, 0) - nbytes
            if self._allocated < 0:
                raise RuntimeError(
                    f"memory pool underflow: freed more than allocated (tag={tag})"
                )

    def can_alloc(self, nbytes: int) -> bool:
        with self._lock:
            return self._allocated + nbytes <= self.capacity

    def reset_peak(self) -> None:
        with self._lock:
            self._peak = self._allocated


def _anonymous_device(pool: MemoryPool) -> "Device":
    dev = Device.__new__(Device)
    dev.name = "<unbound-pool>"
    dev.kind = DeviceKind.GPU
    dev.memory = pool
    return dev


@dataclass
class Device:
    """One simulated accelerator or host CPU.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"gpu3"`` or ``"cpu0"``.
    kind:
        GPU or CPU.
    memory_capacity:
        Bytes of device memory.
    peak_flops:
        Map dtype name -> peak FLOP/s (e.g. ``{"float16": 312e12}``).
    efficiency:
        Achievable fraction of peak for dense matmul (model-flops
        utilisation); realistic training lands at 0.3-0.6.
    node:
        Index of the physical node hosting this device (for topology).
    """

    name: str
    kind: DeviceKind
    memory_capacity: int
    peak_flops: Dict[str, float] = field(
        default_factory=lambda: {"float16": 312e12, "float32": 19.5e12}
    )
    efficiency: float = 0.45
    node: int = 0
    memory: MemoryPool = field(init=False)

    def __post_init__(self) -> None:
        self.memory = MemoryPool(self.memory_capacity)

    def flops_per_second(self, dtype: str = "float16") -> float:
        """Effective (efficiency-discounted) FLOP/s for ``dtype``."""
        peak = self.peak_flops.get(dtype)
        if peak is None:
            peak = min(self.peak_flops.values())
        return peak * self.efficiency

    def compute_seconds(self, flops: float, dtype: str = "float16") -> float:
        """Simulated seconds to execute ``flops`` floating point operations."""
        if flops <= 0:
            return 0.0
        return flops / self.flops_per_second(dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Device({self.name}, {self.kind.value}, "
            f"{format_bytes(self.memory_capacity)}, node={self.node})"
        )


def a100(name: str, node: int = 0, memory_gb: int = 80) -> Device:
    """NVIDIA A100 preset (Systems I-III)."""
    return Device(
        name=name,
        kind=DeviceKind.GPU,
        memory_capacity=memory_gb * GB,
        peak_flops={"float16": 312e12, "float32": 19.5e12},
        efficiency=0.45,
        node=node,
    )


def p100(name: str, node: int = 0, memory_gb: int = 16) -> Device:
    """NVIDIA P100 preset (System IV)."""
    return Device(
        name=name,
        kind=DeviceKind.GPU,
        memory_capacity=memory_gb * GB,
        peak_flops={"float16": 18.7e12, "float32": 9.3e12},
        efficiency=0.40,
        node=node,
    )


def host_cpu(name: str, node: int = 0, memory_gb: int = 512, cores: int = 64) -> Device:
    """Host CPU preset: large memory, modest FLOP rate.

    The Adam update rate on CPU is derived from this FLOP rate; it is the
    bottleneck DeepSpeed's CPU-Adam design works around (§3.2).
    """
    return Device(
        name=name,
        kind=DeviceKind.CPU,
        memory_capacity=memory_gb * GB,
        peak_flops={"float32": cores * 50e9, "float16": cores * 50e9},
        efficiency=0.5,
        node=node,
    )
