"""Cluster specifications: devices + hosts + interconnect.

The four presets correspond to Table 2 of the paper:

========  =====================  ======  ==========================================
System    GPUs                   Nodes   Interconnect
========  =====================  ======  ==========================================
I         8 x A100 (80GB)        1       fully-connected NVLink (Fig 9a)
II        8 x A100 (80GB)        1       NVLink between adjacent pairs, PCIe else
III       16 x 4 x A100 (40GB)   16      NVLink intra-node, InfiniBand HDR dragonfly
IV        64 x 1 x P100 (16GB)   64      Aries dragonfly
========  =====================  ======  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.device import Device, DeviceKind, a100, host_cpu, p100
from repro.cluster.topology import LinkType, Topology
from repro.utils.units import GB


@dataclass
class ClusterSpec:
    """A set of GPUs (ordered by global rank), host CPUs (one per node) and
    the interconnect topology spanning all of them.

    ``topology`` must contain every GPU and CPU device name; GPU<->host links
    carry offloading traffic (§3.2 heterogeneous training).
    """

    name: str
    gpus: List[Device]
    cpus: List[Device]
    topology: Topology
    alpha: float = 5e-6  #: per-message software launch overhead (s)
    #: bandwidth-ramp time constant: a link reaches half its peak for
    #: messages of ``peak_bw * bw_ramp_time`` bytes (NCCL-style bus-bandwidth
    #: curve; ~32 MB on 200 GB/s NVLink, ~1.6 MB on 10 GB/s Aries).
    #: Effective bw = peak * s / (s + peak * bw_ramp_time).
    bw_ramp_time: float = 1.6e-4

    def __post_init__(self) -> None:
        self._cpu_by_node: Dict[int, Device] = {c.node: c for c in self.cpus}

    @property
    def world_size(self) -> int:
        return len(self.gpus)

    def device(self, rank: int) -> Device:
        return self.gpus[rank]

    def cpu_of(self, rank: int) -> Device:
        """Host CPU on the same node as GPU ``rank``."""
        return self._cpu_by_node[self.gpus[rank].node]

    def h2d_bandwidth(self, rank: int) -> float:
        """CPU <-> GPU transfer bandwidth for rank's node (bytes/s)."""
        gpu = self.gpus[rank]
        cpu = self.cpu_of(rank)
        return self.topology.bandwidth(cpu.name, gpu.name)

    def gpu_names(self, ranks: Optional[List[int]] = None) -> List[str]:
        if ranks is None:
            ranks = list(range(self.world_size))
        return [self.gpus[r].name for r in ranks]

    def reset(self) -> None:
        """Reset every memory pool (between experiments)."""
        for dev in self.gpus + self.cpus:
            dev.memory._allocated = 0
            dev.memory._peak = 0
            dev.memory._by_tag.clear()


def _attach_hosts(
    topo: Topology, gpus: List[Device], cpus: List[Device]
) -> None:
    for cpu in cpus:
        topo.add_device(cpu.name)
    by_node: Dict[int, Device] = {c.node: c for c in cpus}
    for gpu in gpus:
        topo.add_link(by_node[gpu.node].name, gpu.name, LinkType.HOST)


def system_i(efficiency: float = 0.45) -> ClusterSpec:
    """System I: single node, 8x A100-80GB, fully-connected NVLink."""
    gpus = [a100(f"gpu{i}", node=0, memory_gb=80) for i in range(8)]
    for g in gpus:
        g.efficiency = efficiency
    topo = Topology.fully_connected([g.name for g in gpus], LinkType.NVLINK)
    cpus = [host_cpu("cpu0", node=0)]
    _attach_hosts(topo, gpus, cpus)
    return ClusterSpec("system-i", gpus, cpus, topo)


def system_ii(efficiency: float = 0.45) -> ClusterSpec:
    """System II: single node, 8x A100-80GB, NVLink only between adjacent
    pairs and PCIe between distant GPUs (Fig 9b)."""
    gpus = [a100(f"gpu{i}", node=0, memory_gb=80) for i in range(8)]
    for g in gpus:
        g.efficiency = efficiency
    topo = Topology.pairwise_nvlink([g.name for g in gpus])
    cpus = [host_cpu("cpu0", node=0)]
    _attach_hosts(topo, gpus, cpus)
    return ClusterSpec("system-ii", gpus, cpus, topo)


def system_iii(n_nodes: int = 16, efficiency: float = 0.45) -> ClusterSpec:
    """System III: ``n_nodes`` x 4 A100-40GB, InfiniBand HDR dragonfly."""
    gpus: List[Device] = []
    node_names: List[List[str]] = []
    for node in range(n_nodes):
        names = []
        for i in range(4):
            g = a100(f"gpu{node * 4 + i}", node=node, memory_gb=40)
            g.efficiency = efficiency
            gpus.append(g)
            names.append(g.name)
        node_names.append(names)
    topo = Topology.multi_node(
        node_names, intra_link=LinkType.NVLINK, inter_link=LinkType.INFINIBAND
    )
    cpus = [host_cpu(f"cpu{n}", node=n, memory_gb=256) for n in range(n_nodes)]
    _attach_hosts(topo, gpus, cpus)
    return ClusterSpec("system-iii", gpus, cpus, topo)


def system_iv(n_nodes: int = 64, efficiency: float = 0.40) -> ClusterSpec:
    """System IV: ``n_nodes`` x 1 P100-16GB over a Cray Aries dragonfly."""
    gpus: List[Device] = []
    node_names: List[List[str]] = []
    for node in range(n_nodes):
        g = p100(f"gpu{node}", node=node, memory_gb=16)
        g.efficiency = efficiency
        gpus.append(g)
        node_names.append([g.name])
    topo = Topology.multi_node(
        node_names, intra_link=LinkType.NVLINK, inter_link=LinkType.ARIES
    )
    cpus = [host_cpu(f"cpu{n}", node=n, memory_gb=128) for n in range(n_nodes)]
    _attach_hosts(topo, gpus, cpus)
    return ClusterSpec("system-iv", gpus, cpus, topo)


def uniform_cluster(
    world_size: int,
    memory_gb: float = 16,
    link: LinkType = LinkType.NVLINK,
    cpu_memory_gb: int = 512,
    efficiency: float = 0.45,
) -> ClusterSpec:
    """Generic single-node cluster for tests: ``world_size`` identical GPUs
    with all-pairs links of one type."""
    gpus = [
        Device(
            name=f"gpu{i}",
            kind=DeviceKind.GPU,
            memory_capacity=int(memory_gb * GB),
            efficiency=efficiency,
        )
        for i in range(world_size)
    ]
    topo = Topology.fully_connected([g.name for g in gpus], link)
    cpus = [host_cpu("cpu0", node=0, memory_gb=cpu_memory_gb)]
    _attach_hosts(topo, gpus, cpus)
    return ClusterSpec(f"uniform-{world_size}", gpus, cpus, topo)
