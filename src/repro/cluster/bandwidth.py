"""Bandwidth probing — the analogue of the NCCL bandwidth test used for
Fig 10 of the paper (broadcasting 125 MB of data).

On System I every pair and every group sustains the NVLink rate; on
System II the rate collapses to the PCIe rate as soon as the pair or group
spans non-adjacent GPUs.  These functions derive the same numbers from the
topology graph so the benchmark can plot Fig 10a/10b.
"""

from __future__ import annotations

from typing import List

from repro.cluster.machine import ClusterSpec
from repro.utils.units import MB

DEFAULT_PROBE_BYTES = 125 * MB


def measure_p2p_bandwidth(
    cluster: ClusterSpec, src: int, dst: int, nbytes: int = DEFAULT_PROBE_BYTES
) -> float:
    """Effective point-to-point bandwidth between two ranks (bytes/s).

    Derived from transfer time = latency + nbytes / bottleneck-link-bw.
    """
    a = cluster.gpus[src].name
    b = cluster.gpus[dst].name
    bw, lat = cluster.topology.path_stats(a, b)
    t = cluster.alpha + lat + nbytes / bw
    return nbytes / t


def measure_broadcast_bandwidth(
    cluster: ClusterSpec, ranks: List[int], nbytes: int = DEFAULT_PROBE_BYTES
) -> float:
    """Effective broadcast bandwidth over a group of ranks (bytes/s).

    Models a pipelined ring broadcast: the payload is chunked and forwarded
    around the ring, so total time ≈ per-hop latency sum + nbytes divided by
    the slowest ring link.  This reproduces the Fig 10b cliff on System II:
    any group containing a non-adjacent pair is throttled to PCIe speed.
    """
    if len(ranks) < 2:
        return float("inf")
    names = cluster.gpu_names(ranks)
    ring_bw = cluster.topology.ring_bandwidth(names)
    lat = sum(
        cluster.topology.latency(a, b)
        for a, b in zip(names, names[1:] + names[:1])
    )
    t = cluster.alpha * len(ranks) + lat + nbytes / ring_bw
    return nbytes / t


def measure_allreduce_bandwidth(
    cluster: ClusterSpec,
    ranks: List[int],
    nbytes: int = DEFAULT_PROBE_BYTES,
    algorithm: str = "ring",
) -> float:
    """Effective allreduce *bus bandwidth* over a group of ranks (bytes/s),
    under a chosen collective algorithm (``"auto"`` for cost-driven
    selection).

    Follows the nccl-tests convention: busbw = ``2(p-1)/p * nbytes / t``,
    which makes numbers comparable across group sizes and algorithms.
    """
    if len(ranks) < 2:
        return float("inf")
    from repro.comm.cost import CostModel  # deferred: comm builds on cluster

    p = len(ranks)
    cost = CostModel(cluster, algorithm=algorithm).allreduce(ranks, nbytes)
    return (2 * (p - 1) / p) * nbytes / cost.seconds
