"""Cost-model details: bandwidth ramp, algorithm formulas, latency terms."""

import numpy as np
import pytest

from repro.cluster import system_i, system_ii, system_iii, system_iv, uniform_cluster
from repro.comm.cost import CostModel
from repro.utils.units import GB, KB, MB


class TestBandwidthRamp:
    def test_eff_monotone_in_size(self):
        cm = CostModel(uniform_cluster(2))
        bw = 200 * GB
        e1 = cm._eff(bw, 1 * MB)
        e2 = cm._eff(bw, 32 * MB)
        e3 = cm._eff(bw, 1 * GB)
        assert e1 < e2 < e3 < bw

    def test_half_point_at_knee(self):
        cluster = uniform_cluster(2)
        cm = CostModel(cluster)
        bw = 200 * GB
        knee = int(bw * cluster.bw_ramp_time)
        assert cm._eff(bw, knee) == pytest.approx(bw / 2, rel=1e-6)

    def test_knee_scales_with_link_speed(self):
        """A 10 GB/s link must reach half-peak at a 20x smaller message
        than a 200 GB/s link (latency-bandwidth product)."""
        cm = CostModel(uniform_cluster(2))
        fast_half = 200 * GB * cm.bw_ramp
        slow_half = 10 * GB * cm.bw_ramp
        assert fast_half / slow_half == pytest.approx(20.0)
        # consequence: a 2 MB message is near-peak on the slow link but
        # heavily degraded on the fast one
        assert cm._eff(10 * GB, 2 * MB) / (10 * GB) > 0.5
        assert cm._eff(200 * GB, 2 * MB) / (200 * GB) < 0.1

    def test_ramp_disabled(self):
        cluster = uniform_cluster(2)
        cluster.bw_ramp_time = 0.0
        cm = CostModel(cluster)
        assert cm._eff(200 * GB, 1) == 200 * GB


class TestAlgorithmCosts:
    def test_allreduce_scales_with_group(self):
        cm = CostModel(system_i())
        n = 256 * MB
        t2 = cm.allreduce([0, 1], n).seconds
        t8 = cm.allreduce(list(range(8)), n).seconds
        # ring allreduce beta term: 2(p-1)/p -> 1.0 at p=2, 1.75 at p=8
        assert 1.2 < t8 / t2 < 2.2

    def test_allgather_vs_reduce_scatter_duality(self):
        cm = CostModel(system_i())
        ranks = list(range(4))
        # RS of n and AG of n/p move the same wire bytes
        n = 64 * MB
        rs = cm.reduce_scatter(ranks, n)
        ag = cm.allgather(ranks, n // 4)
        assert rs.wire_bytes == pytest.approx(ag.wire_bytes, rel=1e-6)

    def test_zero_bytes_free(self):
        cm = CostModel(system_i())
        assert cm.allreduce([0, 1], 0).seconds == 0.0
        assert cm.p2p(0, 1, 0).seconds == 0.0

    def test_barrier_logarithmic(self):
        cm = CostModel(system_i())
        assert cm.barrier([0, 1]).seconds < cm.barrier(list(range(8))).seconds

    def test_p2p_self_free(self):
        cm = CostModel(system_i())
        assert cm.p2p(2, 2, 1024).seconds == 0.0

    def test_multinode_slower_than_intranode(self):
        cm = CostModel(system_iv())
        n = 64 * MB
        local_pair = cm.allreduce([0, 1], n).seconds  # adjacent Aries nodes
        cm_i = CostModel(system_i())
        nvlink_pair = cm_i.allreduce([0, 1], n).seconds
        assert local_pair > 5 * nvlink_pair

    def test_all_to_all_charges_link_latency(self):
        """Regression: all_to_all dropped the latency term every other
        collective charges, so its cost at tiny payloads was below even a
        single p2p hop's floor."""
        cm = CostModel(system_i())
        ranks = list(range(4))
        cluster = cm.cluster
        names = cluster.gpu_names(ranks)
        lat = max(
            cluster.topology.latency(a, b)
            for i, a in enumerate(names) for b in names[i + 1:]
        )
        a2a = cm.all_to_all(ranks, 1024).seconds
        floor = (len(ranks) - 1) * cm.alpha + lat
        assert a2a > floor
        assert lat > 0


class TestCollectiveAlgorithms:
    """Per-algorithm cost formulas and the cost-driven selector."""

    ALGOS = ("ring", "tree", "hierarchical")

    def test_hierarchical_beats_ring_on_system_ii(self):
        """The ISSUE acceptance criterion: >= 2x at >= 64 MiB over 8 GPUs."""
        cm = CostModel(system_ii())
        ranks = list(range(8))
        for n in (64 * MB, 125 * MB, 256 * MB):
            ring = cm.allreduce(ranks, n, algorithm="ring").seconds
            hier = cm.allreduce(ranks, n, algorithm="hierarchical").seconds
            assert ring / hier >= 2.0

    def test_hierarchical_matches_ring_wire_bytes(self):
        """Allreduce moves 2(p-1)n total regardless of schedule; the
        hierarchical variant just moves most of it over fast links."""
        cm = CostModel(system_ii())
        ranks, n = list(range(8)), 8 * MB
        ring = cm.allreduce(ranks, n, algorithm="ring")
        hier = cm.allreduce(ranks, n, algorithm="hierarchical")
        assert ring.wire_bytes == hier.wire_bytes == 2 * 7 * n

    def test_hierarchical_degenerates_to_ring_on_uniform(self):
        """One island -> the hierarchical schedule *is* the flat ring."""
        cm = CostModel(system_i())
        ring = cm.allreduce(range(8), 4 * MB, algorithm="ring")
        hier = cm.allreduce(range(8), 4 * MB, algorithm="hierarchical")
        assert hier.seconds == pytest.approx(ring.seconds)
        assert hier.algorithm == "hierarchical"

    def test_tree_wins_small_hierarchical_wins_large(self):
        """The System II crossover the selector exists to capture."""
        cm = CostModel(system_ii())
        ranks = list(range(8))
        small = cm.allreduce(ranks, 64 * KB, algorithm="auto")
        large = cm.allreduce(ranks, 64 * MB, algorithm="auto")
        assert small.algorithm == "tree"
        assert large.algorithm == "hierarchical"

    def test_cost_labeled_with_algorithm(self):
        cm = CostModel(system_ii())
        for algo in self.ALGOS:
            for op in ("allreduce", "allgather", "reduce_scatter",
                       "broadcast", "reduce"):
                cost = getattr(cm, op)(range(4), MB, algorithm=algo)
                assert cost.algorithm == algo

    def test_auto_never_worse_than_ring(self):
        for mk in (system_i, system_ii, system_iii):
            cm = CostModel(mk())
            for op in ("allreduce", "allgather", "reduce_scatter",
                       "broadcast", "reduce"):
                price = getattr(cm, op)
                for p in (2, 3, 8):
                    for n in (512, 64 * KB, MB, 64 * MB):
                        auto = price(range(p), n, algorithm="auto")
                        ring = price(range(p), n, algorithm="ring")
                        assert auto.seconds <= ring.seconds * (1 + 1e-12)

    def test_default_algorithm_is_ring(self):
        cm = CostModel(system_ii())
        assert cm.allreduce(range(8), MB).algorithm == "ring"

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown collective algorithm"):
            CostModel(system_i(), algorithm="bcube")
        cm = CostModel(system_i())
        with pytest.raises(ValueError, match="unknown collective algorithm"):
            cm.allreduce([0, 1], MB, algorithm="nccl")

    def test_tree_latency_optimal_at_scale(self):
        """O(log p) steps vs O(p): tree beats ring for tiny payloads on a
        big flat group."""
        cm = CostModel(system_iii())
        ranks = list(range(64))
        tree = cm.allreduce(ranks, 1024, algorithm="tree").seconds
        ring = cm.allreduce(ranks, 1024, algorithm="ring").seconds
        assert tree < ring

    def test_hierarchical_system_iii_multinode(self):
        """Node-local islands bridged by InfiniBand: the two-level schedule
        dominates the flat 64-rank ring for big payloads."""
        cm = CostModel(system_iii())
        ranks = list(range(64))
        hier = cm.allreduce(ranks, 64 * MB, algorithm="hierarchical").seconds
        ring = cm.allreduce(ranks, 64 * MB, algorithm="ring").seconds
        assert ring / hier > 2

    def test_selector_caches_by_size_bucket(self):
        cm = CostModel(system_ii(), algorithm="auto")
        cm.allreduce(range(8), MB)
        misses = cm.selector.misses
        cm.allreduce(range(8), MB + 8)  # same power-of-two bucket
        assert cm.selector.misses == misses
        assert cm.selector.hits >= 1
        cm.allreduce(range(8), 64 * MB)  # different bucket
        assert cm.selector.misses == misses + 1


class TestAdaptiveEvictionUnderPressure:
    """The pre_fetch LRU eviction path: a GPU that fits the shards but not
    a gathered chunk must evict (not OOM) when fetching."""

    def test_eviction_keeps_training_alive(self):
        from repro.cluster import uniform_cluster
        from repro.comm import Communicator
        from repro.nn import CrossEntropyLoss, Linear, Module
        from repro.autograd import ops
        from repro.runtime import SpmdRuntime
        from repro.zero import AdaptivePolicy, ZeroOffloadEngine
        from repro.comm.cost import CostModel as CM

        H, C = 64, 4

        class Block(Module):
            def __init__(self, rng, out=H):
                super().__init__()
                self.lin = Linear(H, out, rng=rng)

            def forward(self, x):
                y = self.lin(x)
                return ops.gelu(y) if self.lin.out_features == H else y

        # pool sized so all shards + states fit but a fetched full chunk
        # pressures the pool -> pre_fetch must evict the LRU chunk
        cluster = uniform_cluster(1, memory_gb=2.5e-4)  # ~260 KB

        rt = SpmdRuntime(cluster)

        def prog(ctx):
            comm = Communicator.world(ctx)
            rngs = [np.random.default_rng((3, i)) for i in range(4)]
            blocks = [Block(rngs[0]), Block(rngs[1]), Block(rngs[2]), Block(rngs[3], out=C)]
            pol = AdaptivePolicy(ctx.device, ctx.cpu, CM(ctx.cluster), ctx.rank)
            eng = ZeroOffloadEngine(
                ctx, blocks, comm, pol, criterion=CrossEntropyLoss(),
                chunk_mb=0.02, lr=1e-2, param_dtype="float32",
            )
            X = np.random.default_rng(0).standard_normal((4, H)).astype(np.float32)
            Y = np.random.default_rng(1).integers(0, C, 4)
            losses = [eng.train_step(X, Y) for _ in range(2)]
            return losses, eng.gpu_param_fraction()

        losses, frac = rt.run(prog)[0]
        assert all(np.isfinite(l) for l in losses)
        assert frac < 1.0  # something was evicted to the host
