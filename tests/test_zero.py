"""ZeRO subsystem: sharded tensors, chunks, policies, engine, stage 1/2."""

import numpy as np
import pytest

from repro.autograd import ops
from repro.cluster import uniform_cluster
from repro.comm import Communicator, SpecArray
from repro.comm.cost import CostModel
from repro.nn import CrossEntropyLoss, Linear, Module
from repro.optim import Adam
from repro.runtime import SpmdRuntime
from repro.tensor import Tensor
from repro.utils.units import GB, MB
from repro.zero import (
    AdaptivePolicy,
    Chunk,
    ChunkManager,
    FlatShardingStrategy,
    ShardedTensor,
    StaticPolicy,
    TensorState,
    ZeroOffloadEngine,
    ZeroRedundancyOptimizer,
)
from repro.zero.policies import NoOffloadPolicy

from conftest import run_spmd

H, C, B = 16, 4, 8


class TestFlatShardingStrategy:
    def test_roundtrip(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            strat = FlatShardingStrategy()
            full = np.arange(10.0)
            shard = strat.shard(full, comm)
            back = strat.gather(shard, comm, (10,))
            return shard.shape, back.tolist()

        res = run_spmd(4, prog)
        # 10 padded to 12 -> shards of 3
        assert res[0][0] == (3,)
        for shape, back in res:
            assert back == list(np.arange(10.0))

    def test_shard_elements_padding(self):
        strat = FlatShardingStrategy()
        assert strat.shard_elements((10,), 4) == 3
        assert strat.shard_elements((8,), 4) == 2

    def test_spec_shard(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            s = FlatShardingStrategy().shard(SpecArray((10,)), comm)
            return isinstance(s, SpecArray), s.shape

        assert run_spmd(2, prog, materialize=False)[0] == (True, (5,))


class TestShardedTensor:
    def test_state_machine_and_hooks(self):
        events = []

        def prog(ctx):
            comm = Communicator.world(ctx)
            st = ShardedTensor(np.arange(8.0), comm)
            if ctx.rank == 0:
                st.register_hook("on_gather", lambda s: events.append("g"))
                st.register_hook("on_release", lambda s: events.append("r"))
            assert st.state is TensorState.SHARDED
            full = st.gather()
            assert st.state is TensorState.GATHERED
            vals = full.numpy().copy()
            st.release()
            assert st.state is TensorState.SHARDED
            return vals.tolist()

        res = run_spmd(2, prog)
        assert res[0] == list(np.arange(8.0))
        assert events == ["g", "r"]

    def test_gather_idempotent(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            st = ShardedTensor(np.arange(4.0), comm)
            a = st.gather()
            b = st.gather()
            return a is b

        assert all(run_spmd(2, prog))

    def test_update_shard_shape_checked(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            st = ShardedTensor(np.arange(4.0), comm)
            try:
                st.update_shard(np.zeros(3))
            except ValueError:
                return "raised"

        assert run_spmd(2, prog) == ["raised"] * 2

    def test_unknown_hook_rejected(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            st = ShardedTensor(np.arange(4.0), comm)
            try:
                st.register_hook("bogus", lambda s: None)
            except ValueError:
                return True

        assert all(run_spmd(2, prog))


class TestChunkManager:
    def test_packing_order_and_mapping(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            lin1 = Linear(4, 4, rng=np.random.default_rng(0))
            lin2 = Linear(4, 4, rng=np.random.default_rng(1))
            mgr = ChunkManager(comm, ctx.device, ctx.cpu, chunk_elements=64,
                               dtype=np.dtype("float32"))
            mgr.register_module(lin1)
            mgr.close_current()
            mgr.register_module(lin2)
            c1 = mgr.chunks_of(lin1)
            c2 = mgr.chunks_of(lin2)
            return len(mgr.chunks), [c.index for c in c1], [c.index for c in c2]

        n, i1, i2 = run_spmd(2, prog)[0]
        assert n == 2 and i1 == [0] and i2 == [1]

    def test_oversized_param_gets_own_chunk(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            big = Linear(32, 32, bias=False, rng=np.random.default_rng(0))
            mgr = ChunkManager(comm, ctx.device, ctx.cpu, chunk_elements=64,
                               dtype=np.dtype("float32"))
            mgr.register_module(big)
            return mgr.chunks[0].capacity

        assert run_spmd(2, prog)[0] == 1024

    def test_values_preserved_through_packing(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            lin = Linear(4, 4, rng=np.random.default_rng(7))
            w_before = lin.weight.numpy().copy()
            mgr = ChunkManager(comm, ctx.device, ctx.cpu, chunk_elements=64,
                               dtype=np.dtype("float32"))
            mgr.register_module(lin)
            return np.allclose(lin.weight.numpy(), w_before)

        assert all(run_spmd(2, prog))

    def test_shard_accounting(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            lin = Linear(8, 8, bias=False, rng=np.random.default_rng(0))
            mgr = ChunkManager(comm, ctx.device, ctx.cpu, chunk_elements=64,
                               dtype=np.dtype("float32"))
            mgr.register_module(lin)
            # after packing, only shard bytes remain (param storage released)
            return ctx.device.memory.breakdown().get("param", 0)

        per_rank = run_spmd(2, prog)[0]
        assert per_rank == 64 // 2 * 4  # 32 elems/rank fp32

    def test_fetch_release_accounting_and_cost(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            lin = Linear(8, 8, bias=False, rng=np.random.default_rng(0))
            mgr = ChunkManager(comm, ctx.device, ctx.cpu, chunk_elements=64,
                               dtype=np.dtype("float32"))
            mgr.register_module(lin)
            chunk = mgr.chunks[0]
            cm = CostModel(ctx.cluster)
            base = ctx.device.memory.allocated
            chunk.fetch(cm, ctx.rank, ctx.clock)
            during = ctx.device.memory.allocated
            chunk.release_full()
            after = ctx.device.memory.allocated
            return during - base, after - base, ctx.clock.time

        grew, back, t = run_spmd(2, prog)[0]
        assert grew == 64 * 4  # full chunk
        assert back == 0
        assert t > 0  # allgather charged

    def test_grad_reduce_scatter_averages(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            lin = Linear(2, 2, bias=False, rng=np.random.default_rng(0))
            mgr = ChunkManager(comm, ctx.device, ctx.cpu, chunk_elements=4,
                               dtype=np.dtype("float32"))
            mgr.register_module(lin)
            chunk = mgr.chunks[0]
            lin.weight.grad = Tensor(np.full((2, 2), float(ctx.rank + 1), dtype=np.float32))
            chunk.reduce_scatter_grads(CostModel(ctx.cluster), ctx.rank, ctx.clock)
            return chunk.grad_shard.tolist(), lin.weight.grad is None

        res = run_spmd(2, prog)
        # mean of [1, 2] = 1.5 everywhere
        assert res[0][0] == [1.5, 1.5]
        assert res[0][1]  # full grads dropped

    def test_fp16_storage_reuse_ablation(self):
        """Without reuse, a separate grad-shard allocation appears."""

        def run(reuse):
            def prog(ctx):
                comm = Communicator.world(ctx)
                lin = Linear(8, 8, bias=False, rng=np.random.default_rng(0))
                mgr = ChunkManager(comm, ctx.device, ctx.cpu, chunk_elements=64,
                                   dtype=np.dtype("float32"))
                mgr.register_module(lin)
                chunk = mgr.chunks[0]
                lin.weight.grad = Tensor(np.ones((8, 8), dtype=np.float32))
                before = ctx.device.memory.allocated
                chunk.reduce_scatter_grads(
                    CostModel(ctx.cluster), ctx.rank, ctx.clock,
                    reuse_fp16_storage=reuse,
                )
                return ctx.device.memory.allocated - before

            return run_spmd(2, prog)[0]

        assert run(True) < run(False)

    def test_move_shard_charges_pcie(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            lin = Linear(8, 8, bias=False, rng=np.random.default_rng(0))
            mgr = ChunkManager(comm, ctx.device, ctx.cpu, chunk_elements=64,
                               dtype=np.dtype("float32"))
            mgr.register_module(lin)
            chunk = mgr.chunks[0]
            t0 = ctx.clock.time
            chunk.move_shard("cpu", CostModel(ctx.cluster), ctx.rank, ctx.clock)
            moved = ctx.clock.time > t0
            on_cpu = ctx.cpu.memory.breakdown().get("param", 0) > 0
            off_gpu = ctx.device.memory.breakdown().get("param", 0) == 0
            return moved and on_cpu and off_gpu and chunk.location == "cpu"

        assert all(run_spmd(2, prog))


def _make_blocks(seed):
    rngs = [np.random.default_rng((seed, i)) for i in range(3)]

    class Block(Module):
        def __init__(self, rng, out=H):
            super().__init__()
            self.lin = Linear(H, out, rng=rng)

        def forward(self, x):
            y = self.lin(x)
            return ops.gelu(y) if self.lin.out_features == H else y

    return [Block(rngs[0]), Block(rngs[1]), Block(rngs[2], out=C)]


@pytest.fixture(scope="module")
def serial_zero_ref():
    rng0 = np.random.default_rng(5)
    X = rng0.standard_normal((2 * B, H)).astype(np.float32)
    Y = rng0.integers(0, C, 2 * B)
    crit = CrossEntropyLoss()

    class AdamD(Adam):
        DECOUPLED_WD = True

    blocks = _make_blocks(1)
    params = [p for b in blocks for p in b.parameters()]
    opt = AdamD(params, lr=1e-2)

    def fwd(x):
        for b in blocks:
            x = b(x)
        return x

    for _ in range(3):
        loss = crit(fwd(Tensor(X.copy())), Y)
        loss.backward()
        opt.step()
        opt.zero_grad()
    return {
        "X": X,
        "Y": Y,
        "crit": crit,
        "w": blocks[0].lin.weight.numpy().copy(),
    }


class TestZeroOffloadEngine:
    @pytest.mark.parametrize("policy_cls", [NoOffloadPolicy, StaticPolicy, AdaptivePolicy])
    def test_parity_with_serial_adam(self, serial_zero_ref, policy_cls):
        ref = serial_zero_ref

        def prog(ctx):
            comm = Communicator.world(ctx)
            blocks = _make_blocks(1)
            pol = policy_cls(ctx.device, ctx.cpu, CostModel(ctx.cluster), ctx.rank)
            eng = ZeroOffloadEngine(
                ctx, blocks, comm, pol, criterion=ref["crit"],
                chunk_mb=0.001, lr=1e-2, param_dtype="float32",
            )
            r = ctx.rank
            xl, yl = ref["X"][r * B : (r + 1) * B], ref["Y"][r * B : (r + 1) * B]
            for _ in range(3):
                eng.train_step(xl, yl)
            eng.gather_parameters()
            return blocks[0].lin.weight.numpy().copy()

        for w in run_spmd(2, prog):
            np.testing.assert_allclose(w, ref["w"], atol=1e-4)

    def test_static_slower_than_adaptive(self, serial_zero_ref):
        ref = serial_zero_ref

        def time_for(policy_cls):
            def prog(ctx):
                comm = Communicator.world(ctx)
                blocks = _make_blocks(1)
                pol = policy_cls(ctx.device, ctx.cpu, CostModel(ctx.cluster), ctx.rank)
                eng = ZeroOffloadEngine(
                    ctx, blocks, comm, pol, criterion=ref["crit"],
                    chunk_mb=0.001, lr=1e-2, param_dtype="float32",
                )
                eng.train_step(ref["X"][:B], ref["Y"][:B])
                return ctx.clock.time

            return run_spmd(2, prog)[0]

        assert time_for(StaticPolicy) > time_for(AdaptivePolicy)

    def test_adaptive_offloads_when_gpu_small(self):
        """With a tiny GPU, the adaptive policy must offload some chunks."""
        # ~10 KiB of GPU memory: shards fit, but shards + optimizer states
        # do not, so the policy must offload part of the model
        cluster = uniform_cluster(1, memory_gb=1e-5)
        rt = SpmdRuntime(cluster)

        def prog(ctx):
            comm = Communicator.world(ctx)
            blocks = _make_blocks(1)
            pol = AdaptivePolicy(ctx.device, ctx.cpu, CostModel(ctx.cluster), ctx.rank)
            eng = ZeroOffloadEngine(
                ctx, blocks, comm, pol, criterion=CrossEntropyLoss(),
                chunk_mb=0.0005, lr=1e-2, param_dtype="float32",
            )
            return eng.gpu_param_fraction()

        frac = rt.run(prog)[0]
        assert frac < 1.0

    def test_spec_mode_step(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            blocks = _make_blocks(1)
            pol = StaticPolicy(ctx.device, ctx.cpu, CostModel(ctx.cluster), ctx.rank)
            eng = ZeroOffloadEngine(
                ctx, blocks, comm, pol, criterion=CrossEntropyLoss(),
                chunk_mb=0.001, lr=1e-2, param_dtype="float16",
            )
            loss = eng.train_step(SpecArray((B, H)), SpecArray((B,), "int64"))
            return loss, ctx.clock.time, ctx.cpu.memory.peak

        loss, t, cpu_peak = run_spmd(2, prog, materialize=False)[0]
        assert loss is None and t > 0 and cpu_peak > 0


class TestZeroRedundancyOptimizer:
    def test_stage1_and_stage2_parity(self, serial_zero_ref):
        ref = serial_zero_ref

        def prog(ctx, stage):
            blocks = _make_blocks(1)
            params = [p for b in blocks for p in b.parameters()]
            comm = Communicator.world(ctx)
            zopt = ZeroRedundancyOptimizer(params, comm, stage=stage, lr=1e-2)
            r = ctx.rank
            xl, yl = ref["X"][r * B : (r + 1) * B], ref["Y"][r * B : (r + 1) * B]

            def fwd(x):
                for b in blocks:
                    x = b(x)
                return x

            for _ in range(3):
                loss = ref["crit"](fwd(Tensor(xl.copy())), yl)
                loss.backward()
                zopt.step()
                zopt.zero_grad()
            return blocks[0].lin.weight.numpy().copy()

        for stage in (1, 2):
            for w in run_spmd(2, prog, stage):
                np.testing.assert_allclose(w, ref["w"], atol=1e-4)

    def test_state_sharded(self):
        def prog(ctx):
            lin = Linear(16, 16, bias=False, rng=np.random.default_rng(0))
            comm = Communicator.world(ctx)
            zopt = ZeroRedundancyOptimizer(lin.parameters(), comm, stage=1)
            return zopt.optimizer_state_bytes()

        # full state would be 3 * 4 * 256 bytes; each rank holds 1/4
        assert run_spmd(4, prog)[0] == 3 * 4 * 256 // 4

    def test_stage2_uses_reduce_scatter(self):
        rt = SpmdRuntime(uniform_cluster(2))

        def prog(ctx, stage):
            lin = Linear(8, 8, bias=False, rng=np.random.default_rng(0))
            comm = Communicator.world(ctx)
            zopt = ZeroRedundancyOptimizer(lin.parameters(), comm, stage=stage, lr=0.1)
            lin(Tensor(np.ones((2, 8), dtype=np.float32))).sum().backward()
            zopt.step()

        rt.run(prog, 2)
        ops_used = rt.group((0, 1)).counters.by_op_calls
        assert "reduce_scatter" in ops_used and "all_reduce" not in ops_used

    def test_invalid_stage(self):
        lin = Linear(4, 4)

        def prog(ctx):
            try:
                ZeroRedundancyOptimizer(lin.parameters(), Communicator.world(ctx), stage=3)
            except ValueError:
                return True

        assert all(run_spmd(2, prog))
