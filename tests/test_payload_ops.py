"""Dual-mode payload primitives: spec shape inference must match numpy."""

import numpy as np
import pytest

from repro.autograd import payload_ops as P
from repro.comm.payload import SpecArray


def both(shape, dtype="float32", seed=0):
    arr = np.random.default_rng(seed).standard_normal(shape).astype(dtype)
    return arr, SpecArray(shape, dtype)


class TestShapeParity:
    """For every primitive: spec output shape == numpy output shape."""

    def test_binary_broadcast(self):
        a, sa = both((3, 1, 4))
        b, sb = both((2, 4), seed=1)
        for fn in (P.padd, P.psub, P.pmul, P.pdiv, P.pmaximum):
            assert fn(sa, sb).shape == fn(a, b).shape

    def test_unary(self):
        a, sa = both((2, 3))
        a = np.abs(a) + 0.5
        for fn in (P.pneg, P.pexp, P.plog, P.ptanh, P.psqrt, P.psigmoid, P.prelu, P.pgelu):
            assert fn(sa).shape == fn(a).shape

    def test_matmul_batched(self):
        a, sa = both((2, 3, 4))
        b, sb = both((4, 5), seed=1)
        assert P.pmatmul(sa, sb).shape == P.pmatmul(a, b).shape == (2, 3, 5)

    def test_matmul_mismatch_raises(self):
        _, sa = both((2, 3))
        _, sb = both((4, 5))
        with pytest.raises(ValueError):
            P.pmatmul(sa, sb)
        with pytest.raises(ValueError):
            P.matmul_shape((3,), (3, 4))

    def test_matmul_flops(self):
        assert P.matmul_flops((2, 3), (3, 4)) == 2 * 2 * 3 * 4
        assert P.matmul_flops((5, 2, 3), (5, 3, 4)) == 5 * 2 * 2 * 3 * 4

    def test_reshape_transpose(self):
        a, sa = both((2, 3, 4))
        assert P.preshape(sa, (6, 4)).shape == (6, 4)
        assert P.ptranspose(sa, (2, 0, 1)).shape == (4, 2, 3)
        assert P.ptranspose(sa).shape == (4, 3, 2)
        assert P.pswapaxes(sa, -1, -2).shape == (2, 4, 3)

    def test_concat_split(self):
        a, sa = both((2, 4))
        assert P.pconcat([sa, sa], 1).shape == (2, 8)
        parts = P.psplit(sa, 2, 1)
        assert len(parts) == 2 and parts[0].shape == (2, 2)
        with pytest.raises(ValueError):
            P.psplit(sa, 3, 1)

    def test_slice(self):
        a, sa = both((4, 5))
        idx = (slice(1, 3), slice(None, None, 2))
        assert P.pslice(sa, idx).shape == a[idx].shape

    def test_reductions(self):
        a, sa = both((2, 3, 4))
        for fn, np_fn in ((P.psum, np.sum), (P.pmean, np.mean), (P.pmax, np.max)):
            for axis, kd in ((None, False), (1, True), ((0, 2), False), (-1, False)):
                assert fn(sa, axis=axis, keepdims=kd).shape == np_fn(a, axis=axis, keepdims=kd).shape

    def test_softmax_numerics(self):
        a, _ = both((3, 4))
        out = P.psoftmax(a * 100)  # large logits: stability check
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out.sum(-1), 1.0, atol=1e-6)

    def test_log_softmax_matches_log_of_softmax(self):
        a, _ = both((3, 4))
        np.testing.assert_allclose(
            P.plog_softmax(a), np.log(P.psoftmax(a)), atol=1e-6
        )

    def test_unbroadcast(self):
        g = np.ones((2, 3, 4))
        out = P.unbroadcast(g, (3, 4))
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out, np.full((3, 4), 2.0))
        out2 = P.unbroadcast(g, (1, 3, 1))
        assert out2.shape == (1, 3, 1)
        assert out2[0, 0, 0] == 8.0
        s = P.unbroadcast(SpecArray((2, 3, 4)), (3, 4))
        assert s.shape == (3, 4)


class TestSpecArrayAPI:
    def test_nbytes_fp16(self):
        assert SpecArray((4, 4), "float16").nbytes == 32

    def test_astype(self):
        s = SpecArray((2,), "float32").astype("float16")
        assert s.dtype == np.float16 and s.nbytes == 4

    def test_scalar_shape(self):
        s = SpecArray(())
        assert s.size == 1 and s.ndim == 0

    def test_copy_independent(self):
        s = SpecArray((2, 2))
        c = s.copy()
        assert c.shape == s.shape and c is not s


class TestProfileUtil:
    def test_breakdown_table(self):
        from repro.cluster import uniform_cluster
        from repro.runtime import SpmdRuntime
        from repro.utils.profile import comm_fraction, format_breakdown, time_breakdown
        from repro.comm import Communicator

        rt = SpmdRuntime(uniform_cluster(2))

        def prog(ctx):
            ctx.clock.advance(1.0, "compute")
            Communicator.world(ctx).all_reduce(np.zeros(1024, dtype=np.float32))

        rt.run(prog)
        rows = time_breakdown(rt)
        assert rows[0]["compute"] == 1.0
        assert rows[0]["comm"] > 0
        assert 0 < comm_fraction(rt) < 1
        table = format_breakdown(rt, unit=1e-6, suffix="us")
        assert "rank" in table and "compute" in table
