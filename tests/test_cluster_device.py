"""Tests for devices and memory pools."""

import pytest

from repro.cluster import (
    Device,
    DeviceKind,
    DeviceOutOfMemoryError,
    MemoryPool,
    system_i,
    system_ii,
    system_iii,
    system_iv,
    uniform_cluster,
)
from repro.cluster.device import a100, host_cpu, p100
from repro.utils.units import GB


class TestMemoryPool:
    def test_alloc_free_roundtrip(self):
        pool = MemoryPool(1000)
        pool.alloc(400, tag="param")
        assert pool.allocated == 400
        pool.free_bytes(400, tag="param")
        assert pool.allocated == 0

    def test_peak_tracks_high_water(self):
        pool = MemoryPool(1000)
        pool.alloc(300)
        pool.alloc(500)
        pool.free_bytes(500)
        assert pool.peak == 800
        assert pool.allocated == 300

    def test_oom_raised_at_capacity(self):
        pool = MemoryPool(100)
        pool.alloc(60)
        with pytest.raises(DeviceOutOfMemoryError):
            pool.alloc(41)
        # failed alloc must not change accounting
        assert pool.allocated == 60

    def test_exact_fit_allowed(self):
        pool = MemoryPool(100)
        pool.alloc(100)
        assert pool.free == 0

    def test_underflow_detected(self):
        pool = MemoryPool(100)
        pool.alloc(10)
        with pytest.raises(RuntimeError):
            pool.free_bytes(20)

    def test_tag_breakdown(self):
        pool = MemoryPool(1000)
        pool.alloc(100, tag="param")
        pool.alloc(200, tag="grad")
        pool.alloc(50, tag="param")
        b = pool.breakdown()
        assert b["param"] == 150
        assert b["grad"] == 200

    def test_can_alloc(self):
        pool = MemoryPool(100)
        assert pool.can_alloc(100)
        pool.alloc(60)
        assert not pool.can_alloc(41)

    def test_reset_peak(self):
        pool = MemoryPool(100)
        pool.alloc(80)
        pool.free_bytes(80)
        pool.reset_peak()
        assert pool.peak == 0

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(100).alloc(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(0)


class TestDevice:
    def test_compute_seconds_scale(self):
        d = a100("g0")
        t16 = d.compute_seconds(1e12, "float16")
        t32 = d.compute_seconds(1e12, "float32")
        assert t32 > t16  # fp32 peak is lower

    def test_compute_zero_flops(self):
        assert a100("g0").compute_seconds(0) == 0.0

    def test_unknown_dtype_falls_back(self):
        d = a100("g0")
        assert d.compute_seconds(1e12, "bfloat16") > 0

    def test_presets(self):
        assert a100("x", memory_gb=80).memory_capacity == 80 * GB
        assert p100("x").memory_capacity == 16 * GB
        assert host_cpu("c").kind == DeviceKind.CPU

    def test_oom_error_message(self):
        d = Device("gpu9", DeviceKind.GPU, memory_capacity=GB)
        with pytest.raises(DeviceOutOfMemoryError, match="gpu9"):
            d.memory.alloc(2 * GB, owner=d)


class TestSystemPresets:
    def test_system_i_shape(self):
        c = system_i()
        assert c.world_size == 8
        assert all(g.memory_capacity == 80 * GB for g in c.gpus)
        # fully connected NVLink: high bandwidth between any pair
        assert c.topology.bandwidth("gpu0", "gpu7") > 100 * GB

    def test_system_ii_asymmetric(self):
        c = system_ii()
        adj = c.topology.bandwidth("gpu0", "gpu1")
        far = c.topology.bandwidth("gpu0", "gpu2")
        assert adj > 10 * far  # NVLink vs PCIe

    def test_system_iii_multinode(self):
        c = system_iii(n_nodes=4)
        assert c.world_size == 16
        intra = c.topology.bandwidth("gpu0", "gpu1")
        inter = c.topology.bandwidth("gpu0", "gpu4")
        assert intra > inter

    def test_system_iv_single_gpu_nodes(self):
        c = system_iv(n_nodes=8)
        assert c.world_size == 8
        assert all(g.node == i for i, g in enumerate(c.gpus))

    def test_host_links(self):
        c = uniform_cluster(4)
        assert c.h2d_bandwidth(0) > 0
        assert c.cpu_of(2).kind == DeviceKind.CPU

    def test_reset_clears_pools(self):
        c = uniform_cluster(2)
        c.gpus[0].memory.alloc(123)
        c.reset()
        assert c.gpus[0].memory.allocated == 0
        assert c.gpus[0].memory.peak == 0
