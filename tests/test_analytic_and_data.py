"""Analytic formulas (Table 1, memory, FLOPs) and synthetic data."""

import math

import numpy as np
import pytest

from repro.analytic import (
    adam_model_data_bytes,
    comm_volume_1d,
    comm_volume_25d,
    comm_volume_2d,
    comm_volume_3d,
    comm_volume_table,
    training_flops_per_token,
    transformer_activation_bytes,
    transformer_layer_flops,
    transformer_param_count,
)
from repro.data import DataLoader, lm_batches, synthetic_image_classification, synthetic_token_stream
from repro.utils.units import GB


class TestCommVolumeFormulas:
    B, S, H = 32, 512, 1024

    def test_1d_grows_linearly_with_p(self):
        v16 = comm_volume_1d(16, self.B, self.S, self.H)
        v64 = comm_volume_1d(64, self.B, self.S, self.H)
        assert v64 / v16 == pytest.approx(63 / 15)

    def test_advanced_beat_1d_at_scale(self):
        """Fig 5: at p=64 every advanced mode moves fewer elements."""
        p = 64
        v1 = comm_volume_1d(p, self.B, self.S, self.H)
        assert comm_volume_2d(p, self.B, self.S, self.H) < v1
        assert comm_volume_25d(p, self.B, self.S, self.H, d=4) < v1
        assert comm_volume_3d(p, self.B, self.S, self.H, total=True) < v1

    def test_2d_requires_square(self):
        with pytest.raises(ValueError):
            comm_volume_2d(6, self.B, self.S, self.H)

    def test_25d_depth1_equals_2d(self):
        v2d = comm_volume_2d(16, self.B, self.S, self.H)
        v25 = comm_volume_25d(16, self.B, self.S, self.H, d=1)
        assert v25 == pytest.approx(v2d)

    def test_3d_total_vs_per_member(self):
        per = comm_volume_3d(64, self.B, self.S, self.H)
        tot = comm_volume_3d(64, self.B, self.S, self.H, total=True)
        assert tot == pytest.approx(per * 4)  # l = 4

    def test_table_nan_where_infeasible(self):
        rows = comm_volume_table([6], depth=2)
        assert math.isnan(rows[0]["2d"])
        assert math.isnan(rows[0]["3d"])
        assert rows[0]["1d"] > 0

    def test_table_fig5_parameters(self):
        """With the paper's Fig 5 parameters (S_X >> S_W), 2D is already
        cheaper at p=4 and the advantage widens with p."""
        rows = comm_volume_table([4, 16, 64], b=32, s=512, h=1024)
        assert len(rows) == 3
        ratios = [r["1d"] / r["2d"] for r in rows]
        assert all(r > 1 for r in ratios)
        assert ratios[0] < ratios[1] < ratios[2]
        # 2.5D is feasible where p = d*k^2
        rows25 = comm_volume_table([8, 32], depth=2)
        assert all(not math.isnan(r["2.5d"]) for r in rows25)


class TestMemoryModel:
    def test_16_bytes_per_param(self):
        assert adam_model_data_bytes(1) == 16

    def test_paper_10b_example(self):
        """§1: 10B params in fp16 = 20 GB of parameter memory; model data
        with Adam exceeds 80 GB."""
        n = 10_000_000_000
        assert n * 2 == pytest.approx(20 * 1e9, rel=0.08)
        assert adam_model_data_bytes(n) > 80 * 1e9

    def test_param_count_matches_built_model(self):
        from repro.nn import TransformerLayer

        h, heads, ratio = 32, 4, 4
        layer = TransformerLayer(h, heads, mlp_ratio=ratio)
        assert layer.num_parameters() == transformer_param_count(1, h, mlp_ratio=ratio)

    def test_activation_quadratic_term(self):
        lin = transformer_activation_bytes(4, 128, 64, 4, 1, with_scores=False)
        full = transformer_activation_bytes(4, 128, 64, 4, 1, with_scores=True)
        assert full > lin
        # doubling seq more than doubles the with-scores footprint
        full2 = transformer_activation_bytes(4, 256, 64, 4, 1, with_scores=True)
        assert full2 > 2 * full

    def test_checkpoint_reduces_activations(self):
        plain = transformer_activation_bytes(4, 128, 64, 4, 12)
        ckpt = transformer_activation_bytes(4, 128, 64, 4, 12, checkpoint=True)
        assert ckpt < plain / 10


class TestPerfModel:
    def test_six_n_rule(self):
        assert training_flops_per_token(1e9) == 6e9

    def test_layer_flops_positive_and_scales(self):
        f1 = transformer_layer_flops(1, 128, 512)
        f2 = transformer_layer_flops(2, 128, 512)
        assert f2 == pytest.approx(2 * f1)


class TestSyntheticData:
    def test_images_learnable_structure(self):
        X, y = synthetic_image_classification(200, image_size=8, channels=2, n_classes=4, seed=0)
        assert X.shape == (200, 8, 8, 2) and y.shape == (200,)
        # same-class samples are closer than cross-class on average
        d_same, d_diff = [], []
        for i in range(0, 100, 5):
            for j in range(i + 1, 100, 7):
                d = float(np.linalg.norm(X[i] - X[j]))
                (d_same if y[i] == y[j] else d_diff).append(d)
        assert np.mean(d_same) < np.mean(d_diff)

    def test_images_deterministic(self):
        a = synthetic_image_classification(10, seed=3)
        b = synthetic_image_classification(10, seed=3)
        np.testing.assert_array_equal(a[0], b[0])

    def test_token_stream_markov(self):
        s = synthetic_token_stream(5000, vocab_size=64, seed=0, branching=2)
        assert s.min() >= 0 and s.max() < 64
        # low-entropy successors: each token has <= branching distinct successors
        succ = {}
        for a, b in zip(s, s[1:]):
            succ.setdefault(int(a), set()).add(int(b))
        assert max(len(v) for v in succ.values()) <= 2

    def test_lm_batches_next_token(self):
        s = np.arange(100)
        x, y = lm_batches(s, batch_size=2, seq_len=4)
        np.testing.assert_array_equal(y[0, 0], x[0, 0] + 1)
        assert x.shape[1:] == (2, 4)

    def test_dataloader_epoch(self):
        X = np.arange(10).reshape(10, 1)
        y = np.arange(10)
        dl = DataLoader(X, y, batch_size=3, shuffle=False)
        batches = list(dl)
        assert len(batches) == len(dl) == 3  # drop_last
        assert batches[0][0].shape == (3, 1)

    def test_dataloader_shuffles_deterministically(self):
        X = np.arange(8).reshape(8, 1)
        y = np.arange(8)
        a = [b[1].tolist() for b in DataLoader(X, y, 4, seed=1)]
        b = [b[1].tolist() for b in DataLoader(X, y, 4, seed=1)]
        assert a == b
        c = [b[1].tolist() for b in DataLoader(X, y, 4, seed=2)]
        assert a != c

    def test_dataloader_length_mismatch(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((4, 1)), np.zeros(5), 2)
