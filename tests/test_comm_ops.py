"""Differentiable communication ops: forward semantics and adjointness.

Every comm op pair must satisfy the vector-Jacobian identity
``<y, f(x)> == <f^T(y), x>`` summed over ranks — the property that makes
tensor-parallel backward passes exact.
"""

import numpy as np
import pytest

from repro.comm import Communicator
from repro.parallel.comm_ops import (
    AllReduceMeanScalar,
    all_gather_parallel_region,
    copy_to_parallel_region,
    gather_from_parallel_region,
    mean_loss_across,
    reduce_from_parallel_region,
    reduce_scatter_parallel_region,
    scatter_to_parallel_region,
)
from repro.tensor import Tensor

from conftest import run_spmd


def _world(ctx):
    return Communicator.world(ctx)


class TestForwardSemantics:
    def test_copy_is_identity_forward(self):
        def prog(ctx):
            x = Tensor(np.full(3, float(ctx.rank)), requires_grad=True)
            y = copy_to_parallel_region(x, _world(ctx))
            return y.numpy().tolist()

        res = run_spmd(2, prog)
        assert res[0] == [0.0] * 3 and res[1] == [1.0] * 3

    def test_reduce_sums_forward(self):
        def prog(ctx):
            x = Tensor(np.full(2, float(ctx.rank + 1)), requires_grad=True)
            return reduce_from_parallel_region(x, _world(ctx)).numpy().tolist()

        assert run_spmd(3, prog)[0] == [6.0, 6.0]

    def test_scatter_keeps_local_chunk(self):
        def prog(ctx):
            x = Tensor(np.arange(8.0), requires_grad=True)
            return scatter_to_parallel_region(x, _world(ctx), axis=0).numpy().tolist()

        res = run_spmd(4, prog)
        assert res[2] == [4.0, 5.0]

    def test_gather_concatenates(self):
        def prog(ctx):
            x = Tensor(np.array([float(ctx.rank)]), requires_grad=True)
            return gather_from_parallel_region(x, _world(ctx), axis=0).numpy().tolist()

        assert run_spmd(3, prog)[0] == [0.0, 1.0, 2.0]

    def test_copy_forward_shares_storage(self):
        def prog(ctx):
            x = Tensor(np.ones(4), requires_grad=True)
            y = copy_to_parallel_region(x, _world(ctx))
            return y.storage is x.storage

        assert all(run_spmd(2, prog))


class TestBackwardAdjoints:
    def test_copy_backward_allreduces(self):
        """f: identity fwd, sum-allreduce bwd."""

        def prog(ctx):
            x = Tensor(np.ones(2), requires_grad=True)
            y = copy_to_parallel_region(x, _world(ctx))
            y.backward(Tensor(np.full(2, float(ctx.rank + 1))))
            return x.grad.numpy().tolist()

        # grads 1 + 2 + 3 = 6 on every rank
        assert run_spmd(3, prog) == [[6.0, 6.0]] * 3

    def test_reduce_backward_is_identity(self):
        def prog(ctx):
            x = Tensor(np.ones(2), requires_grad=True)
            y = reduce_from_parallel_region(x, _world(ctx))
            y.backward(Tensor(np.full(2, float(ctx.rank))))
            return x.grad.numpy().tolist()

        res = run_spmd(3, prog)
        assert res[0] == [0.0, 0.0] and res[2] == [2.0, 2.0]

    def test_scatter_gather_adjoint_pair(self):
        """backward(scatter) == all_gather and vice versa."""

        def prog(ctx):
            comm = _world(ctx)
            x = Tensor(np.arange(4.0), requires_grad=True)
            y = scatter_to_parallel_region(x, comm, axis=0)
            y.backward(Tensor(np.array([float(ctx.rank * 10)])))
            gx = x.grad.numpy().copy()

            z = Tensor(np.array([float(ctx.rank)]), requires_grad=True)
            g = gather_from_parallel_region(z, comm, axis=0)
            g.backward(Tensor(np.arange(4.0) + 1))
            return gx.tolist(), z.grad.numpy().tolist()

        for r, (gx, gz) in enumerate(run_spmd(4, prog)):
            assert gx == [0.0, 10.0, 20.0, 30.0]  # gathered grads
            assert gz == [float(r + 1)]  # local slice of upstream grad

    def test_reduce_scatter_allgather_adjoints(self):
        def prog(ctx):
            comm = _world(ctx)
            x = Tensor(np.arange(4.0) + ctx.rank, requires_grad=True)
            y = reduce_scatter_parallel_region(x, comm, axis=0)
            y.backward(Tensor(np.full(2, 1.0 + ctx.rank)))
            gx = x.grad.numpy().copy()

            z = Tensor(np.array([float(ctx.rank)]), requires_grad=True)
            g = all_gather_parallel_region(z, comm, axis=0)
            g.backward(Tensor(np.arange(2.0) + 1))
            return gx.tolist(), z.grad.numpy().tolist()

        res = run_spmd(2, prog)
        # RS backward = all_gather of per-rank grads: rank0 sent [1,1],
        # rank1 sent [2,2] -> everyone holds [1,1,2,2]
        assert res[0][0] == [1.0, 1.0, 2.0, 2.0]
        assert res[1][0] == [1.0, 1.0, 2.0, 2.0]
        # AG backward = reduce_scatter of upstream [1,2] from both ranks:
        # summed [2,4], rank0 keeps [2], rank1 keeps [4]
        assert res[0][1] == [2.0]
        assert res[1][1] == [4.0]

    def test_vjp_identity_copy_reduce(self):
        """<y, g(x)>/p == <g^T(y), x> per rank for the "g" op, under its
        validity precondition: the upstream gradient y is *replicated*
        across ranks (which Megatron guarantees because everything after
        the all-reduce is itself replicated)."""
        rng = np.random.default_rng(0)
        xs = rng.standard_normal((4, 3)).astype(np.float32)
        y_shared = rng.standard_normal(3).astype(np.float32)

        def prog(ctx):
            comm = _world(ctx)
            x = Tensor(xs[ctx.rank].copy(), requires_grad=True)
            out = reduce_from_parallel_region(x, comm)
            fwd_inner = float(np.sum(out.numpy() * y_shared))
            out.backward(Tensor(y_shared.copy()))
            bwd_inner = float(np.sum(x.grad.numpy() * xs[ctx.rank]))
            return fwd_inner, bwd_inner

        res = run_spmd(4, prog)
        # <y, sum_m x_m> (same on each rank) == sum_m <y, x_m>
        assert res[0][0] == pytest.approx(sum(b for _, b in res), rel=1e-5)


class TestMeanLoss:
    def test_forward_is_mean(self):
        def prog(ctx):
            loss = Tensor(np.asarray(float(ctx.rank + 1)), requires_grad=True)
            return mean_loss_across(loss, _world(ctx)).item()

        assert run_spmd(4, prog) == [2.5] * 4

    def test_backward_scales(self):
        def prog(ctx):
            loss = Tensor(np.asarray(float(ctx.rank)), requires_grad=True)
            out = mean_loss_across(loss, _world(ctx))
            out.backward()
            return float(loss.grad.numpy())

        assert run_spmd(4, prog) == [0.25] * 4

    def test_noop_for_singleton(self):
        def prog(ctx):
            comm = _world(ctx).subgroup([ctx.rank])
            loss = Tensor(np.asarray(3.0), requires_grad=True)
            return mean_loss_across(loss, comm) is loss

        assert all(run_spmd(2, prog))

    def test_none_comm_noop(self):
        loss = Tensor(np.asarray(3.0))
        assert mean_loss_across(loss, None) is loss
