"""1D (Megatron) tensor parallelism: parity with serial + layer behaviour."""

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.comm import SpecArray
from repro.config import Config
from repro.context import ParallelContext, ParallelMode
from repro.parallel.tensor1d import (
    ColumnParallelLinear,
    ParallelMLP1D,
    ParallelSelfAttention1D,
    ParallelTransformerLayer1D,
    RowParallelLinear,
    VocabParallelEmbedding1D,
)
from repro.runtime import SpmdRuntime
from repro.tensor import Tensor

from conftest import run_spmd
from parity_helpers import ATOL, B, H, NH, RATIO, S, SEED, block, make_input, serial_reference


def pc_1d(ctx, size=4):
    return ParallelContext(
        ctx, Config.from_dict(dict(parallel=dict(tensor=dict(size=size, mode="1d"))))
    )


class TestParallelLinears:
    def test_column_parallel_matches_serial(self):
        rng_w = np.random.default_rng(0)
        x_g = np.random.default_rng(1).standard_normal((3, 8)).astype(np.float32)

        def prog(ctx):
            pc = pc_1d(ctx)
            comm = pc.comm(ParallelMode.TENSOR)
            lin = ColumnParallelLinear(8, 12, comm, gather_output=True,
                                       rng=np.random.default_rng(0))
            return lin(Tensor(x_g.copy())).numpy()

        from repro.nn import Linear
        from repro.nn import init as init_mod

        serial = Linear(8, 12, weight_init=init_mod.lecun_normal(), rng=np.random.default_rng(0))
        expect = serial(Tensor(x_g.copy())).numpy()
        for out in run_spmd(4, prog):
            np.testing.assert_allclose(out, expect, atol=ATOL)

    def test_column_parallel_local_shape(self):
        def prog(ctx):
            pc = pc_1d(ctx)
            comm = pc.comm(ParallelMode.TENSOR)
            lin = ColumnParallelLinear(8, 12, comm, rng=np.random.default_rng(0))
            return lin(Tensor(np.zeros((2, 8), dtype=np.float32))).shape

        assert run_spmd(4, prog) == [(2, 3)] * 4

    def test_row_parallel_requires_divisible(self):
        def prog(ctx):
            pc = pc_1d(ctx)
            comm = pc.comm(ParallelMode.TENSOR)
            RowParallelLinear(10, 8, comm)

        from repro.runtime import RemoteRankError

        with pytest.raises(RemoteRankError):
            run_spmd(4, prog)

    def test_col_row_pair_is_identity_comm_pattern(self):
        """Col->Row composition should use exactly 1 fwd + 1 bwd allreduce."""
        rt = SpmdRuntime(uniform_cluster(4))

        def prog(ctx):
            pc = pc_1d(ctx)
            comm = pc.comm(ParallelMode.TENSOR)
            mlp = ParallelMLP1D(H, comm, mlp_ratio=2, rng=np.random.default_rng(0))
            x = Tensor(np.ones((2, H), dtype=np.float32), requires_grad=True)
            mlp(x).sum().backward()

        rt.run(prog)
        counters = rt.group((0, 1, 2, 3)).counters
        assert counters.by_op_calls.get("all_reduce") == 2


class TestTransformerParity:
    def test_full_layer_parity(self):
        x_g = make_input()
        ref = serial_reference(x_g)

        def prog(ctx):
            pc = pc_1d(ctx)
            comm = pc.comm(ParallelMode.TENSOR)
            layer = ParallelTransformerLayer1D(
                H, NH, comm, mlp_ratio=RATIO, rng=np.random.default_rng(SEED)
            )
            x = Tensor(x_g.copy(), requires_grad=True)
            y = layer(x)
            y.sum().backward()
            return (
                y.numpy(),
                x.grad.numpy(),
                layer.mlp.dense_1.weight.grad.numpy(),
                layer.norm_1.gamma.grad.numpy(),
            )

        for r, (out, xg, w1g, lng) in enumerate(run_spmd(4, prog)):
            np.testing.assert_allclose(out, ref["out"], atol=ATOL)
            np.testing.assert_allclose(xg, ref["x_grad"], atol=ATOL)
            np.testing.assert_allclose(
                w1g, block(ref["mlp_w1_grad"], 1, 4, r), atol=ATOL
            )
            # layernorm replicated: full grad everywhere
            np.testing.assert_allclose(lng, ref["ln1_gamma_grad"], atol=ATOL)

    def test_heads_not_divisible_rejected(self):
        def prog(ctx):
            pc = pc_1d(ctx, size=4)
            comm = pc.comm(ParallelMode.TENSOR)
            ParallelSelfAttention1D(12, 6, comm)  # 6 heads % 4 != 0

        from repro.runtime import RemoteRankError

        with pytest.raises(RemoteRankError):
            run_spmd(4, prog)

    def test_memory_is_sharded(self):
        """Each rank holds ~1/p of the layer weights (the point of TP)."""

        def prog(ctx):
            pc = pc_1d(ctx)
            comm = pc.comm(ParallelMode.TENSOR)
            layer = ParallelTransformerLayer1D(
                H, NH, comm, mlp_ratio=RATIO, rng=np.random.default_rng(SEED)
            )
            return layer.num_parameters()

        from repro.nn import TransformerLayer

        serial_n = TransformerLayer(H, NH, mlp_ratio=RATIO, rng=np.random.default_rng(SEED)).num_parameters()
        for n in run_spmd(4, prog):
            assert n < 0.5 * serial_n

    def test_spec_mode_runs(self):
        def prog(ctx):
            pc = pc_1d(ctx)
            comm = pc.comm(ParallelMode.TENSOR)
            layer = ParallelTransformerLayer1D(H, NH, comm, mlp_ratio=RATIO)
            x = Tensor(SpecArray((B, S, H)), requires_grad=True)
            layer(x).sum().backward()
            return x.grad.shape, ctx.clock.time

        for shape, t in run_spmd(4, prog, materialize=False):
            assert shape == (B, S, H) and t > 0


class TestVocabParallelEmbedding:
    def test_matches_serial_embedding(self):
        ids = np.random.default_rng(2).integers(0, 16, (2, 5))

        def prog(ctx):
            pc = pc_1d(ctx)
            comm = pc.comm(ParallelMode.TENSOR)
            emb = VocabParallelEmbedding1D(16, 8, comm, rng=np.random.default_rng(3))
            out = emb(ids)
            out.sum().backward()
            return out.numpy(), emb.weight.grad.numpy()

        from repro.nn import Embedding

        serial = Embedding(16, 8, rng=np.random.default_rng(3))
        out_s = serial(ids)
        out_s.sum().backward()
        for r, (out, wg) in enumerate(run_spmd(4, prog)):
            np.testing.assert_allclose(out, out_s.numpy(), atol=ATOL)
            np.testing.assert_allclose(
                wg, block(serial.weight.grad.numpy(), 0, 4, r), atol=ATOL
            )

    def test_vocab_divisibility(self):
        def prog(ctx):
            pc = pc_1d(ctx)
            VocabParallelEmbedding1D(15, 8, pc.comm(ParallelMode.TENSOR))

        from repro.runtime import RemoteRankError

        with pytest.raises(RemoteRankError):
            run_spmd(4, prog)
