"""2.5D tensor parallelism: parity, depth handling, degeneration to 2D."""

import numpy as np
import pytest

from repro.config import Config
from repro.context import ParallelContext, ParallelMode
from repro.parallel.tensor25d import (
    Linear25D,
    ParallelTransformerLayer25D,
    shard_activation_25d,
    sync_parameter_gradients,
)
from repro.tensor import Tensor

from conftest import run_spmd
from parity_helpers import ATOL, B, H, NH, RATIO, SEED, block, make_input, serial_reference


def pc_25d(ctx, size=8, depth=2):
    return ParallelContext(
        ctx,
        Config.from_dict(
            dict(parallel=dict(tensor=dict(size=size, mode="2.5d", depth=depth)))
        ),
    )


class TestLayerParity:
    def test_full_layer_parity_depth2(self):
        x_g = make_input()
        ref = serial_reference(x_g)
        d, q = 2, 2

        def prog(ctx):
            pc = pc_25d(ctx)
            layer = ParallelTransformerLayer25D(
                H, NH, pc, mlp_ratio=RATIO, rng=np.random.default_rng(SEED)
            )
            x = Tensor(shard_activation_25d(x_g.copy(), pc), requires_grad=True)
            y = layer(x)
            y.sum().backward()
            sync_parameter_gradients(layer)
            return (
                pc.dep_rank, pc.row_rank, pc.col_rank,
                y.numpy(), x.grad.numpy(),
                layer.mlp.dense_1.weight.grad.numpy(),
            )

        for dep, i, j, out, xg, w1g in run_spmd(8, prog):
            bi = dep * q + i  # batch block index (depth-major)
            np.testing.assert_allclose(
                out, block(block(ref["out"], 0, d * q, bi), 2, q, j), atol=ATOL
            )
            np.testing.assert_allclose(
                xg, block(block(ref["x_grad"], 0, d * q, bi), 2, q, j), atol=ATOL
            )
            # weight grads: identical across depth after sync, = serial shard
            np.testing.assert_allclose(
                w1g, block(block(ref["mlp_w1_grad"], 0, q, i), 1, q, j), atol=ATOL
            )

    def test_depth1_equals_2d(self):
        """depth=1 must behave exactly like 2D (the paper's degeneration)."""
        x_g = make_input()
        ref = serial_reference(x_g)

        def prog(ctx):
            pc = pc_25d(ctx, size=4, depth=1)
            layer = ParallelTransformerLayer25D(
                H, NH, pc, mlp_ratio=RATIO, rng=np.random.default_rng(SEED)
            )
            x = Tensor(shard_activation_25d(x_g.copy(), pc), requires_grad=True)
            y = layer(x)
            y.sum().backward()
            return pc.row_rank, pc.col_rank, y.numpy()

        for i, j, out in run_spmd(4, prog):
            np.testing.assert_allclose(
                out, block(block(ref["out"], 0, 2, i), 2, 2, j), atol=ATOL
            )

    def test_weight_grads_summed_over_depth(self):
        """Before the sync, depth layers hold partial (per-batch-shard)
        grads; after sync all hold the total."""

        def prog(ctx):
            pc = pc_25d(ctx)
            lin = Linear25D(8, 8, pc, rng=np.random.default_rng(0))
            x_g = np.random.default_rng(1).standard_normal((8, 8)).astype(np.float32)
            x = Tensor(shard_activation_25d(x_g, pc), requires_grad=True)
            lin(x).sum().backward()
            before = lin.weight.grad.numpy().copy()
            sync_parameter_gradients(lin)
            after = lin.weight.grad.numpy().copy()
            return pc.dep_rank, pc.row_rank, pc.col_rank, before, after

        res = run_spmd(8, prog)
        by_coord = {(d, i, j): (b, a) for d, i, j, b, a in res}
        b0, a0 = by_coord[(0, 0, 0)]
        b1, a1 = by_coord[(1, 0, 0)]
        assert not np.allclose(b0, b1)  # different batch shards
        np.testing.assert_allclose(a0, b0 + b1, atol=ATOL)
        np.testing.assert_allclose(a0, a1, atol=ATOL)

    def test_params_marked_for_depth_sync(self):
        def prog(ctx):
            pc = pc_25d(ctx)
            lin = Linear25D(8, 8, pc)
            return all(
                len(getattr(p, "grad_sync_comms", [])) == 1 for p in lin.parameters()
            )

        assert all(run_spmd(8, prog))
