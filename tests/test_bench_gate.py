"""The benchmark regression gate (``pytest -m bench_gate``).

Wraps :mod:`benchmarks.check_regression` as a pytest lane: the newest
``BENCH_<N>.json`` at the repo root must hold simulated throughput within
10% of every prior report on every shared scenario.  Unit tests for the
extraction/comparison logic run alongside so the gate itself is covered by
tier-1.
"""

import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "benchmarks"))

from check_regression import (  # noqa: E402
    bench_files,
    check,
    compare,
    extract_throughputs,
)

pytestmark = pytest.mark.bench_gate


class TestGateLogic:
    def test_extract_covers_all_sections(self):
        report = {
            "collectives": [
                {"scenario": "s/allreduce", "ring_seconds": 2.0, "auto_seconds": 1.0}
            ],
            "vit_system_ii_1d": [
                {"scenario": "s/vit", "ring": {"img_per_sec": 10.0},
                 "auto": {"img_per_sec": 20.0}}
            ],
            "sanitizer_fig13b": {
                "scenario": "s/san",
                "variants": {"off": {"sim_samples_per_sec": 5.0}},
            },
            "overlap_fig13b": {
                "scenario": "s/ovl",
                "overlap_off": {"sim_img_per_sec": 100.0},
                "overlap_on": {"sim_img_per_sec": 125.0},
            },
        }
        t = extract_throughputs(report)
        assert t["s/allreduce/ring"] == 0.5
        assert t["s/allreduce/auto"] == 1.0
        assert t["s/vit/auto"] == 20.0
        assert t["s/san/off"] == 5.0
        assert t["s/ovl/overlap_on"] == 125.0

    def test_compare_flags_only_regressions_past_tolerance(self):
        old = {"a": 100.0, "b": 100.0, "c": 100.0, "only_old": 1.0}
        new = {"a": 95.0, "b": 89.0, "c": 130.0, "only_new": 1.0}
        regs = compare(new, old, tolerance=0.10)
        assert [r[0] for r in regs] == ["b"]
        assert regs[0][3] == pytest.approx(0.11)

    def test_compare_ignores_unshared_scenarios(self):
        assert compare({"x": 1.0}, {"y": 50.0}) == []


class TestRepoGate:
    def test_bench_trajectory_has_no_regression(self):
        files = bench_files(ROOT)
        if len(files) < 2:
            pytest.skip("fewer than two BENCH_*.json reports to diff")
        problems = check(ROOT)
        assert problems == [], "\n".join(problems)

    def test_newest_report_records_overlap_win(self):
        """PR-5 acceptance: the DDP ViT overlap scenario shows >= 15% lower
        simulated step time at identical wire bytes, with per-rank
        exposed/overlapped comm recorded."""
        import json

        files = bench_files(ROOT)
        if not files:
            pytest.skip("no BENCH_*.json reports")
        report = json.loads(files[-1].read_text())
        ovl = report.get("overlap_fig13b")
        if ovl is None:
            pytest.skip("newest report predates the overlap scenario")
        assert ovl["step_time_reduction"] >= 0.15
        assert ovl["wire_bytes_identical"]
        for mode in ("overlap_off", "overlap_on"):
            per_rank = ovl[mode]["per_rank"]
            assert per_rank and all(
                "exposed_comm" in r and "overlapped_comm" in r for r in per_rank
            )
        on = ovl["overlap_on"]
        assert on["overlapped_comm_seconds_total"] > 0.0
