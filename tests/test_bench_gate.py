"""The benchmark regression gate (``pytest -m bench_gate``).

Wraps :mod:`benchmarks.check_regression` as a pytest lane: the newest
``BENCH_<N>.json`` at the repo root must hold simulated throughput within
10% of every prior report on every shared scenario.  Unit tests for the
extraction/comparison logic run alongside so the gate itself is covered by
tier-1.
"""

import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "benchmarks"))

from check_regression import (  # noqa: E402
    GATED_SECTIONS,
    bench_files,
    check,
    check_empty_sections,
    check_mode_switch,
    check_serving,
    check_wallclocks,
    compare,
    extract_throughputs,
    extract_wallclocks,
)

pytestmark = pytest.mark.bench_gate


class TestGateLogic:
    def test_extract_covers_all_sections(self):
        report = {
            "collectives": [
                {"scenario": "s/allreduce", "ring_seconds": 2.0, "auto_seconds": 1.0}
            ],
            "vit_system_ii_1d": [
                {"scenario": "s/vit", "ring": {"img_per_sec": 10.0},
                 "auto": {"img_per_sec": 20.0}}
            ],
            "sanitizer_fig13b": {
                "scenario": "s/san",
                "variants": {"off": {"sim_samples_per_sec": 5.0}},
            },
            "overlap_fig13b": {
                "scenario": "s/ovl",
                "overlap_off": {"sim_img_per_sec": 100.0},
                "overlap_on": {"sim_img_per_sec": 125.0},
            },
        }
        t = extract_throughputs(report)
        assert t["s/allreduce/ring"] == 0.5
        assert t["s/allreduce/auto"] == 1.0
        assert t["s/vit/auto"] == 20.0
        assert t["s/san/off"] == 5.0
        assert t["s/ovl/overlap_on"] == 125.0

    def test_compare_flags_only_regressions_past_tolerance(self):
        old = {"a": 100.0, "b": 100.0, "c": 100.0, "only_old": 1.0}
        new = {"a": 95.0, "b": 89.0, "c": 130.0, "only_new": 1.0}
        regs = compare(new, old, tolerance=0.10)
        assert [r[0] for r in regs] == ["b"]
        assert regs[0][3] == pytest.approx(0.11)

    def test_compare_ignores_unshared_scenarios(self):
        assert compare({"x": 1.0}, {"y": 50.0}) == []

    def test_extract_covers_projection_section(self):
        report = {
            "projection": [
                {"scenario": "gpt_ddp/p1024", "step_time": 0.25,
                 "wall_seconds": 3.0},
            ]
        }
        t = extract_throughputs(report)
        assert t == {"gpt_ddp/p1024/projected": 4.0}

    def test_extract_skips_malformed_entries(self):
        """One broken entry must not crash the gate or take down the
        well-formed entries next to it."""
        report = {
            "collectives": [
                {"scenario": "bad/missing_keys"},
                {"scenario": "bad/zero", "ring_seconds": 0.0,
                 "auto_seconds": 2.0},
                {"scenario": "bad/type", "ring_seconds": "fast",
                 "auto_seconds": 1.0},
                "not-even-a-dict",
                {"scenario": "good", "ring_seconds": 2.0, "auto_seconds": 4.0},
            ],
            "vit_system_ii_1d": [{"scenario": "v", "ring": {}}],
            "sanitizer_fig13b": {"scenario": "s", "variants": {"off": {}}},
            "overlap_fig13b": {"scenario": "o", "overlap_on": None},
            "projection": [{"scenario": "p", "step_time": 0}],
        }
        t = extract_throughputs(report)
        assert t == {
            "good/ring": 0.5,
            "good/auto": 0.25,
            "bad/zero/auto": 0.5,
            "bad/type/auto": 1.0,
        }

    def test_extract_covers_hybrid_projection_section(self):
        report = {
            "hybrid_projection": [
                {"scenario": "gpt_hybrid_project/dp8xpp2xtp2/512ranks",
                 "step_time": 0.125, "axes": [{"name": "dp"}]},
                {"scenario": "bad/zero", "step_time": 0},
                {"scenario": "bad/missing"},
            ]
        }
        t = extract_throughputs(report)
        assert t == {"gpt_hybrid_project/dp8xpp2xtp2/512ranks/projected": 8.0}

    def test_extract_tolerates_missing_and_null_sections(self):
        assert extract_throughputs({}) == {}
        assert extract_throughputs(
            {"collectives": None, "sanitizer_fig13b": None,
             "projection": None, "hybrid_projection": None,
             "wallclock_threaded": None}
        ) == {}

    def test_extract_gates_threaded_sim_but_not_wall(self):
        """The wallclock_threaded section splits in two: simulated step
        time joins the hard gate, wall seconds go to the advisory pass."""
        report = {
            "wallclock_threaded": {
                "scenarios": {
                    "ddp_vit": {
                        "scenario": "s/ddp_vit/threaded_wall",
                        "after": {"sim_step_seconds": 0.5,
                                  "wall_seconds": 0.25},
                    },
                    "broken": {"scenario": "s/broken", "after": {}},
                }
            }
        }
        assert extract_throughputs(report) == {
            "s/ddp_vit/threaded_wall/sim": 2.0
        }
        assert extract_wallclocks(report) == {
            "s/ddp_vit/threaded_wall/wall": 0.25
        }
        assert extract_wallclocks({}) == {}
        assert extract_wallclocks({"wallclock_threaded": None}) == {}


def _autopar_section(mode_times_ii=None, chosen_ii=None):
    mode_times_ii = mode_times_ii or {"1d": 0.9, "2d": 0.7}
    chosen_ii = chosen_ii or min(mode_times_ii, key=mode_times_ii.get)
    return {
        "compiles": [
            {"scenario": "autopar/system_i/w8",
             "refined_step_seconds": 0.5, "compile_wall_seconds": 0.06},
            {"scenario": "bad/missing"},
        ],
        "fig11_mode_switch": {
            "system_i": {
                "scenario": "autopar/fig11_system_i_t4",
                "mode_times": {"1d": 0.53, "2d": 0.57},
                "chosen_mode": "1d",
            },
            "system_ii": {
                "scenario": "autopar/fig11_system_ii_t4",
                "mode_times": mode_times_ii,
                "chosen_mode": chosen_ii,
            },
        },
    }


class TestAutoparGate:
    """The strategy-compiler section splits three ways: refined step times
    and the per-mode Fig-11 times join the hard throughput gate, compile
    wall-clock goes to the advisory pass, and the pinned System II mode
    switch is an intra-report invariant that fails the gate by itself."""

    def test_extract_covers_autopar_section(self):
        report = {"autopar_strategy": _autopar_section()}
        t = extract_throughputs(report)
        assert t["autopar/system_i/w8/refined"] == 2.0
        assert t["autopar/fig11_system_ii_t4/2d"] == pytest.approx(1 / 0.7)
        assert t["autopar/fig11_system_i_t4/1d"] == pytest.approx(1 / 0.53)
        assert "autopar/system_i/w8/compile_wall" not in t
        assert extract_wallclocks(report) == {
            "autopar/system_i/w8/compile_wall": 0.06
        }

    def test_extract_tolerates_malformed_autopar(self):
        assert extract_throughputs({"autopar_strategy": None}) == {}
        assert extract_throughputs({"autopar_strategy": {}}) == {}
        assert extract_wallclocks({"autopar_strategy": {}}) == {}

    def test_mode_switch_ok(self):
        assert check_mode_switch(
            {"autopar_strategy": _autopar_section()}) == []
        assert check_mode_switch({}) == []
        assert check_mode_switch({"autopar_strategy": {}}) == []

    def test_mode_switch_flags_non_argmin_choice(self):
        report = {"autopar_strategy": _autopar_section(
            mode_times_ii={"1d": 0.7, "2d": 0.6}, chosen_ii="1d")}
        problems = check_mode_switch(report)
        assert any("chose 1d" in p and "faster 2d" in p for p in problems)

    def test_mode_switch_flags_system_ii_flip_regression(self):
        """Even a self-consistent argmin fails if System II stopped
        preferring 2D — that is the hardware-dependent switch Fig 11
        pins."""
        report = {"autopar_strategy": _autopar_section(
            mode_times_ii={"1d": 0.6, "2d": 0.9}, chosen_ii="1d")}
        problems = check_mode_switch(report)
        assert any("Fig-11 mode switch regressed" in p for p in problems)

    def test_mode_switch_fails_check_without_prior_report(self, tmp_path):
        import json

        bad = {"autopar_strategy": _autopar_section(
            mode_times_ii={"1d": 0.6, "2d": 0.9}, chosen_ii="1d")}
        (tmp_path / "BENCH_9.json").write_text(json.dumps(bad))
        problems = check(tmp_path)
        assert any("mode switch regressed" in p for p in problems)
        good = {"autopar_strategy": _autopar_section()}
        (tmp_path / "BENCH_9.json").write_text(json.dumps(good))
        assert check(tmp_path) == []


def _serving_row(scen, offered, goodput, p99, **extra):
    return {"scenario": scen, "offered_req_per_sec": offered,
            "goodput_tokens_per_sec": goodput, "p99_ttft": p99, **extra}


def _serving_section(load=None, mtbf=None):
    if load is None:
        load = [
            _serving_row("serve/0.4x", 40.0, 4000.0, 0.001),
            _serving_row("serve/0.8x", 80.0, 7500.0, 0.002),
            _serving_row("serve/1.6x", 160.0, 9000.0, 0.02),
        ]
    if mtbf is None:
        mtbf = [
            _serving_row("serve/mtbf_base", 96.0, 8000.0, 0.002,
                         failures=0),
            _serving_row("serve/mtbf_crash", 96.0, 6000.0, 0.01,
                         failures=1,
                         baseline_goodput_tokens_per_sec=8000.0,
                         baseline_p99_ttft=0.002),
        ]
    return {"load_sweep": load, "mtbf_sweep": mtbf}


class TestServingGate:
    """The serving section splits like autopar: per-scenario goodput joins
    the hard throughput gate, and check_serving enforces the intra-report
    queueing physics (saturation + p99 knee) and the rank-loss SLO hit."""

    def test_extract_gates_goodput_from_both_sweeps(self):
        t = extract_throughputs({"serving": _serving_section()})
        assert t["serve/0.4x/goodput"] == 4000.0
        assert t["serve/1.6x/goodput"] == 9000.0
        assert t["serve/mtbf_base/goodput"] == 8000.0
        assert t["serve/mtbf_crash/goodput"] == 6000.0
        assert "serve/0.4x/p99_ttft" not in t  # latency is never throughput

    def test_extract_tolerates_malformed_serving(self):
        assert extract_throughputs({"serving": None}) == {}
        assert extract_throughputs({"serving": {}}) == {}
        assert extract_throughputs({"serving": {
            "load_sweep": [{"scenario": "s"}, "junk", None],
            "mtbf_sweep": {"not": "a list"},
        }}) == {}

    def test_serving_ok(self):
        assert check_serving({"serving": _serving_section()}) == []
        assert check_serving({}) == []
        assert check_serving({"serving": None}) == []
        assert check_serving({"serving": {}}) == []

    def test_serving_flags_unsaturated_load_sweep(self):
        """Goodput scaling 1:1 with offered load at the top of the sweep
        means the rates never reached the capacity knee."""
        load = [
            _serving_row("serve/0.4x", 40.0, 4000.0, 0.001),
            _serving_row("serve/0.8x", 80.0, 8000.0, 0.002),
            _serving_row("serve/1.6x", 160.0, 16000.0, 0.02),
        ]
        problems = check_serving({"serving": _serving_section(load=load)})
        assert any("never saturates" in p for p in problems)

    def test_serving_flags_flat_p99(self):
        load = [
            _serving_row("serve/0.4x", 40.0, 4000.0, 0.002),
            _serving_row("serve/0.8x", 80.0, 7500.0, 0.002),
            _serving_row("serve/1.6x", 160.0, 9000.0, 0.002),
        ]
        problems = check_serving({"serving": _serving_section(load=load)})
        assert any("queueing delay is not priced" in p for p in problems)

    def test_serving_flags_free_rank_loss(self):
        """A faulted MTBF entry whose goodput/p99 match the embedded
        fault-free baseline means the failure injector priced nothing."""
        mtbf = [
            _serving_row("serve/mtbf_crash", 96.0, 8000.0, 0.002,
                         failures=1,
                         baseline_goodput_tokens_per_sec=8000.0,
                         baseline_p99_ttft=0.002),
        ]
        problems = check_serving({"serving": _serving_section(mtbf=mtbf)})
        assert any("the failure costs nothing" in p for p in problems)
        assert any("SLO hit is invisible" in p for p in problems)

    def test_serving_skips_baseline_rows(self):
        """The fault-free baseline row (failures=0) carries no embedded
        baselines and must not be compared against itself."""
        mtbf = [_serving_row("serve/mtbf_base", 96.0, 8000.0, 0.002,
                             failures=0)]
        assert check_serving({"serving": _serving_section(mtbf=mtbf)}) == []


class TestEmptySections:
    """Satellite: a BENCH section that is present but holds nothing
    measurable fails the gate with a named section, never a KeyError."""

    def test_absent_sections_are_legal(self):
        assert check_empty_sections({}) == []
        assert check_empty_sections({"unknown_future_section": []}) == []

    def test_healthy_sections_pass(self):
        report = {
            "collectives": [{"scenario": "c", "ring_seconds": 1.0,
                             "auto_seconds": 1.0}],
            "serving": _serving_section(),
            "autopar_strategy": _autopar_section(),
        }
        assert check_empty_sections(report) == []

    @pytest.mark.parametrize("empty", [[], {}, None])
    def test_present_but_empty_section_fails_clearly(self, empty):
        problems = check_empty_sections({"collectives": empty})
        assert len(problems) == 1
        assert "'collectives'" in problems[0]
        assert "present but empty" in problems[0]

    def test_malformed_entries_count_as_empty(self):
        report = {"serving": {"load_sweep": [{"scenario": "s"}],
                              "mtbf_sweep": []}}
        problems = check_empty_sections(report)
        assert len(problems) == 1 and "'serving'" in problems[0]

    def test_every_gated_section_is_checked(self):
        report = {key: {} for key in GATED_SECTIONS}
        problems = check_empty_sections(report)
        assert len(problems) == len(GATED_SECTIONS)
        for key in GATED_SECTIONS:
            assert any(f"'{key}'" in p for p in problems)

    def test_wallclock_only_section_is_not_empty(self):
        """wallclock_threaded extracts into the advisory pass as well —
        a section with only wall metrics still counts as measurable."""
        report = {"wallclock_threaded": {"scenarios": {
            "s": {"scenario": "w", "after": {"wall_seconds": 0.5}},
        }}}
        assert check_empty_sections(report) == []

    def test_empty_section_fails_check_without_prior_report(self, tmp_path):
        import json

        (tmp_path / "BENCH_10.json").write_text(json.dumps(
            {"collectives": []}))
        problems = check(tmp_path)
        assert len(problems) == 1
        assert "present but empty" in problems[0]


class TestScenarioDrift:
    """BENCH files along the trajectory measure different scenario sets;
    the gate must diff what they share and *warn* about what disappeared."""

    @staticmethod
    def _write(tmp_path, n, report):
        import json

        (tmp_path / f"BENCH_{n}.json").write_text(json.dumps(report))

    @staticmethod
    def _collective(scen, seconds):
        return {"scenario": scen, "ring_seconds": seconds,
                "auto_seconds": seconds}

    def test_new_scenarios_do_not_crash_or_fail(self, tmp_path):
        self._write(tmp_path, 1, {"collectives": [self._collective("a", 1.0)]})
        self._write(tmp_path, 2, {
            "collectives": [self._collective("a", 1.0)],
            "projection": [{"scenario": "p1024", "step_time": 0.5}],
        })
        warnings = []
        assert check(tmp_path, warnings=warnings) == []
        assert warnings == []

    def test_removed_scenarios_warn_instead_of_failing(self, tmp_path):
        self._write(tmp_path, 1, {"collectives": [
            self._collective("a", 1.0), self._collective("gone", 1.0),
        ]})
        self._write(tmp_path, 2, {"collectives": [self._collective("a", 1.0)]})
        warnings = []
        assert check(tmp_path, warnings=warnings) == []
        assert len(warnings) == 1
        assert "gone" in warnings[0] and "no longer measured" in warnings[0]

    def test_removed_scenarios_hit_stderr_without_warnings_list(
        self, tmp_path, capsys
    ):
        """Removed-scenario detection is unconditional: callers that do not
        pass a ``warnings`` list still get the report, on stderr, instead
        of silent scenario-set shrinkage."""
        self._write(tmp_path, 1, {"collectives": [
            self._collective("a", 1.0), self._collective("gone", 1.0),
        ]})
        self._write(tmp_path, 2, {"collectives": [self._collective("a", 1.0)]})
        assert check(tmp_path) == []
        err = capsys.readouterr().err
        assert "bench gate warning" in err
        assert "gone" in err and "no longer measured" in err

    def test_check_callable_without_warnings_list(self, tmp_path):
        # the pre-existing call shape stays valid
        self._write(tmp_path, 1, {"collectives": [
            self._collective("a", 1.0), self._collective("gone", 1.0),
        ]})
        self._write(tmp_path, 2, {"collectives": [self._collective("a", 2.0)]})
        problems = check(tmp_path)  # ring and auto both halved
        assert len(problems) == 2
        assert any("a/ring" in p for p in problems)

    def test_fully_disjoint_reports_still_fail(self, tmp_path):
        self._write(tmp_path, 1, {"collectives": [self._collective("a", 1.0)]})
        self._write(tmp_path, 2, {"collectives": [self._collective("b", 1.0)]})
        problems = check(tmp_path)
        assert len(problems) == 1 and "no shared scenarios" in problems[0]

    def test_malformed_prior_report_cannot_break_gate(self, tmp_path):
        self._write(tmp_path, 1, {"collectives": [
            self._collective("a", 1.0),
            {"scenario": "broken"},
        ]})
        self._write(tmp_path, 2, {"collectives": [self._collective("a", 1.0)]})
        assert check(tmp_path) == []

    @staticmethod
    def _wallclock(scen, wall):
        return {"wallclock_threaded": {"scenarios": {
            "s": {"scenario": scen, "after": {"sim_step_seconds": 1.0,
                                              "wall_seconds": wall}},
        }}}

    def test_wallclock_growth_warns_but_never_fails(self, tmp_path):
        """2x slower wall-clock on the same scenario: the advisory pass
        reports it, the hard gate stays green (sim throughput unchanged)."""
        self._write(tmp_path, 1, self._wallclock("w", 0.5))
        self._write(tmp_path, 2, self._wallclock("w", 1.0))
        assert check(tmp_path) == []
        warnings = check_wallclocks(tmp_path)
        assert len(warnings) == 1
        assert "w/wall" in warnings[0] and "advisory" in warnings[0]

    def test_wallclock_within_tolerance_stays_silent(self, tmp_path):
        self._write(tmp_path, 1, self._wallclock("w", 0.5))
        self._write(tmp_path, 2, self._wallclock("w", 0.6))  # +20% < 50%
        assert check_wallclocks(tmp_path) == []

    def test_wallclock_improvement_stays_silent(self, tmp_path):
        self._write(tmp_path, 1, self._wallclock("w", 1.0))
        self._write(tmp_path, 2, self._wallclock("w", 0.3))
        assert check_wallclocks(tmp_path) == []


class TestRepoGate:
    def test_bench_trajectory_has_no_regression(self):
        files = bench_files(ROOT)
        if len(files) < 2:
            pytest.skip("fewer than two BENCH_*.json reports to diff")
        problems = check(ROOT)
        assert problems == [], "\n".join(problems)

    def test_newest_report_records_overlap_win(self):
        """PR-5 acceptance: the DDP ViT overlap scenario shows >= 15% lower
        simulated step time at identical wire bytes, with per-rank
        exposed/overlapped comm recorded."""
        import json

        files = bench_files(ROOT)
        if not files:
            pytest.skip("no BENCH_*.json reports")
        report = json.loads(files[-1].read_text())
        ovl = report.get("overlap_fig13b")
        if ovl is None:
            pytest.skip("newest report predates the overlap scenario")
        assert ovl["step_time_reduction"] >= 0.15
        assert ovl["wire_bytes_identical"]
        for mode in ("overlap_off", "overlap_on"):
            per_rank = ovl[mode]["per_rank"]
            assert per_rank and all(
                "exposed_comm" in r and "overlapped_comm" in r for r in per_rank
            )
        on = ovl["overlap_on"]
        assert on["overlapped_comm_seconds_total"] > 0.0

    def test_newest_report_records_hybrid_projection(self):
        """PR-7 acceptance: the newest report projects a 16-rank
        DP x TP x PP capture onto a paper-grid 512-rank hybrid with a
        per-axis traffic breakdown and ZeRO-sharded peak memory."""
        import json

        files = bench_files(ROOT)
        if not files:
            pytest.skip("no BENCH_*.json reports")
        report = json.loads(files[-1].read_text())
        hybrid = report.get("hybrid_projection")
        if hybrid is None:
            pytest.skip("newest report predates hybrid projection")
        by_world = {p["target_world"]: p for p in hybrid}
        assert 512 in by_world
        p512 = by_world[512]
        assert p512["captured_world"] == 16
        assert p512["axis_factors"] == {"dp": 8, "tp": 2, "pp": 2}
        axes = {a["name"]: a for a in p512["axes"]}
        assert set(axes) == {"dp", "tp", "pp"}
        for a in axes.values():
            assert a["projected_degree"] == \
                a["captured_degree"] * a["factor"]
            assert a["wire_elements"] > 0
        assert axes["pp"]["chain"]
        # the dp axis shards ZeRO-1 optimizer state: projected peak
        # memory must drop below weaker-sharded projections of the
        # same capture
        assert p512["zero1_dp_sharded_bytes"] > 0
        pure_dp = next(
            p for p in hybrid if set(p["axis_factors"]) == {"dp"}
        )
        assert p512["peak_memory_bytes"] < pure_dp["peak_memory_bytes"]
        assert p512["wall_clock_per_simulated_second"] > 0

    def test_newest_report_records_wallclock_fastpath(self):
        """PR-8 acceptance: the threaded DDP ViT Fig-13b scenario runs at
        >= 2x lower host wall-clock than the frozen pre-fast-path baseline
        with every simulated metric bitwise unchanged.  Sim-metric parity
        is hard and checked on the *newest* report; the 2x speedup is a
        demonstration recorded on a calm multi-core host and only needs to
        exist somewhere in the trajectory — reports regenerated on weaker
        hosts (e.g. a single-core CI box, where the frozen baseline's
        numbers are unreachable) record their honest, lower reading, and
        wall-clock stays advisory exactly as check_wallclocks treats it."""
        import json

        files = bench_files(ROOT)
        if not files:
            pytest.skip("no BENCH_*.json reports")
        report = json.loads(files[-1].read_text())
        wc = report.get("wallclock_threaded")
        if wc is None:
            pytest.skip("newest report predates the wall-clock fast path")
        scenarios = wc["scenarios"]
        assert set(scenarios) >= {"ddp_vit", "zero", "pipeline"}
        for name, s in scenarios.items():
            # the hard invariant: the fast path moved no simulated number
            assert s["sim_metrics_identical"], name
            for k in ("sim_step_seconds", "wire_bytes", "collective_calls"):
                assert s["after"][k] == s["before"][k], (name, k)
            # and every measured run is still faster than the baseline
            assert s["wall_speedup"] > 1.0, name
        best = max(
            r["wallclock_threaded"]["scenarios"]["ddp_vit"]["wall_speedup"]
            for r in (json.loads(p.read_text()) for p in files)
            if "wallclock_threaded" in r
        )
        assert best >= 2.0

    def test_newest_report_records_serving_under_traffic(self):
        """PR-10 acceptance: the serving section shows goodput saturating
        with offered load, p99 TTFT rising past the knee, and every
        rank-loss scenario pricing a measurable SLO hit — the same
        invariants check_serving gates, plus the recorded knee shape."""
        import json

        files = bench_files(ROOT)
        if not files:
            pytest.skip("no BENCH_*.json reports")
        report = json.loads(files[-1].read_text())
        sv = report.get("serving")
        if sv is None:
            pytest.skip("newest report predates the serving engine")
        assert check_serving(report) == []
        sweep = sorted(sv["load_sweep"],
                       key=lambda s: s["offered_req_per_sec"])
        assert len(sweep) >= 3
        # goodput grows with load below the knee, then saturates
        assert sweep[1]["goodput_tokens_per_sec"] > \
            sweep[0]["goodput_tokens_per_sec"]
        assert sweep[-1]["p99_ttft"] > sweep[0]["p99_ttft"]
        faulted = [e for e in sv["mtbf_sweep"] if e.get("failures")]
        assert faulted, "MTBF sweep recorded no rank-loss scenario"
        for e in faulted:
            assert e["restarts"] >= 1
            assert e["failure_events"]
            assert 0.0 < e["goodput_retained"] < 1.0
            assert e["p99_ttft"] > e["baseline_p99_ttft"]
        # the capacity probe anchors the sweep: offered rates are
        # expressed as multiples of its completed-req/s
        probe = sv["capacity_probe"]
        assert probe["completed_req_per_sec"] > 0
        for s in sweep:
            assert s["offered_req_per_sec"] == pytest.approx(
                probe["completed_req_per_sec"] * s["capacity_multiple"])

    def test_repo_wallclock_drift_is_advisory(self):
        """The advisory pass must run clean over the real trajectory; if it
        ever reports drift, surface it as a pytest warning, never a
        failure."""
        import warnings as _warnings

        if len(bench_files(ROOT)) < 2:
            pytest.skip("fewer than two BENCH_*.json reports to diff")
        for line in check_wallclocks(ROOT):
            _warnings.warn(f"bench gate (advisory): {line}")
