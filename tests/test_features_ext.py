"""Extended features: vocab-parallel CE, causal ring attention,
isend/irecv, gradient accumulation."""

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.comm import Communicator, SpecArray
from repro.config import Config
from repro.context import ParallelContext, ParallelMode
from repro.nn import CrossEntropyLoss, Linear, TransformerLayer
from repro.parallel.sequence import RingSelfAttention, shard_sequence
from repro.parallel.vocab_ce import vocab_parallel_cross_entropy
from repro.tensor import Tensor
from repro.tensor.sharding import shard_payload

from conftest import run_spmd
from parity_helpers import ATOL, block


class TestVocabParallelCE:
    def _setup(self, n=6, v=16, seed=0):
        rng = np.random.default_rng(seed)
        logits = rng.standard_normal((n, v)).astype(np.float32)
        targets = rng.integers(0, v, n)
        return logits, targets

    def test_loss_matches_serial(self):
        logits_g, targets = self._setup()
        ref = CrossEntropyLoss()(Tensor(logits_g.copy()), targets).item()

        def prog(ctx):
            comm = Communicator.world(ctx)
            local = Tensor(block(logits_g, 1, 4, ctx.rank), requires_grad=True)
            loss = vocab_parallel_cross_entropy(local, targets, comm)
            return loss.item()

        for loss in run_spmd(4, prog):
            assert loss == pytest.approx(ref, rel=1e-5)

    def test_grads_match_serial_shards(self):
        logits_g, targets = self._setup(seed=1)
        serial = Tensor(logits_g.copy(), requires_grad=True)
        CrossEntropyLoss()(serial, targets).backward()
        ref_grad = serial.grad.numpy()

        def prog(ctx):
            comm = Communicator.world(ctx)
            local = Tensor(block(logits_g, 1, 4, ctx.rank), requires_grad=True)
            vocab_parallel_cross_entropy(local, targets, comm).backward()
            return ctx.rank, local.grad.numpy()

        for r, g in run_spmd(4, prog):
            np.testing.assert_allclose(g, block(ref_grad, 1, 4, r), atol=1e-5)

    def test_3d_logits(self):
        rng = np.random.default_rng(2)
        logits_g = rng.standard_normal((2, 3, 8)).astype(np.float32)
        targets = rng.integers(0, 8, (2, 3))
        ref = CrossEntropyLoss()(Tensor(logits_g.copy()), targets).item()

        def prog(ctx):
            comm = Communicator.world(ctx)
            local = Tensor(block(logits_g, 2, 2, ctx.rank), requires_grad=True)
            return vocab_parallel_cross_entropy(local, targets, comm).item()

        for loss in run_spmd(2, prog):
            assert loss == pytest.approx(ref, rel=1e-5)

    def test_no_logit_gather_traffic(self):
        """The point of the op: wire bytes are O(N), not O(N*V)."""
        from repro.runtime import SpmdRuntime

        rt = SpmdRuntime(uniform_cluster(4))
        n, v = 64, 4096
        logits_g = np.zeros((n, v), dtype=np.float32)
        targets = np.zeros(n, dtype=np.int64)

        def prog(ctx):
            comm = Communicator.world(ctx)
            local = Tensor(block(logits_g, 1, 4, ctx.rank), requires_grad=True)
            vocab_parallel_cross_entropy(local, targets, comm).backward()

        rt.run(prog)
        wire = rt.group((0, 1, 2, 3)).counters.bytes_total
        gather_cost = 4 * n * v * 4  # what an all_gather of logits would move
        assert wire < gather_cost / 10

    def test_spec_mode(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            local = Tensor(SpecArray((8, 4)), requires_grad=True)
            loss = vocab_parallel_cross_entropy(local, SpecArray((8,), "int64"), comm)
            loss.backward()
            return loss.shape, local.grad.shape

        assert run_spmd(4, prog, materialize=False)[0] == ((), (8, 4))


class TestCausalRingAttention:
    def test_matches_serial_causal_mha(self):
        from repro.nn import MultiHeadAttention

        H, NH, B, S = 16, 4, 2, 8
        rng = np.random.default_rng(0)
        x_g = rng.standard_normal((B, S, H)).astype(np.float32)

        serial = MultiHeadAttention(H, NH, causal=True, rng=np.random.default_rng(3))
        xs = Tensor(x_g.copy(), requires_grad=True)
        ys = serial(xs)
        ys.sum().backward()

        def prog(ctx):
            comm = Communicator.world(ctx)
            attn = RingSelfAttention(H, NH, comm, causal=True, rng=np.random.default_rng(3))
            x = Tensor(shard_sequence(x_g.copy(), comm), requires_grad=True)
            y = attn(x)
            y.sum().backward()
            return comm.rank, y.numpy(), x.grad.numpy()

        for r, out, xg in run_spmd(4, prog):
            np.testing.assert_allclose(out, block(ys.numpy(), 1, 4, r), atol=ATOL)
            np.testing.assert_allclose(xg, block(xs.grad.numpy(), 1, 4, r), atol=ATOL)

    def test_no_future_leakage(self):
        """Perturbing future tokens must not change earlier outputs."""
        H, NH, B, S = 8, 2, 1, 8
        rng = np.random.default_rng(1)
        x_g = rng.standard_normal((B, S, H)).astype(np.float32)
        x_pert = x_g.copy()
        x_pert[0, -1] += 5.0

        def run_with(x_input):
            def prog(ctx):
                comm = Communicator.world(ctx)
                attn = RingSelfAttention(H, NH, comm, causal=True,
                                         rng=np.random.default_rng(3))
                x = Tensor(shard_sequence(x_input.copy(), comm))
                return attn(x).numpy()

            return np.concatenate(run_spmd(2, prog), axis=1)

        base = run_with(x_g)
        pert = run_with(x_pert)
        np.testing.assert_allclose(pert[0, :-1], base[0, :-1], atol=1e-5)
        assert not np.allclose(pert[0, -1], base[0, -1])


class TestNonBlockingP2P:
    def test_isend_irecv_roundtrip(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                req = comm.isend(np.array([1.5, 2.5]), dst=1, tag="nb")
                req.wait()
                return None
            req = comm.irecv(src=0, tag="nb")
            out = req.wait()
            return out.tolist()

        assert run_spmd(2, prog)[1] == [1.5, 2.5]

    def test_irecv_test_polls(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                req = comm.irecv(src=1, tag="t")
                before = req.test()
                comm.barrier()  # rank 1 sends before the barrier
                after = req.test()
                req.wait()
                return before, after
            comm.isend(np.array([1.0]), dst=0, tag="t").wait()
            comm.barrier()
            return None

        before, after = run_spmd(2, prog)[0]
        assert not before and after

    def test_isend_charges_time_on_wait(self):
        def prog(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                t0 = ctx.clock.time
                req = comm.isend(np.zeros(1 << 20, dtype=np.float32), dst=1)
                mid = ctx.clock.time
                req.wait()
                return mid - t0, ctx.clock.time - t0
            comm.recv(src=0)
            return None

        immediate, after_wait = run_spmd(2, prog)[0]
        assert immediate == 0.0
        assert after_wait > 0


class TestGradientAccumulation:
    def test_accumulated_equals_big_batch(self):
        import repro
        from repro.optim import SGD

        rng = np.random.default_rng(0)
        X = rng.standard_normal((8, 4)).astype(np.float32)
        Y = rng.integers(0, 2, 8)
        crit = CrossEntropyLoss()

        def big(ctx, pc):
            model = Linear(4, 2, rng=np.random.default_rng(1))
            eng = repro.initialize(model, SGD(model.parameters(), lr=0.1), crit, pc=pc)
            eng.zero_grad()
            eng.backward(crit(eng(Tensor(X.copy())), Y))
            eng.step()
            return model.weight.numpy().copy()

        def accum(ctx, pc):
            model = Linear(4, 2, rng=np.random.default_rng(1))
            eng = repro.initialize(model, SGD(model.parameters(), lr=0.1), crit, pc=pc)
            eng.gradient_accumulation = 2
            eng.zero_grad()
            stepped = []
            for i in range(2):
                out = eng(Tensor(X[i * 4 : (i + 1) * 4].copy()))
                eng.backward(crit(out, Y[i * 4 : (i + 1) * 4]))
                stepped.append(eng.step())
            return model.weight.numpy().copy(), stepped

        w_big = repro.launch({}, uniform_cluster(1), big)[0]
        w_acc, stepped = repro.launch({}, uniform_cluster(1), accum)[0]
        assert stepped == [False, True]
        np.testing.assert_allclose(w_acc, w_big, atol=1e-6)
