"""Tests for nn modules: registration, layers, transformer, losses."""

import numpy as np
import pytest

from repro.autograd import gradcheck, ops
from repro.comm.payload import SpecArray
from repro.nn import (
    CrossEntropyLoss,
    Dropout,
    Embedding,
    FeedForward,
    Identity,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MSELoss,
    MultiHeadAttention,
    Parameter,
    PatchEmbedding,
    TransformerLayer,
)
from repro.nn import init as init_mod
from repro.tensor import Tensor


class TestModule:
    def test_parameter_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros((2, 2)))
                self.child = Linear(2, 2)

        m = M()
        names = dict(m.named_parameters())
        assert "w" in names
        assert "child.weight" in names and "child.bias" in names

    def test_num_parameters(self):
        lin = Linear(3, 4)
        assert lin.num_parameters() == 3 * 4 + 4

    def test_no_bias(self):
        lin = Linear(3, 4, bias=False)
        assert lin.bias is None
        assert lin.num_parameters() == 12

    def test_train_eval_propagates(self):
        m = ModuleList([Dropout(0.5), Dropout(0.5)])
        m.eval()
        assert not m[0].training and not m[1].training
        m.train()
        assert m[0].training

    def test_state_dict_roundtrip(self):
        rng = np.random.default_rng(0)
        a = Linear(3, 4, rng=rng)
        b = Linear(3, 4, rng=np.random.default_rng(9))
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.numpy(), b.weight.numpy())

    def test_state_dict_mismatch(self):
        a = Linear(3, 4)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((3, 4))})

    def test_zero_grad(self):
        lin = Linear(2, 2)
        x = Tensor(np.ones((1, 2)))
        lin(x).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_module_list_iteration(self):
        ml = ModuleList([Identity(), Identity()])
        assert len(ml) == 2
        assert list(ml)[0] is ml[0]

    def test_setattr_before_init_raises(self):
        class Bad(Module):
            def __init__(self):
                self.w = Parameter(np.zeros(2))  # missing super().__init__()

        with pytest.raises(RuntimeError):
            Bad()


class TestInitializers:
    def test_lecun_std(self):
        rng = np.random.default_rng(0)
        w = init_mod.lecun_normal()((1000, 10), rng)
        assert float(np.std(w)) == pytest.approx((1 / 1000) ** 0.5, rel=0.1)

    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init_mod.xavier_uniform()((100, 100), rng)
        bound = (6 / 200) ** 0.5
        assert np.abs(w).max() <= bound

    def test_param_payload_spec_mode(self):
        from repro.cluster import uniform_cluster
        from repro.runtime import SpmdRuntime

        def prog(ctx):
            p = init_mod.param_payload((3, 3), init_mod.zeros_init, None)
            return isinstance(p, SpecArray)

        assert SpmdRuntime(uniform_cluster(1)).run(prog, materialize=False) == [True]


class TestLayers:
    def test_linear_forward(self):
        lin = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((5, 3)).astype(np.float32)
        out = lin(Tensor(x))
        expect = x @ lin.weight.numpy() + lin.bias.numpy()
        np.testing.assert_allclose(out.numpy(), expect, rtol=1e-5)

    def test_layernorm_normalizes(self):
        ln = LayerNorm(16)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 16)) * 5 + 3)
        out = ln(x).numpy()
        np.testing.assert_allclose(out.mean(-1), 0, atol=1e-5)
        np.testing.assert_allclose(out.std(-1), 1, atol=1e-2)

    def test_embedding_shape(self):
        emb = Embedding(10, 4)
        out = emb(np.array([[1, 2, 3]]))
        assert out.shape == (1, 3, 4)

    def test_patch_embedding_shapes(self):
        pe = PatchEmbedding(image_size=8, patch_size=2, in_channels=3, hidden_size=16)
        out = pe(Tensor(np.zeros((2, 8, 8, 3), dtype=np.float32)))
        assert out.shape == (2, 16, 16)

    def test_patch_embedding_rejects_bad_patch(self):
        with pytest.raises(ValueError):
            PatchEmbedding(image_size=7, patch_size=2, in_channels=3, hidden_size=8)

    def test_patchify_preserves_pixels(self):
        """Patch (0,0) of the patchified tensor must equal the image's
        top-left block."""
        from repro.models.vit import _patchify

        img = np.random.default_rng(0).standard_normal((1, 4, 4, 2)).astype(np.float32)
        patches = _patchify(Tensor(img), 2).numpy()
        np.testing.assert_allclose(patches[0, 0], img[0, :2, :2, :].reshape(-1))

    def test_dropout_probability_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestAttention:
    def test_output_shape(self):
        mha = MultiHeadAttention(16, 4, rng=np.random.default_rng(0))
        out = mha(Tensor(np.zeros((2, 5, 16), dtype=np.float32)))
        assert out.shape == (2, 5, 16)

    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_causal_masking(self):
        """With a causal mask, output at position t must not depend on
        inputs at positions > t."""
        rng = np.random.default_rng(0)
        mha = MultiHeadAttention(8, 2, causal=True, rng=np.random.default_rng(1))
        x = rng.standard_normal((1, 4, 8)).astype(np.float32)
        base = mha(Tensor(x)).numpy()
        x2 = x.copy()
        x2[0, 3] += 10.0  # perturb the last position
        out2 = mha(Tensor(x2)).numpy()
        np.testing.assert_allclose(out2[0, :3], base[0, :3], atol=1e-5)
        assert not np.allclose(out2[0, 3], base[0, 3])

    def test_non_causal_fully_connected(self):
        rng = np.random.default_rng(0)
        mha = MultiHeadAttention(8, 2, causal=False, rng=np.random.default_rng(1))
        x = rng.standard_normal((1, 4, 8)).astype(np.float32)
        base = mha(Tensor(x)).numpy()
        x2 = x.copy()
        x2[0, 3] += 10.0
        out2 = mha(Tensor(x2)).numpy()
        assert not np.allclose(out2[0, 0], base[0, 0])

    def test_gradcheck_end_to_end(self):
        layer = TransformerLayer(4, 2, mlp_ratio=1, dtype="float64", rng=np.random.default_rng(3))
        x = Tensor(
            np.random.default_rng(4).standard_normal((1, 3, 4)),
            dtype="float64",
            requires_grad=True,
        )
        gradcheck(lambda x: layer(x), [x], rtol=2e-3, atol=1e-5)


class TestTransformer:
    def test_feedforward_expansion(self):
        ff = FeedForward(8, mlp_ratio=4)
        assert ff.dense_1.weight.shape == (8, 32)
        assert ff.dense_2.weight.shape == (32, 8)

    def test_layer_preserves_shape(self):
        layer = TransformerLayer(16, 4)
        out = layer(Tensor(np.zeros((2, 3, 16), dtype=np.float32)))
        assert out.shape == (2, 3, 16)

    def test_spec_mode_layer(self):
        layer = TransformerLayer(16, 4, rng=np.random.default_rng(0))
        # a spec input through a materialized layer still infers shapes
        out = layer(Tensor(SpecArray((2, 3, 16), "float32")))
        assert out.shape == (2, 3, 16)


class TestLosses:
    def test_ce_matches_manual(self):
        logits = np.random.default_rng(0).standard_normal((4, 5)).astype(np.float32)
        targets = np.array([1, 0, 3, 2])
        loss = CrossEntropyLoss()(Tensor(logits), targets).item()
        p = np.exp(logits - logits.max(-1, keepdims=True))
        p /= p.sum(-1, keepdims=True)
        expect = -np.mean(np.log(p[np.arange(4), targets]))
        assert loss == pytest.approx(expect, rel=1e-5)

    def test_ce_3d_logits(self):
        logits = Tensor(np.zeros((2, 3, 5), dtype=np.float32))
        targets = np.zeros((2, 3), dtype=np.int64)
        loss = CrossEntropyLoss()(logits, targets)
        assert loss.item() == pytest.approx(np.log(5), rel=1e-5)

    def test_mse(self):
        loss = MSELoss()(Tensor(np.array([1.0, 2.0])), Tensor(np.array([0.0, 0.0])))
        assert loss.item() == pytest.approx(2.5)
