"""Data parallelism: gradient averaging equals full-batch training."""

import numpy as np
import pytest

from repro.comm import SpecArray
from repro.config import Config
from repro.context import ParallelContext, ParallelMode
from repro.nn import CrossEntropyLoss, Linear
from repro.parallel.data import DistributedDataParallel, shard_batch, sync_gradients
from repro.tensor import Tensor

from conftest import run_spmd


def _pc(ctx):
    return ParallelContext(ctx, Config.from_dict({}))


class TestSyncGradients:
    def test_ddp_grads_equal_full_batch(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((8, 6)).astype(np.float32)
        Y = rng.integers(0, 3, 8)
        crit = CrossEntropyLoss()

        # serial full batch
        model_s = Linear(6, 3, rng=np.random.default_rng(1))
        crit(model_s(Tensor(X.copy())), Y).backward()
        ref = model_s.weight.grad.numpy().copy()

        def prog(ctx):
            pc = _pc(ctx)
            model = Linear(6, 3, rng=np.random.default_rng(1))
            ddp = DistributedDataParallel(model, pc)
            xl, yl = shard_batch(X, pc), shard_batch(Y, pc)
            crit(ddp(Tensor(xl.copy())), yl).backward()
            ddp.sync()
            return model.weight.grad.numpy()

        for g in run_spmd(4, prog):
            np.testing.assert_allclose(g, ref, atol=1e-5)

    def test_bucketing_many_small_params(self):
        """Many tiny params must fuse into few allreduce calls."""
        from repro.cluster import uniform_cluster
        from repro.runtime import SpmdRuntime

        rt = SpmdRuntime(uniform_cluster(2))

        def prog(ctx):
            pc = _pc(ctx)
            params = []
            from repro.nn.module import Parameter

            for i in range(20):
                p = Parameter(np.ones(10, dtype=np.float32))
                p.grad = Tensor(np.full(10, float(ctx.rank), dtype=np.float32))
                params.append(p)
            sync_gradients(params, pc.comm(ParallelMode.DATA), bucket_mb=1.0)
            return [p.grad.numpy()[0] for p in params]

        res = rt.run(prog)
        assert all(v == pytest.approx(0.5) for v in res[0])
        # all 20 params fit one 1 MiB bucket -> exactly 1 allreduce
        world = rt.group((0, 1))
        assert world.counters.by_op_calls["all_reduce"] == 1

    def test_small_buckets_split(self):
        from repro.cluster import uniform_cluster
        from repro.runtime import SpmdRuntime

        rt = SpmdRuntime(uniform_cluster(2))

        def prog(ctx):
            pc = _pc(ctx)
            from repro.nn.module import Parameter

            params = []
            for i in range(4):
                p = Parameter(np.ones(1000, dtype=np.float32))
                p.grad = Tensor(np.ones(1000, dtype=np.float32))
                params.append(p)
            sync_gradients(params, pc.comm(ParallelMode.DATA), bucket_mb=0.003)
            return True

        rt.run(prog)
        assert rt.group((0, 1)).counters.by_op_calls["all_reduce"] >= 2

    def test_skips_paramless_grads(self):
        def prog(ctx):
            pc = _pc(ctx)
            from repro.nn.module import Parameter

            p = Parameter(np.ones(4, dtype=np.float32))  # no grad
            sync_gradients([p], pc.comm(ParallelMode.DATA))
            return p.grad is None

        assert all(run_spmd(2, prog))

    def test_single_rank_noop(self):
        def prog(ctx):
            pc = _pc(ctx)
            from repro.nn.module import Parameter

            p = Parameter(np.ones(4, dtype=np.float32))
            p.grad = Tensor(np.full(4, 2.0, dtype=np.float32))
            sync_gradients([p], pc.comm(ParallelMode.TENSOR))  # size-1 group
            return p.grad.numpy()[0]

        assert run_spmd(2, prog) == [2.0, 2.0]

    def test_spec_mode_charges_comm(self):
        def prog(ctx):
            pc = _pc(ctx)
            from repro.nn.module import Parameter

            p = Parameter(SpecArray((1000,), "float32"))
            p.grad = Tensor(SpecArray((1000,), "float32"))
            sync_gradients([p], pc.comm(ParallelMode.DATA))
            return ctx.clock.time

        assert all(t > 0 for t in run_spmd(2, prog, materialize=False))


class TestShardBatch:
    def test_even_split(self):
        def prog(ctx):
            pc = _pc(ctx)
            return shard_batch(np.arange(8), pc).tolist()

        res = run_spmd(4, prog)
        assert res[0] == [0, 1] and res[3] == [6, 7]

    def test_indivisible_rejected(self):
        def prog(ctx):
            pc = _pc(ctx)
            shard_batch(np.arange(7), pc)

        from repro.runtime import RemoteRankError

        with pytest.raises(RemoteRankError):
            run_spmd(4, prog)
