"""The ``serving`` lane: invariants of the inference-serving engine.

Core is hypothesis property testing over the paged KV cache and the
continuous-batching scheduler — both are single-threaded and clockless,
so random admission/preemption schedules run thousands of steps without
touching the SPMD substrate:

- no KV block is ever double-owned or leaked, across any schedule;
- a batch never exceeds the configured token budget;
- preempted requests complete with output bitwise identical to an
  uninterrupted run;
- scheduling (and thus the whole traffic report) is bitwise
  deterministic per seed.

Engine-level tests then run the real tensor-parallel decode loop on the
simulated runtime (priced collectives, traced spans, launch wiring), and
the chaos section kills a TP rank mid-request to check typed failure,
requeue and the p99/goodput SLO hit in the report.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.cluster import uniform_cluster
from repro.cluster.device import DeviceOutOfMemoryError, MemoryPool
from repro.faults import FaultPlan
from repro.serve import (
    BlockPool,
    CacheExhausted,
    ClosedLoopTraffic,
    ContinuousBatchingScheduler,
    ModelSpec,
    OpenLoopTraffic,
    Request,
    RequestTooLarge,
    TrafficReport,
    serve_traffic,
)
from repro.trace import Tracer

pytestmark = pytest.mark.serving

fast = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(autouse=True)
def no_leaked_rank_threads():
    """Every test must leave zero live spmd-rank-* threads behind."""
    yield
    for t in threading.enumerate():
        if t.name.startswith("spmd-rank-"):
            t.join(timeout=10.0)
    leaked = [t.name for t in threading.enumerate()
              if t.name.startswith("spmd-rank-") and t.is_alive()]
    assert not leaked, f"leaked rank threads: {leaked}"


SMALL_MODEL = ModelSpec(n_layers=2, hidden=256, n_heads=4, vocab=997)


def _open(rate=2000.0, n=24, seed=7, prompt=(8, 24), new=(4, 12)):
    return OpenLoopTraffic(rate=rate, n_requests=n, prompt_tokens=prompt,
                           max_new_tokens=new, seed=seed)


# ---------------------------------------------------------------------------
# BlockPool: the paged KV-cache allocator
# ---------------------------------------------------------------------------


class TestBlockPool:
    def test_partition_invariant_basics(self):
        pool = BlockPool(block_size=4, num_blocks=8)
        assert pool.appended(1, 9) == 3  # ceil(9/4)
        assert pool.appended(1, 10) == 0  # same block covers it
        assert pool.appended(1, 13) == 1
        assert pool.table(1) == (0, 1, 2, 3)
        pool.check_consistent()
        assert pool.free_blocks == 4
        assert pool.free_sequence(1) == 4
        assert pool.free_blocks == 8
        pool.check_consistent()

    def test_exhaustion_is_all_or_nothing(self):
        pool = BlockPool(block_size=2, num_blocks=4)
        pool.appended(1, 6)  # 3 blocks
        with pytest.raises(CacheExhausted):
            pool.appended(2, 6)  # needs 3, only 1 free
        assert pool.table(2) == ()  # nothing allocated on failure
        assert pool.free_blocks == 1
        pool.check_consistent()

    def test_request_too_large_is_typed(self):
        pool = BlockPool(block_size=2, num_blocks=4)
        with pytest.raises(RequestTooLarge):
            pool.appended(9, 100)
        pool.check_consistent()

    def test_memory_backed_arena_charge_and_release(self):
        mem = MemoryPool(capacity=1024)
        pool = BlockPool(block_size=4, num_blocks=8, memory=mem,
                         bytes_per_block=64)
        assert mem.allocated == 512
        pool.release()
        assert mem.allocated == 0
        pool.release()  # idempotent
        assert mem.allocated == 0

    def test_memory_backed_arena_oom_at_init(self):
        mem = MemoryPool(capacity=100)
        with pytest.raises(DeviceOutOfMemoryError):
            BlockPool(block_size=4, num_blocks=8, memory=mem,
                      bytes_per_block=64)

    @given(
        block_size=st.integers(1, 6),
        num_blocks=st.integers(2, 16),
        ops=st.lists(
            st.tuples(st.integers(0, 5),        # sequence id
                      st.integers(0, 40),       # target total tokens
                      st.booleans()),           # free instead of grow
            min_size=1, max_size=60),
    )
    @fast
    def test_no_block_double_owned_or_leaked(self, block_size, num_blocks,
                                             ops):
        """Free list + tables partition the pool across any op schedule."""
        pool = BlockPool(block_size=block_size, num_blocks=num_blocks)
        grown = {}
        for seq, tokens, do_free in ops:
            if do_free:
                freed = pool.free_sequence(seq)
                assert freed == len(pool.table(seq)) or freed >= 0
                grown.pop(seq, None)
            else:
                tokens = max(tokens, grown.get(seq, 0))
                try:
                    pool.appended(seq, tokens)
                    grown[seq] = max(grown.get(seq, 0), tokens)
                except (CacheExhausted, RequestTooLarge):
                    pass  # all-or-nothing; table must be unchanged
            pool.check_consistent()
            assert pool.free_blocks + pool.used_blocks == num_blocks
            for s in pool.sequences():
                assert len(pool.table(s)) == pool.blocks_for(
                    max(grown.get(s, 0), 1)) or s in grown
        for seq in list(pool.sequences()):
            pool.free_sequence(seq)
        pool.check_consistent()
        assert pool.free_blocks == num_blocks


# ---------------------------------------------------------------------------
# Continuous-batching scheduler: property tests over random schedules
# ---------------------------------------------------------------------------

request_sets = st.lists(
    st.tuples(st.integers(1, 24),                        # prompt tokens
              st.integers(1, 8),                         # max new tokens
              st.floats(0, 40, allow_nan=False)),        # arrival
    min_size=1, max_size=12,
)


def _drive(requests, *, num_blocks, block_size, budget, chunk, seed=1):
    """Run a request set to completion single-threaded; returns the
    scheduler plus (finished, failed) request lists, checking the pool
    partition invariant and the token budget at every step."""
    pool = BlockPool(block_size=block_size, num_blocks=num_blocks)
    sched = ContinuousBatchingScheduler(
        pool, budget, prefill_chunk=chunk, gen_seed=seed, vocab=997)
    for spec in requests:
        sched.submit(spec)
    now, steps = 0.0, 0
    finished, failed = [], []
    while not sched.drained:
        plan = sched.step(now)
        assert plan.new_tokens <= budget, "token budget exceeded"
        pool.check_consistent()
        if plan.empty and not plan.preempted:
            nxt = sched.next_arrival()
            assert nxt is not None, "scheduler stuck with empty plan"
            now = max(now, nxt)
            continue
        now += 1.0
        fins, _ = sched.apply(plan, now)
        finished.extend(fins)
        failed.extend(plan.failed)
        steps += 1
        assert steps < 20_000, "scheduler failed to make progress"
    assert pool.used_blocks == 0, "KV blocks leaked after drain"
    pool.check_consistent()
    return sched, finished, failed


@st.composite
def schedule_cases(draw):
    reqs = draw(request_sets)
    return {
        "reqs": reqs,
        "num_blocks": draw(st.integers(2, 12)),
        "block_size": draw(st.integers(1, 6)),
        "budget": draw(st.integers(1, 48)),
        "chunk": draw(st.integers(1, 16)),
    }


class TestSchedulerProperties:
    @given(case=schedule_cases())
    @fast
    def test_budget_partition_and_drain(self, case):
        """Any admission/preemption schedule drains with no leak and no
        budget overrun; every request terminates exactly once."""
        reqs = [Request(i, p, n, a)
                for i, (p, n, a) in enumerate(case["reqs"])]
        _, finished, failed = _drive(
            reqs, num_blocks=case["num_blocks"],
            block_size=case["block_size"], budget=case["budget"],
            chunk=case["chunk"])
        assert len(finished) + len(failed) == len(reqs)
        assert {r.req_id for r in finished} | {r.req_id for r in failed} \
            == set(range(len(reqs)))
        for r in failed:
            assert r.fail_reason == "RequestTooLarge"
        for r in finished:
            assert len(r.output) == r.max_new_tokens

    @given(case=schedule_cases())
    @fast
    def test_preempted_output_identical_to_uninterrupted(self, case):
        """A tiny cache (heavy preemption) must produce bitwise the same
        outputs as a cache that never evicts."""
        make = lambda: [Request(i, p, n, a)
                        for i, (p, n, a) in enumerate(case["reqs"])]
        _, fin_small, fail_small = _drive(
            make(), num_blocks=case["num_blocks"],
            block_size=case["block_size"], budget=case["budget"],
            chunk=case["chunk"])
        # big enough that nothing is ever evicted
        big = sum(-(-(p + n) // case["block_size"])
                  for p, n, _ in case["reqs"]) + 1
        _, fin_big, _ = _drive(
            make(), num_blocks=big, block_size=case["block_size"],
            budget=case["budget"], chunk=case["chunk"])
        small_out = {r.req_id: r.output for r in fin_small}
        big_out = {r.req_id: r.output
                   for r in fin_big if r.req_id in small_out}
        assert small_out == big_out

    @given(case=schedule_cases(), seed=st.integers(0, 2**31))
    @fast
    def test_bitwise_deterministic_per_seed(self, case, seed):
        def run():
            reqs = [Request(i, p, n, a)
                    for i, (p, n, a) in enumerate(case["reqs"])]
            _, fin, fail = _drive(
                reqs, num_blocks=case["num_blocks"],
                block_size=case["block_size"], budget=case["budget"],
                chunk=case["chunk"], seed=seed)
            return [(r.req_id, r.t_finished, tuple(r.output), r.preemptions)
                    for r in fin]
        assert run() == run()


# ---------------------------------------------------------------------------
# Engine-level: priced TP decode on the simulated runtime
# ---------------------------------------------------------------------------


class TestServeEngine:
    def test_open_loop_completes_and_reports(self):
        rep = serve_traffic(SMALL_MODEL, _open(), world_size=2)
        assert isinstance(rep, TrafficReport)
        assert rep.n_completed == 24 and rep.n_failed == 0
        assert rep.goodput_tokens_per_sec > 0
        assert rep.p50_ttft is not None and rep.p99_ttft >= rep.p50_ttft
        assert rep.p99_e2e >= rep.p50_e2e
        assert rep.makespan > 0
        assert "goodput" in rep.format()

    def test_same_seed_bitwise_identical_report(self):
        a = serve_traffic(SMALL_MODEL, _open(seed=11), world_size=2)
        b = serve_traffic(SMALL_MODEL, _open(seed=11), world_size=2)
        assert a.to_dict() == b.to_dict()

    def test_different_seed_different_schedule(self):
        a = serve_traffic(SMALL_MODEL, _open(seed=11), world_size=2)
        b = serve_traffic(SMALL_MODEL, _open(seed=12), world_size=2)
        assert a.to_dict() != b.to_dict()

    def test_preemption_preserves_outputs_end_to_end(self):
        roomy = serve_traffic(SMALL_MODEL, _open(), world_size=2)
        tight = serve_traffic(SMALL_MODEL, _open(), world_size=2,
                              kv_blocks=16, block_size=4)
        assert tight.preemptions > 0, "cache was not tight enough"
        assert ({r.req_id: r.output for r in roomy.records.values()}
                == {r.req_id: r.output for r in tight.records.values()})
        # preemption replays work, so latency must be priced in
        assert tight.p99_e2e > roomy.p99_e2e

    def test_closed_loop_self_throttles(self):
        rep = serve_traffic(
            SMALL_MODEL,
            ClosedLoopTraffic(clients=4, n_requests=20, seed=3,
                              prompt_tokens=(8, 24), max_new_tokens=(4, 12)),
            world_size=2)
        assert rep.n_completed == 20
        assert rep.preemptions == 0 or rep.preemptions >= 0  # report sane
        # at most `clients` in flight: arrivals follow completions
        recs = sorted(rep.records.values(), key=lambda r: r.req_id)
        for r in recs:
            if r.req_id >= 4:
                parent = rep.records[r.req_id - 4]
                assert r.arrival >= parent.t_finished

    def test_overload_raises_tail_latency(self):
        lo = serve_traffic(SMALL_MODEL, _open(rate=500.0, n=24),
                           world_size=2)
        hi = serve_traffic(SMALL_MODEL, _open(rate=50000.0, n=24),
                           world_size=2)
        assert hi.p99_ttft > lo.p99_ttft

    def test_unservable_request_fails_typed(self):
        rep = serve_traffic(
            SMALL_MODEL, _open(prompt=(200, 220), new=(4, 8), n=4),
            world_size=2, kv_blocks=8, block_size=4)
        assert rep.n_failed == 4
        assert all(r.fail_reason == "RequestTooLarge"
                   for r in rep.records.values())

    def test_single_rank_replica_works(self):
        rep = serve_traffic(SMALL_MODEL, _open(n=8), world_size=1)
        assert rep.n_completed == 8

    def test_per_request_trace_spans(self):
        tracer = Tracer()
        rep = serve_traffic(SMALL_MODEL, _open(n=12), world_size=2,
                            tracer=tracer, kv_blocks=16, block_size=4)
        spans = [s for s in tracer.spans() if s.cat == "serve"]
        kinds = {s.name.split("/")[0] for s in spans}
        assert {"queued", "prefill", "decode"} <= kinds
        if rep.preemptions:
            assert "preempted" in kinds
        for s in spans:
            assert 0.0 <= s.t0 <= s.t1 <= rep.makespan + 1e-9
        # decode spans exist for every completed request
        decoded = {int(s.name.split("req")[1]) for s in spans
                   if s.name.startswith("decode/")}
        assert decoded == {r.req_id for r in rep.records.values()
                           if r.fail_reason is None}

    def test_launch_serve_section(self):
        cfg = dict(serve=dict(
            model=dict(n_layers=2, hidden=256, n_heads=4, vocab=997),
            traffic=dict(kind="open", rate=2000.0, n_requests=10, seed=5,
                         prompt_tokens=[8, 16], max_new_tokens=[4, 8]),
            kv_blocks=64, block_size=8,
        ))
        rep = repro.launch(cfg, uniform_cluster(2), world_size=2)
        assert isinstance(rep, TrafficReport)
        assert rep.n_completed == 10

    def test_launch_without_fn_outside_serve_mode_raises(self):
        with pytest.raises(TypeError, match="per-rank fn"):
            repro.launch({}, uniform_cluster(2), world_size=2)

    def test_serve_config_validation(self):
        from repro.config import Config
        with pytest.raises(ValueError, match="serve.model"):
            Config.from_dict(dict(serve=dict(
                traffic=dict(kind="open", rate=1.0, n_requests=1))))
        with pytest.raises(ValueError, match="kind"):
            Config.from_dict(dict(serve=dict(
                model=dict(n_layers=1, hidden=8, n_heads=1),
                traffic=dict(kind="burst"))))
        with pytest.raises(ValueError, match="max_batch_tokens"):
            Config.from_dict(dict(serve=dict(
                model=dict(n_layers=1, hidden=8, n_heads=1),
                traffic=dict(kind="open", rate=1.0, n_requests=1),
                max_batch_tokens=0)))

    def test_kv_arena_released_on_clean_run(self):
        cluster = uniform_cluster(2)
        serve_traffic(SMALL_MODEL, _open(n=8), cluster=cluster,
                      world_size=2)
        for rank in range(2):
            assert cluster.device(rank).memory.allocated == 0


# ---------------------------------------------------------------------------
# Chaos x serving: rank loss mid-request is an SLO event, not a crash
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestServingUnderFaults:
    def test_tp_rank_killed_mid_request_requeues_and_degrades_p99(self):
        traffic = _open(rate=2000.0, n=24, seed=7)
        base = serve_traffic(SMALL_MODEL, traffic, world_size=2)
        # kill rank 1 mid-serving: roughly halfway through the fault-free
        # makespan, guaranteed to interrupt in-flight decodes
        t_kill = base.makespan / 2
        plan = FaultPlan(seed=1).crash(1, at_time=t_kill)
        faulty = serve_traffic(SMALL_MODEL, traffic, world_size=2,
                               fault_plan=plan, recovery_seconds=0.002)

        # typed failure surfaced and recovered, not a crash
        assert faulty.restarts == 1
        assert len(faulty.failures) == 1
        ev = faulty.failures[0]
        assert ev.kind == "RankFailure" and ev.rank == 1
        assert ev.t >= t_kill

        # every request still completes (requeue), outputs bit-identical
        assert faulty.n_completed == 24
        assert ({r.req_id: r.output for r in base.records.values()}
                == {r.req_id: r.output for r in faulty.records.values()})

        # and the loss is priced: tail latency up, goodput down
        assert faulty.p99_ttft > base.p99_ttft
        assert faulty.p99_e2e > base.p99_e2e
        assert (faulty.goodput_tokens_per_sec
                < base.goodput_tokens_per_sec)

    def test_repeated_rank_loss_still_drains(self):
        traffic = _open(rate=2000.0, n=16, seed=9)
        base = serve_traffic(SMALL_MODEL, traffic, world_size=2)
        plan = (FaultPlan(seed=2)
                .crash(0, at_time=base.makespan / 4)
                .crash(1, at_time=base.makespan / 2))
        faulty = serve_traffic(SMALL_MODEL, traffic, world_size=2,
                               fault_plan=plan, recovery_seconds=0.001)
        assert faulty.restarts == 2
        assert faulty.n_completed == 16
        assert {f.kind for f in faulty.failures} == {"RankFailure"}

    def test_recovery_budget_exhaustion_reraises(self):
        from repro.runtime.errors import RemoteRankError
        traffic = _open(rate=2000.0, n=16, seed=9)
        plan = FaultPlan(seed=3).crash(1, at_time=1e-6)
        with pytest.raises(RemoteRankError):
            serve_traffic(SMALL_MODEL, traffic, world_size=2,
                          fault_plan=plan, max_recoveries=0)
